"""Tests for importance scores (paper Eq. 1-3) and unit aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.importance import (
    IMPORTANCE,
    ImportanceConfig,
    available_importance,
    column_unit_scores,
    exact_loss_delta,
    magnitude_score,
    normalize_scores,
    resolve_importance,
    row_unit_scores,
    score_matrix,
    taylor_score,
)


class TestImportanceRegistry:
    def test_names(self):
        assert available_importance() == ["magnitude", "taylor"]

    def test_round_trip_with_knobs(self):
        cfg = IMPORTANCE.create("taylor", reduction="l2", normalize="mean")
        assert cfg == ImportanceConfig(
            method="taylor", reduction="l2", normalize="mean"
        )
        assert IMPORTANCE.create("magnitude") == ImportanceConfig(
            method="magnitude"
        )

    def test_alias_canonicalises(self):
        assert IMPORTANCE.canonical("mag") == "magnitude"

    def test_unknown_name_lists_available(self):
        with pytest.raises(
            KeyError, match="unknown importance 'entropy'.*magnitude.*taylor"
        ):
            IMPORTANCE.canonical("entropy")

    def test_resolve_forms(self):
        inst = ImportanceConfig(method="magnitude", reduction="mean")
        assert resolve_importance(inst) is inst
        assert resolve_importance(None).method == "taylor"
        assert resolve_importance("mag").method == "magnitude"
        assert resolve_importance("taylor", reduction=None).reduction == "sum"
        with pytest.raises(TypeError):
            resolve_importance(3.14)


class TestElementScores:
    def test_magnitude_is_abs(self):
        w = np.array([[-2.0, 3.0], [0.0, -0.5]])
        np.testing.assert_array_equal(magnitude_score(w), np.abs(w))

    def test_taylor_is_abs_product(self):
        w = np.array([[1.0, -2.0]])
        g = np.array([[3.0, 0.5]])
        np.testing.assert_array_equal(taylor_score(w, g), [[3.0, 1.0]])

    def test_taylor_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            taylor_score(np.ones((2, 2)), np.ones((3, 2)))

    def test_taylor_approximates_exact_for_quadratic_loss(self):
        """Paper Eq. 2: first-order Taylor of L(w=0) around w_i.

        For L(w) = c·w (linear), the Taylor score is exact:
        |L(w) - L(0)| = |c·w| = |∂L/∂w · w|.
        """
        rng = np.random.default_rng(0)
        w = rng.standard_normal((3, 4))
        c = rng.standard_normal((3, 4))

        def loss(weights):
            return float((c * weights).sum())

        exact = exact_loss_delta(loss, w.copy())
        taylor = taylor_score(w, c)
        np.testing.assert_allclose(exact, taylor, atol=1e-10)

    def test_taylor_first_order_for_mse_loss(self):
        """For L = 0.5·Σ(w−t)², removing w_i changes L by |0.5·w_i² − w_i·t_i|;
        the Taylor score |w_i·(w_i−t_i)| matches to first order (small w)."""
        rng = np.random.default_rng(1)
        t = rng.standard_normal((2, 3))
        w = t + 1e-3 * rng.standard_normal((2, 3))  # near optimum

        def loss(weights):
            return 0.5 * float(((weights - t) ** 2).sum())

        grad = w - t
        exact = exact_loss_delta(loss, w.copy())
        taylor = taylor_score(w, grad)
        # exact = |0.5 w^2 - w t|; taylor = |w(w-t)| ; both O(w^2) near opt
        np.testing.assert_allclose(exact, np.abs(0.5 * w**2 - w * t), atol=1e-12)
        assert np.all(taylor <= exact + 1e-6)  # Taylor is a lower-order term here

    def test_score_matrix_dispatch(self):
        w = np.array([[1.0, -2.0]])
        g = np.array([[2.0, 2.0]])
        np.testing.assert_array_equal(
            score_matrix(w, g, ImportanceConfig(method="taylor")), [[2.0, 4.0]]
        )
        np.testing.assert_array_equal(
            score_matrix(w, None, ImportanceConfig(method="magnitude")), [[1.0, 2.0]]
        )

    def test_score_matrix_taylor_requires_grads(self):
        with pytest.raises(ValueError):
            score_matrix(np.ones((2, 2)), None, ImportanceConfig(method="taylor"))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ImportanceConfig(method="oracle")
        with pytest.raises(ValueError):
            ImportanceConfig(reduction="max")
        with pytest.raises(ValueError):
            ImportanceConfig(normalize="softmax")


class TestNormalization:
    def test_none_is_identity(self):
        s = np.array([[1.0, 2.0]])
        assert normalize_scores(s, "none") is s

    def test_mean_normalization(self):
        s = np.array([[2.0, 4.0]])
        np.testing.assert_allclose(normalize_scores(s, "mean"), [[2 / 3, 4 / 3]])

    def test_l2_normalization(self):
        s = np.array([[3.0, 4.0]])
        rms = np.sqrt((9 + 16) / 2)
        np.testing.assert_allclose(normalize_scores(s, "l2"), s / rms)

    def test_zero_scores_unchanged(self):
        s = np.zeros((2, 2))
        np.testing.assert_array_equal(normalize_scores(s, "mean"), s)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            normalize_scores(np.ones((1, 1)), "max")


class TestUnitAggregation:
    def test_column_scores_sum(self):
        s = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(column_unit_scores(s, "sum"), [4.0, 6.0])

    def test_column_scores_mean_and_l2(self):
        s = np.array([[3.0, 0.0], [4.0, 2.0]])
        np.testing.assert_allclose(column_unit_scores(s, "mean"), [3.5, 1.0])
        np.testing.assert_allclose(column_unit_scores(s, "l2"), [5.0, 2.0])

    def test_column_scores_rejects_1d(self):
        with pytest.raises(ValueError):
            column_unit_scores(np.ones(3))

    def test_row_unit_scores_respects_groups(self):
        s = np.arange(12, dtype=float).reshape(3, 4)
        groups = [np.array([0, 2]), np.array([1, 3])]
        out = row_unit_scores(s, groups, "sum")
        np.testing.assert_array_equal(out[0], s[:, [0, 2]].sum(axis=1))
        np.testing.assert_array_equal(out[1], s[:, [1, 3]].sum(axis=1))

    def test_row_unit_scores_empty_group(self):
        s = np.ones((3, 4))
        out = row_unit_scores(s, [np.array([], dtype=np.int64)])
        np.testing.assert_array_equal(out[0], np.zeros(3))

    def test_row_unit_scores_rejects_1d(self):
        with pytest.raises(ValueError):
            row_unit_scores(np.ones(3), [np.array([0])])


@given(
    st.integers(1, 10),
    st.integers(1, 10),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_scores_nonnegative_property(k, n, seed):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((k, n))
    g = rng.standard_normal((k, n))
    assert np.all(magnitude_score(w) >= 0)
    assert np.all(taylor_score(w, g) >= 0)
    assert np.all(column_unit_scores(taylor_score(w, g)) >= 0)


@given(st.integers(2, 8), st.integers(2, 8), st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_column_sum_partition_property(k, n, seed):
    """Column scores partition the total score mass."""
    rng = np.random.default_rng(seed)
    s = np.abs(rng.standard_normal((k, n)))
    assert column_unit_scores(s, "sum").sum() == pytest.approx(s.sum())
