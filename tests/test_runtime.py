"""Tests for the end-to-end runtime: layout, batching, scheduling, engine."""

import numpy as np
import pytest

from repro.formats.tiled import TiledTWMatrix
from repro.gpu.tw_kernel import TWShapeStats
from repro.models.registry import GemmShape, bert_base_gemm_shapes
from repro.runtime import (
    EngineConfig,
    InferenceEngine,
    LayerPlan,
    TransposePlan,
    assign_streams,
    batching_plan,
    build_execution_plan,
    transpose_cost,
)


class TestTransposePlan:
    def test_kernel_counts(self):
        assert TransposePlan("none").kernel_count(10) == 0
        assert TransposePlan("per_layer").kernel_count(10) == 11
        assert TransposePlan("boundary_only").kernel_count(10) == 2
        assert TransposePlan("boundary_only").kernel_count(0) == 0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            TransposePlan("sometimes")

    def test_negative_count(self):
        with pytest.raises(ValueError):
            TransposePlan().kernel_count(-1)

    def test_transpose_cost_scaling(self):
        one = transpose_cost(1024, 768, 1)
        two = transpose_cost(1024, 768, 2)
        assert two.total_us > one.total_us
        assert two.kernels == 2

    def test_transpose_cost_zero(self):
        assert transpose_cost(0, 768, 1).total_us == 0.0
        assert transpose_cost(1024, 768, 0).kernels == 0

    def test_transpose_cost_validation(self):
        with pytest.raises(ValueError):
            transpose_cost(-1, 2, 1)


class TestBatching:
    def _shape(self):
        return TWShapeStats(
            k=64, n=48, granularity=16,
            tiles=((60, 16), (40, 16), (20, 16), (30, 8)),
        )

    def test_groups_by_width(self):
        plan = batching_plan(self._shape())
        widths = [g.width for g in plan]
        assert widths == [16, 8]
        assert plan[0].n_tiles == 3

    def test_max_depth(self):
        plan = batching_plan(self._shape())
        assert plan[0].max_depth == 60

    def test_disabled_one_group_per_tile(self):
        plan = batching_plan(self._shape(), enabled=False)
        assert len(plan) == 4
        assert all(g.n_tiles == 1 for g in plan)

    def test_padded_work(self):
        plan = batching_plan(self._shape())
        assert plan[0].padded_work() == 60 * 16 * 3

    def test_empty_tile_list(self):
        empty = TWShapeStats(k=64, n=48, granularity=16, tiles=())
        assert batching_plan(empty) == []
        assert batching_plan(empty, enabled=False) == []

    def test_single_tile_group(self):
        one = TWShapeStats(k=64, n=16, granularity=16, tiles=((40, 16),))
        plan = batching_plan(one)
        assert len(plan) == 1
        assert plan[0].tile_ids == (0,)
        assert plan[0].max_depth == 40
        assert plan[0].padded_work() == 40 * 16

    def test_disabled_passthrough_preserves_tile_order(self):
        plan = batching_plan(self._shape(), enabled=False)
        assert [g.tile_ids for g in plan] == [(0,), (1,), (2,), (3,)]
        assert [g.max_depth for g in plan] == [60, 40, 20, 30]

    def test_degenerate_zero_width_tiles(self):
        shape = TWShapeStats(
            k=64, n=48, granularity=16, tiles=((60, 16), (0, 0), (50, 0))
        )
        plan = batching_plan(shape)
        zero = next(g for g in plan if g.width == 0)
        assert zero.n_tiles == 2
        assert zero.padded_work() == 0  # zero-width tiles carry no work

    def test_accepts_tiled_matrix_directly(self):
        rng = np.random.default_rng(0)
        col_keep = np.ones(32, dtype=bool)
        masks = [rng.random(16) < 0.5 for _ in range(4)]
        tw = TiledTWMatrix.from_masks(
            rng.standard_normal((16, 32)), 8, col_keep, masks
        )
        from_matrix = batching_plan(tw)
        from_stats = batching_plan(TWShapeStats.from_matrix(tw))
        assert from_matrix == from_stats


class TestScheduler:
    def test_round_robin_balance(self):
        groups = batching_plan(
            TWShapeStats(k=64, n=64, granularity=16,
                         tiles=((64, 16), (64, 16), (64, 16), (64, 16))),
            enabled=False,
        )
        assignment = assign_streams(groups)
        assert assignment.n_streams == 4
        assert assignment.imbalance() == pytest.approx(1.0)

    def test_disabled_single_stream(self):
        groups = batching_plan(self._two_groups(), enabled=False)
        assignment = assign_streams(groups, enabled=False)
        assert assignment.n_streams == 1

    def _two_groups(self):
        return TWShapeStats(
            k=32, n=32, granularity=16, tiles=((32, 16), (8, 16))
        )

    def test_heavy_first(self):
        groups = batching_plan(self._two_groups(), enabled=False)
        assignment = assign_streams(groups)
        work = assignment.stream_work()
        assert max(work) == 32 * 16

    def test_empty_group_list(self):
        assignment = assign_streams([])
        assert assignment.n_streams == 0
        assert assignment.imbalance() == pytest.approx(1.0)
        assert assignment.execution_order() == []
        assert assignment.order_streams() == []

    def test_imbalance_with_degenerate_widths(self):
        # zero-width groups carry no work; they must not poison the
        # max/mean diagnostic with zero-work streams
        shape = TWShapeStats(
            k=64, n=48, granularity=16, tiles=((60, 16), (0, 0), (0, 0))
        )
        assignment = assign_streams(batching_plan(shape))
        assert assignment.imbalance() == pytest.approx(1.0)

    def test_execution_order_covers_all_groups_round_robin(self):
        shape = TWShapeStats(
            k=64, n=96, granularity=16,
            tiles=((64, 16), (32, 16), (16, 8), (8, 8), (4, 4), (2, 4)),
        )
        groups = batching_plan(shape, enabled=False)
        assignment = assign_streams(groups)
        order = assignment.execution_order()
        assert sorted(g.tile_ids for g in order) == sorted(g.tile_ids for g in groups)
        # breadth-first: the first n_streams entries are each stream's head
        heads = [s[0] for s in assignment.streams if s]
        assert order[: len(heads)] == heads
        streams_of = assignment.order_streams()
        assert len(streams_of) == len(order)
        for pos, g in enumerate(order):
            assert g in assignment.streams[streams_of[pos]]

    def test_build_execution_plan_bundles_groups_and_streams(self):
        shape = self._two_groups()
        plan = build_execution_plan(shape)
        assert plan.n_kernels == len(batching_plan(shape))
        assert sorted(g.tile_ids for g in plan.execution_order()) == sorted(
            g.tile_ids for g in plan.groups
        )
        sequential = build_execution_plan(shape, batching=False, streams=False)
        assert sequential.assignment.n_streams == 1
        assert sequential.n_kernels == 2  # one kernel per tile


class TestLayerPlan:
    def test_validation(self):
        shape = GemmShape(8, 8, 8)
        with pytest.raises(ValueError):
            LayerPlan(shape, pattern="nw")
        with pytest.raises(ValueError):
            LayerPlan(shape, sparsity=1.5)
        with pytest.raises(ValueError):
            LayerPlan(shape, pattern="tew", tew_delta=1.0)


class TestInferenceEngine:
    def setup_method(self):
        self.engine = InferenceEngine()
        self.shapes = bert_base_gemm_shapes(batch=64, seq=128)

    def _plans(self, pattern, sparsity, **kw):
        return [LayerPlan(s, pattern=pattern, sparsity=sparsity, **kw) for s in self.shapes]

    def test_dense_end_to_end(self):
        report = self.engine.end_to_end("bert", self._plans("dense", 0.0), EngineConfig())
        assert report.total_us > 0
        assert report.transpose_us == 0.0  # dense needs no transposes
        fr = report.fractions()
        assert fr["others"] == pytest.approx(0.29, abs=0.01)  # fused non-GEMM share

    def test_unfused_nongemm_share(self):
        report = self.engine.end_to_end(
            "bert", self._plans("dense", 0.0), EngineConfig(fusion=False)
        )
        assert report.fractions()["others"] == pytest.approx(0.39, abs=0.01)

    def test_tw_end_to_end_speedup(self):
        """GEMM-only ~2×, end-to-end less (Amdahl on non-GEMM) — Fig. 15."""
        cfg = EngineConfig()
        dense = self.engine.end_to_end("bert", self._plans("dense", 0.0), cfg)
        tw = self.engine.end_to_end("bert", self._plans("tw", 0.75), cfg)
        e2e_speedup = dense.total_us / tw.total_us
        gemm_speedup = dense.gemm_us / tw.gemm_us
        assert gemm_speedup > e2e_speedup > 1.2
        assert tw.transpose_us > 0.0

    def test_transpose_mode_effects(self):
        plans = self._plans("tw", 0.75)
        per_layer = self.engine.end_to_end(
            "bert", plans, EngineConfig(transpose=TransposePlan("per_layer"), fusion=False)
        )
        boundary = self.engine.end_to_end(
            "bert", plans, EngineConfig(transpose=TransposePlan("boundary_only"))
        )
        none = self.engine.end_to_end(
            "bert", plans, EngineConfig(transpose=TransposePlan("none"), fusion=False)
        )
        assert per_layer.transpose_us > boundary.transpose_us
        assert none.transpose_us == 0.0
        assert none.gemm_us > boundary.gemm_us  # uncoalesced penalty dominates

    def test_ew_runs_on_cuda_even_with_tc_engine(self):
        plan = LayerPlan(self.shapes[0], pattern="ew", sparsity=0.8)
        bd = self.engine.gemm_cost(plan, EngineConfig(engine="tensor_core"))
        assert bd.label == "ew"

    def test_tew_slower_than_tw_on_tc(self):
        """Fig. 10b: the CUDA-core residual erases tensor-core gains."""
        cfg = EngineConfig()
        tw = self.engine.gemm_cost(
            LayerPlan(self.shapes[0], pattern="tw", sparsity=0.75), cfg
        )
        tew = self.engine.gemm_cost(
            LayerPlan(self.shapes[0], pattern="tew", sparsity=0.75, tew_delta=0.05), cfg
        )
        assert tew.total_us > tw.total_us

    def test_bw_pattern(self):
        plan = LayerPlan(self.shapes[0], pattern="bw", sparsity=0.5, block_size=32)
        bd = self.engine.gemm_cost(plan, EngineConfig())
        assert bd.label == "blocksparse"
        assert bd.total_us > 0

    def test_real_tw_stats_respected(self):
        stats = TWShapeStats.synthetic(768, 768, 128, 0.9, seed=3)
        plan = LayerPlan(self.shapes[0], pattern="tw", sparsity=0.9, tw_stats=stats)
        bd = self.engine.gemm_cost(plan, EngineConfig())
        assert bd.counters.flops == 2.0 * self.shapes[0].m * stats.kept_elements

    def test_cuda_engine(self):
        cfg = EngineConfig(engine="cuda_core")
        dense = self.engine.end_to_end("bert", self._plans("dense", 0.0), cfg)
        tw = self.engine.end_to_end("bert", self._plans("tw", 0.75), cfg)
        assert dense.total_us / tw.total_us > 1.2

    def test_empty_plans_rejected(self):
        with pytest.raises(ValueError):
            self.engine.end_to_end("bert", [], EngineConfig())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(engine="npu")
