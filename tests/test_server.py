"""Tests for the TW serving layer: caches, micro-batching, stats."""

import numpy as np
import pytest

from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.kernels.masked import tw_gemm_reference
from repro.formats.tiled import TiledTWMatrix
from repro.runtime import ServerConfig, TWModelServer, weight_fingerprint


def _pruned_layer(rng, k, n, sparsity=0.5, g=8):
    dense = rng.standard_normal((k, n))
    step = tw_prune_step([np.abs(dense)], sparsity, TWPruneConfig(granularity=g))
    return dense, step.col_keeps[0], step.row_masks[0]


def _server(rng, n_layers=2, k=24, g=8, **cfg_kw):
    server = TWModelServer(ServerConfig(granularity=g, **cfg_kw))
    for _ in range(n_layers):
        server.add_layer(*_pruned_layer(rng, k, k, g=g))
    return server


class TestCaches:
    def test_second_request_skips_construction(self):
        rng = np.random.default_rng(0)
        server = _server(rng, n_layers=3)
        server.serve(rng.standard_normal((4, 24)))
        assert server.stats.format_misses == 3
        assert server.stats.plan_misses == 3
        assert server.stats.format_hits == 0
        server.serve(rng.standard_normal((4, 24)))
        # the whole point of the serving layer: construction amortised away
        assert server.stats.format_misses == 3
        assert server.stats.plan_misses == 3
        assert server.stats.format_hits == 3
        assert server.stats.plan_hits == 3

    def test_warm_prebuilds(self):
        rng = np.random.default_rng(1)
        server = _server(rng)
        server.warm()
        assert server.stats.format_misses == 2
        server.serve(rng.standard_normal((2, 24)))
        assert server.stats.format_misses == 2
        assert server.stats.format_hits >= 2

    def test_fingerprint_distinguishes_masks(self):
        rng = np.random.default_rng(2)
        dense, ck, rm = _pruned_layer(rng, 16, 16)
        fp1 = weight_fingerprint(dense, ck, rm)
        assert fp1 == weight_fingerprint(dense.copy(), ck.copy(), [m.copy() for m in rm])
        flipped = ck.copy()
        flipped[0] = not flipped[0]
        assert fp1 != weight_fingerprint(dense, flipped, rm)
        assert fp1 != weight_fingerprint(dense + 1.0, ck, rm)


class TestServing:
    def test_matches_reference_per_layer_chain(self):
        rng = np.random.default_rng(3)
        server = _server(rng, n_layers=2, k=24)
        x = rng.standard_normal((5, 24))
        got = server.serve(x).output
        a = x
        for layer in server._layers:
            tw = TiledTWMatrix.from_masks(
                layer.dense, 8, layer.col_keep, list(layer.row_masks)
            )
            a = tw_gemm_reference(a, tw)
        np.testing.assert_allclose(got, a, rtol=0, atol=1e-10)

    def test_microbatch_outputs_match_individual_serves(self):
        rng = np.random.default_rng(4)
        server = _server(rng, n_layers=2)
        reqs = [rng.standard_normal((int(rng.integers(1, 6)), 24)) for _ in range(5)]
        solo = _server(np.random.default_rng(4), n_layers=2)
        expected = [solo.serve(r).output for r in reqs]
        ids = [server.submit(r) for r in reqs]
        served = server.flush()
        assert [s.request_id for s in served] == ids
        assert server.stats.batches == 1
        assert server.stats.gemms == 2  # one GEMM per layer for the wave
        for s, want in zip(served, expected):
            # same values up to BLAS blocking (the GEMM's row-blocking
            # differs between the stacked wave and a lone request)
            np.testing.assert_allclose(s.output, want, rtol=0, atol=1e-10)

    def test_max_batch_rows_splits_waves(self):
        rng = np.random.default_rng(5)
        server = _server(rng, n_layers=1, max_batch_rows=8)
        for _ in range(5):
            server.submit(rng.standard_normal((4, 24)))
        served = server.flush()
        assert len(served) == 5
        assert server.stats.batches == 3  # 8-row cap -> 2+2+1 requests
        assert {s.batch_id for s in served} == {0, 1, 2}

    def test_oversized_single_request_still_served(self):
        rng = np.random.default_rng(6)
        server = _server(rng, n_layers=1, max_batch_rows=4)
        req = server.serve(rng.standard_normal((9, 24)))
        assert req.rows == 9

    def test_float32_serving_dtype(self):
        rng = np.random.default_rng(7)
        server = _server(rng, dtype="float32")
        out = server.serve(rng.standard_normal((3, 24))).output
        assert out.dtype == np.float32

    def test_stats_and_latency(self):
        rng = np.random.default_rng(8)
        server = _server(rng)
        server.submit(rng.standard_normal((2, 24)))
        server.submit(rng.standard_normal((3, 24)))
        server.flush()
        st = server.stats
        assert st.requests == 2
        assert st.rows == 5
        assert st.busy_s > 0
        assert st.rows_per_s() > 0
        assert st.requests_per_s() > 0
        assert st.mean_latency_s() > 0
        assert len(st.latencies_s) == 2
        assert server.stream_imbalance()  # one diagnostic per cached plan

    def test_validation(self):
        rng = np.random.default_rng(9)
        server = _server(rng, n_layers=1, k=24)
        with pytest.raises(ValueError):
            server.submit(rng.standard_normal((2, 7)))  # wrong K
        with pytest.raises(ValueError):
            server.add_layer(*_pruned_layer(rng, 7, 7))  # does not chain
        with pytest.raises(ValueError):
            ServerConfig(granularity=0)
        with pytest.raises(ValueError):
            ServerConfig(max_batch_rows=0)
        with pytest.raises(TypeError):
            ServerConfig(dtype="not-a-dtype")

    def test_flush_empty_queue(self):
        server = TWModelServer()
        assert server.flush() == []
