"""Tests for the TW serving layer: caches, micro-batching, stats."""

import numpy as np
import pytest

from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.kernels.masked import tw_gemm_reference
from repro.formats.tiled import TiledTWMatrix
from repro.runtime import ServerConfig, ServerStats, TWModelServer, weight_fingerprint


def _pruned_layer(rng, k, n, sparsity=0.5, g=8):
    dense = rng.standard_normal((k, n))
    step = tw_prune_step([np.abs(dense)], sparsity, TWPruneConfig(granularity=g))
    return dense, step.col_keeps[0], step.row_masks[0]


def _server(rng, n_layers=2, k=24, g=8, **cfg_kw):
    server = TWModelServer(ServerConfig(granularity=g, **cfg_kw))
    for _ in range(n_layers):
        server.add_layer(*_pruned_layer(rng, k, k, g=g))
    return server


class TestCaches:
    def test_second_request_skips_construction(self):
        rng = np.random.default_rng(0)
        server = _server(rng, n_layers=3)
        server.serve(rng.standard_normal((4, 24)))
        assert server.stats.format_misses == 3
        assert server.stats.plan_misses == 3
        assert server.stats.format_hits == 0
        server.serve(rng.standard_normal((4, 24)))
        # the whole point of the serving layer: construction amortised away
        assert server.stats.format_misses == 3
        assert server.stats.plan_misses == 3
        assert server.stats.format_hits == 3
        assert server.stats.plan_hits == 3

    def test_warm_prebuilds(self):
        rng = np.random.default_rng(1)
        server = _server(rng)
        server.warm()
        assert server.stats.format_misses == 2
        server.serve(rng.standard_normal((2, 24)))
        assert server.stats.format_misses == 2
        assert server.stats.format_hits >= 2

    def test_fingerprint_distinguishes_masks(self):
        rng = np.random.default_rng(2)
        dense, ck, rm = _pruned_layer(rng, 16, 16)
        fp1 = weight_fingerprint(dense, ck, rm)
        assert fp1 == weight_fingerprint(dense.copy(), ck.copy(), [m.copy() for m in rm])
        flipped = ck.copy()
        flipped[0] = not flipped[0]
        assert fp1 != weight_fingerprint(dense, flipped, rm)
        assert fp1 != weight_fingerprint(dense + 1.0, ck, rm)


class TestCacheBudget:
    def test_validation(self):
        assert ServerConfig(cache_budget=0).cache_budget == 0
        with pytest.raises(ValueError, match="cache_budget"):
            ServerConfig(cache_budget=-1)
        with pytest.raises(ValueError, match="cache_budget"):
            ServerConfig(cache_budget=1.5)

    def test_unbounded_never_evicts(self):
        rng = np.random.default_rng(40)
        server = _server(rng, n_layers=3)
        server.serve(rng.standard_normal((2, 24)))
        server.serve(rng.standard_normal((2, 24)))
        assert server.stats.format_evictions == 0
        assert server.stats.plan_evictions == 0

    def test_budget_evicts_and_recomputes(self):
        rng = np.random.default_rng(41)
        server = _server(rng, n_layers=3, cache_budget=1)
        server.serve(rng.standard_normal((2, 24)))
        # each layer's fill pushed the previous layer out
        assert server.stats.format_evictions == 2
        assert server.stats.plan_evictions == 2
        assert server.stats.format_misses == 3
        server.serve(rng.standard_normal((2, 24)))
        # nothing survives a budget of 1 across a 3-layer chain: all misses
        assert server.stats.format_misses == 6
        assert server.stats.format_hits == 0

    def test_budget_covering_model_behaves_like_unbounded(self):
        rng = np.random.default_rng(42)
        server = _server(rng, n_layers=3, cache_budget=3)
        server.serve(rng.standard_normal((2, 24)))
        server.serve(rng.standard_normal((2, 24)))
        assert server.stats.format_evictions == 0
        assert server.stats.format_hits == 3

    @pytest.mark.parametrize("executor", ["inline", "threaded", "process"])
    def test_tiny_budget_serving_stays_bit_identical(self, executor):
        rng = np.random.default_rng(43)
        layers = [_pruned_layer(rng, 24, 24) for _ in range(3)]
        batch = rng.standard_normal((4, 24))

        oracle = TWModelServer(ServerConfig(granularity=8))
        for layer in layers:
            oracle.add_layer(*layer)
        want = oracle.serve(batch)
        assert want.status == "ok"

        server = TWModelServer(
            ServerConfig(granularity=8, cache_budget=1, executor=executor)
        )
        for layer in layers:
            server.add_layer(*layer)
        try:
            got = server.serve(batch)
            assert got.status == "ok"
            np.testing.assert_array_equal(got.output, want.output)
            assert server.stats.format_evictions >= 2
        finally:
            server.close()
        oracle.close()


class TestServing:
    def test_matches_reference_per_layer_chain(self):
        rng = np.random.default_rng(3)
        server = _server(rng, n_layers=2, k=24)
        x = rng.standard_normal((5, 24))
        got = server.serve(x).output
        a = x
        for layer in server._layers:
            tw = TiledTWMatrix.from_masks(
                layer.dense, 8, layer.col_keep, list(layer.row_masks)
            )
            a = tw_gemm_reference(a, tw)
        np.testing.assert_allclose(got, a, rtol=0, atol=1e-10)

    def test_microbatch_outputs_match_individual_serves(self):
        rng = np.random.default_rng(4)
        server = _server(rng, n_layers=2)
        reqs = [rng.standard_normal((int(rng.integers(1, 6)), 24)) for _ in range(5)]
        solo = _server(np.random.default_rng(4), n_layers=2)
        expected = [solo.serve(r).output for r in reqs]
        ids = [server.submit(r) for r in reqs]
        served = server.flush()
        assert [s.request_id for s in served] == ids
        assert server.stats.batches == 1
        assert server.stats.gemms == 2  # one GEMM per layer for the wave
        for s, want in zip(served, expected):
            # same values up to BLAS blocking (the GEMM's row-blocking
            # differs between the stacked wave and a lone request)
            np.testing.assert_allclose(s.output, want, rtol=0, atol=1e-10)

    def test_max_wave_rows_splits_waves(self):
        rng = np.random.default_rng(5)
        server = _server(rng, n_layers=1, max_wave_rows=8)
        for _ in range(5):
            server.submit(rng.standard_normal((4, 24)))
        served = server.flush()
        assert len(served) == 5
        assert server.stats.batches == 3  # 8-row cap -> 2+2+1 requests
        assert {s.batch_id for s in served} == {0, 1, 2}

    def test_oversized_single_request_still_served(self):
        rng = np.random.default_rng(6)
        server = _server(rng, n_layers=1, max_wave_rows=4)
        req = server.serve(rng.standard_normal((9, 24)))
        assert req.rows == 9

    def test_float32_serving_dtype(self):
        rng = np.random.default_rng(7)
        server = _server(rng, dtype="float32")
        out = server.serve(rng.standard_normal((3, 24))).output
        assert out.dtype == np.float32

    def test_stats_and_latency(self):
        rng = np.random.default_rng(8)
        server = _server(rng)
        server.submit(rng.standard_normal((2, 24)))
        server.submit(rng.standard_normal((3, 24)))
        server.flush()
        st = server.stats
        assert st.requests == 2
        assert st.rows == 5
        assert st.busy_s > 0
        assert st.rows_per_s() > 0
        assert st.requests_per_s() > 0
        assert st.mean_latency_s() > 0
        assert len(st.latencies_s) == 2
        assert server.stream_imbalance()  # one diagnostic per cached plan

    def test_validation(self):
        rng = np.random.default_rng(9)
        server = _server(rng, n_layers=1, k=24)
        with pytest.raises(ValueError):
            server.submit(rng.standard_normal((2, 7)))  # wrong K
        with pytest.raises(ValueError):
            server.add_layer(*_pruned_layer(rng, 7, 7))  # does not chain
        with pytest.raises(ValueError):
            ServerConfig(granularity=0)
        with pytest.raises(TypeError):
            ServerConfig(dtype="not-a-dtype")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"granularity": 0},
            {"granularity": -3},
            {"granularity": 1.5},
            {"max_wave_rows": 0},
            {"max_wave_rows": -1},
            {"max_wave_rows": 2.5},
            {"queue_timeout_s": -0.1},
            {"queue_timeout_s": float("nan")},
            {"queue_timeout_s": float("inf")},
        ],
    )
    def test_config_numeric_validation(self, kwargs):
        # bad numerics must fail at construction with a clear ValueError,
        # not deep inside the wave execution path
        with pytest.raises(ValueError):
            ServerConfig(**kwargs)

    def test_config_placement_type_checked(self):
        with pytest.raises(TypeError):
            ServerConfig(placement="layer_sharded")  # must be a Placement

    def test_config_executor_validated(self):
        assert ServerConfig(executor="threads").executor == "threaded"  # alias
        with pytest.raises(KeyError):
            ServerConfig(executor="gpu")
        with pytest.raises(TypeError):
            ServerConfig(executor=42)
        with pytest.raises(ValueError):
            ServerConfig(workers=0)
        with pytest.raises(ValueError):
            ServerConfig(pace=-1.0)
        with pytest.raises(ValueError):
            ServerConfig(pace=float("nan"))

    def test_wall_time_and_parallel_efficiency_tracked(self):
        rng = np.random.default_rng(30)
        server = _server(rng)
        server.serve(rng.standard_normal((2, 24)))
        st = server.stats
        assert st.wall_time_s > 0
        assert st.measured_speedup() > 0
        assert 0 < st.parallel_efficiency() <= 1.5  # inline ~= serial
        assert ServerStats().parallel_efficiency() == 0.0
        assert ServerStats().measured_speedup() == 0.0

    def test_paced_serving_floors_busy_time(self):
        rng = np.random.default_rng(31)
        server = _server(rng, n_layers=1, pace=200.0)
        server.serve(rng.standard_normal((2, 24)))
        # dwell = pace x modeled us; even a tiny layer models >= ~10us, so
        # paced busy time must clear an unpaced run by orders of magnitude
        assert server.stats.busy_s >= 200.0 * 10e-6
        unpaced = _server(np.random.default_rng(31), n_layers=1)
        out = unpaced.serve(rng.standard_normal((2, 24)))
        assert out is not None  # pace=0 default stays the fast path

    def test_max_batch_rows_alias(self):
        assert ServerConfig(max_wave_rows=17).max_batch_rows == 17
        # the PR 2 constructor spelling keeps working
        assert ServerConfig(max_batch_rows=17).max_wave_rows == 17
        with pytest.raises(ValueError, match="conflicting"):
            ServerConfig(max_wave_rows=5, max_batch_rows=9)
        with pytest.raises(ValueError):
            ServerConfig(max_batch_rows=0)

    def test_deadline_misses_counted(self):
        rng = np.random.default_rng(10)
        server = _server(rng, n_layers=1, queue_timeout_s=1e-12)
        server.serve(rng.standard_normal((2, 24)))
        assert server.stats.deadline_misses == 1

    def test_flush_empty_queue(self):
        server = TWModelServer()
        assert server.flush() == []


class TestFingerprint:
    """Regression tests for weight_fingerprint collision classes."""

    def test_transpose_differs(self):
        rng = np.random.default_rng(11)
        w = rng.standard_normal((4, 6))
        ck = np.ones(6, dtype=bool)
        assert weight_fingerprint(w, ck, []) != weight_fingerprint(
            w.T, np.ones(4, dtype=bool), []
        )

    def test_same_bytes_different_shape_differs(self):
        # a row vector and a column vector share their raw bytes
        v = np.arange(8.0)
        assert weight_fingerprint(v.reshape(1, 8), np.ones(8, bool), []) != (
            weight_fingerprint(v.reshape(8, 1), np.ones(1, bool), [])
        )

    def test_mask_boundaries_delimited(self):
        # two K-masks vs one 2K-mask concatenate to the same bytes; the
        # delimited hash must still tell them apart
        rng = np.random.default_rng(12)
        w = rng.standard_normal((4, 4))
        ck = np.ones(4, dtype=bool)
        m = np.array([True, False, True, True])
        fp_two = weight_fingerprint(w, ck, [m, m])
        fp_one = weight_fingerprint(w, ck, [np.concatenate([m, m])])
        assert fp_two != fp_one

    def test_order_normalised(self):
        # an F-order view and its C-order copy are the same logical matrix
        rng = np.random.default_rng(13)
        w = rng.standard_normal((6, 4))
        ck = np.ones(4, dtype=bool)
        f_order = np.asfortranarray(w)
        assert weight_fingerprint(w, ck, []) == weight_fingerprint(f_order, ck, [])

    def test_dtype_distinguished(self):
        w = np.zeros((2, 2), dtype=np.float64)
        ck = np.ones(2, dtype=bool)
        assert weight_fingerprint(w, ck, []) != weight_fingerprint(
            w.astype(np.float32), ck, []
        )


class TestPlacementServing:
    def _chained(self, rng, n_layers=4, k=24, g=8):
        layers = [_pruned_layer(rng, k, k, g=g) for _ in range(n_layers)]
        return layers

    def _build(self, layers, config):
        server = TWModelServer(config)
        for dense, ck, rm in layers:
            server.add_layer(dense, ck, rm)
        return server

    def test_layer_sharded_matches_single(self):
        from repro.gpu.device import T4, V100
        from repro.runtime.placement import Placement

        rng = np.random.default_rng(20)
        layers = self._chained(rng)
        reqs = [rng.standard_normal((3, 24)) for _ in range(4)]
        single = self._build(layers, ServerConfig(granularity=8))
        sharded = self._build(
            layers,
            ServerConfig(
                granularity=8,
                placement=Placement("layer_sharded", (V100, T4)),
            ),
        )
        for r in reqs:
            got = sharded.serve(r).output
            want = single.serve(r).output
            np.testing.assert_array_equal(got, want)  # bit-identical
        assert set(sharded.shard_layout()) == {"Tesla V100-SXM2#0", "Tesla T4#1"}
        assert set(sharded.stats.device_gemms) == {"Tesla V100-SXM2#0", "Tesla T4#1"}
        assert sharded.stats.device_gemms["Tesla V100-SXM2#0"] == 8  # 2 layers x 4 waves
        assert sharded.stats.critical_path_s() <= sharded.stats.busy_s

    def test_replicated_round_robins_waves(self):
        from repro.gpu.device import V100
        from repro.runtime.placement import Placement

        rng = np.random.default_rng(21)
        layers = self._chained(rng, n_layers=2)
        single = self._build(layers, ServerConfig(granularity=8))
        repl = self._build(
            layers,
            ServerConfig(
                granularity=8,
                max_wave_rows=4,
                placement=Placement("replicated", (V100, V100)),
            ),
        )
        reqs = [rng.standard_normal((4, 24)) for _ in range(4)]
        for r in reqs:
            repl.submit(r)
        served = repl.flush()
        assert repl.stats.batches == 4  # 4-row cap -> one wave per request
        for s, r in zip(served, reqs):
            np.testing.assert_array_equal(s.output, single.serve(r).output)
        # waves alternate across the two replicas of the same device type;
        # slots keep them distinct in the stats
        assert repl.stats.device_gemms["Tesla V100-SXM2#0"] == 4
        assert repl.stats.device_gemms["Tesla V100-SXM2#1"] == 4

    def test_executor_resolved_from_config(self):
        from repro.runtime.executor import InlineExecutor, ThreadedExecutor

        assert isinstance(TWModelServer().executor, InlineExecutor)
        threaded = TWModelServer(ServerConfig(executor="threaded", workers=3))
        assert isinstance(threaded.executor, ThreadedExecutor)
        assert threaded.executor.workers == 3

    def test_warm_builds_all_shard_plans(self):
        from repro.gpu.device import T4, V100
        from repro.runtime.placement import Placement

        rng = np.random.default_rng(22)
        layers = self._chained(rng, n_layers=3)
        server = self._build(
            layers,
            ServerConfig(
                granularity=8,
                placement=Placement("replicated", (V100, T4)),
            ),
        )
        server.warm()
        assert server.stats.plan_misses == 6  # 3 layers x 2 replica devices
        server.serve(rng.standard_normal((2, 24)))
        assert server.stats.plan_misses == 6  # serving replays the cache


class TestExecutorInvariance:
    """The ISSUE 4 contract: ``threaded`` is bit-identical to ``inline``
    for every placement, including the degenerate shapes — and the wave →
    device round-robin is deterministic across executors."""

    def _chained(self, rng, n_layers, k=24, g=8):
        return [_pruned_layer(rng, k, k, g=g) for _ in range(n_layers)]

    def _serve_all(self, layers, reqs, **cfg_kw):
        server = TWModelServer(ServerConfig(granularity=8, **cfg_kw))
        for dense, ck, rm in layers:
            server.add_layer(dense, ck, rm)
        for r in reqs:
            server.submit(r)
        return server, server.flush()

    def _assert_executors_agree(self, layers, reqs, **cfg_kw):
        # workers is a threaded-only knob; inline now *rejects* it instead
        # of silently ignoring it, so only the threaded build gets it
        inline_kw = {k: v for k, v in cfg_kw.items() if k != "workers"}
        inline_server, inline_out = self._serve_all(layers, reqs, **inline_kw)
        threaded_server, threaded_out = self._serve_all(
            layers, reqs, executor="threaded", **cfg_kw
        )
        assert [s.request_id for s in threaded_out] == [
            s.request_id for s in inline_out
        ]
        for got, want in zip(threaded_out, inline_out):
            np.testing.assert_array_equal(got.output, want.output)  # bit-identical
            assert got.batch_id == want.batch_id
        # wave -> device round-robin determinism: identical work placement
        assert threaded_server.stats.device_gemms == inline_server.stats.device_gemms
        assert threaded_server.stats.gemms == inline_server.stats.gemms
        return inline_server, threaded_server

    def test_single_device(self):
        rng = np.random.default_rng(40)
        layers = self._chained(rng, 3)
        reqs = [rng.standard_normal((3, 24)) for _ in range(4)]
        self._assert_executors_agree(layers, reqs)

    def test_layer_sharded_two_devices(self):
        from repro.gpu.device import T4, V100
        from repro.runtime.placement import Placement

        rng = np.random.default_rng(41)
        layers = self._chained(rng, 4)
        reqs = [rng.standard_normal((2, 24)) for _ in range(5)]
        self._assert_executors_agree(
            layers, reqs,
            max_wave_rows=4,
            placement=Placement("layer_sharded", (V100, T4)),
        )

    def test_layer_sharded_more_devices_than_layers(self):
        from repro.gpu.device import V100
        from repro.runtime.placement import Placement

        rng = np.random.default_rng(42)
        layers = self._chained(rng, 2)  # 2 layers over 4 devices
        reqs = [rng.standard_normal((2, 24)) for _ in range(3)]
        inline_server, _ = self._assert_executors_agree(
            layers, reqs,
            placement=Placement("layer_sharded", (V100,) * 4),
        )
        # only the first two slots ever receive work
        assert set(inline_server.stats.device_gemms) == {
            "Tesla V100-SXM2#0", "Tesla V100-SXM2#1",
        }

    def test_single_device_replicated(self):
        from repro.gpu.device import V100
        from repro.runtime.placement import Placement

        rng = np.random.default_rng(43)
        layers = self._chained(rng, 2)
        reqs = [rng.standard_normal((2, 24)) for _ in range(4)]
        inline_server, _ = self._assert_executors_agree(
            layers, reqs,
            max_wave_rows=2,
            placement=Placement("replicated", (V100,)),
        )
        # one replica: every wave lands on slot 0
        assert set(inline_server.stats.device_gemms) == {"Tesla V100-SXM2#0"}

    def test_replicated_wave_round_robin_determinism(self):
        from repro.gpu.device import V100
        from repro.runtime.placement import Placement

        rng = np.random.default_rng(44)
        layers = self._chained(rng, 2)
        reqs = [rng.standard_normal((2, 24)) for _ in range(6)]
        inline_server, threaded_server = self._assert_executors_agree(
            layers, reqs,
            max_wave_rows=2,  # one wave per request -> 6 waves, 3 per slot
            placement=Placement("replicated", (V100, V100)),
        )
        for server in (inline_server, threaded_server):
            assert server.stats.device_gemms == {
                "Tesla V100-SXM2#0": 6, "Tesla V100-SXM2#1": 6,
            }

    def test_threaded_respects_worker_cap(self):
        from repro.gpu.device import V100
        from repro.runtime.placement import Placement

        rng = np.random.default_rng(45)
        layers = self._chained(rng, 4)
        reqs = [rng.standard_normal((2, 24)) for _ in range(4)]
        self._assert_executors_agree(
            layers, reqs,
            workers=1,  # folds both shards onto one worker; results identical
            placement=Placement("layer_sharded", (V100, V100)),
        )

    def test_failed_wave_leaves_tail_queued_inline(self):
        """A wave that errors mid-flush must not swallow the queue: under
        ``strict=True`` the executor pulls waves lazily, so unconsumed
        requests survive for a retry flush (inline pulls one at a time ->
        deterministic tail)."""
        from repro.runtime.server import _Pending

        rng = np.random.default_rng(47)
        layers = self._chained(rng, 1)
        server = TWModelServer(ServerConfig(granularity=8, max_wave_rows=2))
        for dense, ck, rm in layers:
            server.add_layer(dense, ck, rm)
        good_before = rng.standard_normal((2, 24))
        good_after = rng.standard_normal((2, 24))
        server.submit(good_before)
        # a poison wave: bypass submit()'s K check so tw_gemm raises
        server._pending.append(
            _Pending(rid=99, x=rng.standard_normal((2, 7)), submitted_at=0.0)
        )
        server.submit(good_after)
        with pytest.raises(ValueError):
            server.flush(strict=True)
        # the wave after the poison one was never pulled: still queued
        assert len(server._pending) == 1
        # the completed wave's work is accounted even though flush raised
        assert server.stats.batches == 1
        assert server.stats.requests == 1
        assert server.stats.gemms >= 1
        assert server.stats.wall_time_s > 0
        (req,) = server.flush(strict=True)
        solo = TWModelServer(ServerConfig(granularity=8))
        for dense, ck, rm in layers:
            solo.add_layer(dense, ck, rm)
        np.testing.assert_array_equal(req.output, solo.serve(good_after).output)

    def test_failed_wave_keeps_threaded_server_usable(self):
        from repro.runtime.server import _Pending

        rng = np.random.default_rng(48)
        layers = self._chained(rng, 1)
        server = TWModelServer(ServerConfig(
            granularity=8, max_wave_rows=2, executor="threaded",
        ))
        for dense, ck, rm in layers:
            server.add_layer(dense, ck, rm)
        server._pending.append(
            _Pending(rid=99, x=rng.standard_normal((2, 7)), submitted_at=0.0)
        )
        with pytest.raises(ValueError):
            server.flush(strict=True)
        out = server.serve(rng.standard_normal((2, 24)))
        assert out.rows == 2  # the server survives a poisoned flush

    def test_graceful_flush_isolates_poison_request(self):
        """Default flush never raises: the poison request terminates alone
        with status='failed' while its wave-mates are served bit-identical
        to a fault-free run."""
        from repro.runtime.server import _Pending

        rng = np.random.default_rng(49)
        layers = self._chained(rng, 1)
        reqs = [rng.standard_normal((2, 24)) for _ in range(3)]
        server = TWModelServer(
            ServerConfig(granularity=8, max_wave_rows=64, max_retries=1)
        )
        for dense, ck, rm in layers:
            server.add_layer(dense, ck, rm)
        server.submit(reqs[0])
        server.submit(reqs[1])
        server._pending.append(
            _Pending(rid=999, x=rng.standard_normal((2, 7)), submitted_at=0.0)
        )
        server.submit(reqs[2])
        served = server.flush()
        by_id = {s.request_id: s for s in served}
        assert len(served) == 4  # every request reached a terminal status
        assert by_id[999].status == "failed"
        assert isinstance(by_id[999].error, ValueError)
        assert server.stats.poisoned == 1
        assert server.stats.retries >= 1
        solo = TWModelServer(ServerConfig(granularity=8))
        for dense, ck, rm in layers:
            solo.add_layer(dense, ck, rm)
        for rid, x in zip(sorted(r for r in by_id if r != 999), reqs):
            assert by_id[rid].status == "ok"
            np.testing.assert_array_equal(
                by_id[rid].output, solo.serve(x).output
            )

    @pytest.mark.parametrize("executor", ["inline", "threaded"])
    def test_mid_stream_failure_matches_fault_free_inline(self, executor):
        """ISSUE 6 satellite: mid-stream step failure across executors ×
        all placements — surviving outputs stay bit-identical to a
        fault-free inline run and no request is silently lost."""
        from repro.gpu.device import T4, V100
        from repro.runtime.placement import Placement
        from repro.runtime.server import _Pending

        rng = np.random.default_rng(50)
        layers = self._chained(rng, 2)
        reqs = [rng.standard_normal((2, 24)) for _ in range(4)]
        placements = [
            None,
            Placement("replicated", (V100, T4)),
            Placement("layer_sharded", (V100, T4)),
        ]
        # fault-free inline oracle
        oracle = TWModelServer(ServerConfig(granularity=8))
        for dense, ck, rm in layers:
            oracle.add_layer(dense, ck, rm)
        want = {}
        for x in reqs:
            req = oracle.serve(x)
            want[req.request_id] = req.output
        for placement in placements:
            server = TWModelServer(ServerConfig(
                granularity=8, max_wave_rows=2, executor=executor,
                placement=placement, max_retries=1,
            ))
            for dense, ck, rm in layers:
                server.add_layer(dense, ck, rm)
            rids = [server.submit(x) for x in reqs[:2]]
            # poison injected mid-stream, then more good requests
            server._pending.append(
                _Pending(rid=777, x=rng.standard_normal((2, 7)), submitted_at=0.0)
            )
            rids += [server.submit(x) for x in reqs[2:]]
            served = server.flush()
            by_id = {s.request_id: s for s in served}
            assert set(by_id) == set(rids) | {777}  # none silently lost
            assert by_id[777].status == "failed"
            for rid, want_rid in zip(rids, sorted(want)):
                assert by_id[rid].status == "ok"
                np.testing.assert_array_equal(
                    by_id[rid].output, want[want_rid]
                )

    def test_mid_stream_submissions_keep_round_robin_phase(self):
        """Waves keep their global index across flushes: a threaded server
        flushed twice must place work exactly like an inline one."""
        from repro.gpu.device import V100
        from repro.runtime.placement import Placement

        rng = np.random.default_rng(46)
        layers = self._chained(rng, 2)
        reqs = [rng.standard_normal((2, 24)) for _ in range(5)]

        outs = {}
        for executor in ("inline", "threaded"):
            server = TWModelServer(ServerConfig(
                granularity=8, executor=executor, max_wave_rows=2,
                placement=Placement("replicated", (V100, V100)),
            ))
            for dense, ck, rm in layers:
                server.add_layer(dense, ck, rm)
            served = []
            for i, r in enumerate(reqs):
                server.submit(r)
                if i % 2 == 1:
                    served.extend(server.flush())
            served.extend(server.flush())
            outs[executor] = (served, dict(server.stats.device_gemms))
        inline_served, inline_gemms = outs["inline"]
        threaded_served, threaded_gemms = outs["threaded"]
        assert threaded_gemms == inline_gemms
        for got, want in zip(threaded_served, inline_served):
            np.testing.assert_array_equal(got.output, want.output)
