"""Tests for the energy extension (§VIII's energy-reduction claim)."""

import pytest

from repro.gpu import dense_gemm_tc_cost, tw_gemm_cost
from repro.gpu.costmodel import CostBreakdown, PerfCounters
from repro.gpu.energy import V100_ENERGY, EnergyModel
from repro.gpu.tw_kernel import TWShapeStats

M, K, N, G = 8192, 768, 768, 128


class TestEnergyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(pj_per_flop=-1)

    def test_components_add_up(self):
        cost = CostBreakdown(
            compute_us=100.0,
            counters=PerfCounters(flops=1e9, bytes_loaded=1e6, bytes_stored=1e6),
        )
        est = V100_ENERGY.estimate(cost)
        assert est.total_j == pytest.approx(
            est.compute_j + est.memory_j + est.static_j
        )
        assert est.compute_j == pytest.approx(1e9 * 0.2e-12)
        assert est.memory_j == pytest.approx(2e6 * 20e-12)
        assert est.static_j == pytest.approx(80 * 100e-6)

    def test_zero_cost_zero_energy(self):
        est = V100_ENERGY.estimate(CostBreakdown())
        assert est.total_j == 0.0

    def test_savings_vs(self):
        big = V100_ENERGY.estimate(
            CostBreakdown(compute_us=100, counters=PerfCounters(flops=1e12))
        )
        small = V100_ENERGY.estimate(
            CostBreakdown(compute_us=50, counters=PerfCounters(flops=5e11))
        )
        assert small.savings_vs(big) == pytest.approx(0.5, abs=0.01)

    def test_savings_zero_baseline_rejected(self):
        est = V100_ENERGY.estimate(CostBreakdown())
        with pytest.raises(ValueError):
            est.savings_vs(est)


class TestTWSavesEnergy:
    """The paper's §VIII claim: removing redundant computation saves energy."""

    def test_tw_saves_energy_at_75(self):
        dense = V100_ENERGY.estimate(dense_gemm_tc_cost(M, N, K))
        shape = TWShapeStats.synthetic(K, N, G, 0.75, seed=1)
        tw = V100_ENERGY.estimate(tw_gemm_cost(M, shape))
        assert tw.savings_vs(dense) > 0.3  # substantial savings

    def test_savings_grow_with_sparsity(self):
        dense = V100_ENERGY.estimate(dense_gemm_tc_cost(M, N, K))
        savings = []
        for s in (0.25, 0.5, 0.75, 0.95):
            shape = TWShapeStats.synthetic(K, N, G, s, seed=1)
            savings.append(V100_ENERGY.estimate(tw_gemm_cost(M, shape)).savings_vs(dense))
        assert all(b > a for a, b in zip(savings, savings[1:]))

    def test_mask_overhead_costs_energy_at_zero_sparsity(self):
        """At 0% sparsity, TW *spends* energy (extra traffic + longer busy
        time) — the flip side of the Fig. 11 overhead."""
        dense = V100_ENERGY.estimate(dense_gemm_tc_cost(M, N, K))
        shape = TWShapeStats.synthetic(K, N, G, 0.0, seed=1)
        tw = V100_ENERGY.estimate(tw_gemm_cost(M, shape))
        assert tw.savings_vs(dense) < 0.0
