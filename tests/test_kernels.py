"""Tests for the functional kernels: every execution path must agree with
dense GEMM on the mask-expanded weights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tiling import TileConfig
from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.formats import BSRMatrix, CSCMatrix, CSRMatrix, TiledTWMatrix
from repro.kernels import (
    batched_gemm,
    bsr_left_gemm,
    csc_left_spmm,
    csr_spmm,
    gemm,
    tiled_gemm,
    tw_batched_gemm,
    tw_gemm,
)
from repro.kernels.masked import masked_gemm
from repro.kernels.spmm import spmm_rowwise_reference


def make_tw(rng, k=32, n=48, g=8, sparsity=0.6):
    w = rng.standard_normal((k, n))
    step = tw_prune_step([np.abs(w)], sparsity, TWPruneConfig(granularity=g))
    col_keep = step.col_keeps[0]
    return w, TiledTWMatrix.from_masks(w, g, col_keep, step.row_masks[0])


class TestDense:
    def test_gemm_reference(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((5, 7)), rng.standard_normal((7, 3))
        np.testing.assert_allclose(gemm(a, b), a @ b)

    def test_gemm_alpha_beta(self):
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((4, 4)), rng.standard_normal((4, 4))
        c = rng.standard_normal((4, 4))
        np.testing.assert_allclose(
            gemm(a, b, alpha=2.0, beta=0.5, c=c), 2 * (a @ b) + 0.5 * c
        )

    def test_gemm_beta_requires_c(self):
        with pytest.raises(ValueError):
            gemm(np.eye(2), np.eye(2), beta=1.0)

    def test_gemm_shape_errors(self):
        with pytest.raises(ValueError):
            gemm(np.ones((2, 3)), np.ones((4, 2)))
        with pytest.raises(ValueError):
            gemm(np.ones(3), np.ones((3, 2)))

    def test_tiled_gemm_matches_reference(self):
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal((37, 53)), rng.standard_normal((53, 29))
        cfg = TileConfig(ty=16, g=8, tz=8, warp_m=8, warp_n=8)
        np.testing.assert_allclose(tiled_gemm(a, b, cfg), a @ b, atol=1e-10)

    def test_tiled_gemm_default_config(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal((8, 8)), rng.standard_normal((8, 8))
        np.testing.assert_allclose(tiled_gemm(a, b), a @ b, atol=1e-10)

    def test_tile_config_validation(self):
        with pytest.raises(ValueError):
            TileConfig(ty=0)
        with pytest.raises(ValueError):
            TileConfig(ty=16, warp_m=32)

    def test_tile_config_grid(self):
        cfg = TileConfig(ty=128, g=128)
        assert cfg.grid(256, 384) == (2, 3)
        assert cfg.n_blocks(300, 129) == 3 * 2
        assert cfg.mma_steps(65) == 3  # tz=32


class TestTWGemm:
    def test_matches_dense_on_masked_weights(self):
        rng = np.random.default_rng(4)
        w, tw = make_tw(rng)
        a = rng.standard_normal((11, 32))
        expected = a @ tw.to_dense()
        np.testing.assert_allclose(tw_gemm(a, tw), expected, atol=1e-10)

    def test_pruned_columns_are_exact_zero(self):
        rng = np.random.default_rng(5)
        w, tw = make_tw(rng, sparsity=0.8)
        a = rng.standard_normal((6, 32))
        out = tw_gemm(a, tw)
        pruned_cols = ~tw.element_mask().any(axis=0)
        assert np.all(out[:, pruned_cols] == 0.0)

    def test_batched_matches_unbatched(self):
        rng = np.random.default_rng(6)
        w, tw = make_tw(rng, k=40, n=64, g=8, sparsity=0.7)
        a = rng.standard_normal((9, 40))
        np.testing.assert_allclose(tw_batched_gemm(a, tw), tw_gemm(a, tw), atol=1e-10)

    def test_zero_sparsity_equals_dense(self):
        rng = np.random.default_rng(7)
        w = rng.standard_normal((16, 24))
        tw = TiledTWMatrix.from_masks(
            w, 8, np.ones(24, dtype=bool), [np.ones(16, dtype=bool)] * 3
        )
        a = rng.standard_normal((5, 16))
        np.testing.assert_allclose(tw_gemm(a, tw), a @ w, atol=1e-10)

    def test_fully_pruned_gives_zeros(self):
        w = np.ones((8, 8))
        tw = TiledTWMatrix.from_masks(w, 4, np.zeros(8, dtype=bool), [])
        out = tw_gemm(np.ones((3, 8)), tw)
        np.testing.assert_array_equal(out, np.zeros((3, 8)))

    def test_masked_gemm_accumulates(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((4, 6))
        mask_k = np.array([1, 0, 1, 1, 0, 1], dtype=bool)
        cols = np.array([1, 3])
        b_compact = rng.standard_normal((4, 2))
        out = np.ones((4, 5))
        masked_gemm(a, b_compact, mask_k, cols, out)
        expected = np.ones((4, 5))
        expected[:, [1, 3]] += a[:, np.flatnonzero(mask_k)] @ b_compact
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_masked_gemm_validation(self):
        a = np.ones((2, 4))
        with pytest.raises(ValueError):
            masked_gemm(a, np.ones((2, 1)), np.ones(3, dtype=bool), [0], np.zeros((2, 4)))
        with pytest.raises(ValueError):
            masked_gemm(a, np.ones((3, 1)), np.ones(4, dtype=bool), [0], np.zeros((2, 4)))

    def test_k_mismatch_raises(self):
        rng = np.random.default_rng(9)
        _, tw = make_tw(rng)
        with pytest.raises(ValueError):
            tw_gemm(rng.standard_normal((3, 31)), tw)

    def test_batched_gemm_shape_checks(self):
        with pytest.raises(ValueError):
            batched_gemm(np.ones((2, 3, 4)), np.ones((3, 4, 5)))
        with pytest.raises(ValueError):
            batched_gemm(np.ones((2, 3, 4)), np.ones((2, 5, 6)))
        with pytest.raises(ValueError):
            batched_gemm(np.ones((2, 3)), np.ones((2, 3, 4)))

    def test_batched_gemm_values(self):
        rng = np.random.default_rng(10)
        a = rng.standard_normal((3, 4, 5))
        b = rng.standard_normal((3, 5, 2))
        out = batched_gemm(a, b)
        for i in range(3):
            np.testing.assert_allclose(out[i], a[i] @ b[i], atol=1e-12)


class TestSpmm:
    def test_csr_spmm_matches_dense(self):
        rng = np.random.default_rng(11)
        w = rng.standard_normal((16, 12)) * (rng.random((16, 12)) < 0.3)
        x = rng.standard_normal((12, 5))
        np.testing.assert_allclose(csr_spmm(CSRMatrix.from_dense(w), x), w @ x, atol=1e-10)

    def test_csc_left_spmm_matches_dense(self):
        rng = np.random.default_rng(12)
        w = rng.standard_normal((12, 16)) * (rng.random((12, 16)) < 0.3)
        x = rng.standard_normal((5, 12))
        np.testing.assert_allclose(csc_left_spmm(x, CSCMatrix.from_dense(w)), x @ w, atol=1e-10)

    def test_rowwise_reference_agrees(self):
        rng = np.random.default_rng(13)
        w = rng.standard_normal((10, 8)) * (rng.random((10, 8)) < 0.4)
        x = rng.standard_normal((8, 3))
        csr = CSRMatrix.from_dense(w)
        np.testing.assert_allclose(
            spmm_rowwise_reference(csr, x), csr_spmm(csr, x), atol=1e-10
        )

    def test_rowwise_reference_shape_check(self):
        with pytest.raises(ValueError):
            spmm_rowwise_reference(CSRMatrix.from_dense(np.eye(3)), np.ones((4, 2)))


class TestBlockSparse:
    def test_bsr_gemm_matches_dense(self):
        rng = np.random.default_rng(14)
        keep = rng.random((4, 6)) < 0.5
        w = (rng.standard_normal((4, 6, 8, 8)) * keep[:, :, None, None]).transpose(
            0, 2, 1, 3
        ).reshape(32, 48)
        x = rng.standard_normal((7, 32))
        np.testing.assert_allclose(
            bsr_left_gemm(x, BSRMatrix.from_dense(w, (8, 8))), x @ w, atol=1e-10
        )


@given(
    st.integers(1, 16),
    st.integers(1, 24),
    st.integers(1, 24),
    st.sampled_from([2, 4, 8]),
    st.floats(0.0, 0.9),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_tw_gemm_equivalence_property(m, k, n, g, sparsity, seed):
    """The central correctness property: TW execution ≡ dense on masked W."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((k, n))
    step = tw_prune_step(
        [np.abs(w)], sparsity,
        TWPruneConfig(granularity=g, min_keep_cols=0, min_keep_rows=0),
    )
    tw = TiledTWMatrix.from_masks(w, g, step.col_keeps[0], step.row_masks[0])
    a = rng.standard_normal((m, k))
    expected = a @ (w * step.masks[0])
    np.testing.assert_allclose(tw_gemm(a, tw), expected, atol=1e-9)
    np.testing.assert_allclose(tw_batched_gemm(a, tw), expected, atol=1e-9)


@given(
    st.integers(1, 12), st.integers(1, 12), st.integers(1, 12),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_tiled_gemm_property(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a, b = rng.standard_normal((m, k)), rng.standard_normal((k, n))
    cfg = TileConfig(ty=4, g=4, tz=4, warp_m=2, warp_n=2)
    np.testing.assert_allclose(tiled_gemm(a, b, cfg), a @ b, atol=1e-9)
