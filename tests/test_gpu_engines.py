"""Tests for the five pricing engines (dense TC/CUDA, cuSparse, BlockSparse, TW)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.formats import BSRMatrix, CSRMatrix, TiledTWMatrix
from repro.gpu import (
    TWExecutionOptions,
    V100,
    bsr_gemm_cost,
    csr_spmm_cost,
    dense_gemm_cuda_cost,
    dense_gemm_tc_cost,
    tw_gemm_cost,
)
from repro.gpu.blocksparse import bsr_gemm_cost_from_matrix
from repro.gpu.counters import normalized_counters
from repro.gpu.cusparse import csr_spmm_cost_from_matrix
from repro.gpu.tw_kernel import TWShapeStats

M, K, N, G = 8192, 768, 768, 128


class TestDenseEngines:
    def test_tc_faster_than_cuda(self):
        """Tensor cores are several times faster for FP16 GEMM (§VII-A
        quotes an ~8× peak ratio)."""
        tc = dense_gemm_tc_cost(M, N, K)
        cu = dense_gemm_cuda_cost(M, N, K)
        assert 3.0 < cu.total_us / tc.total_us < 10.0

    def test_monotone_in_size(self):
        small = dense_gemm_tc_cost(1024, N, K)
        large = dense_gemm_tc_cost(8192, N, K)
        assert large.total_us > small.total_us

    def test_zero_extent(self):
        assert dense_gemm_tc_cost(0, N, K).total_us == 0.0
        assert dense_gemm_cuda_cost(M, 0, K).kernels == 0

    def test_negative_extent_raises(self):
        with pytest.raises(ValueError):
            dense_gemm_tc_cost(-1, N, K)
        with pytest.raises(ValueError):
            dense_gemm_cuda_cost(M, -2, K)

    def test_counters_populated(self):
        bd = dense_gemm_tc_cost(M, N, K)
        assert bd.counters.flops == 2.0 * M * N * K
        assert bd.counters.bytes_loaded >= (M * K + K * N) * 2
        assert bd.counters.bytes_stored == M * N * 2

    def test_flops_efficiency_reasonable(self):
        """Dense TC GEMM should land between 20% and 75% of peak for
        BERT-sized shapes (public cuBLAS range)."""
        bd = dense_gemm_tc_cost(M, N, K)
        assert 0.20 < bd.flops_efficiency(V100.tensor_core_flops) < 0.75


class TestCuSparse:
    def test_nnz_scaling(self):
        lo = csr_spmm_cost(M, K, N, nnz=K * N // 10)
        hi = csr_spmm_cost(M, K, N, nnz=K * N // 2)
        assert hi.total_us > lo.total_us

    def test_from_matrix_agrees(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((64, 48)) * (rng.random((64, 48)) < 0.2)
        csr = CSRMatrix.from_dense(w)
        a = csr_spmm_cost(16, 64, 48, csr.nnz)
        b = csr_spmm_cost_from_matrix(16, csr)
        assert a.total_us == pytest.approx(b.total_us)

    def test_validation(self):
        with pytest.raises(ValueError):
            csr_spmm_cost(M, K, N, nnz=K * N + 1)
        with pytest.raises(ValueError):
            csr_spmm_cost(-1, K, N, nnz=0)

    def test_zero_work(self):
        assert csr_spmm_cost(0, K, N, 100).kernels == 0


class TestBlockSparse:
    def test_block_scaling(self):
        lo = bsr_gemm_cost(M, K, N, 32, n_kept_blocks=100)
        hi = bsr_gemm_cost(M, K, N, 32, n_kept_blocks=500)
        assert hi.total_us > lo.total_us

    def test_from_matrix_agrees(self):
        rng = np.random.default_rng(1)
        dense = np.zeros((64, 64))
        dense[:32, :32] = rng.standard_normal((32, 32))
        bsr = BSRMatrix.from_dense(dense, (32, 32))
        a = bsr_gemm_cost(128, 64, 64, 32, bsr.n_blocks)
        b = bsr_gemm_cost_from_matrix(128, bsr)
        assert a.total_us == pytest.approx(b.total_us)

    def test_rectangular_blocks_rejected(self):
        bsr = BSRMatrix.from_dense(np.ones((4, 6)), (2, 3))
        with pytest.raises(ValueError):
            bsr_gemm_cost_from_matrix(8, bsr)

    def test_validation(self):
        with pytest.raises(ValueError):
            bsr_gemm_cost(M, K, N, 0, 1)
        with pytest.raises(ValueError):
            bsr_gemm_cost(M, K, N, 32, n_kept_blocks=10**9)


class TestTWShapeStats:
    def test_from_matrix(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((64, 96))
        step = tw_prune_step([np.abs(w)], 0.5, TWPruneConfig(granularity=16))
        tw = TiledTWMatrix.from_masks(w, 16, step.col_keeps[0], step.row_masks[0])
        stats = TWShapeStats.from_matrix(tw)
        assert stats.sparsity == pytest.approx(tw.sparsity)
        assert stats.n_tiles == tw.n_tiles

    def test_synthetic_hits_sparsity(self):
        for s in (0.0, 0.3, 0.6, 0.9):
            stats = TWShapeStats.synthetic(K, N, G, s, seed=0)
            assert stats.sparsity == pytest.approx(s, abs=0.05)

    def test_synthetic_full_sparsity(self):
        stats = TWShapeStats.synthetic(K, N, G, 1.0)
        assert stats.n_tiles == 0

    def test_synthetic_deterministic(self):
        a = TWShapeStats.synthetic(K, N, G, 0.5, seed=7)
        b = TWShapeStats.synthetic(K, N, G, 0.5, seed=7)
        assert a == b

    def test_width_groups(self):
        stats = TWShapeStats.synthetic(K, 768, 128, 0.5, seed=0)
        groups = stats.width_groups()
        assert sum(len(v) for v in groups.values()) == stats.n_tiles

    def test_validation(self):
        with pytest.raises(ValueError):
            TWShapeStats(k=-1, n=4, granularity=2)
        with pytest.raises(ValueError):
            TWShapeStats(k=4, n=4, granularity=2, tiles=((5, 1),))
        with pytest.raises(ValueError):
            TWShapeStats.synthetic(K, N, G, 1.5)


class TestTWEngine:
    def test_latency_decreases_with_sparsity(self):
        times = []
        for s in (0.0, 0.25, 0.5, 0.75, 0.95):
            shape = TWShapeStats.synthetic(K, N, G, s, seed=1)
            times.append(tw_gemm_cost(M, shape).total_us)
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_zero_work(self):
        shape = TWShapeStats.synthetic(K, N, G, 1.0)
        assert tw_gemm_cost(M, shape).total_us == 0.0
        assert tw_gemm_cost(0, TWShapeStats.synthetic(K, N, G, 0.5)).kernels == 0

    def test_accepts_real_matrix(self):
        rng = np.random.default_rng(3)
        w = rng.standard_normal((256, 256))
        step = tw_prune_step([np.abs(w)], 0.5, TWPruneConfig(granularity=64))
        tw = TiledTWMatrix.from_masks(w, 64, step.col_keeps[0], step.row_masks[0])
        bd = tw_gemm_cost(2048, tw)
        assert bd.total_us > 0

    def test_transpose_optimization_helps(self):
        shape = TWShapeStats.synthetic(K, N, G, 0.75, seed=1)
        with_t = tw_gemm_cost(M, shape, options=TWExecutionOptions(transpose=True))
        without = tw_gemm_cost(M, shape, options=TWExecutionOptions(transpose=False))
        assert without.total_us > with_t.total_us

    def test_batching_reduces_kernels(self):
        shape = TWShapeStats.synthetic(K, N, G, 0.6, seed=1)
        batched = tw_gemm_cost(M, shape, options=TWExecutionOptions(batching=True))
        single = tw_gemm_cost(M, shape, options=TWExecutionOptions(batching=False))
        assert batched.kernels <= single.kernels

    def test_streams_help_unbatched(self):
        """Fig. 7 step 4: naive sequential kernels lose to streams."""
        shape = TWShapeStats.synthetic(K, N, G, 0.6, seed=1)
        naive = tw_gemm_cost(
            M, shape, options=TWExecutionOptions(batching=False, streams=False)
        )
        streamed = tw_gemm_cost(
            M, shape, options=TWExecutionOptions(batching=False, streams=True)
        )
        assert streamed.total_us <= naive.total_us

    def test_mask_overhead_visible_in_counters(self):
        """At zero sparsity TW moves more bytes than dense (Fig. 11)."""
        shape = TWShapeStats.synthetic(K, N, G, 0.0, seed=1)
        tw = tw_gemm_cost(M, shape)
        dense = dense_gemm_tc_cost(M, N, K)
        assert tw.counters.load_transactions > dense.counters.load_transactions

    def test_negative_m_raises(self):
        with pytest.raises(ValueError):
            tw_gemm_cost(-1, TWShapeStats.synthetic(K, N, G, 0.5))

    def test_options_validation(self):
        with pytest.raises(ValueError):
            TWExecutionOptions(ty=0)
        with pytest.raises(ValueError):
            TWExecutionOptions(dtype_bytes=0)


class TestCounters:
    def test_normalized_row(self):
        dense = dense_gemm_tc_cost(M, N, K)
        shape = TWShapeStats.synthetic(K, N, G, 0.75, seed=1)
        tw = tw_gemm_cost(M, shape)
        row = normalized_counters(tw, dense, label="TW-75")
        assert row.speedup == pytest.approx(dense.total_us / tw.total_us)
        assert row.label == "TW-75"
        assert 0 < row.flops_efficiency < 1
        d = row.as_dict()
        assert d["label"] == "TW-75"

    def test_zero_dense_raises(self):
        from repro.gpu.costmodel import CostBreakdown

        with pytest.raises(ValueError):
            normalized_counters(CostBreakdown(), CostBreakdown())


@given(st.floats(0.0, 0.99), st.sampled_from([32, 64, 128]), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_tw_cost_positive_property(sparsity, g, seed):
    shape = TWShapeStats.synthetic(K, N, g, sparsity, seed=seed)
    bd = tw_gemm_cost(M, shape)
    assert bd.total_us >= 0
    assert bd.counters.flops == 2.0 * M * shape.kept_elements
