"""Wall-clock smoke test for the vectorized hot paths.

Runs ``benchmarks/bench_hotpaths.py --quick`` in a subprocess and asserts
the pruning step at BERT-base scale (12×(768×3072) matrices) stays under a
generous ceiling, so an accidental reintroduction of per-unit Python loops
fails fast.  The ceiling is ~20× above the typical vectorised time — this
is a loop-regression tripwire, not a precise perf gate (the JSON written by
the full benchmark is the trajectory record).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: generous: the vectorised prune step runs in < 0.15 s per config here;
#: the seed's scalar loops took ~1.1 s at the quick sweep's (0.25, 32) point
PRUNE_CEILING_MS = 3000.0

#: the warm batched TW GEMM at the quick config (m=128, G=8, s=0.5) runs in
#: ~8 ms; the ceiling only trips if the per-tile Python loop sneaks back
TW_GEMM_CEILING_MS = 200.0


def _run_quick_bench(tmp_path):
    out = tmp_path / "bench.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / "bench_hotpaths.py"),
         "--quick", "--out", str(out)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, f"bench failed:\n{proc.stdout}\n{proc.stderr}"
    return json.loads(out.read_text())


@pytest.mark.perf_smoke
def test_quick_bench_under_ceilings(tmp_path):
    record = _run_quick_bench(tmp_path)
    prune = record["prune_step"]
    assert prune["scale"] == "12x(768x3072)"
    assert prune["configs"], "quick sweep produced no prune configs"
    for row in prune["configs"]:
        assert row["vectorized_ms"] < PRUNE_CEILING_MS, (
            f"prune step at s={row['sparsity']} G={row['granularity']} took "
            f"{row['vectorized_ms']}ms (ceiling {PRUNE_CEILING_MS}ms) — did a "
            "scalar loop sneak back into the hot path?"
        )
        # the vectorised path must also actually beat the scalar reference
        assert row["vectorized_ms"] < row["reference_ms"]

    # batched TW GEMM tripwire: the width-grouped executor must stay
    # batched (under the ceiling) and ahead of the per-tile oracle
    for row in record["tw_gemm"]["configs"]:
        assert row["batched_ms"] < TW_GEMM_CEILING_MS, (
            f"batched tw_gemm at m={row['m']} G={row['granularity']} took "
            f"{row['batched_ms']}ms (ceiling {TW_GEMM_CEILING_MS}ms) — did "
            "the per-tile loop sneak back into the batched path?"
        )
        assert row["batched_ms"] < row["reference_ms"]

    # serving caches must amortise: warm requests skip format/plan builds
    server = record["server"]
    assert server["warm_request_ms"] < server["cold_request_ms"]
