"""Cross-module integration tests and failure injection.

These exercise whole pipelines (prune → compact → execute → price →
serialize) and adversarial inputs (NaN weights, corrupt masks, degenerate
shapes) that unit tests do not reach.
"""

import numpy as np
import pytest

from repro.core import (
    ArrayModel,
    GradualSchedule,
    ImportanceConfig,
    TWPruneConfig,
    TWPruner,
)
from repro.core.masks import validate_tw_mask
from repro.core.tile_sparsity import tw_prune_step
from repro.formats import TiledTWMatrix
from repro.formats.io import load_tiled, save_tiled
from repro.gpu import dense_gemm_tc_cost, tw_gemm_cost
from repro.kernels import tw_batched_gemm, tw_gemm
from repro.nn.layers import Linear, Sequential
from repro.nn.tensor import Tensor


class TestFullMatrixPipeline:
    """prune → compact → execute → price → serialize → reload → execute."""

    def test_end_to_end(self, tmp_path):
        rng = np.random.default_rng(0)
        # paper-scale geometry: small granularities price as slowdowns
        # (Fig. 9b), so the pricing assertion needs G=128 at BERT dims
        k, n, g = 768, 768, 128
        weight = rng.standard_normal((k, n))

        model = ArrayModel([weight.copy()])
        pruner = TWPruner(
            TWPruneConfig(granularity=g),
            GradualSchedule(target=0.7, n_stages=3),
            ImportanceConfig(method="magnitude"),
        )
        result = pruner.prune(model)
        validate_tw_mask(result.masks[0], g)

        pruned_weight = model.weight_matrices()[0]
        tw = TiledTWMatrix.from_masks(
            pruned_weight, g, result.step.col_keeps[0], result.step.row_masks[0]
        )
        a = rng.standard_normal((8, k))
        expected = a @ pruned_weight
        np.testing.assert_allclose(tw_gemm(a, tw), expected, atol=1e-10)

        # price: pruned must beat dense at 70%
        dense_us = dense_gemm_tc_cost(8192, n, k).total_us
        tw_us = tw_gemm_cost(8192, tw).total_us
        assert tw_us < dense_us

        # serialize/reload preserves execution semantics
        save_tiled(tw, tmp_path / "w.npz")
        reloaded = load_tiled(tmp_path / "w.npz")
        np.testing.assert_allclose(tw_gemm(a, reloaded), expected, atol=1e-10)
        np.testing.assert_allclose(tw_batched_gemm(a, reloaded), expected, atol=1e-10)


class TestFailureInjection:
    def test_nan_weights_do_not_crash_pruner(self):
        """NaN scores must either raise or produce a valid mask — never
        silently emit NaN-sized structures."""
        w = np.ones((16, 16))
        w[3, 3] = np.nan
        step = tw_prune_step([np.abs(w)], 0.5, TWPruneConfig(granularity=4))
        assert step.masks[0].dtype == bool
        assert 0.0 <= step.achieved_sparsity <= 1.0

    def test_inf_scores_survive(self):
        s = np.ones((8, 8))
        s[0, :] = np.inf  # apriori-style protected scores
        step = tw_prune_step([s], 0.5, TWPruneConfig(granularity=4))
        assert step.masks[0][0].any()  # the protected row's columns survive

    def test_corrupt_tile_rejected(self):
        from repro.formats.tiled import TWTile

        with pytest.raises(ValueError):
            TWTile(
                col_indices=np.array([3, 1], dtype=np.int64),  # unsorted
                mask_k=np.ones(4, dtype=bool),
                data=np.zeros((4, 2)),
            )

    def test_mask_weight_shape_mismatch(self):
        model = ArrayModel([np.ones((4, 4))])
        with pytest.raises(ValueError):
            model.apply_masks([np.ones((4, 5), dtype=bool)])

    def test_degenerate_single_column_matrix(self):
        step = tw_prune_step(
            [np.abs(np.random.default_rng(0).standard_normal((32, 1)))],
            0.5,
            TWPruneConfig(granularity=8),
        )
        validate_tw_mask(step.masks[0], 8)

    def test_degenerate_single_row_matrix(self):
        step = tw_prune_step(
            [np.abs(np.random.default_rng(0).standard_normal((1, 32)))],
            0.5,
            TWPruneConfig(granularity=8),
        )
        assert step.masks[0].shape == (1, 32)

    def test_granularity_larger_than_matrix(self):
        step = tw_prune_step(
            [np.ones((8, 8))], 0.5, TWPruneConfig(granularity=64)
        )
        validate_tw_mask(step.masks[0], 64)

    def test_tw_gemm_on_empty_activation_batch(self):
        rng = np.random.default_rng(1)
        w = rng.standard_normal((8, 8))
        tw = TiledTWMatrix.from_masks(
            w, 4, np.ones(8, dtype=bool), [np.ones(8, dtype=bool)] * 2
        )
        out = tw_gemm(np.zeros((0, 8)), tw)
        assert out.shape == (0, 8)

    def test_state_arrays_shape_mismatch_rejected(self):
        net = Sequential(Linear(4, 4), Linear(4, 2))
        state = net.state_arrays()
        with pytest.raises(ValueError):
            net.load_state_arrays(state[:-1])
        bad = [np.zeros((5, 5))] + state[1:]
        with pytest.raises(ValueError):
            net.load_state_arrays(bad)

    def test_state_roundtrip_preserves_forward(self):
        rng = np.random.default_rng(2)
        net = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        x = Tensor(rng.standard_normal((3, 4)))
        before = net(x).data.copy()
        state = net.state_arrays()
        for p in net.parameters():
            p.data[...] = 0.0
        net.load_state_arrays(state)
        np.testing.assert_array_equal(net(x).data, before)


class TestCrossEngineConsistency:
    """The same TW geometry must price consistently across engines."""

    def test_sparser_is_never_slower_anywhere(self):
        from repro.gpu.systolic import tw_gemm_systolic_cost
        from repro.gpu.tw_kernel import TWExecutionOptions, TWShapeStats

        lo = TWShapeStats.synthetic(768, 768, 128, 0.4, seed=3)
        hi = TWShapeStats.synthetic(768, 768, 128, 0.9, seed=3)
        for price in (
            lambda s: tw_gemm_cost(8192, s).total_us,
            lambda s: tw_gemm_cost(
                8192, s, options=TWExecutionOptions(engine="cuda_core")
            ).total_us,
            lambda s: tw_gemm_systolic_cost(8192, s).total_us,
        ):
            assert price(hi) <= price(lo)

    def test_flops_counters_engine_independent(self):
        from repro.gpu.tw_kernel import TWExecutionOptions, TWShapeStats

        shape = TWShapeStats.synthetic(768, 768, 128, 0.6, seed=4)
        tc = tw_gemm_cost(1024, shape)
        cu = tw_gemm_cost(
            1024, shape, options=TWExecutionOptions(engine="cuda_core")
        )
        assert tc.counters.flops == cu.counters.flops
