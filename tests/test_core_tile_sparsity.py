"""Tests for the global TW pruning step, apriori tuning, and the TEW overlay."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apriori import AprioriConfig, apriori_adjust, unit_ew_sparsity
from repro.core.masks import global_topk_keep_masks, overall_sparsity, validate_tw_mask
from repro.core.tew import TEWConfig, tew_overlay
from repro.core.tile_sparsity import (
    TWPruneConfig,
    split_stage_sparsity,
    tw_prune_step,
)


def rand_scores(rng, shapes):
    return [np.abs(rng.standard_normal(s)) for s in shapes]


class TestSplit:
    def test_multiplies_to_keep(self):
        for s in (0.0, 0.3, 0.75, 0.95):
            for split in (0.0, 0.3, 0.5, 1.0):
                sc, sr = split_stage_sparsity(s, split)
                assert (1 - sc) * (1 - sr) == pytest.approx(1 - s)

    def test_split_extremes(self):
        sc, sr = split_stage_sparsity(0.5, 0.0)
        assert sc == pytest.approx(0.0)  # no column pruning
        sc, sr = split_stage_sparsity(0.5, 1.0)
        assert sr == pytest.approx(0.0)  # no row pruning

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            split_stage_sparsity(1.0, 0.5)


class TestTWPruneStep:
    def test_achieves_target_sparsity(self):
        rng = np.random.default_rng(0)
        scores = rand_scores(rng, [(64, 96), (48, 128)])
        cfg = TWPruneConfig(granularity=16)
        for target in (0.25, 0.5, 0.75, 0.9):
            res = tw_prune_step(scores, target, cfg)
            assert res.achieved_sparsity == pytest.approx(target, abs=0.03)

    def test_masks_are_tw_shaped(self):
        rng = np.random.default_rng(1)
        scores = rand_scores(rng, [(32, 64)])
        res = tw_prune_step(scores, 0.6, TWPruneConfig(granularity=8))
        validate_tw_mask(res.masks[0], 8)

    def test_zero_sparsity_keeps_everything(self):
        rng = np.random.default_rng(2)
        scores = rand_scores(rng, [(16, 16)])
        res = tw_prune_step(scores, 0.0, TWPruneConfig(granularity=4))
        assert res.masks[0].all()
        assert res.achieved_sparsity == 0.0

    def test_high_scores_survive(self):
        """Columns with overwhelming scores must never be pruned."""
        rng = np.random.default_rng(3)
        s = np.abs(rng.standard_normal((16, 32))) * 0.01
        s[:, 5] = 100.0  # hugely important column
        res = tw_prune_step([s], 0.5, TWPruneConfig(granularity=8))
        assert res.col_keeps[0][5]

    def test_global_ranking_prefers_high_score_layer(self):
        """A layer with much higher scores should lose fewer columns."""
        rng = np.random.default_rng(4)
        lo = np.abs(rng.standard_normal((32, 64)))
        hi = lo * 50.0
        res = tw_prune_step([hi, lo.copy()], 0.5, TWPruneConfig(granularity=8))
        sp = res.per_matrix_sparsity()
        assert sp[0] < sp[1]

    def test_min_keep_cols_enforced(self):
        rng = np.random.default_rng(5)
        lo = np.abs(rng.standard_normal((8, 16))) * 1e-6  # would be wiped out
        hi = np.abs(rng.standard_normal((8, 16))) + 10.0
        cfg = TWPruneConfig(granularity=4, min_keep_cols=2)
        res = tw_prune_step([hi, lo], 0.9, cfg)
        assert res.col_keeps[1].sum() >= 2

    def test_min_keep_rows_enforced(self):
        rng = np.random.default_rng(6)
        scores = rand_scores(rng, [(16, 16)])
        cfg = TWPruneConfig(granularity=4, min_keep_rows=1, col_row_split=0.0)
        res = tw_prune_step(scores, 0.9, cfg)
        for rm in res.row_masks[0]:
            assert rm.sum() >= 1

    def test_pure_column_pruning(self):
        rng = np.random.default_rng(7)
        scores = rand_scores(rng, [(16, 32)])
        cfg = TWPruneConfig(granularity=8, col_row_split=1.0)
        res = tw_prune_step(scores, 0.5, cfg)
        # all surviving rows intact
        for rm in res.row_masks[0]:
            assert rm.all()

    def test_pure_row_pruning(self):
        rng = np.random.default_rng(8)
        scores = rand_scores(rng, [(16, 32)])
        cfg = TWPruneConfig(granularity=8, col_row_split=0.0, min_keep_cols=0)
        res = tw_prune_step(scores, 0.5, cfg)
        assert res.col_keeps[0].all()

    def test_reorganize_false_keeps_panel_boundaries(self):
        rng = np.random.default_rng(9)
        scores = rand_scores(rng, [(16, 32)])
        cfg = TWPruneConfig(granularity=8, reorganize=False)
        res = tw_prune_step(scores, 0.5, cfg)
        for cols in res.column_groups[0]:
            assert cols.max() // 8 == cols.min() // 8  # within one panel

    def test_units_budget_mode(self):
        rng = np.random.default_rng(10)
        scores = rand_scores(rng, [(32, 64)])
        cfg = TWPruneConfig(granularity=8, budget="units")
        res = tw_prune_step(scores, 0.75, cfg)
        assert 0.6 < res.achieved_sparsity < 0.9

    def test_monotone_stages(self):
        """Re-running at a higher target with zeroed scores on pruned
        elements must not decrease sparsity."""
        rng = np.random.default_rng(11)
        w = np.abs(rng.standard_normal((32, 64)))
        cfg = TWPruneConfig(granularity=8)
        res1 = tw_prune_step([w], 0.4, cfg)
        w2 = w * res1.masks[0]
        res2 = tw_prune_step([w2], 0.7, cfg)
        assert res2.achieved_sparsity >= res1.achieved_sparsity

    def test_rejects_1d_scores(self):
        with pytest.raises(ValueError):
            tw_prune_step([np.ones(4)], 0.5, TWPruneConfig(granularity=2))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TWPruneConfig(granularity=0)
        with pytest.raises(ValueError):
            TWPruneConfig(col_row_split=1.5)
        with pytest.raises(ValueError):
            TWPruneConfig(budget="percentile")
        with pytest.raises(ValueError):
            TWPruneConfig(min_keep_cols=-1)

    def test_adjust_shape_mismatch(self):
        rng = np.random.default_rng(12)
        scores = rand_scores(rng, [(8, 8)])
        with pytest.raises(ValueError):
            tw_prune_step(
                [scores[0]], 0.5, TWPruneConfig(granularity=4),
                column_score_adjust=[np.ones(3)],
            )


class TestApriori:
    def test_unit_ew_sparsity(self):
        mask = np.array([[1, 0], [1, 0], [0, 0], [1, 0]], dtype=bool)
        np.testing.assert_allclose(unit_ew_sparsity(mask), [0.25, 1.0])

    def test_adjust_sets_zero_and_inf(self):
        scores = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        ew_sp = np.array([0.9, 0.1, 0.5, 0.95, 0.2])
        cfg = AprioriConfig(top_n=2, last_n=2)
        out = apriori_adjust(scores, ew_sp, cfg)
        assert out[3] == 0.0 and out[0] == 0.0  # most EW-sparse
        assert np.isinf(out[1]) and np.isinf(out[4])  # least EW-sparse
        assert out[2] == 3.0  # untouched

    def test_fractional_strengths(self):
        scores = np.ones(10)
        ew_sp = np.linspace(0, 1, 10)
        out = apriori_adjust(scores, ew_sp, AprioriConfig(top_n=0.2, last_n=0.3))
        assert (out == 0).sum() == 2
        assert np.isinf(out).sum() == 3

    def test_no_overlap_when_sets_collide(self):
        scores = np.ones(4)
        ew_sp = np.array([0.1, 0.2, 0.3, 0.4])
        out = apriori_adjust(scores, ew_sp, AprioriConfig(top_n=3, last_n=3))
        assert (out == 0).sum() + np.isinf(out).sum() <= 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AprioriConfig(top_n=1.5)
        with pytest.raises(ValueError):
            AprioriConfig(last_n=-1)

    def test_apriori_steers_pruning(self):
        """Columns EW prunes completely should be pruned by TW first."""
        rng = np.random.default_rng(13)
        w = np.abs(rng.standard_normal((32, 32))) + 0.5
        ew_masks = global_topk_keep_masks([np.where(
            np.arange(32)[None, :] < 8, 0.01, w)], 0.25)
        # columns 0..7 are fully EW-pruned
        ew_sp = unit_ew_sparsity(ew_masks[0])
        from repro.core.importance import column_unit_scores

        cs = column_unit_scores(w)
        adjusted = apriori_adjust(cs, ew_sp, AprioriConfig(top_n=8, last_n=0))
        res = tw_prune_step(
            [w], 0.25, TWPruneConfig(granularity=8, col_row_split=1.0),
            column_score_adjust=[adjusted],
        )
        assert not res.col_keeps[0][:8].any()


class TestTEW:
    def test_restores_delta_fraction(self):
        rng = np.random.default_rng(14)
        w = rng.standard_normal((32, 64))
        s = np.abs(w)
        res = tw_prune_step([s], 0.8, TWPruneConfig(granularity=8))
        sol = tew_overlay([w], [s], res.masks, TEWConfig(delta=0.05))
        assert sol.ew_fraction == pytest.approx(0.05, abs=0.01)
        assert sol.overall_sparsity == pytest.approx(
            res.achieved_sparsity - 0.05, abs=0.01
        )

    def test_restored_elements_have_top_scores(self):
        rng = np.random.default_rng(15)
        w = rng.standard_normal((16, 32))
        s = np.abs(w)
        res = tw_prune_step([s], 0.75, TWPruneConfig(granularity=8))
        sol = tew_overlay([w], [s], res.masks, TEWConfig(delta=0.1))
        restored_scores = s[sol.ew_masks[0]]
        still_pruned = s[~sol.masks[0]]
        if restored_scores.size and still_pruned.size:
            assert restored_scores.min() >= still_pruned.max() - 1e-12

    def test_masks_disjoint_and_union(self):
        rng = np.random.default_rng(16)
        w = rng.standard_normal((16, 16))
        s = np.abs(w)
        res = tw_prune_step([s], 0.7, TWPruneConfig(granularity=4))
        sol = tew_overlay([w], [s], res.masks, TEWConfig(delta=0.05))
        assert not (sol.tw_masks[0] & sol.ew_masks[0]).any()
        np.testing.assert_array_equal(sol.masks[0], sol.tw_masks[0] | sol.ew_masks[0])

    def test_residual_holds_restored_values(self):
        rng = np.random.default_rng(17)
        w = rng.standard_normal((16, 16))
        s = np.abs(w)
        res = tw_prune_step([s], 0.7, TWPruneConfig(granularity=4))
        sol = tew_overlay([w], [s], res.masks, TEWConfig(delta=0.08))
        np.testing.assert_array_equal(
            sol.residuals[0].to_dense(), np.where(sol.ew_masks[0], w, 0.0)
        )

    def test_linearity_decomposition(self):
        """A·B_TEW == A·B_TW + A·residual — the execution identity."""
        rng = np.random.default_rng(18)
        w = rng.standard_normal((24, 32))
        s = np.abs(w)
        res = tw_prune_step([s], 0.75, TWPruneConfig(granularity=8))
        sol = tew_overlay([w], [s], res.masks, TEWConfig(delta=0.05))
        a = rng.standard_normal((5, 24))
        full = a @ (w * sol.masks[0])
        tw_part = a @ (w * sol.tw_masks[0])
        ew_part = sol.residuals[0].left_matmul_dense(a)
        np.testing.assert_allclose(full, tw_part + ew_part, atol=1e-10)

    def test_zero_delta_is_pure_tw(self):
        rng = np.random.default_rng(19)
        w = rng.standard_normal((8, 8))
        s = np.abs(w)
        res = tw_prune_step([s], 0.5, TWPruneConfig(granularity=4))
        sol = tew_overlay([w], [s], res.masks, TEWConfig(delta=0.0))
        np.testing.assert_array_equal(sol.masks[0], res.masks[0])
        assert sol.residuals[0].nnz == 0

    def test_multi_layer_global_restore(self):
        rng = np.random.default_rng(20)
        ws = [rng.standard_normal((16, 16)), rng.standard_normal((16, 16))]
        ss = [np.abs(ws[0]) * 100, np.abs(ws[1])]  # layer 0 far more important
        res = tw_prune_step(ss, 0.8, TWPruneConfig(granularity=4))
        sol = tew_overlay(ws, ss, res.masks, TEWConfig(delta=0.1))
        restored = [int(m.sum()) for m in sol.ew_masks]
        assert restored[0] >= restored[1]  # global ranking favors layer 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            tew_overlay([np.ones((2, 2))], [], [np.ones((2, 2), dtype=bool)], TEWConfig())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TEWConfig(delta=-0.1)
        with pytest.raises(ValueError):
            TEWConfig(delta=1.0)


@given(
    st.floats(0.0, 0.95),
    st.sampled_from([4, 8, 16]),
    st.floats(0.0, 1.0),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_tw_step_property(target, g, split, seed):
    rng = np.random.default_rng(seed)
    scores = [np.abs(rng.standard_normal((24, 40)))]
    cfg = TWPruneConfig(granularity=g, col_row_split=split, min_keep_cols=0, min_keep_rows=0)
    res = tw_prune_step(scores, target, cfg)
    # mask factors as TW
    validate_tw_mask(res.masks[0], g)
    # achieved sparsity near target (element-budget greedy, one-unit slack)
    assert res.achieved_sparsity == pytest.approx(target, abs=0.08)
    # sparsity bounded
    assert 0.0 <= res.achieved_sparsity <= 1.0
