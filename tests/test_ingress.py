"""Continuous-batching ingress invariants (ISSUE 8).

The core property: streaming requests through the asyncio
:class:`ServingLoop` — whatever the interleaving of arrivals and
admissions — produces bit-identical outputs to a sequential drain of
the same requests on the ``inline`` executor.  Plus the satellite
contracts: honest latency accounting (enqueue→terminal, queue wait and
GEMM service split), the structured stats export, and the seeded load
generator.

pytest-asyncio is not a dependency; every async body runs under
``asyncio.run`` inside a plain sync test.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.runtime import (
    IngressClosed,
    ServerConfig,
    ServingLoop,
    TWModelServer,
)
from repro.runtime.loadgen import (
    arrival_times,
    latency_summary_ms,
    run_closed_loop,
    run_open_loop,
)

TERMINAL = {"ok", "failed", "shed", "expired"}


def _pruned_layer(rng, k, n, sparsity=0.5, g=8):
    dense = rng.standard_normal((k, n))
    step = tw_prune_step([np.abs(dense)], sparsity, TWPruneConfig(granularity=g))
    return dense, step.col_keeps[0], step.row_masks[0]


def _layers(seed, n_layers=2, k=24, g=8):
    rng = np.random.default_rng(seed)
    return [_pruned_layer(rng, k, k, g=g) for _ in range(n_layers)]


def _server(layers, **cfg_kw):
    cfg_kw.setdefault("granularity", 8)
    server = TWModelServer(ServerConfig(**cfg_kw))
    for dense, ck, rm in layers:
        server.add_layer(dense, ck, rm)
    return server


def _requests(seed, n=6, rows=2, k=24):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((rows, k)) for _ in range(n)]


def _oracle_outputs(layers, reqs):
    """Fault-free sequential inline drain: the bit-identity reference."""
    server = _server(layers)
    return [server.serve(x).output for x in reqs]


def _stream(server, reqs, *, pause_every=0, max_wave_rows=None, deadline_s=None):
    """Stream ``reqs`` through a ServingLoop; return terminal results in order.

    ``pause_every > 0`` yields to the event loop mid-stream, so later
    submissions arrive while earlier waves are flushing — the continuous
    admission interleavings the bit-identity property must survive.
    """

    async def go():
        async with ServingLoop(server, max_wave_rows=max_wave_rows) as loop:
            futures = []
            for i, x in enumerate(reqs):
                futures.append(loop.submit_nowait(x, deadline_s=deadline_s))
                if pause_every and (i + 1) % pause_every == 0:
                    await asyncio.sleep(0.002)
            return list(await asyncio.gather(*futures))

    return asyncio.run(go())


class TestBitIdentity:
    """Continuous admission == sequential drain, bit for bit."""

    @pytest.mark.parametrize("executor", ["inline", "threaded"])
    @pytest.mark.parametrize("n_devices,placement", [
        (1, "single"), (2, "replicated"), (2, "layer_sharded"),
    ])
    @pytest.mark.parametrize("pause_every", [0, 2])
    def test_matches_sequential_drain(
        self, executor, n_devices, placement, pause_every
    ):
        from repro.gpu.device import V100
        from repro.runtime import Placement

        layers = _layers(10, n_layers=3)
        reqs = _requests(11, n=8)
        want = _oracle_outputs(layers, reqs)
        server = _server(
            layers,
            executor=executor,
            placement=Placement(placement, (V100,) * n_devices),
            watchdog_s=20.0 if executor == "threaded" else None,
        )
        with server:
            served = _stream(
                server, reqs, pause_every=pause_every, max_wave_rows=4
            )
        assert [s.status for s in served] == ["ok"] * len(reqs)
        for s, ref in zip(served, want):
            np.testing.assert_array_equal(s.output, ref)

    def test_matches_sequential_drain_process_executor(self):
        from repro.gpu.device import V100
        from repro.runtime import Placement

        layers = _layers(12)
        reqs = _requests(13, n=4)
        want = _oracle_outputs(layers, reqs)
        server = _server(
            layers, executor="process", workers=2,
            placement=Placement("replicated", (V100, V100)),
        )
        with server:
            served = _stream(server, reqs, pause_every=2, max_wave_rows=4)
        assert [s.status for s in served] == ["ok"] * len(reqs)
        for s, ref in zip(served, want):
            np.testing.assert_array_equal(s.output, ref)

    def test_single_submit_roundtrip(self):
        layers = _layers(14)
        (req,) = _requests(15, n=1)
        (want,) = _oracle_outputs(layers, [req])

        async def go():
            async with ServingLoop(_server(layers), owns_server=True) as loop:
                return await loop.submit(req)

        served = asyncio.run(go())
        assert served.status == "ok"
        np.testing.assert_array_equal(served.output, want)


class TestLatencyAccounting:
    """latency_s is enqueue→terminal and splits into wait + service."""

    def test_ok_latency_splits(self):
        layers = _layers(20)
        reqs = _requests(21, n=4)
        server = _server(layers)
        with server:
            served = _stream(server, reqs, max_wave_rows=4)
        for s in served:
            assert s.service_s > 0.0
            assert s.queue_wait_s >= 0.0
            assert s.latency_s == pytest.approx(
                s.queue_wait_s + s.service_s, abs=1e-9
            )

    def test_backlogged_wave_pays_queue_wait(self):
        # every GEMM dwells 5ms (latency fault, never fails): with 2-row
        # requests and 4-row waves, the second wave's requests wait for
        # the first wave's ~2x5ms of service before their own launch
        layers = _layers(22)
        reqs = _requests(23, n=4)
        server = _server(
            layers, faults="latency:rate=1.0:duration=0.005",
        )
        with server:
            served = _stream(server, reqs, max_wave_rows=4)
        assert all(s.status == "ok" for s in served)
        last = max(served, key=lambda s: s.queue_wait_s)
        assert last.queue_wait_s > 0.005
        assert last.latency_s == pytest.approx(
            last.queue_wait_s + last.service_s, abs=1e-9
        )

    def test_enqueued_at_backdates_latency(self):
        import time

        layers = _layers(24)
        (req,) = _requests(25, n=1)
        server = _server(layers)
        past = time.perf_counter() - 1.0
        server.submit(req, enqueued_at=past)
        (served,) = server.flush()
        assert served.latency_s >= 1.0
        assert served.queue_wait_s >= 1.0

    def test_enqueued_at_rejects_future_stamp(self):
        import time

        layers = _layers(26)
        (req,) = _requests(27, n=1)
        server = _server(layers)
        with pytest.raises(ValueError, match="future"):
            server.submit(req, enqueued_at=time.perf_counter() + 60.0)

    def test_deadline_anchored_at_enqueue(self):
        import time

        # a deadline that already passed relative to the arrival stamp
        # expires even though admission happens "now"
        layers = _layers(28)
        (req,) = _requests(29, n=1)
        server = _server(layers)
        server.submit(
            req, deadline_s=0.5, enqueued_at=time.perf_counter() - 1.0
        )
        (served,) = server.flush()
        assert served.status == "expired"
        assert served.queue_wait_s == pytest.approx(served.latency_s)
        assert served.service_s == 0.0

    def test_deadline_expiry_through_ingress(self):
        layers = _layers(30)
        reqs = _requests(31, n=3)
        server = _server(layers)
        with server:
            served = _stream(server, reqs, deadline_s=0.0)
        assert [s.status for s in served] == ["expired"] * 3


class TestLifecycle:
    def test_submit_after_close_raises(self):
        layers = _layers(40)
        (req,) = _requests(41, n=1)

        async def go():
            loop = ServingLoop(_server(layers), owns_server=True)
            async with loop:
                await loop.submit(req)
            with pytest.raises(IngressClosed):
                loop.submit_nowait(req)

        asyncio.run(go())

    def test_close_drains_backlog(self):
        layers = _layers(42)
        reqs = _requests(43, n=6)
        want = _oracle_outputs(layers, reqs)

        async def go():
            loop = ServingLoop(
                _server(layers), owns_server=True, max_wave_rows=4
            )
            futures = [loop.submit_nowait(x) for x in reqs]
            await loop.close()  # must finish the backlog first
            return [f.result() for f in futures]

        served = asyncio.run(go())
        for s, ref in zip(served, want):
            assert s.status == "ok"
            np.testing.assert_array_equal(s.output, ref)

    def test_owns_server_closes_server(self):
        layers = _layers(44)
        server = _server(layers)

        async def go():
            async with ServingLoop(server, owns_server=True):
                pass

        asyncio.run(go())
        assert server._closed

    def test_drain_waits_for_all_terminals(self):
        layers = _layers(45)
        reqs = _requests(46, n=5)

        async def go():
            async with ServingLoop(
                _server(layers), owns_server=True, max_wave_rows=4
            ) as loop:
                futures = [loop.submit_nowait(x) for x in reqs]
                await loop.drain()
                assert all(f.done() for f in futures)
                return [f.result() for f in futures]

        served = asyncio.run(go())
        assert all(s.status == "ok" for s in served)

    def test_drain_timeout_bounds_the_wait(self):
        # a latency fault keeps the flush busy past the bound: drain
        # reports False instead of hanging, then an unbounded retry
        # still sees every terminal
        layers = _layers(48)
        server = _server(
            layers, faults="latency:rate=1.0:duration=0.2:seed=1"
        )

        async def go():
            async with ServingLoop(
                server, owns_server=True, max_wave_rows=4
            ) as loop:
                assert await loop.drain(timeout_s=0.5) is True  # idle: fast
                fut = loop.submit_nowait(_requests(49, n=1)[0])
                assert await loop.drain(timeout_s=0.01) is False
                assert not fut.done()
                assert await loop.drain(timeout_s=30.0) is True
                assert fut.done() and fut.result().status == "ok"

        asyncio.run(go())

    def test_rejects_nonpositive_wave_cap(self):
        with pytest.raises(ValueError, match="positive"):
            ServingLoop(_server(_layers(47)), max_wave_rows=0)


class TestStatsExport:
    def test_server_stats_record_structure(self):
        layers = _layers(50)
        reqs = _requests(51, n=4)
        server = _server(layers, executor="inline")
        for x in reqs:
            server.serve(x)
        rec = server.stats_record()
        json.dumps(rec)  # JSON-ready end to end
        assert rec["requests"] == 4
        assert rec["queue"] == {
            "depth_requests": 0, "depth_rows": 0, "max_queue_rows": 0,
        }
        assert rec["waves"]["count"] == 4
        assert 0 < rec["waves"]["occupancy"] <= 1
        assert rec["cache"]["format_hit_rate"] > 0
        assert rec["executor"] == "inline"
        assert rec["placement"] == "single x1"
        assert set(rec["latency_ms"]) == {"mean", "p50", "p95", "p99", "window"}
        assert rec["latency_ms"]["p99"] >= rec["latency_ms"]["p50"] > 0
        assert rec["device_busy_pct"]  # at least one slot attributed

    def test_percentiles_from_window(self):
        from repro.runtime import ServerStats

        stats = ServerStats()
        stats.latencies_s.extend([0.001 * i for i in range(1, 101)])
        assert stats.p50_latency_s() == pytest.approx(0.0505, rel=1e-6)
        assert stats.p99_latency_s() <= 0.1
        assert stats.percentile_latency_s(100.0) == pytest.approx(0.1)
        assert ServerStats().p99_latency_s() == 0.0

    def test_ingress_record_adds_traffic_context(self):
        layers = _layers(52)
        reqs = _requests(53, n=4)
        server = _server(layers)

        async def go():
            async with ServingLoop(
                server, owns_server=True, max_wave_rows=4
            ) as loop:
                await asyncio.gather(
                    *[loop.submit_nowait(x) for x in reqs]
                )
                return loop.stats_record()

        rec = asyncio.run(go())
        json.dumps(rec)
        ing = rec["ingress"]
        assert ing["backlog_requests"] == 0
        assert ing["unresolved_requests"] == 0
        assert ing["waves_admitted"] >= 1
        assert ing["max_wave_rows"] == 4

    def test_periodic_stats_line(self):
        layers = _layers(54)
        reqs = _requests(55, n=4)
        lines = []

        async def go():
            async with ServingLoop(
                _server(layers),
                owns_server=True,
                stats_interval_s=0.01,
                stats_log=lines.append,
            ) as loop:
                await asyncio.gather(*[loop.submit_nowait(x) for x in reqs])
                await asyncio.sleep(0.05)

        asyncio.run(go())
        assert lines and all(l.startswith("ingress:") for l in lines)
        assert "p99=" in lines[-1]


class TestLoadgen:
    def test_arrival_times_deterministic_and_bounded(self):
        a = arrival_times(200.0, 0.5, arrival="poisson", seed=9)
        b = arrival_times(200.0, 0.5, arrival="poisson", seed=9)
        assert np.array_equal(a, b)
        assert (a >= 0).all() and (a < 0.5).all()
        assert len(a) > 20  # ~100 expected
        c = arrival_times(200.0, 0.5, arrival="poisson", seed=10)
        assert not np.array_equal(a, c)

    def test_fixed_arrivals_evenly_spaced(self):
        t = arrival_times(100.0, 0.1, arrival="fixed")
        assert np.allclose(np.diff(t), 0.01)
        assert len(t) == 10

    def test_arrival_validation(self):
        with pytest.raises(ValueError, match="rate"):
            arrival_times(0.0, 1.0)
        with pytest.raises(ValueError, match="duration"):
            arrival_times(1.0, 0.0)
        with pytest.raises(ValueError, match="unknown arrival"):
            arrival_times(1.0, 1.0, arrival="bursty")

    def test_latency_summary_handles_empty(self):
        empty = latency_summary_ms([])
        assert empty == {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}

    def test_open_loop_all_terminal(self):
        layers = _layers(60)
        reqs = _requests(61, n=8)
        server = _server(layers)

        async def go():
            async with ServingLoop(server, owns_server=True) as loop:
                return await run_open_loop(
                    loop,
                    lambda i: reqs[i % len(reqs)],
                    rate=400.0,
                    duration_s=0.1,
                    seed=3,
                )

        result = asyncio.run(go())
        assert result.requests > 0
        assert result.all_ok
        assert result.statuses == {"ok": result.requests}
        assert result.latency_ms["p99"] >= result.latency_ms["p50"] > 0
        rec = result.record()
        json.dumps(rec)
        assert rec["mode"] == "open" and rec["arrival"] == "poisson"
        assert "served" not in rec  # raw results stay out of the record

    def test_closed_loop_counts_and_throughput(self):
        layers = _layers(62)
        reqs = _requests(63, n=8)
        server = _server(layers)

        async def go():
            async with ServingLoop(server, owns_server=True) as loop:
                return await run_closed_loop(
                    loop,
                    lambda i: reqs[i % len(reqs)],
                    clients=2,
                    requests_per_client=3,
                )

        result = asyncio.run(go())
        assert result.requests == 6
        assert result.all_ok
        assert result.achieved_rps > 0
        assert result.record()["mode"] == "closed"

    def test_closed_loop_validation(self):
        async def go():
            async with ServingLoop(
                _server(_layers(64)), owns_server=True
            ) as loop:
                with pytest.raises(ValueError, match="positive"):
                    await run_closed_loop(loop, lambda i: None, clients=0)

        asyncio.run(go())


class TestServeAsyncFrontDoor:
    def test_compiled_model_serve_async(self):
        import repro
        from repro.api import demo_layer_stack

        weights, names = demo_layer_stack(
            "bert", scale=16, blocks=1, seed=5, dtype=np.float32
        )
        model = repro.compile(
            weights, pattern="tw", sparsity=0.75, granularity=8,
            dtype=np.float32, names=names,
        )
        rng = np.random.default_rng(6)
        xs = [
            rng.standard_normal((2, weights[0].shape[0])).astype(np.float32)
            for _ in range(4)
        ]
        server = model.serve()
        want = [server.serve(x).output for x in xs]
        server.close()

        # awaited one by one: each wave holds exactly one request, so the
        # GEMM inputs match the oracle's serve() calls bit for bit even at
        # float32 BERT scale (BLAS rounding varies with batch row-count;
        # regrouping identity is covered on the float64 bed above)
        async def go():
            async with model.serve_async() as loop:
                return [await loop.submit(x) for x in xs]

        served = asyncio.run(go())
        for s, ref in zip(served, want):
            assert s.status == "ok"
            np.testing.assert_array_equal(s.output, ref)


class TestCLIContinuous:
    def test_serve_continuous_smoke(self, capsys, tmp_path):
        from repro.cli import main

        stats = tmp_path / "stats.json"
        rc = main([
            "serve", "bert", "--scale", "32", "--blocks", "1",
            "--continuous", "--rate", "300", "--duration", "0.2",
            "--arrival", "fixed", "--expect-all-ok",
            "--stats-json", str(stats),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency p50/p95/p99" in out
        assert "waves admitted" in out
        rec = json.loads(stats.read_text())
        assert "ingress" in rec and "loadgen" in rec
        assert rec["loadgen"]["statuses"].get("ok", 0) > 0

    def test_serve_continuous_rejects_bad_rate(self, capsys):
        from repro.cli import main

        rc = main(["serve", "bert", "--continuous", "--rate", "0"])
        assert rc == 2
        assert "--rate" in capsys.readouterr().err
