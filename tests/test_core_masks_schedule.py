"""Tests for mask algebra, EW global ranking and sparsity schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.masks import (
    global_topk_keep_masks,
    mask_sparsity,
    overall_sparsity,
    topk_keep_mask,
    tw_mask_from_tiles,
    validate_tw_mask,
)
from repro.core.schedule import (
    SCHEDULES,
    GradualSchedule,
    available_schedules,
    resolve_schedule,
)


class TestMaskBasics:
    def test_mask_sparsity(self):
        m = np.array([[True, False], [False, False]])
        assert mask_sparsity(m) == pytest.approx(0.75)

    def test_mask_sparsity_empty(self):
        assert mask_sparsity(np.zeros((0, 3), dtype=bool)) == 0.0

    def test_overall_sparsity_weighted(self):
        m1 = np.ones((2, 2), dtype=bool)   # 0% sparse, 4 elems
        m2 = np.zeros((4, 3), dtype=bool)  # 100% sparse, 12 elems
        assert overall_sparsity([m1, m2]) == pytest.approx(12 / 16)

    def test_overall_sparsity_empty_list(self):
        assert overall_sparsity([]) == 0.0


class TestTopK:
    def test_exact_count(self):
        rng = np.random.default_rng(0)
        s = rng.random((10, 10))
        m = topk_keep_mask(s, 0.73)
        assert m.sum() == round(0.27 * 100)

    def test_keeps_largest(self):
        s = np.array([[1.0, 5.0, 3.0, 2.0]])
        m = topk_keep_mask(s, 0.5)
        np.testing.assert_array_equal(m, [[False, True, True, False]])

    def test_extremes(self):
        s = np.ones((3, 3))
        assert topk_keep_mask(s, 0.0).all()
        assert not topk_keep_mask(s, 1.0).any()

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            topk_keep_mask(np.ones((2, 2)), 1.5)

    def test_global_ranking_across_layers(self):
        # layer 0 has uniformly higher scores; at 50% sparsity all survivors
        # should come from layer 0
        s0 = np.full((4, 4), 10.0)
        s1 = np.full((4, 4), 1.0)
        m0, m1 = global_topk_keep_masks([s0, s1], 0.5)
        assert m0.all()
        assert not m1.any()

    def test_global_ranking_exact_budget(self):
        rng = np.random.default_rng(1)
        scores = [rng.random((5, 7)), rng.random((3, 11))]
        masks = global_topk_keep_masks(scores, 0.6)
        total = 5 * 7 + 3 * 11
        kept = sum(int(m.sum()) for m in masks)
        assert kept == round(0.4 * total)

    def test_global_ranking_produces_uneven_layer_sparsity(self):
        """The Fig. 5 phenomenon: global EW ranking yields uneven
        per-layer sparsity when layers have different score scales."""
        rng = np.random.default_rng(2)
        scores = [rng.random((16, 16)) * (i + 1) for i in range(4)]
        masks = global_topk_keep_masks(scores, 0.75)
        per_layer = [mask_sparsity(m) for m in masks]
        assert max(per_layer) - min(per_layer) > 0.2


class TestTWMaskFactoring:
    def test_build_and_validate_roundtrip(self):
        k, n, g = 6, 8, 4
        col_keep = np.array([1, 1, 0, 1, 1, 1, 0, 1], dtype=bool)
        from repro.formats.tiled import TiledTWMatrix

        groups = TiledTWMatrix.column_groups(col_keep, g)
        row_masks = [
            np.array([1, 1, 0, 1, 0, 1], dtype=bool),
            np.array([0, 1, 1, 1, 1, 0], dtype=bool),
        ]
        mask = tw_mask_from_tiles((k, n), groups, row_masks)
        ck, rms = validate_tw_mask(mask, g)
        np.testing.assert_array_equal(ck, col_keep)
        for a, b in zip(rms, row_masks):
            np.testing.assert_array_equal(a, b)

    def test_non_tw_mask_rejected(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        mask[1, 1] = True  # rows differ across the tile -> not TW with G=2
        with pytest.raises(ValueError):
            validate_tw_mask(mask, 2)

    def test_ew_random_mask_rejected(self):
        rng = np.random.default_rng(3)
        mask = rng.random((16, 16)) < 0.5
        with pytest.raises(ValueError):
            validate_tw_mask(mask, 4)

    def test_all_true_mask_is_tw(self):
        mask = np.ones((4, 8), dtype=bool)
        ck, rms = validate_tw_mask(mask, 4)
        assert ck.all()
        assert all(m.all() for m in rms)

    def test_all_false_mask_is_tw(self):
        mask = np.zeros((4, 8), dtype=bool)
        ck, rms = validate_tw_mask(mask, 4)
        assert not ck.any()
        assert rms == []

    def test_group_row_mask_count_mismatch(self):
        with pytest.raises(ValueError):
            tw_mask_from_tiles((4, 4), [np.array([0, 1])], [])

    def test_bad_row_mask_length(self):
        with pytest.raises(ValueError):
            tw_mask_from_tiles(
                (4, 4), [np.array([0, 1])], [np.ones(3, dtype=bool)]
            )


class TestSchedule:
    def test_reaches_target_exactly(self):
        for law in ("linear", "cubic", "geometric"):
            sched = GradualSchedule(target=0.75, n_stages=5, law=law)
            stages = sched.stages()
            assert stages[-1] == pytest.approx(0.75)

    def test_strictly_increasing(self):
        for law in ("linear", "cubic", "geometric"):
            stages = GradualSchedule(target=0.9, n_stages=6, law=law).stages()
            assert all(b > a for a, b in zip(stages, stages[1:]))

    def test_single_stage(self):
        assert GradualSchedule(target=0.5, n_stages=1).stages() == [0.5]

    def test_zero_target(self):
        assert GradualSchedule(target=0.0, n_stages=4).stages() == [0.0]

    def test_cubic_front_loads(self):
        lin = GradualSchedule(target=0.8, n_stages=4, law="linear").stages()
        cub = GradualSchedule(target=0.8, n_stages=4, law="cubic").stages()
        assert cub[0] > lin[0]  # cubic prunes more in early stages

    def test_geometric_between_linear_and_cubic(self):
        lin = GradualSchedule(target=0.8, n_stages=4, law="linear").stages()
        geo = GradualSchedule(target=0.8, n_stages=4, law="geometric").stages()
        cub = GradualSchedule(target=0.8, n_stages=4, law="cubic").stages()
        assert lin[0] < geo[0] < cub[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            GradualSchedule(target=1.0)
        with pytest.raises(ValueError):
            GradualSchedule(target=-0.1)
        with pytest.raises(ValueError):
            GradualSchedule(target=0.5, n_stages=0)
        with pytest.raises(ValueError):
            GradualSchedule(target=0.5, law="polynomial")


class TestScheduleDegenerateCases:
    def test_start_equals_target_collapses_to_one_stage(self):
        # well-defined, not empty: one (re-)prune stage at the target
        for law in ("linear", "cubic", "geometric"):
            sched = GradualSchedule(target=0.5, n_stages=4, law=law, start=0.5)
            assert sched.stages() == [0.5]

    def test_start_above_target_rejected(self):
        with pytest.raises(ValueError, match="exceeds target"):
            GradualSchedule(target=0.3, start=0.5)

    def test_start_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="start sparsity"):
            GradualSchedule(target=0.5, start=-0.1)
        with pytest.raises(ValueError, match="start sparsity"):
            GradualSchedule(target=0.5, start=1.0)

    def test_nonzero_start_interpolates(self):
        stages = GradualSchedule(
            target=0.8, n_stages=4, law="linear", start=0.4
        ).stages()
        assert stages == pytest.approx([0.5, 0.6, 0.7, 0.8])
        assert all(s > 0.4 for s in stages)

    def test_zero_start_is_historical_behavior(self):
        for law in ("linear", "cubic", "geometric"):
            explicit = GradualSchedule(target=0.77, n_stages=6, law=law, start=0.0)
            default = GradualSchedule(target=0.77, n_stages=6, law=law)
            assert explicit.stages() == default.stages()


class TestScheduleRegistry:
    def test_names(self):
        assert available_schedules() == ["gradual", "oneshot"]

    def test_gradual_round_trip(self):
        sched = SCHEDULES.create("gradual", target=0.75, n_stages=3, law="linear")
        assert isinstance(sched, GradualSchedule)
        assert sched.stages() == pytest.approx([0.25, 0.5, 0.75])

    def test_oneshot_is_single_stage(self):
        sched = SCHEDULES.create("oneshot", target=0.6)
        assert sched.stages() == [0.6]
        assert SCHEDULES.create("oneshot", target=0.6, n_stages=1).stages() == [0.6]

    def test_oneshot_rejects_conflicting_knobs(self):
        # no-silent-drop contract: a multi-stage request on the
        # single-stage schedule is an error, not an ignored kwarg
        with pytest.raises(ValueError, match="single-stage by definition"):
            SCHEDULES.create("oneshot", target=0.6, n_stages=4)
        with pytest.raises(ValueError, match="single-stage by definition"):
            SCHEDULES.create("oneshot", target=0.6, law="linear")

    def test_aliases_canonicalise(self):
        assert SCHEDULES.canonical("gradually_increase") == "gradual"
        assert SCHEDULES.canonical("one_shot") == "oneshot"

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="unknown schedule 'warmup'.*gradual.*oneshot"):
            SCHEDULES.canonical("warmup")

    def test_resolve_forms(self):
        inst = GradualSchedule(target=0.5, n_stages=2)
        assert resolve_schedule(inst, target=0.9) is inst
        assert resolve_schedule(None, target=0.5).target == 0.5
        sched = resolve_schedule("gradual", target=0.5, n_stages=None, law="linear")
        assert sched.law == "linear" and sched.n_stages == 4  # None dropped
        with pytest.raises(TypeError):
            resolve_schedule(42, target=0.5)


@given(
    st.floats(0.0, 0.99),
    st.integers(1, 10),
    st.sampled_from(["linear", "cubic", "geometric"]),
)
@settings(max_examples=60, deadline=None)
def test_schedule_property(target, n_stages, law):
    stages = GradualSchedule(target=target, n_stages=n_stages, law=law).stages()
    assert stages[-1] == pytest.approx(target)
    assert all(0.0 <= s <= target + 1e-12 for s in stages)
    assert all(b > a for a, b in zip(stages, stages[1:]))


@given(st.integers(1, 12), st.integers(1, 12), st.floats(0, 1), st.integers(0, 2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_topk_property(k, n, sparsity, seed):
    rng = np.random.default_rng(seed)
    s = rng.random((k, n))
    m = topk_keep_mask(s, sparsity)
    assert int(m.sum()) == round((1 - sparsity) * k * n)
    if 0 < m.sum() < m.size:
        assert s[m].min() >= s[~m].max() - 1e-12  # kept scores dominate
