"""Unit and property tests for CSR / CSC formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.formats import CSCMatrix, CSRMatrix


def random_sparse(rng, m, n, density):
    dense = rng.standard_normal((m, n))
    mask = rng.random((m, n)) < density
    return dense * mask


# --------------------------------------------------------------------- #
# CSR
# --------------------------------------------------------------------- #
class TestCSR:
    def test_roundtrip_simple(self):
        a = np.array([[0.0, 1.0, 0.0], [4.0, 0.0, 2.0], [0.0, 8.0, 0.0]])
        csr = CSRMatrix.from_dense(a)
        np.testing.assert_array_equal(csr.to_dense(), a)

    def test_paper_example_csc_figure_matrix(self):
        # The 4x4 matrix from paper Fig. 4's CSC illustration.
        a = np.array(
            [[0, 1, 0, 0], [4, 0, 2, 0], [0, 8, 0, 0], [0, 0, 0, 6]], dtype=float
        )
        csr = CSRMatrix.from_dense(a)
        assert csr.nnz == 5
        np.testing.assert_array_equal(csr.to_dense(), a)

    def test_nnz_and_sparsity(self):
        a = np.zeros((4, 5))
        a[1, 2] = 3.0
        a[3, 0] = -1.0
        csr = CSRMatrix.from_dense(a)
        assert csr.nnz == 2
        assert csr.density == pytest.approx(2 / 20)
        assert csr.sparsity == pytest.approx(18 / 20)

    def test_empty_matrix(self):
        csr = CSRMatrix.from_dense(np.zeros((3, 4)))
        assert csr.nnz == 0
        assert csr.sparsity == 1.0
        np.testing.assert_array_equal(csr.to_dense(), np.zeros((3, 4)))

    def test_zero_dim(self):
        csr = CSRMatrix.from_dense(np.zeros((0, 4)))
        assert csr.nnz == 0
        assert csr.to_dense().shape == (0, 4)

    def test_row_nnz(self):
        a = np.array([[1.0, 1.0], [0.0, 0.0], [0.0, 5.0]])
        csr = CSRMatrix.from_dense(a)
        np.testing.assert_array_equal(csr.row_nnz(), [2, 0, 1])

    def test_matmul_dense_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = random_sparse(rng, 13, 7, 0.3)
        b = rng.standard_normal((7, 5))
        csr = CSRMatrix.from_dense(a)
        np.testing.assert_allclose(csr.matmul_dense(b), a @ b, atol=1e-12)

    def test_matmul_shape_mismatch_raises(self):
        csr = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(ValueError):
            csr.matmul_dense(np.ones((4, 2)))

    def test_from_mask(self):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((6, 6))
        mask = rng.random((6, 6)) < 0.4
        csr = CSRMatrix.from_mask(dense, mask)
        np.testing.assert_array_equal(csr.to_dense(), np.where(mask, dense, 0.0))

    def test_from_mask_shape_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_mask(np.eye(3), np.ones((2, 2), dtype=bool))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.zeros(5))

    def test_validate_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                shape=(2, 2),
                indptr=np.array([1, 1, 1], dtype=np.int64),
                indices=np.array([], dtype=np.int64),
                data=np.array([]),
            )

    def test_validate_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                shape=(2, 2),
                indptr=np.array([0, 1, 1], dtype=np.int64),
                indices=np.array([5], dtype=np.int64),
                data=np.array([1.0]),
            )

    def test_validate_rejects_unsorted_columns(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                shape=(1, 3),
                indptr=np.array([0, 2], dtype=np.int64),
                indices=np.array([2, 0], dtype=np.int64),
                data=np.array([1.0, 2.0]),
            )

    def test_transpose(self):
        rng = np.random.default_rng(2)
        a = random_sparse(rng, 5, 8, 0.3)
        np.testing.assert_array_equal(CSRMatrix.from_dense(a).transpose().to_dense(), a.T)

    def test_equality(self):
        a = random_sparse(np.random.default_rng(3), 4, 4, 0.5)
        assert CSRMatrix.from_dense(a) == CSRMatrix.from_dense(a.copy())
        assert CSRMatrix.from_dense(a) != CSRMatrix.from_dense(a * 2 + 1)


# --------------------------------------------------------------------- #
# CSC
# --------------------------------------------------------------------- #
class TestCSC:
    def test_roundtrip_simple(self):
        a = np.array([[0.0, 1.0], [4.0, 0.0], [0.0, 8.0]])
        csc = CSCMatrix.from_dense(a)
        np.testing.assert_array_equal(csc.to_dense(), a)

    def test_paper_fig4_csc_encoding(self):
        # Fig. 4 step 3: value=[4,1,8,2,6], rowId=[1,0,2,1,3], colPtr=[0,1,3,4,5]
        a = np.array(
            [[0, 1, 0, 0], [4, 0, 2, 0], [0, 8, 0, 0], [0, 0, 0, 6]], dtype=float
        )
        csc = CSCMatrix.from_dense(a)
        np.testing.assert_array_equal(csc.data, [4, 1, 8, 2, 6])
        np.testing.assert_array_equal(csc.indices, [1, 0, 2, 1, 3])
        np.testing.assert_array_equal(csc.indptr, [0, 1, 3, 4, 5])

    def test_col_nnz(self):
        a = np.array([[1.0, 0.0, 2.0], [1.0, 0.0, 0.0]])
        np.testing.assert_array_equal(CSCMatrix.from_dense(a).col_nnz(), [2, 0, 1])

    def test_left_matmul_matches_numpy(self):
        rng = np.random.default_rng(4)
        w = random_sparse(rng, 9, 6, 0.25)
        x = rng.standard_normal((3, 9))
        csc = CSCMatrix.from_dense(w)
        np.testing.assert_allclose(csc.left_matmul_dense(x), x @ w, atol=1e-12)

    def test_left_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            CSCMatrix.from_dense(np.eye(3)).left_matmul_dense(np.ones((2, 4)))

    def test_empty(self):
        csc = CSCMatrix.from_dense(np.zeros((2, 2)))
        assert csc.nnz == 0 and csc.sparsity == 1.0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            CSCMatrix.from_dense(np.zeros((2, 2, 2)))

    def test_validate_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            CSCMatrix(
                shape=(2, 2),
                indptr=np.array([0, 1, 2], dtype=np.int64),
                indices=np.array([0], dtype=np.int64),
                data=np.array([1.0]),
            )


# --------------------------------------------------------------------- #
# property-based: round trips and linearity
# --------------------------------------------------------------------- #
dense_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 12)),
    elements=st.floats(-10, 10, allow_nan=False).map(
        lambda x: 0.0 if abs(x) < 1.0 else x  # inject plenty of exact zeros
    ),
)


@given(dense_matrices)
@settings(max_examples=60, deadline=None)
def test_csr_roundtrip_property(a):
    np.testing.assert_array_equal(CSRMatrix.from_dense(a).to_dense(), a)


@given(dense_matrices)
@settings(max_examples=60, deadline=None)
def test_csc_roundtrip_property(a):
    np.testing.assert_array_equal(CSCMatrix.from_dense(a).to_dense(), a)


@given(dense_matrices, st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_csr_matmul_property(a, ncols):
    rng = np.random.default_rng(0)
    b = rng.standard_normal((a.shape[1], ncols))
    np.testing.assert_allclose(
        CSRMatrix.from_dense(a).matmul_dense(b), a @ b, atol=1e-9
    )


@given(dense_matrices)
@settings(max_examples=40, deadline=None)
def test_csr_csc_agree(a):
    assert CSRMatrix.from_dense(a).nnz == CSCMatrix.from_dense(a).nnz
    np.testing.assert_array_equal(
        CSRMatrix.from_dense(a).to_dense(), CSCMatrix.from_dense(a).to_dense()
    )
