"""Tests for the pluggable wave executors (inline / threaded / process).

The contract under test: every concurrent executor produces
**bit-identical** outputs to ``inline`` for any wave list (the math is a
fixed per-wave chain of ``tw_gemm`` calls regardless of which thread or
process runs it).  ``threaded`` must genuinely overlap device slots in
wall-time — verified with paced steps whose sleeps must overlap across
slots — and ``process`` must round-trip waves through real worker
processes (including via shared-memory arenas, covered in
``test_arena.py`` / ``test_faults.py``).
"""

import time

import numpy as np
import pytest

from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.formats.tiled import TiledTWMatrix
from repro.runtime.executor import (
    EXECUTORS,
    Executor,
    InlineExecutor,
    ProcessExecutor,
    ThreadedExecutor,
    WaveStep,
    WaveTask,
    available_executors,
    resolve_executor,
)
from repro.runtime.scheduler import build_execution_plan


@pytest.fixture(scope="module")
def process_pool():
    """One shared 2-worker process executor — spawn cost paid once."""
    ex = ProcessExecutor(workers=2)
    yield ex
    ex.close()


def _tw_layer(rng, k=24, n=24, g=8, sparsity=0.5):
    dense = rng.standard_normal((k, n))
    step = tw_prune_step([np.abs(dense)], sparsity, TWPruneConfig(granularity=g))
    tw = TiledTWMatrix.from_masks(dense, g, step.col_keeps[0], step.row_masks[0])
    return tw, build_execution_plan(tw)


def _tasks(rng, n_layers=4, n_waves=3, slots=(0, 0, 1, 1), dwell=0.0, k=24):
    layers = [_tw_layer(rng, k=k) for _ in range(n_layers)]
    tasks = []
    for w in range(n_waves):
        steps = tuple(
            WaveStep(
                layer=i, tw=tw, plan=plan, slot=slots[i % len(slots)],
                label=f"dev#{slots[i % len(slots)]}", dwell_s=dwell,
            )
            for i, (tw, plan) in enumerate(layers)
        )
        tasks.append(WaveTask(index=w, batch=rng.standard_normal((3, k)), steps=steps))
    return tasks


class TestRegistry:
    def test_names_and_aliases(self):
        assert available_executors() == ["inline", "process", "threaded"]
        assert EXECUTORS.canonical("serial") == "inline"
        assert EXECUTORS.canonical("threads") == "threaded"
        assert EXECUTORS.canonical("mp") == "process"
        with pytest.raises(KeyError):
            EXECUTORS.canonical("gpu")

    def test_resolve_returns_instances(self):
        assert isinstance(resolve_executor(None), InlineExecutor)
        assert isinstance(resolve_executor("inline"), InlineExecutor)
        threaded = resolve_executor("threaded", workers=2)
        assert isinstance(threaded, ThreadedExecutor)
        assert threaded.workers == 2

    def test_resolve_passes_instances_through(self):
        ex = ThreadedExecutor(workers=3)
        assert resolve_executor(ex) is ex
        with pytest.raises(ValueError):
            resolve_executor(ex, workers=2)  # knobs belong to the instance

    def test_resolve_rejects_bad_types(self):
        with pytest.raises(TypeError) as exc_info:
            resolve_executor(42)
        # the error names the registry entries (ISSUE 7 satellite)
        message = str(exc_info.value)
        for name in available_executors():
            assert name in message

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(workers=0)
        with pytest.raises(ValueError):
            ThreadedExecutor(inflight=0)

    def test_validation_reports_all_problems_at_once(self):
        # first-wins reporting made callers fix one option per crash; the
        # aggregated error names every bad value (ISSUE 7 satellite)
        with pytest.raises(ValueError) as exc_info:
            ThreadedExecutor(workers=0, inflight=-3, watchdog_s=float("nan"))
        message = str(exc_info.value)
        assert "workers" in message
        assert "inflight" in message
        assert "watchdog_s" in message

    def test_process_validation_reports_all_problems_at_once(self):
        with pytest.raises(ValueError) as exc_info:
            ProcessExecutor(
                workers=0, blas_threads=-1, start_method="teleport"
            )
        message = str(exc_info.value)
        assert "workers" in message
        assert "blas_threads" in message
        assert "start_method" in message

    def test_describe(self):
        assert InlineExecutor().describe() == "inline"
        assert "2" in ThreadedExecutor(workers=2).describe()
        desc = ProcessExecutor(workers=2, blas_threads=0).describe()
        assert "process" in desc and "unpinned" in desc


class TestBitIdentity:
    @pytest.mark.parametrize(
        "slots",
        [
            (0, 0, 0, 0),  # single slot
            (0, 0, 1, 1),  # two contiguous shards
            (0, 1, 2, 3),  # one slot per layer
        ],
    )
    def test_threaded_matches_inline(self, slots):
        rng = np.random.default_rng(0)
        tasks = _tasks(rng, slots=slots)
        want = InlineExecutor().run(tasks)
        got = ThreadedExecutor().run(tasks)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.output, w.output)

    def test_fewer_workers_than_slots_fold(self):
        rng = np.random.default_rng(1)
        tasks = _tasks(rng, slots=(0, 1, 2, 3))
        want = InlineExecutor().run(tasks)
        got = ThreadedExecutor(workers=2).run(tasks)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.output, w.output)

    def test_bounded_inflight_still_correct(self):
        rng = np.random.default_rng(2)
        tasks = _tasks(rng, n_waves=6, slots=(0, 0, 1, 1))
        want = InlineExecutor().run(tasks)
        got = ThreadedExecutor(inflight=1).run(tasks)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.output, w.output)

    def test_empty_task_list(self):
        assert ThreadedExecutor().run([]) == []
        assert InlineExecutor().run([]) == []

    def test_zero_layer_wave_passes_batch_through(self):
        rng = np.random.default_rng(3)
        batch = rng.standard_normal((2, 5))
        tasks = [WaveTask(index=0, batch=batch, steps=())]
        for executor in (InlineExecutor(), ThreadedExecutor()):
            (result,) = executor.run(tasks)
            np.testing.assert_array_equal(result.output, batch)
            assert result.done_at > 0


class TestAccounting:
    def test_busy_and_gemm_counts_match_inline(self):
        rng = np.random.default_rng(4)
        tasks = _tasks(rng, n_waves=2, slots=(0, 0, 1, 1))
        inline = InlineExecutor().run(tasks)
        threaded = ThreadedExecutor().run(tasks)
        for i, t in zip(inline, threaded):
            assert i.gemms_by_label == t.gemms_by_label
            assert set(i.busy_by_label) == set(t.busy_by_label)
            assert all(v > 0 for v in t.busy_by_label.values())

    def test_dwell_floors_slot_occupancy(self):
        rng = np.random.default_rng(5)
        dwell = 0.02
        tasks = _tasks(rng, n_layers=2, n_waves=1, slots=(0, 1), dwell=dwell)
        (result,) = InlineExecutor().run(tasks)
        for label in ("dev#0", "dev#1"):
            assert result.busy_by_label[label] >= dwell


class TestOverlap:
    """Paced steps must overlap across slots in measured wall-time.

    Sleeps release the GIL, so these hold even on a single-core host; the
    margins are generous to absorb scheduler jitter.
    """

    def test_replicated_style_waves_overlap(self):
        rng = np.random.default_rng(6)
        dwell = 0.04
        layers = [_tw_layer(rng)]
        tasks = []
        for w in range(4):  # waves alternate slots, one segment each
            (tw, plan) = layers[0]
            steps = (
                WaveStep(layer=0, tw=tw, plan=plan, slot=w % 2,
                         label=f"dev#{w % 2}", dwell_s=dwell),
            )
            tasks.append(
                WaveTask(index=w, batch=rng.standard_normal((3, 24)), steps=steps)
            )
        t0 = time.perf_counter()
        InlineExecutor().run(tasks)
        inline_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        ThreadedExecutor().run(tasks)
        threaded_s = time.perf_counter() - t0
        assert inline_s >= 4 * dwell * 0.9
        # two slots -> two waves each, overlapped: well under the serial sum
        assert threaded_s < inline_s * 0.75

    def test_sharded_pipeline_streams_waves(self):
        rng = np.random.default_rng(7)
        dwell = 0.03
        tasks = _tasks(rng, n_layers=2, n_waves=4, slots=(0, 1), dwell=dwell)
        t0 = time.perf_counter()
        ThreadedExecutor().run(tasks)
        threaded_s = time.perf_counter() - t0
        # lock-step would cost 8 dwells; a streamed 2-stage pipeline over 4
        # waves costs ~5 -> anything clearly below 8 proves streaming
        assert threaded_s < 8 * dwell * 0.85


class TestErrors:
    """Executors record step failures per result instead of raising: the
    caller accounts the completed work, then surfaces the error itself."""

    def test_worker_exception_recorded_on_result(self):
        rng = np.random.default_rng(8)
        tasks = _tasks(rng, n_waves=2)
        bad = WaveTask(
            index=2, batch=rng.standard_normal((3, 7)), steps=tasks[0].steps
        )  # K mismatch -> tw_gemm raises inside a worker
        results = ThreadedExecutor().run(tasks + [bad])
        assert isinstance(results[2].error, ValueError)
        want = InlineExecutor().run(tasks)
        for got, ref in zip(results[:2], want):
            assert got.error is None
            np.testing.assert_array_equal(got.output, ref.output)

    def test_inline_stops_pulling_after_error(self):
        rng = np.random.default_rng(9)
        tasks = _tasks(rng, n_waves=2)
        bad = WaveTask(
            index=9, batch=rng.standard_normal((3, 7)), steps=tasks[0].steps
        )
        pulled = []

        def stream():
            for t in [tasks[0], bad, tasks[1]]:
                pulled.append(t.index)
                yield t

        results = InlineExecutor().run(stream())
        assert len(results) == 2  # the tail was never pulled
        assert pulled == [0, 9]
        assert results[0].error is None
        assert isinstance(results[1].error, ValueError)

    def test_base_executor_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Executor().run([])


class TestPersistentWorkers:
    def test_threads_reused_across_runs(self):
        rng = np.random.default_rng(10)
        ex = ThreadedExecutor()
        first = ex.run(_tasks(rng, n_waves=2, slots=(0, 0, 1, 1)))
        n_threads = len(ex._threads)
        assert n_threads == 2  # one per slot
        second = ex.run(_tasks(rng, n_waves=2, slots=(0, 0, 1, 1)))
        assert len(ex._threads) == n_threads  # reused, not respawned
        assert all(r.error is None for r in first + second)

    def test_lazy_pull_respects_inflight_window(self):
        rng = np.random.default_rng(11)
        tasks = _tasks(rng, n_waves=6, slots=(0, 0, 0, 0), dwell=0.01)
        pulled_at = []

        def stream():
            for t in tasks:
                pulled_at.append(time.perf_counter())
                yield t

        ex = ThreadedExecutor(inflight=1)
        results = ex.run(stream())
        assert len(results) == 6
        # window of 1: admitting wave i-1 waited for wave i-2 to finish,
        # so the driver can never slurp the whole stream upfront
        for i in range(2, len(tasks)):
            assert results[i - 2].done_at <= pulled_at[i]


class TestProcessExecutor:
    """`process` must match the `inline` oracle bit-for-bit.

    The module-scoped pool keeps spawn cost to one pair of workers for the
    whole class; chaos behaviour (worker kill, arena leaks) lives in
    ``test_faults.py``/``test_arena.py``.
    """

    @pytest.mark.parametrize(
        "slots",
        [
            (0, 0, 0, 0),  # single slot
            (0, 0, 1, 1),  # two contiguous shards
            (0, 1, 2, 3),  # one slot per layer (folds onto 2 workers)
        ],
    )
    def test_process_matches_inline(self, process_pool, slots):
        rng = np.random.default_rng(20)
        tasks = _tasks(rng, slots=slots)
        want = InlineExecutor().run(tasks)
        got = process_pool.run(tasks)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g.error is None
            np.testing.assert_array_equal(g.output, w.output)

    def test_pool_reused_across_runs(self, process_pool):
        rng = np.random.default_rng(21)
        tasks = _tasks(rng, n_waves=2, slots=(0, 0, 1, 1))
        first = process_pool.run(tasks)
        pids = [p.pid for p in process_pool._procs]
        second = process_pool.run(tasks)
        assert [p.pid for p in process_pool._procs] == pids
        assert all(r.error is None for r in first + second)
        for f, s in zip(first, second):
            np.testing.assert_array_equal(f.output, s.output)

    def test_accounting_matches_inline(self, process_pool):
        rng = np.random.default_rng(22)
        tasks = _tasks(rng, n_waves=2, slots=(0, 0, 1, 1))
        inline = InlineExecutor().run(tasks)
        got = process_pool.run(tasks)
        for i, g in zip(inline, got):
            assert i.gemms_by_label == g.gemms_by_label
            assert set(i.busy_by_label) == set(g.busy_by_label)
            assert all(v > 0 for v in g.busy_by_label.values())

    def test_worker_exception_recorded_on_result(self, process_pool):
        rng = np.random.default_rng(23)
        tasks = _tasks(rng, n_waves=2)
        bad = WaveTask(
            index=2, batch=rng.standard_normal((3, 7)), steps=tasks[0].steps
        )  # K mismatch -> tw_gemm raises inside the worker process
        results = process_pool.run(tasks + [bad])
        assert isinstance(results[2].error, ValueError)
        want = InlineExecutor().run(tasks)
        for got, ref in zip(results[:2], want):
            assert got.error is None
            np.testing.assert_array_equal(got.output, ref.output)
        # and the pool still serves clean work afterwards
        after = process_pool.run(_tasks(np.random.default_rng(24), n_waves=1))
        assert after[0].error is None

    def test_zero_layer_wave_passes_batch_through(self, process_pool):
        rng = np.random.default_rng(25)
        batch = rng.standard_normal((2, 5))
        (result,) = process_pool.run([WaveTask(index=0, batch=batch, steps=())])
        assert result.error is None
        np.testing.assert_array_equal(result.output, batch)

    def test_empty_task_list(self, process_pool):
        assert process_pool.run([]) == []

    def test_close_is_idempotent(self):
        ex = ProcessExecutor(workers=1)
        (result,) = ex.run(_tasks(np.random.default_rng(26), n_waves=1,
                                  slots=(0, 0, 0, 0)))
        assert result.error is None
        ex.close()
        ex.close()
        assert ex._procs == []

    def test_warm_boots_the_whole_pool_and_runs_reuse_it(self):
        ex = ProcessExecutor(workers=2)
        try:
            ex.warm()  # blocking handshake: every worker is live after this
            assert len(ex._procs) == 2
            assert all(p.is_alive() for p in ex._procs)
            pids = [p.pid for p in ex._procs]
            results = ex.run(_tasks(np.random.default_rng(27), n_waves=2))
            assert all(r.error is None for r in results)
            assert [p.pid for p in ex._procs] == pids  # no respawn
        finally:
            ex.close()

    def test_warm_is_a_noop_for_in_process_executors(self):
        InlineExecutor().warm()
        ThreadedExecutor(workers=2).warm()
        ProcessExecutor().warm()  # unbounded pool: nothing to pre-boot
