"""Unit and property tests for BSR and TiledTW formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import BSRMatrix, TiledTWMatrix


def block_sparse_dense(rng, grid, block, density):
    """Dense matrix whose zero structure is exactly block-granular."""
    nbr, nbc = grid
    br, bc = block
    keep = rng.random((nbr, nbc)) < density
    blocks = rng.standard_normal((nbr, nbc, br, bc))
    # guarantee kept blocks are non-zero somewhere
    blocks[..., 0, 0] = np.where(blocks[..., 0, 0] == 0, 1.0, blocks[..., 0, 0])
    blocks *= keep[:, :, None, None]
    return blocks.transpose(0, 2, 1, 3).reshape(nbr * br, nbc * bc), keep


class TestBSR:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        dense, _ = block_sparse_dense(rng, (3, 4), (2, 2), 0.5)
        bsr = BSRMatrix.from_dense(dense, (2, 2))
        np.testing.assert_array_equal(bsr.to_dense(), dense)

    def test_block_counts(self):
        rng = np.random.default_rng(1)
        dense, keep = block_sparse_dense(rng, (4, 4), (3, 3), 0.4)
        bsr = BSRMatrix.from_dense(dense, (3, 3))
        assert bsr.n_blocks == int(keep.sum())
        assert bsr.block_density == pytest.approx(keep.mean())
        assert bsr.grid_shape == (4, 4)

    def test_dense_matrix_all_blocks(self):
        dense = np.ones((4, 6))
        bsr = BSRMatrix.from_dense(dense, (2, 3))
        assert bsr.n_blocks == 4
        assert bsr.block_sparsity == 0.0

    def test_empty_matrix_no_blocks(self):
        bsr = BSRMatrix.from_dense(np.zeros((4, 4)), (2, 2))
        assert bsr.n_blocks == 0
        assert bsr.sparsity == 1.0

    def test_indivisible_shape_raises(self):
        with pytest.raises(ValueError):
            BSRMatrix.from_dense(np.zeros((5, 4)), (2, 2))

    def test_bad_block_shape_raises(self):
        with pytest.raises(ValueError):
            BSRMatrix.from_dense(np.zeros((4, 4)), (0, 2))

    def test_left_matmul_matches_numpy(self):
        rng = np.random.default_rng(2)
        dense, _ = block_sparse_dense(rng, (3, 5), (4, 4), 0.5)
        x = rng.standard_normal((6, 12))
        bsr = BSRMatrix.from_dense(dense, (4, 4))
        np.testing.assert_allclose(bsr.left_matmul_dense(x), x @ dense, atol=1e-12)

    def test_left_matmul_shape_mismatch(self):
        bsr = BSRMatrix.from_dense(np.ones((4, 4)), (2, 2))
        with pytest.raises(ValueError):
            bsr.left_matmul_dense(np.ones((2, 6)))

    def test_element_sparsity_counts_intrablock_zeros(self):
        dense = np.zeros((2, 2))
        dense[0, 0] = 1.0
        bsr = BSRMatrix.from_dense(dense, (2, 2))
        assert bsr.n_blocks == 1
        assert bsr.sparsity == pytest.approx(0.75)

    def test_block_row_counts(self):
        dense = np.zeros((4, 4))
        dense[0, 0] = 1.0  # block (0,0)
        bsr = BSRMatrix.from_dense(dense, (2, 2))
        np.testing.assert_array_equal(bsr.block_row_counts(), [1, 0])


class TestTiledTW:
    def _make(self, rng, k=8, n=12, g=4, col_density=0.7, row_density=0.6, reorganize=True):
        dense = rng.standard_normal((k, n))
        col_keep = rng.random(n) < col_density
        groups = TiledTWMatrix.column_groups(col_keep, g, reorganize=reorganize)
        row_masks = [rng.random(k) < row_density for _ in groups]
        tw = TiledTWMatrix.from_masks(
            dense, g, col_keep, row_masks, reorganize=reorganize
        )
        return dense, col_keep, row_masks, tw

    def test_roundtrip_against_element_mask(self):
        rng = np.random.default_rng(0)
        dense, _, _, tw = self._make(rng)
        np.testing.assert_array_equal(tw.to_dense(), dense * tw.element_mask())

    def test_reorganized_widths_uniform_except_last(self):
        rng = np.random.default_rng(1)
        _, col_keep, _, tw = self._make(rng, n=20, g=4)
        widths = tw.kept_widths()
        survivors = int(col_keep.sum())
        assert widths.sum() == survivors
        if len(widths) > 1:
            assert all(w == 4 for w in widths[:-1])

    def test_fixed_boundary_widths_ragged(self):
        rng = np.random.default_rng(2)
        dense = rng.standard_normal((4, 8))
        col_keep = np.array([1, 1, 0, 0, 1, 1, 1, 1], dtype=bool)
        groups = TiledTWMatrix.column_groups(col_keep, 4, reorganize=False)
        assert [g.size for g in groups] == [2, 4]
        row_masks = [np.ones(4, dtype=bool)] * 2
        tw = TiledTWMatrix.from_masks(dense, 4, col_keep, row_masks, reorganize=False)
        np.testing.assert_array_equal(tw.kept_widths(), [2, 4])

    def test_column_groups_drop_empty_panels(self):
        col_keep = np.array([0, 0, 0, 0, 1, 1, 0, 0], dtype=bool)
        groups = TiledTWMatrix.column_groups(col_keep, 4, reorganize=False)
        assert len(groups) == 1
        np.testing.assert_array_equal(groups[0], [4, 5])

    def test_sparsity_accounting(self):
        rng = np.random.default_rng(3)
        dense, _, _, tw = self._make(rng, k=10, n=16, g=4)
        mask = tw.element_mask()
        assert tw.sparsity == pytest.approx(1.0 - mask.mean())
        assert tw.flops_fraction == pytest.approx(mask.mean())

    def test_paper_fig4_reorganization_example(self):
        # Paper §IV-A: 4 tiles of width G, column-pruned by 4,3,2,1 columns.
        # After reorganisation the widths must be G, G, G, G-10.
        g = 16
        n = 4 * g
        rng = np.random.default_rng(4)
        col_keep = np.ones(n, dtype=bool)
        for tile, n_pruned in enumerate([4, 3, 2, 1]):
            pruned = rng.choice(np.arange(tile * g, (tile + 1) * g), n_pruned, replace=False)
            col_keep[pruned] = False
        groups = TiledTWMatrix.column_groups(col_keep, g, reorganize=True)
        assert [grp.size for grp in groups] == [g, g, g, g - 10]

    def test_overlapping_tiles_rejected(self):
        from repro.formats.tiled import TWTile

        k = 4
        tile = TWTile(
            col_indices=np.array([0, 1], dtype=np.int64),
            mask_k=np.ones(k, dtype=bool),
            data=np.zeros((k, 2)),
        )
        with pytest.raises(ValueError):
            TiledTWMatrix(shape=(k, 4), granularity=2, tiles=(tile, tile))

    def test_tile_width_exceeding_granularity_rejected(self):
        from repro.formats.tiled import TWTile

        tile = TWTile(
            col_indices=np.arange(3, dtype=np.int64),
            mask_k=np.ones(2, dtype=bool),
            data=np.zeros((2, 3)),
        )
        with pytest.raises(ValueError):
            TiledTWMatrix(shape=(2, 4), granularity=2, tiles=(tile,))

    def test_tile_data_shape_must_match_masks(self):
        from repro.formats.tiled import TWTile

        with pytest.raises(ValueError):
            TWTile(
                col_indices=np.arange(2, dtype=np.int64),
                mask_k=np.ones(3, dtype=bool),
                data=np.zeros((2, 2)),
            )

    def test_width_groups_batching_key(self):
        rng = np.random.default_rng(5)
        _, _, _, tw = self._make(rng, n=24, g=4)
        groups = tw.width_groups()
        assert sum(len(v) for v in groups.values()) == tw.n_tiles
        for width, idxs in groups.items():
            for i in idxs:
                assert tw.tiles[i].kept_n == width

    def test_load_imbalance_balanced_case(self):
        dense = np.ones((4, 8))
        col_keep = np.ones(8, dtype=bool)
        row_masks = [np.ones(4, dtype=bool)] * 2
        tw = TiledTWMatrix.from_masks(dense, 4, col_keep, row_masks)
        assert tw.load_imbalance() == pytest.approx(1.0)

    def test_load_imbalance_skewed_case(self):
        dense = np.ones((4, 8))
        col_keep = np.ones(8, dtype=bool)
        row_masks = [np.ones(4, dtype=bool), np.array([1, 0, 0, 0], dtype=bool)]
        tw = TiledTWMatrix.from_masks(dense, 4, col_keep, row_masks)
        assert tw.load_imbalance() > 1.0

    def test_memory_bytes_scaling(self):
        rng = np.random.default_rng(6)
        _, _, _, tw = self._make(rng)
        assert tw.memory_bytes(dtype_bytes=4) > tw.memory_bytes(dtype_bytes=2) / 2

    def test_all_columns_pruned(self):
        dense = np.ones((4, 8))
        col_keep = np.zeros(8, dtype=bool)
        tw = TiledTWMatrix.from_masks(dense, 4, col_keep, [])
        assert tw.n_tiles == 0
        assert tw.sparsity == 1.0
        np.testing.assert_array_equal(tw.to_dense(), np.zeros((4, 8)))

    def test_mismatched_row_mask_count_raises(self):
        dense = np.ones((4, 8))
        col_keep = np.ones(8, dtype=bool)
        with pytest.raises(ValueError):
            TiledTWMatrix.from_masks(dense, 4, col_keep, [np.ones(4, dtype=bool)])


@given(
    st.integers(2, 10),
    st.integers(2, 16),
    st.integers(1, 5),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_tiled_roundtrip_property(k, n, g, seed):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((k, n))
    col_keep = rng.random(n) < 0.7
    groups = TiledTWMatrix.column_groups(col_keep, g)
    row_masks = [rng.random(k) < 0.6 for _ in groups]
    tw = TiledTWMatrix.from_masks(dense, g, col_keep, row_masks)
    # every kept element survives; every pruned element is zero
    mask = tw.element_mask()
    np.testing.assert_array_equal(tw.to_dense(), dense * mask)
    # column accounting: a column is present iff kept and owned by some tile
    assert tw.kept_columns == int(col_keep.sum())
    # sparsity in [0, 1]
    assert 0.0 <= tw.sparsity <= 1.0


@given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_bsr_roundtrip_property(nbr, nbc, seed):
    rng = np.random.default_rng(seed)
    dense, _ = block_sparse_dense(rng, (nbr, nbc), (2, 3), 0.5)
    bsr = BSRMatrix.from_dense(dense, (2, 3))
    np.testing.assert_array_equal(bsr.to_dense(), dense)
    x = rng.standard_normal((3, dense.shape[0]))
    np.testing.assert_allclose(bsr.left_matmul_dense(x), x @ dense, atol=1e-9)
