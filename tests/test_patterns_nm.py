"""Tests for the N:M structured-sparsity extension pattern."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import ElementWisePattern, NMSparsityPattern, VectorWisePattern


class TestNMPattern:
    def test_fixed_sparsity(self):
        assert NMSparsityPattern(2, 4).fixed_sparsity == pytest.approx(0.5)
        assert NMSparsityPattern(1, 4).fixed_sparsity == pytest.approx(0.75)

    def test_exact_quota_per_group(self):
        rng = np.random.default_rng(0)
        scores = np.abs(rng.standard_normal((32, 8)))
        nm = NMSparsityPattern(2, 4)
        res = nm.prune([scores])
        assert nm.validate_mask(res.masks[0])
        assert res.achieved_sparsity == pytest.approx(0.5)

    def test_keeps_largest_in_group(self):
        scores = np.array([[4.0], [1.0], [3.0], [2.0]])
        res = NMSparsityPattern(2, 4).prune([scores])
        np.testing.assert_array_equal(
            res.masks[0][:, 0], [True, False, True, False]
        )

    def test_sparsity_argument_validated(self):
        nm = NMSparsityPattern(2, 4)
        with pytest.raises(ValueError):
            nm.prune([np.ones((8, 2))], 0.75)  # 2:4 can only do 0.5
        res = nm.prune([np.ones((8, 2))], 0.5)  # exact level accepted
        assert res.achieved_sparsity == pytest.approx(0.5)

    def test_ragged_tail_quota(self):
        rng = np.random.default_rng(1)
        scores = np.abs(rng.standard_normal((10, 4)))  # 2 full groups + 2 tail
        res = NMSparsityPattern(2, 4).prune([scores])
        tail = res.masks[0][8:]
        assert np.all(tail.sum(axis=0) == 1)  # round(2/4 * 2) = 1 per column

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            NMSparsityPattern(0, 4)
        with pytest.raises(ValueError):
            NMSparsityPattern(5, 4)
        with pytest.raises(ValueError):
            NMSparsityPattern(2, 0)

    def test_validate_mask_rejects_wrong_quota(self):
        nm = NMSparsityPattern(2, 4)
        mask = np.ones((8, 2), dtype=bool)  # 4 per group, not 2
        assert not nm.validate_mask(mask)

    def test_validate_mask_shape_check(self):
        with pytest.raises(ValueError):
            NMSparsityPattern(2, 4).validate_mask(np.ones(8, dtype=bool))

    def test_nm_is_vw_special_case(self):
        """2:4 keeps exactly what VW(vector=4) keeps at 50% sparsity."""
        rng = np.random.default_rng(2)
        scores = np.abs(rng.standard_normal((16, 4)))
        nm_mask = NMSparsityPattern(2, 4).prune([scores]).masks[0]
        vw_mask = VectorWisePattern(vector_size=4).prune([scores], 0.5).masks[0]
        np.testing.assert_array_equal(nm_mask, vw_mask)

    def test_irregularity_ordering_vs_ew(self):
        """EW captures at least as much score mass as N:M at equal
        sparsity (the paper's irregularity argument extended)."""
        rng = np.random.default_rng(3)
        scores = np.abs(rng.standard_normal((64, 16))) * np.exp(
            rng.standard_normal(16)
        )[None, :]
        nm_mask = NMSparsityPattern(2, 4).prune([scores]).masks[0]
        ew_mask = ElementWisePattern().prune([scores], 0.5).masks[0]
        assert scores[ew_mask].sum() >= scores[nm_mask].sum()


@given(
    st.integers(1, 4),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_nm_quota_property(n, seed):
    m = 4
    n = min(n, m)
    rng = np.random.default_rng(seed)
    scores = np.abs(rng.standard_normal((24, 6)))
    nm = NMSparsityPattern(n, m)
    mask = nm.prune([scores]).masks[0]
    assert nm.validate_mask(mask)
    # kept entries dominate dropped entries inside each group
    body = scores[:24].reshape(6, 4, 6)
    bmask = mask[:24].reshape(6, 4, 6)
    for g in range(6):
        for c in range(6):
            kept = body[g, :, c][bmask[g, :, c]]
            dropped = body[g, :, c][~bmask[g, :, c]]
            if kept.size and dropped.size:
                assert kept.min() >= dropped.max() - 1e-12
