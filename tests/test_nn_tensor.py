"""Gradient-check tests for the autodiff engine.

Every op's analytic gradient is validated against central finite
differences — the ground truth for the whole nn stack.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, no_grad


def numerical_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued f at x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        hi = f(x)
        x[i] = old - eps
        lo = f(x)
        x[i] = old
        g[i] = (hi - lo) / (2 * eps)
    return g


def check_grad(op, *shapes, seed=0, atol=1e-5):
    """Compare autodiff and numerical gradients of sum(op(xs))."""
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(s) * 0.5 + 0.75 for s in shapes]  # keep >0-ish
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = op(*tensors)
    out.sum().backward()
    for i, (t, a) in enumerate(zip(tensors, arrays)):
        def f(x, i=i):
            args = [Tensor(arr) for arr in arrays]
            args[i] = Tensor(x)
            return op(*args).sum().item()

        num = numerical_grad(f, a.copy())
        np.testing.assert_allclose(t.grad, num, atol=atol, err_msg=f"operand {i}")


class TestArithmeticGrads:
    def test_add(self):
        check_grad(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_grad(lambda a, b: a + b, (3, 4), (4,))
        check_grad(lambda a, b: a + b, (2, 3, 4), (3, 1))

    def test_mul(self):
        check_grad(lambda a, b: a * b, (3, 4), (3, 4))

    def test_mul_broadcast(self):
        check_grad(lambda a, b: a * b, (3, 4), (1, 4))

    def test_sub_neg(self):
        check_grad(lambda a, b: a - b, (2, 3), (2, 3))
        check_grad(lambda a: -a, (4,))

    def test_div(self):
        check_grad(lambda a, b: a / b, (3, 3), (3, 3))

    def test_pow(self):
        check_grad(lambda a: a**3, (3, 2))
        check_grad(lambda a: a**0.5, (4,))

    def test_matmul(self):
        check_grad(lambda a, b: a @ b, (3, 4), (4, 5))

    def test_matmul_batched(self):
        check_grad(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5))

    def test_matmul_broadcast_rhs(self):
        check_grad(lambda a, b: a @ b, (2, 3, 4), (4, 5))

    def test_scalar_coercion(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = (2.0 * t + 1.0 - 0.5) / 2.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 1.0])


class TestNonlinearityGrads:
    def test_exp(self):
        check_grad(lambda a: a.exp(), (3, 3))

    def test_log(self):
        check_grad(lambda a: (a * a + 1.0).log(), (3, 3))

    def test_tanh(self):
        check_grad(lambda a: a.tanh(), (3, 3))

    def test_sigmoid(self):
        check_grad(lambda a: a.sigmoid(), (3, 3))

    def test_relu(self):
        # avoid kink at 0 by shifting
        check_grad(lambda a: (a + 5.0).relu() + (a - 5.0).relu(), (3, 3))

    def test_sqrt(self):
        check_grad(lambda a: (a * a + 1.0).sqrt(), (2, 2))


class TestShapeGrads:
    def test_sum_all(self):
        check_grad(lambda a: a.sum() * Tensor(np.ones(())), (3, 4))

    def test_sum_axis(self):
        check_grad(lambda a: a.sum(axis=0), (3, 4))
        check_grad(lambda a: a.sum(axis=1, keepdims=True), (3, 4))
        check_grad(lambda a: a.sum(axis=(0, 2)), (2, 3, 4))

    def test_mean(self):
        check_grad(lambda a: a.mean(axis=-1), (3, 4))
        check_grad(lambda a: a.mean(), (5,))

    def test_reshape(self):
        check_grad(lambda a: a.reshape(6, 2) @ Tensor(np.ones((2, 3))), (3, 4))

    def test_transpose(self):
        check_grad(lambda a: a.T @ Tensor(np.ones((3, 2))), (3, 4))
        check_grad(lambda a: a.transpose(1, 0, 2).sum(axis=0), (2, 3, 4))

    def test_getitem(self):
        check_grad(lambda a: a[1:, :2] * 3.0, (3, 4))

    def test_concat(self):
        check_grad(lambda a, b: Tensor.concat([a, b], axis=1), (2, 3), (2, 2))

    def test_masked_fill(self):
        mask = np.array([[True, False], [False, True]])
        check_grad(lambda a: a.masked_fill(mask, -9.0), (2, 2))


class TestEmbedding:
    def test_gather_and_scatter(self):
        table = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        ids = np.array([[0, 2], [2, 3]])
        out = Tensor.embedding(table, ids)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        # row 2 gathered twice -> grad 2, rows 0/3 once, row 1 never
        np.testing.assert_allclose(table.grad[:, 0], [1, 0, 2, 1])

    def test_rejects_float_ids(self):
        table = Tensor(np.ones((4, 3)), requires_grad=True)
        with pytest.raises(TypeError):
            Tensor.embedding(table, np.array([0.5]))


class TestEngine:
    def test_grad_accumulates_on_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0  # dy/dx = 2x + 3 = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        out = a * b  # 6 x^2 -> d/dx = 12x = 18
        out.backward()
        np.testing.assert_allclose(x.grad, [18.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(4), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()  # iterative DFS must not overflow
        np.testing.assert_allclose(x.grad, np.ones(4))

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_item_and_props(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert Tensor(3.5).item() == 3.5
        assert "shape" in repr(t)

    def test_explicit_seed_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 4.0
        y.backward(np.full((2, 2), 0.5))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 2.0))


@given(
    st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_composite_gradcheck_property(m, k, n, seed):
    """Random composite expression: matmul + tanh + mean."""
    rng = np.random.default_rng(seed)
    a_data = rng.standard_normal((m, k))
    b_data = rng.standard_normal((k, n))
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    ((a @ b).tanh().mean()).backward()

    def f_a(x):
        return np.tanh(x @ b_data).mean()

    num = numerical_grad(f_a, a_data.copy())
    np.testing.assert_allclose(a.grad, num, atol=1e-5)
