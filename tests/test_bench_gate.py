"""Opt-in CI gate: diff a fresh hot-path bench run against the baseline.

Deselected by default (see ``addopts`` in ``pytest.ini``); run with::

    PYTHONPATH=src python -m pytest -m bench_gate

This wraps ``benchmarks/check_bench.py`` — the ROADMAP perf-trajectory
contract — as a pytest target so CI harnesses can gate on it without a
bespoke script step.  The quick sweep keeps the gate to a few seconds;
only configs present in both records are compared, so a full baseline
and a quick fresh run compose correctly.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.mark.bench_gate
def test_no_production_timing_regressed():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "benchmarks" / "check_bench.py"),
            "--quick",
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, (
        f"perf regression vs BENCH_hotpaths.json:\n{proc.stdout}\n{proc.stderr}"
    )
