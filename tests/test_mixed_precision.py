"""Mixed-precision pipeline + fused epilogues (ISSUE 9).

The dtype matrix: every storage dtype ``{float64, float32, float16,
int8}`` through every execution surface ``{compile→run, serve,
serve-async (ingress), process executor}`` must agree with the float64
oracle within the documented per-dtype tolerance
(:data:`repro.kernels.masked.DTYPE_TOLERANCES`; int8 within its
quantisation-error bound).  Fused epilogues must be bit-identical to
their unfused ``*_reference`` compositions in float64 on every surface.

pytest-asyncio is not a dependency; async bodies run under
``asyncio.run`` inside plain sync tests.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro
from repro.kernels import tw_gemm
from repro.kernels.fusion import (
    EPILOGUES,
    EpilogueSpec,
    apply_epilogue,
    layernorm,
    resolve_epilogue_spec,
)
from repro.kernels.masked import DTYPE_TOLERANCES
from repro.runtime import arena
from repro.runtime.server import ServerConfig

DTYPES = ["float64", "float32", "float16", "int8"]

#: end-to-end (3 chained layers) error bound vs the float64 oracle, as
#: max|got-want| / max|want| — the per-GEMM DTYPE_TOLERANCES table does
#: not apply per element across a chain, where rounding compounds through
#: the weight norms; int8's bound is its quantisation error
_VS_F64_MAXREL = {
    "float64": 0.0,
    "float32": 1e-4,
    "float16": 5e-3,
    "int8": 5e-2,
}


def _stack(seed=0):
    rng = np.random.default_rng(seed)
    ws = [
        rng.standard_normal((48, 64)),
        rng.standard_normal((64, 48)),
        rng.standard_normal((48, 64)),
    ]
    x = rng.standard_normal((8, 48))
    return ws, x


def _compile(ws, dtype=None, epilogue=None):
    return repro.compile(
        ws,
        sparsity=0.5,
        granularity=8,
        dtype=None if dtype is None else np.dtype(dtype),
        epilogue=epilogue,
    )


def _serve_once(model, x, **kwargs):
    server = model.serve(**kwargs)
    try:
        server.submit(x)
        (res,) = server.flush()
        assert res.status == "ok", res
        return res.output
    finally:
        server.close()


def _serve_async(model, x):
    from repro.runtime.ingress import ServingLoop

    server = model.serve()
    try:

        async def go():
            async with ServingLoop(server) as loop:
                return await loop.submit(x)

        res = asyncio.run(go())
        assert res.status == "ok", res
        return res.output
    finally:
        server.close()


class TestDtypeMatrix:
    """Every dtype × every execution surface vs the float64 oracle."""

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_run_vs_float64_oracle(self, dtype):
        ws, x = _stack()
        want = _compile(ws).run(x)
        got = _compile(ws, dtype=dtype).run(x).astype(np.float64)
        err = np.abs(got - want).max() / np.abs(want).max()
        assert err <= _VS_F64_MAXREL[dtype], (dtype, err)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_serve_bit_identical_to_run(self, dtype):
        ws, x = _stack()
        model = _compile(ws, dtype=dtype)
        np.testing.assert_array_equal(_serve_once(model, x), model.run(x))

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_serve_async_bit_identical_to_run(self, dtype):
        ws, x = _stack()
        model = _compile(ws, dtype=dtype)
        np.testing.assert_array_equal(_serve_async(model, x), model.run(x))

    @pytest.mark.parametrize("dtype", ["float16", "int8"])
    def test_process_executor_bit_identical_to_run(self, dtype):
        # the expensive surface: spawn workers + shm arenas; reduced to the
        # two quantised dtypes (float32/float64 ride the existing executor
        # suite).  int8 exercises the arena's per-tile scale carriage.
        ws, x = _stack()
        model = _compile(ws, dtype=dtype)
        got = _serve_once(model, x, executor="process", workers=2)
        np.testing.assert_array_equal(got, model.run(x))
        assert arena.leaked_segments() == []

    def test_int8_serve_splits_storage_from_activation_dtype(self):
        ws, _ = _stack()
        model = _compile(ws, dtype="int8")
        server = model.serve()
        try:
            assert server.config.dtype == "float32"
            assert server.config.storage_dtype == "int8"
            assert server.config.resolved_storage_dtype == "int8"
        finally:
            server.close()

    def test_run_casts_activations_once_at_entry(self):
        # run() and serve() share numerics: a float64 request against a
        # float16 model computes in float16, not promoted float64
        ws, x = _stack()
        model = _compile(ws, dtype="float16")
        assert model.run(x).dtype == np.float16
        assert _compile(ws, dtype="int8").run(x).dtype == np.float32


class TestFusedEpilogues:
    """Fused consumers == unfused ``*_reference`` oracles, everywhere."""

    @pytest.mark.parametrize("name", ["bias_gelu", "bias_layernorm"])
    def test_run_bit_identical_to_unfused_reference(self, name):
        ws, x = _stack()
        model = _compile(ws, epilogue=name)
        a = np.atleast_2d(x)
        n = model.n_layers
        for i, layer in enumerate(model.layers):
            y = tw_gemm(a, layer.tw, plan=layer.plans.get(
                model.placement.device_for_layer(i, n)))
            a = apply_epilogue(y, layer.epilogue, residual=a, reference=True)
        np.testing.assert_array_equal(model.run(x), a)

    def test_residual_epilogue_through_square_stack(self):
        rng = np.random.default_rng(3)
        ws = [rng.standard_normal((48, 48)) for _ in range(2)]
        x = rng.standard_normal((6, 48))
        model = _compile(ws, epilogue="dropout_residual_layernorm")
        a = np.atleast_2d(x)
        for i, layer in enumerate(model.layers):
            y = tw_gemm(a, layer.tw, plan=layer.plans.get(
                model.placement.device_for_layer(i, model.n_layers)))
            a = apply_epilogue(y, layer.epilogue, residual=a, reference=True)
        np.testing.assert_array_equal(model.run(x), a)
        np.testing.assert_array_equal(_serve_once(model, x), model.run(x))

    def test_residual_epilogue_rejects_non_square_layers(self):
        ws, _ = _stack()
        with pytest.raises(ValueError, match="square"):
            _compile(ws, epilogue="dropout_residual_layernorm")

    @pytest.mark.parametrize(
        "kwargs", [{}, {"executor": "threaded"}, {"executor": "process", "workers": 2}]
    )
    def test_serve_matches_run_under_every_executor(self, kwargs):
        ws, x = _stack()
        model = _compile(ws, epilogue="bias_gelu")
        np.testing.assert_array_equal(
            _serve_once(model, x, **kwargs), model.run(x)
        )

    def test_per_layer_epilogue_sequence(self):
        ws, x = _stack()
        model = _compile(ws, epilogue=["bias_gelu", None, "bias_layernorm"])
        assert model.layers[0].epilogue.name == "bias_gelu"
        assert model.layers[1].epilogue is None
        assert model.layers[2].epilogue.name == "bias_layernorm"
        with pytest.raises(ValueError, match="entries"):
            _compile(ws, epilogue=["bias_gelu"])

    def test_registry_lists_all_epilogues(self):
        assert EPILOGUES.names() == [
            "bias_gelu", "bias_layernorm", "dropout_residual_layernorm",
        ]
        from repro.cli import _info_record

        assert _info_record()["registries"]["epilogues"] == EPILOGUES.names()


class TestCacheKeys:
    """Format-cache keys must split on storage dtype, never on epilogue."""

    def test_format_keys_distinct_across_storage_dtypes(self):
        ws, x = _stack()
        keys = {}
        for dtype in DTYPES:
            model = _compile(ws, dtype=dtype)
            server = model.serve()
            try:
                server.submit(x)
                server.flush()
                keys[dtype] = {
                    server._format_key(l) for l in server._layers
                }
            finally:
                server.close()
        flat = [k for ks in keys.values() for k in ks]
        assert len(flat) == len(set(flat)), "format keys collided across dtypes"

    def test_epilogue_shares_formats_but_not_outputs(self):
        # compaction/planning are epilogue-independent by design: two
        # models differing only in epilogue produce identical format keys
        # (the artifacts are shareable) yet different outputs
        ws, x = _stack()
        plain = _compile(ws)
        fused = _compile(ws, epilogue="bias_gelu")
        s_plain, s_fused = plain.serve(), fused.serve()
        try:
            k_plain = [s_plain._format_key(l) for l in s_plain._layers]
            k_fused = [s_fused._format_key(l) for l in s_fused._layers]
            assert k_plain == k_fused
        finally:
            s_plain.close()
            s_fused.close()
        assert not np.array_equal(plain.run(x), fused.run(x))

    def test_preload_rejects_mismatched_storage_dtype(self):
        ws, _ = _stack()
        model = _compile(ws, dtype="float16")
        server = model.serve()
        try:
            tw64 = _compile(ws).layers[0].tw
            assert server.preload(0, tw64) is False
            tw16 = model.layers[0].tw
            assert server.preload(0, tw16) is True
        finally:
            server.close()


class TestArenaRoundTrip:
    """Non-float64 payloads and per-tile scales survive the shm hop."""

    @pytest.mark.parametrize("dtype", ["float32", "float16", "int8"])
    def test_attach_preserves_dtype_and_scales(self, dtype):
        ws, _ = _stack()
        tw = _compile(ws, dtype=dtype).layers[0].tw
        ref = arena.place(("mp-test", dtype), tw)
        try:
            got = arena.attach(ref)
            assert [t.data.dtype for t in got.tiles] == [
                t.data.dtype for t in tw.tiles
            ]
            assert [t.scale for t in got.tiles] == [t.scale for t in tw.tiles]
            np.testing.assert_array_equal(got.to_dense(), tw.to_dense())
        finally:
            arena.detach_all()
            arena.release(("mp-test", dtype))
        assert arena.leaked_segments() == []

    def test_int8_scales_are_not_neutral(self):
        ws, _ = _stack()
        tw = _compile(ws, dtype="int8").layers[0].tw
        assert tw.quantized
        assert any(t.scale != 1.0 for t in tw.tiles)


class TestSaveLoadRoundTrip:
    @pytest.mark.parametrize("dtype", ["float16", "int8"])
    def test_dtype_models_round_trip(self, dtype, tmp_path):
        ws, x = _stack()
        model = _compile(ws, dtype=dtype, epilogue="bias_gelu")
        path = model.save(tmp_path / "m.npz")
        back = repro.load(path)
        np.testing.assert_array_equal(back.run(x), model.run(x))
        for a, b in zip(model.layers, back.layers):
            assert [t.scale for t in a.tw.tiles] == [t.scale for t in b.tw.tiles]
            assert (a.epilogue is None) == (b.epilogue is None)
            if a.epilogue is not None:
                assert a.epilogue.name == b.epilogue.name
                np.testing.assert_array_equal(a.epilogue.bias, b.epilogue.bias)


class TestKernelDtypePolicy:
    def test_layernorm_preserves_storage_dtype(self):
        # satellite fix: layernorm used to upcast everything to float64;
        # it must preserve the input dtype and accumulate in fp32
        rng = np.random.default_rng(5)
        for dtype in ("float32", "float16"):
            x = rng.standard_normal((4, 16)).astype(dtype)
            assert layernorm(x).dtype == np.dtype(dtype)
        assert layernorm(rng.standard_normal((4, 16))).dtype == np.float64

    def test_resolve_spec_neutral_params_and_validation(self):
        spec = resolve_epilogue_spec("bias_gelu", n=8)
        assert isinstance(spec, EpilogueSpec)
        assert spec.bias.shape == (8,) and not spec.bias.any()
        with pytest.raises(KeyError):
            resolve_epilogue_spec("not_an_epilogue", n=8)

    def test_price_dtype_axis(self):
        model = repro.compile("bert", sparsity=0.75)
        base = model.price()
        fp32 = model.price(dtype="float32")
        fp16 = model.price(dtype="float16")
        assert base.dtype == "" and fp32.dtype == "float32"
        assert fp32.engine == "cuda_core" and fp16.engine == "tensor_core"
        # the modeled device-time win the mixed_precision BENCH records
        assert fp16.end_to_end.gemm_us < fp32.end_to_end.gemm_us / 1.3
