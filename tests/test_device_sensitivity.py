"""Device-sensitivity checks: the TW advantage is not V100-specific.

The paper's argument is architectural (tiling is universal to GEMM
accelerators), so the qualitative results must survive a change of device
spec.  These tests sweep the same configurations over T4 and A100 models.
"""

import pytest

from repro.gpu import (
    A100,
    T4,
    V100,
    bsr_gemm_cost,
    csr_spmm_cost,
    dense_gemm_cuda_cost,
    dense_gemm_tc_cost,
    tw_gemm_cost,
)
from repro.gpu.tw_kernel import TWShapeStats

M, K, N, G = 8192, 768, 768, 128
DEVICES = [T4, V100, A100]


@pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
class TestAcrossDevices:
    def test_tw_beats_dense_at_75(self, device):
        dense = dense_gemm_tc_cost(M, N, K, device)
        shape = TWShapeStats.synthetic(K, N, G, 0.75, seed=1)
        tw = tw_gemm_cost(M, shape, device)
        assert dense.total_us / tw.total_us > 1.3

    def test_tw_overhead_at_zero(self, device):
        dense = dense_gemm_tc_cost(M, N, K, device)
        shape = TWShapeStats.synthetic(K, N, G, 0.0, seed=1)
        tw = tw_gemm_cost(M, shape, device)
        assert tw.total_us > dense.total_us  # masking is never free

    def test_ew_loses_at_75(self, device):
        dense = dense_gemm_cuda_cost(M, N, K, device)
        ew = csr_spmm_cost(M, K, N, int(0.25 * K * N), device)
        assert ew.total_us > dense.total_us

    def test_bw_loses_at_60(self, device):
        dense = dense_gemm_tc_cost(M, N, K, device)
        nb = int(0.4 * (K // 32) * (N // 32))
        bw = bsr_gemm_cost(M, K, N, 32, nb, device)
        assert bw.total_us > dense.total_us

    def test_monotone_speedup(self, device):
        dense = dense_gemm_tc_cost(M, N, K, device)
        speedups = []
        for s in (0.25, 0.5, 0.75, 0.95):
            shape = TWShapeStats.synthetic(K, N, G, s, seed=1)
            speedups.append(dense.total_us / tw_gemm_cost(M, shape, device).total_us)
        assert all(b > a for a, b in zip(speedups, speedups[1:]))


class TestDeviceOrdering:
    def test_faster_devices_run_faster(self):
        """Absolute dense latency follows peak throughput across devices."""
        times = [dense_gemm_tc_cost(M, N, K, d).total_us for d in DEVICES]
        assert times[0] > times[1] > times[2]  # T4 > V100 > A100

    def test_relative_tw_speedup_comparable(self):
        """The TW *relative* speedup at 75% stays in one band on all
        devices — it is a property of the pattern, not the part number."""
        speedups = []
        for d in DEVICES:
            dense = dense_gemm_tc_cost(M, N, K, d)
            shape = TWShapeStats.synthetic(K, N, G, 0.75, seed=1)
            speedups.append(dense.total_us / tw_gemm_cost(M, shape, d).total_us)
        assert max(speedups) / min(speedups) < 2.0
