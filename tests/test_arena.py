"""Tests for the shared-memory weight arenas (ISSUE 7).

The lifecycle contract under test: ``place`` is idempotent/refcounted per
cache key, ``attach`` rebuilds a bit-identical read-only
:class:`TiledTWMatrix` (tiles *and* pre-seeded group operands) from the
segment, and ``release`` unlinks deterministically at refcount zero — no
``/dev/shm`` entry survives a balanced place/release sequence.
"""

import numpy as np
import pytest

from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.formats.tiled import TiledTWMatrix
from repro.kernels.masked import tw_gemm
from repro.runtime import arena
from repro.runtime.scheduler import build_execution_plan


def _tw_and_plan(seed=0, k=24, n=24, g=8, sparsity=0.5):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((k, n))
    step = tw_prune_step([np.abs(dense)], sparsity, TWPruneConfig(granularity=g))
    tw = TiledTWMatrix.from_masks(dense, g, step.col_keeps[0], step.row_masks[0])
    return tw, build_execution_plan(tw)


@pytest.fixture(autouse=True)
def _no_leaks_across_tests():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(arena.leaked_segments())
    yield
    assert set(arena.leaked_segments()) == before


class TestPlaceRelease:
    def test_place_then_release_unlinks(self):
        tw, plan = _tw_and_plan(0)
        ref = arena.place("key-a", tw, plans=(plan,))
        assert ref.name in arena.owned_segments()
        assert ref.name in arena.leaked_segments()  # linked while owned
        assert arena.release("key-a") is True
        assert ref.name not in arena.owned_segments()
        assert ref.name not in arena.leaked_segments()

    def test_place_is_idempotent_and_refcounted(self):
        tw, plan = _tw_and_plan(1)
        first = arena.place("key-b", tw, plans=(plan,))
        second = arena.place("key-b", tw, plans=(plan,))
        assert second is first  # same segment, not a second copy
        assert arena.release("key-b") is False  # one ref still out
        assert first.name in arena.leaked_segments()
        assert arena.release("key-b") is True
        assert first.name not in arena.leaked_segments()

    def test_release_unknown_key_is_a_noop(self):
        assert arena.release("never-placed") is False

    def test_distinct_keys_get_distinct_segments(self):
        tw, plan = _tw_and_plan(2)
        ref_c = arena.place("key-c", tw, plans=(plan,))
        ref_d = arena.place("key-d", tw, plans=(plan,))
        try:
            assert ref_c.name != ref_d.name
        finally:
            arena.release("key-c")
            arena.release("key-d")

    def test_release_all_sweeps_everything(self):
        tw, plan = _tw_and_plan(3)
        arena.place("key-e", tw)
        arena.place("key-f", tw)
        arena.place("key-f", tw)  # refcount 2: release_all ignores counts
        assert arena.release_all() == 2
        assert arena.owned_segments() == []

    def test_ref_is_small_and_picklable(self):
        import pickle

        tw, plan = _tw_and_plan(4)
        ref = arena.place("key-g", tw, plans=(plan,))
        try:
            payload = pickle.dumps(ref)
            assert len(payload) < 16384  # descriptors stay small on the wire
            assert pickle.loads(payload) == ref
        finally:
            arena.release("key-g")


class TestAttach:
    def test_attach_rebuilds_bit_identical_matrix(self):
        tw, plan = _tw_and_plan(5)
        ref = arena.place("key-h", tw, plans=(plan,))
        try:
            got = arena.attach(ref)
            assert got.shape == tw.shape
            assert got.granularity == tw.granularity
            assert len(got.tiles) == len(tw.tiles)
            for mine, theirs in zip(tw.tiles, got.tiles):
                np.testing.assert_array_equal(mine.col_indices, theirs.col_indices)
                np.testing.assert_array_equal(mine.mask_k, theirs.mask_k)
                np.testing.assert_array_equal(mine.data, theirs.data)
        finally:
            arena.detach_all()
            arena.release("key-h")

    def test_attached_views_are_readonly(self):
        tw, plan = _tw_and_plan(6)
        ref = arena.place("key-i", tw, plans=(plan,))
        try:
            got = arena.attach(ref)
            with pytest.raises((ValueError, RuntimeError)):
                got.tiles[0].data[0, 0] = 1.0
        finally:
            arena.detach_all()
            arena.release("key-i")

    def test_attach_preseeds_group_operands(self):
        tw, plan = _tw_and_plan(7)
        ref = arena.place("key-j", tw, plans=(plan,))
        try:
            got = arena.attach(ref)
            memo = got.__dict__["_group_operands"]
            assert len(memo) == len(ref.operands) + len(ref.null_groups)
            # the seeded operands are the same bytes the parent computed
            parent_memo = tw.__dict__["_group_operands"]
            for key, value in memo.items():
                if value is None:
                    assert parent_memo[key] is None
                    continue
                np.testing.assert_array_equal(value[0], parent_memo[key][0])
                np.testing.assert_array_equal(value[1], parent_memo[key][1])
        finally:
            arena.detach_all()
            arena.release("key-j")

    def test_gemm_through_attached_matrix_is_bit_identical(self):
        tw, plan = _tw_and_plan(8)
        rng = np.random.default_rng(80)
        a = rng.standard_normal((5, tw.shape[0]))
        want = tw_gemm(a, tw, plan=plan)
        ref = arena.place("key-k", tw, plans=(plan,))
        try:
            got_tw = arena.attach(ref)
            got = tw_gemm(a, got_tw, plan=plan)
            np.testing.assert_array_equal(got, want)
        finally:
            arena.detach_all()
            arena.release("key-k")

    def test_attach_is_cached_per_segment(self):
        tw, plan = _tw_and_plan(9)
        ref = arena.place("key-l", tw, plans=(plan,))
        try:
            assert arena.attach(ref) is arena.attach(ref)
        finally:
            arena.detach_all()
            arena.release("key-l")

    def test_attach_after_unlink_fails_cleanly(self):
        tw, plan = _tw_and_plan(10)
        ref = arena.place("key-m", tw, plans=(plan,))
        arena.release("key-m")
        with pytest.raises(FileNotFoundError):
            arena.attach(ref)


class TestServerLifecycle:
    """The server-side arena contract visible from the outside."""

    def test_server_places_once_per_format_and_close_releases(self):
        from repro.runtime import ServerConfig, TWModelServer

        rng = np.random.default_rng(11)
        server = TWModelServer(ServerConfig(granularity=8, executor="process"))
        for _ in range(2):
            dense = rng.standard_normal((24, 24))
            step = tw_prune_step(
                [np.abs(dense)], 0.5, TWPruneConfig(granularity=8)
            )
            server.add_layer(dense, step.col_keeps[0], step.row_masks[0])
        try:
            first = server.serve(rng.standard_normal((2, 24)))
            assert first.status == "ok"
            placed = set(arena.owned_segments())
            assert len(server._arenas) == 2
            second = server.serve(rng.standard_normal((2, 24)))
            assert second.status == "ok"
            assert set(arena.owned_segments()) == placed  # no re-placement
        finally:
            server.close()
        assert not set(arena.owned_segments()) & placed
        server.close()  # idempotent

    def test_inline_server_places_nothing(self):
        from repro.runtime import ServerConfig, TWModelServer

        rng = np.random.default_rng(12)
        server = TWModelServer(ServerConfig(granularity=8))
        dense = rng.standard_normal((24, 24))
        step = tw_prune_step([np.abs(dense)], 0.5, TWPruneConfig(granularity=8))
        server.add_layer(dense, step.col_keeps[0], step.row_masks[0])
        before = arena.owned_segments()
        assert server.serve(rng.standard_normal((2, 24))).status == "ok"
        assert arena.owned_segments() == before
        server.close()
