"""Tests for im2col lowering, blocked transpose, and fused epilogues."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    add_bias,
    bias_gelu,
    bias_layernorm,
    bias_relu,
    blocked_transpose,
    col2im,
    conv2d_gemm,
    conv_output_shape,
    gelu,
    im2col,
    layernorm,
)
from repro.kernels.im2col import lower_filters
from repro.kernels.fusion import relu


def reference_conv2d(x, w, bias=None, stride=1, padding=0):
    """Direct (slow) convolution for cross-checking."""
    n, c, h, wd = x.shape
    o, _, kh, kw = w.shape
    oh, ow = conv_output_shape(h, wd, kh, kw, stride, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, o, oh, ow))
    for b in range(n):
        for f in range(o):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[b, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[b, f, i, j] = (patch * w[f]).sum()
    if bias is not None:
        out += bias[None, :, None, None]
    return out


class TestIm2col:
    def test_output_shape(self):
        assert conv_output_shape(8, 8, 3, 3) == (6, 6)
        assert conv_output_shape(8, 8, 3, 3, stride=2) == (3, 3)
        assert conv_output_shape(8, 8, 3, 3, padding=1) == (8, 8)

    def test_output_shape_validation(self):
        with pytest.raises(ValueError):
            conv_output_shape(2, 2, 5, 5)
        with pytest.raises(ValueError):
            conv_output_shape(8, 8, 0, 3)

    def test_im2col_shape(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
        cols = im2col(x, 3, 3)
        assert cols.shape == (2 * 3 * 3, 3 * 3 * 3)

    def test_im2col_values_simple(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 2)
        np.testing.assert_array_equal(cols[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[-1], [10, 11, 14, 15])

    def test_conv_matches_direct(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        for stride, pad in [(1, 0), (1, 1), (2, 1), (2, 0)]:
            np.testing.assert_allclose(
                conv2d_gemm(x, w, b, stride, pad),
                reference_conv2d(x, w, b, stride, pad),
                atol=1e-10,
            )

    def test_conv_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv2d_gemm(np.ones((1, 3, 5, 5)), np.ones((2, 4, 3, 3)))

    def test_conv_bias_shape(self):
        with pytest.raises(ValueError):
            conv2d_gemm(np.ones((1, 1, 5, 5)), np.ones((2, 1, 3, 3)), np.ones(3))

    def test_lower_filters_shape(self):
        w = np.arange(2 * 3 * 2 * 2, dtype=float).reshape(2, 3, 2, 2)
        lw = lower_filters(w)
        assert lw.shape == (12, 2)
        np.testing.assert_array_equal(lw[:, 0], w[0].ravel())

    def test_col2im_adjoint_property(self):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 3, 6, 6))
        kh = kw = 3
        cols = im2col(x, kh, kw, stride=1, padding=1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, kh, kw, stride=1, padding=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_shape_check(self):
        with pytest.raises(ValueError):
            col2im(np.ones((5, 5)), (1, 1, 4, 4), 2, 2)


class TestTranspose:
    def test_matches_numpy(self):
        rng = np.random.default_rng(2)
        for shape in [(5, 7), (64, 64), (130, 70), (1, 9)]:
            a = rng.standard_normal(shape)
            np.testing.assert_array_equal(blocked_transpose(a), a.T)

    def test_result_contiguous(self):
        a = np.ones((100, 50))
        assert blocked_transpose(a).flags["C_CONTIGUOUS"]

    def test_validation(self):
        with pytest.raises(ValueError):
            blocked_transpose(np.ones(5))
        with pytest.raises(ValueError):
            blocked_transpose(np.ones((2, 2)), block=0)


class TestFusion:
    def test_add_bias(self):
        x = np.zeros((2, 3))
        b = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(add_bias(x, b), np.tile(b, (2, 1)))

    def test_add_bias_shape_check(self):
        with pytest.raises(ValueError):
            add_bias(np.ones((2, 3)), np.ones(2))

    def test_gelu_known_values(self):
        assert gelu(np.array(0.0)) == pytest.approx(0.0)
        assert gelu(np.array(100.0)) == pytest.approx(100.0, rel=1e-6)
        assert gelu(np.array(-100.0)) == pytest.approx(0.0, abs=1e-6)

    def test_layernorm_standardises(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 16)) * 5 + 3
        out = layernorm(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_affine(self):
        x = np.array([[1.0, 2.0, 3.0]])
        gamma = np.array([2.0, 2.0, 2.0])
        beta = np.array([1.0, 1.0, 1.0])
        np.testing.assert_allclose(
            layernorm(x, gamma, beta), 2 * layernorm(x) + 1, atol=1e-12
        )

    def test_fused_equals_composed(self):
        """The fusion correctness claim: fused == composition of unfused."""
        rng = np.random.default_rng(4)
        x = rng.standard_normal((8, 32))
        b = rng.standard_normal(32)
        gamma = rng.standard_normal(32)
        beta = rng.standard_normal(32)
        np.testing.assert_allclose(bias_relu(x, b), relu(add_bias(x, b)), atol=1e-12)
        np.testing.assert_allclose(bias_gelu(x, b), gelu(add_bias(x, b)), atol=1e-12)
        np.testing.assert_allclose(
            bias_layernorm(x, b, gamma, beta),
            layernorm(add_bias(x, b), gamma, beta),
            atol=1e-12,
        )


@given(
    st.integers(1, 3), st.integers(1, 3),
    st.integers(3, 8), st.integers(1, 3),
    st.integers(1, 2), st.integers(0, 1),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_conv_gemm_property(n, c, hw, o, stride, pad, seed):
    rng = np.random.default_rng(seed)
    kh = kw = min(3, hw)
    x = rng.standard_normal((n, c, hw, hw))
    w = rng.standard_normal((o, c, kh, kw))
    np.testing.assert_allclose(
        conv2d_gemm(x, w, stride=stride, padding=pad),
        reference_conv2d(x, w, stride=stride, padding=pad),
        atol=1e-9,
    )
