"""Tests for the front doors: repro.compile() and repro.tune()."""

import numpy as np
import pytest

import repro
from repro.core import (
    AprioriConfig,
    ArrayModel,
    GradualSchedule,
    ImportanceConfig,
    TEWConfig,
    TWPruner,
)
from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.formats.tiled import TiledTWMatrix
from repro.gpu.device import T4, V100
from repro.kernels.masked import tw_gemm
from repro.runtime.placement import Placement, resolve_placement
from repro.runtime.scheduler import build_execution_plan


@pytest.fixture()
def stack():
    rng = np.random.default_rng(0)
    # dyadic weights keep every product exactly representable, so the
    # facade-vs-hand-wired comparison is bit-for-bit by contract
    weights = [
        np.round(rng.standard_normal((32, 32)) * 4) / 4 for _ in range(3)
    ]
    x = np.round(rng.standard_normal((5, 32)) * 4) / 4
    return weights, x


def _hand_wired(weights, x, sparsity, g):
    step = tw_prune_step([np.abs(w) for w in weights], sparsity, TWPruneConfig(granularity=g))
    a = x
    for i, w in enumerate(weights):
        tw = TiledTWMatrix.from_masks(w, g, step.col_keeps[i], step.row_masks[i])
        plan = build_execution_plan(tw, V100)
        a = tw_gemm(a, tw, plan=plan)
    return a


def _hand_wired_tuned(weights, x, sparsity, g, n_stages, apriori=None):
    """The multi-stage chain tune() must reproduce bit-for-bit."""
    model = ArrayModel(weights)
    pruner = TWPruner(
        TWPruneConfig(granularity=g),
        GradualSchedule(target=sparsity, n_stages=n_stages),
        ImportanceConfig(method="magnitude"),
        apriori,
    )
    result = pruner.prune(model)
    a = x
    for i, w in enumerate(model.weight_matrices()):
        tw = TiledTWMatrix.from_masks(
            w, g, result.step.col_keeps[i], result.step.row_masks[i]
        )
        a = tw_gemm(a, tw, plan=build_execution_plan(tw, V100))
    return a


class TestCompileRun:
    def test_matches_hand_wired_bit_for_bit(self, stack):
        weights, x = stack
        model = repro.compile(weights, pattern="tw", sparsity=0.5, granularity=8)
        np.testing.assert_array_equal(
            model.run(x), _hand_wired(weights, x, 0.5, 8)
        )

    def test_single_matrix_input(self, stack):
        weights, x = stack
        model = repro.compile(weights[0], sparsity=0.5, granularity=8)
        assert model.n_layers == 1
        np.testing.assert_array_equal(
            model.run(x), _hand_wired(weights[:1], x, 0.5, 8)
        )

    def test_nn_module_input(self):
        from repro.models import BertConfig, MiniBERTClassifier

        model = MiniBERTClassifier(
            BertConfig(vocab_size=32, dim=16, n_layers=1, n_heads=2, max_len=8, seed=0),
            n_classes=2,
        )
        compiled = repro.compile(model, sparsity=0.5, granularity=4)
        assert compiled.n_layers == len(model.prunable_weights())
        assert compiled.executable

    def test_pattern_aliases_canonicalised(self, stack):
        weights, _ = stack
        model = repro.compile(weights, pattern="tile_wise", sparsity=0.5, granularity=8)
        assert model.pattern == "tw"
        assert repro.compile(weights, engine="tc", sparsity=0.5,
                             granularity=8).engine == "tensor_core"

    def test_mask_only_patterns_run_as_masked_dense(self, stack):
        weights, x = stack
        model = repro.compile(weights, pattern="ew", sparsity=0.5)
        want = x
        for layer in model.layers:
            want = want @ (layer.dense * layer.mask)
        np.testing.assert_array_equal(model.run(x), want)
        assert model.achieved_sparsity == pytest.approx(0.5, abs=0.02)

    def test_dense_pattern_is_identity_masks(self, stack):
        weights, x = stack
        model = repro.compile(weights, pattern="dense", sparsity=0.0)
        want = x
        for w in weights:
            want = want @ w
        np.testing.assert_array_equal(model.run(x), want)

    def test_chain_mismatch_rejected(self):
        rng = np.random.default_rng(1)
        model = repro.compile(
            [rng.standard_normal((8, 6)), rng.standard_normal((7, 4))],
            sparsity=0.25, granularity=2,
        )
        with pytest.raises(ValueError, match="chain"):
            model.run(rng.standard_normal((2, 8)))

    def test_prune_report(self, stack):
        weights, _ = stack
        model = repro.compile(weights, sparsity=0.5, granularity=8)
        rep = model.prune_report()
        assert rep["pattern"] == "tw"
        assert rep["achieved_sparsity"] == pytest.approx(0.5, abs=0.02)
        assert len(rep["layers"]) == 3
        assert all("tiles" in l and "load_imbalance" in l for l in rep["layers"])


class TestRegistryErrors:
    def test_unknown_pattern_lists_available(self, stack):
        weights, _ = stack
        with pytest.raises(KeyError, match="unknown pattern 'banana'.*bw.*tw"):
            repro.compile(weights, pattern="banana")

    def test_unknown_engine_lists_available(self, stack):
        weights, _ = stack
        with pytest.raises(KeyError, match="unknown engine 'tpu'.*cuda_core.*tensor_core"):
            repro.compile(weights, engine="tpu")

    def test_unknown_placement_kind(self):
        with pytest.raises(KeyError, match="unknown placement 'diagonal'"):
            Placement("diagonal", (V100,))

    def test_unknown_model_name(self):
        with pytest.raises(KeyError, match="unknown model"):
            repro.compile("resnet")

    def test_tew_weights_compile_explains(self, stack):
        weights, _ = stack
        with pytest.raises(ValueError, match="price-only"):
            repro.compile(weights, pattern="tew")


class TestSaveLoad:
    def test_round_trip_bit_identical(self, stack, tmp_path):
        weights, x = stack
        model = repro.compile(weights, sparsity=0.5, granularity=8)
        want = _hand_wired(weights, x, 0.5, 8)
        path = model.save(tmp_path / "m.npz")
        loaded = repro.load(path)
        np.testing.assert_array_equal(loaded.run(x), want)
        assert loaded.pattern == model.pattern
        assert loaded.granularity == model.granularity
        assert loaded.achieved_sparsity == model.achieved_sparsity
        assert loaded.placement == model.placement
        assert [l.name for l in loaded.layers] == [l.name for l in model.layers]

    def test_round_trip_preserves_placement_devices(self, stack, tmp_path):
        weights, x = stack
        model = repro.compile(
            weights, sparsity=0.5, granularity=8,
            placement=Placement("layer_sharded", (V100, T4)),
        )
        loaded = repro.load(model.save(tmp_path / "m.npz"))
        assert loaded.placement.kind == "layer_sharded"
        assert [d.name for d in loaded.placement.devices] == [V100.name, T4.name]
        np.testing.assert_array_equal(loaded.run(x), model.run(x))

    def test_loaded_model_serves(self, stack, tmp_path):
        weights, x = stack
        model = repro.compile(weights, sparsity=0.5, granularity=8)
        loaded = repro.load(model.save(tmp_path / "m.npz"))
        server = loaded.serve()
        np.testing.assert_array_equal(server.serve(x).output, model.run(x))

    def test_mask_only_save_rejected(self, stack, tmp_path):
        weights, _ = stack
        model = repro.compile(weights, pattern="ew", sparsity=0.5)
        with pytest.raises(ValueError, match="TW"):
            model.save(tmp_path / "m.npz")


class TestPlacement:
    def test_layer_sharded_matches_single(self, stack):
        weights, x = stack
        single = repro.compile(weights, sparsity=0.5, granularity=8)
        sharded = repro.compile(
            weights, sparsity=0.5, granularity=8,
            placement=Placement("layer_sharded", (V100, T4)),
        )
        np.testing.assert_array_equal(sharded.run(x), single.run(x))

    def test_replicated_matches_single(self, stack):
        weights, x = stack
        single = repro.compile(weights, sparsity=0.5, granularity=8)
        repl = repro.compile(
            weights, sparsity=0.5, granularity=8,
            placement=Placement("replicated", (V100, V100)),
        )
        np.testing.assert_array_equal(repl.run(x), single.run(x))

    def test_shard_layout_contiguous(self, stack):
        weights, _ = stack
        model = repro.compile(
            weights, sparsity=0.5, granularity=8,
            placement=Placement("layer_sharded", (V100, T4)),
        )
        layout = model.shard_layout()
        assert layout == [f"{V100.name}#0", f"{V100.name}#0", f"{T4.name}#1"]

    def test_layer_shards_balanced(self):
        p = Placement("layer_sharded", (V100, T4))
        assert p.layer_shards(4) == [0, 0, 1, 1]
        assert p.layer_shards(3) == [0, 0, 1]
        assert p.layer_shards(1) == [0]
        assert p.layer_shards(0) == []

    def test_single_requires_one_device(self):
        with pytest.raises(ValueError, match="exactly one device"):
            Placement("single", (V100, T4))

    def test_resolve_placement_forms(self):
        assert resolve_placement(None).kind == "single"
        assert resolve_placement("replicated", [V100, T4]).n_devices == 2
        assert resolve_placement(None, [V100, T4]).kind == "replicated"
        with pytest.raises(TypeError):
            resolve_placement(42)

    def test_serve_preseeds_caches(self, stack):
        weights, x = stack
        model = repro.compile(
            weights, sparsity=0.5, granularity=8,
            placement=Placement("layer_sharded", (V100, T4)),
        )
        server = model.serve()
        out = server.serve(x).output
        # compiled formats and per-shard plans were adopted: zero misses
        assert server.stats.format_misses == 0
        assert server.stats.plan_misses == 0
        np.testing.assert_array_equal(out, model.run(x))

    def test_serve_executor_knobs(self, stack):
        from repro.runtime.executor import ThreadedExecutor
        from repro.runtime.server import ServerConfig

        weights, x = stack
        model = repro.compile(
            weights, sparsity=0.5, granularity=8,
            placement=Placement("layer_sharded", (V100, T4)),
        )
        server = model.serve(executor="threaded", workers=2)
        assert isinstance(server.executor, ThreadedExecutor)
        assert server.executor.workers == 2
        # the threaded path still pre-seeds and stays bit-identical
        out = server.serve(x).output
        assert server.stats.format_misses == 0
        np.testing.assert_array_equal(out, model.run(x))
        # knobs also override an explicit config
        cfg = ServerConfig(granularity=8, dtype=str(model.dtype),
                           placement=model.placement)
        server2 = model.serve(cfg, executor="threaded", pace=0.0)
        assert server2.config.executor == "threaded"
        assert server2.config.granularity == 8


class TestPrice:
    def test_weight_stack_pricing_uses_real_geometry(self, stack):
        weights, _ = stack
        model = repro.compile(weights, sparsity=0.5, granularity=8)
        price = model.price(m=256)
        assert price.sparse_gemm_us > 0
        assert price.dense_gemm_us > 0
        assert price.gemm_speedup == pytest.approx(
            price.dense_gemm_us / price.sparse_gemm_us
        )
        assert price.end_to_end is None

    def test_named_model_pricing_matches_experiments(self):
        from repro.experiments.latency import gemm_speedup

        price = repro.compile("bert", sparsity=0.75).price()
        assert price.end_to_end is not None
        assert price.gemm_speedup == pytest.approx(
            gemm_speedup("bert", "tw", 0.75), rel=1e-12
        )

    def test_named_model_cannot_run(self):
        model = repro.compile("bert", sparsity=0.75)
        with pytest.raises(ValueError, match="shapes only"):
            model.run(np.zeros((1, 768)))
        with pytest.raises(ValueError, match="shapes only"):
            model.serve()

    def test_bad_m_rejected(self, stack):
        weights, _ = stack
        model = repro.compile(weights, sparsity=0.5, granularity=8)
        with pytest.raises(ValueError, match="m must be positive"):
            model.price(m=0)


class TestDemoStack:
    @pytest.mark.parametrize("name", ["bert", "vgg", "nmt"])
    def test_stacks_chain(self, name):
        from repro.api import demo_layer_stack

        weights, names = demo_layer_stack(name, scale=16, blocks=1)
        assert len(weights) == len(names)
        for prev, nxt in zip(weights, weights[1:]):
            assert prev.shape[1] == nxt.shape[0]

    def test_bert_stack_serves_sharded(self):
        from repro.api import demo_layer_stack

        weights, names = demo_layer_stack("bert", scale=32, blocks=1, seed=3)
        model = repro.compile(
            weights, sparsity=0.5, granularity=4, names=names,
            placement=Placement("layer_sharded", (V100, V100, T4)),
        )
        server = model.serve()
        rng = np.random.default_rng(4)
        x = rng.standard_normal((4, weights[0].shape[0]))
        np.testing.assert_array_equal(server.serve(x).output, model.run(x))


class TestTune:
    """The training-time front door: repro.tune() → TuneResult."""

    def test_matches_hand_wired_chain_bit_for_bit(self, stack):
        weights, x = stack
        result = repro.tune(
            weights, pattern="tw", sparsity=0.5, granularity=8,
            schedule="gradual", n_stages=3, importance="magnitude",
            apriori=False,
        )
        want = _hand_wired_tuned(weights, x, 0.5, 8, 3)
        np.testing.assert_array_equal(result.compiled.run(x), want)
        np.testing.assert_array_equal(result.run(x), want)

    def test_matches_hand_wired_with_apriori(self, stack):
        weights, x = stack
        result = repro.tune(
            weights, sparsity=0.5, granularity=8, n_stages=2,
            importance="magnitude", apriori=True,
        )
        want = _hand_wired_tuned(weights, x, 0.5, 8, 2, apriori=AprioriConfig())
        np.testing.assert_array_equal(result.compiled.run(x), want)

    def test_oneshot_schedule_matches_compile(self, stack):
        # a single gradual stage at the target with magnitude scores and no
        # apriori is exactly what compile() runs one-shot
        weights, x = stack
        tuned = repro.tune(
            weights, sparsity=0.5, granularity=8, schedule="oneshot",
            importance="magnitude", apriori=False,
        )
        compiled = repro.compile(weights, sparsity=0.5, granularity=8)
        np.testing.assert_array_equal(tuned.compiled.run(x), compiled.run(x))

    def test_trajectory_records_every_stage(self, stack):
        weights, _ = stack
        result = repro.tune(
            weights, sparsity=0.6, granularity=8, n_stages=4,
            importance="magnitude", apriori=False,
        )
        assert result.n_stages == len(result.schedule.stages())
        traj = result.trajectory()
        assert [t["stage"] for t in traj] == list(range(len(traj)))
        assert all(t["kind"] == "prune" for t in traj)
        achieved = [t["achieved_sparsity"] for t in traj]
        assert all(b >= a - 1e-9 for a, b in zip(achieved, achieved[1:]))
        assert traj[-1]["target_sparsity"] == pytest.approx(0.6)
        assert result.achieved_sparsity == pytest.approx(0.6, abs=0.03)
        assert result.metric is None  # no evaluate= callback

    def test_tew_overlay_composes(self, stack):
        weights, x = stack
        result = repro.tune(
            weights, pattern="tew", sparsity=0.5, granularity=8,
            n_stages=2, importance="magnitude", tew=0.05,
        )
        assert result.pattern == "tew"
        assert result.history[-1].kind == "overlay"
        # overlay restores down from the overshoot back to the target
        assert result.achieved_sparsity == pytest.approx(0.5, abs=0.02)
        assert result.tew is not None and result.residuals is not None
        for twm, ewm in zip(result.tew.tw_masks, result.tew.ew_masks):
            assert not (twm & ewm).any()
        # the two-pass decomposition equals the union masked-dense forward
        # exactly on dyadic data (paper §IV-A linearity)
        want = x
        for layer, union in zip(result.compiled.layers, result.masks):
            want = want @ (layer.dense * union)
        np.testing.assert_array_equal(result.run(x), want)

    def test_tew_sugar_defaults_delta(self, stack):
        weights, _ = stack
        result = repro.tune(
            weights, pattern="tew", sparsity=0.5, granularity=8,
            n_stages=1, importance="magnitude",
        )
        assert result.tew.ew_fraction == pytest.approx(
            TEWConfig().delta, abs=0.01
        )

    def test_tew_refuses_mask_only_patterns(self, stack):
        weights, _ = stack
        with pytest.raises(ValueError, match="tw pattern only"):
            repro.tune(weights, pattern="ew", tew=0.05)

    def test_baseline_patterns_run_shared_stage_loop(self, stack):
        weights, x = stack
        result = repro.tune(
            weights, pattern="ew", sparsity=0.5, n_stages=2,
            importance="magnitude",
        )
        assert result.pattern == "ew"
        assert result.achieved_sparsity == pytest.approx(0.5, abs=0.02)
        want = x
        for layer in result.compiled.layers:
            want = want @ (layer.dense * layer.mask)
        np.testing.assert_array_equal(result.run(x), want)

    def test_dense_pattern_rejected(self, stack):
        weights, _ = stack
        with pytest.raises(ValueError, match="dense baseline"):
            repro.tune(weights, pattern="dense")

    def test_explicit_schedule_instance_wins(self, stack):
        weights, _ = stack
        sched = GradualSchedule(target=0.4, n_stages=2, law="linear")
        result = repro.tune(
            weights, sparsity=0.9, schedule=sched, granularity=8,
            importance="magnitude",
        )
        assert result.sparsity == 0.4
        assert result.schedule is sched

    def test_save_load_round_trip(self, stack, tmp_path):
        weights, x = stack
        result = repro.tune(
            weights, sparsity=0.5, granularity=8, n_stages=2,
            importance="magnitude",
        )
        loaded = repro.load(result.save(tmp_path / "tuned.npz"))
        np.testing.assert_array_equal(loaded.run(x), result.compiled.run(x))

    def test_tew_save_refused(self, stack, tmp_path):
        weights, _ = stack
        result = repro.tune(
            weights, pattern="tew", sparsity=0.5, granularity=8,
            n_stages=1, importance="magnitude",
        )
        with pytest.raises(ValueError, match="residual"):
            result.save(tmp_path / "tuned.npz")

    def test_tuned_model_serves(self, stack):
        weights, x = stack
        result = repro.tune(
            weights, sparsity=0.5, granularity=8, n_stages=2,
            importance="magnitude",
        )
        server = result.compiled.serve()
        np.testing.assert_array_equal(
            server.serve(x).output, result.compiled.run(x)
        )
        assert server.stats.format_misses == 0


class TestTuneFineTuning:
    """The train=/data= contract: no silently-dropped fine-tuning."""

    @pytest.fixture()
    def tiny_task(self):
        from repro.models import BertConfig, MiniBERTClassifier
        from repro.nn.datasets import SentencePairDataset

        ds = SentencePairDataset(vocab_size=32, seq_len=8, seed=0)
        split = ds.sample(32, 1)
        model = MiniBERTClassifier(
            BertConfig(vocab_size=32, dim=16, n_layers=1, n_heads=2,
                       max_len=16, seed=0),
            n_classes=3,
        )
        return model, split

    def test_raw_arrays_reject_train(self, stack):
        weights, _ = stack
        from repro.nn.trainer import TrainConfig

        with pytest.raises(ValueError, match="cannot be fine-tuned"):
            repro.tune(weights, train=TrainConfig(epochs=1))

    def test_array_model_rejects_train(self, stack):
        weights, _ = stack
        from repro.nn.trainer import TrainConfig

        with pytest.raises(ValueError, match="documented no-op"):
            repro.tune(ArrayModel(weights), train=TrainConfig(epochs=1))

    def test_array_model_fine_tune_is_noop(self, stack):
        weights, _ = stack
        model = ArrayModel(weights)
        assert model.supports_fine_tuning is False
        before = [w.copy() for w in model.weight_matrices()]
        model.fine_tune()
        for b, w in zip(before, model.weight_matrices()):
            np.testing.assert_array_equal(b, w)

    def test_module_needs_data(self, tiny_task):
        model, _ = tiny_task
        with pytest.raises(ValueError, match="data="):
            repro.tune(model, sparsity=0.5, granularity=4)

    def test_module_with_data_tunes(self, tiny_task):
        model, split = tiny_task
        result = repro.tune(
            model, data=split, sparsity=0.5, granularity=4, n_stages=2,
        )
        assert result.achieved_sparsity == pytest.approx(0.5, abs=0.05)
        # masks really constrained the module's live weights
        for w, m in zip(model.prunable_weights(), result.masks):
            assert np.all(w.data[~m] == 0.0)

    def test_adapter_train_override_and_zero_epochs(self, tiny_task):
        from repro.nn.trainer import TrainConfig, TrainedModelAdapter

        model, split = tiny_task
        adapter = TrainedModelAdapter(
            model.prunable_weights(), model.loss, split
        )
        assert adapter.supports_fine_tuning is True
        zero = TrainConfig(epochs=0)
        before = [w.copy() for w in adapter.weight_matrices()]
        result = repro.tune(
            adapter, sparsity=0.5, granularity=4, n_stages=1, train=zero,
        )
        assert adapter.finetune_config is zero
        # epochs=0 is well-defined: prune-only stages, no weight updates
        # beyond masking
        for b, w, m in zip(before, adapter.weight_matrices(), result.masks):
            np.testing.assert_array_equal(b * m, w)

    def test_adapter_rejects_data_kwarg(self, tiny_task):
        model, split = tiny_task
        from repro.nn.trainer import TrainedModelAdapter

        adapter = TrainedModelAdapter(
            model.prunable_weights(), model.loss, split
        )
        with pytest.raises(ValueError, match="data="):
            repro.tune(adapter, data=split)

    def test_tew_residuals_track_fine_tuned_values(self, tiny_task):
        from repro.nn.trainer import TrainConfig, TrainedModelAdapter

        model, split = tiny_task
        adapter = TrainedModelAdapter(
            model.prunable_weights(), model.loss, split,
            TrainConfig(epochs=1, batch_size=16),
        )
        result = repro.tune(
            adapter, pattern="tew", sparsity=0.5, granularity=4,
            n_stages=1, tew=0.1,
        )
        # the overlay solution's execution payload must reflect the
        # *final* trained values (fine-tuning moved the restored weights),
        # staying consistent with result.residuals and result.run()
        for res, tew_res, w, ew in zip(
            result.residuals, result.tew.residuals,
            adapter.weight_matrices(), result.tew.ew_masks,
        ):
            np.testing.assert_array_equal(
                res.to_dense(), np.where(ew, w, 0.0)
            )
            np.testing.assert_array_equal(res.to_dense(), tew_res.to_dense())

    def test_evaluate_callback_fills_trajectory(self, tiny_task):
        model, split = tiny_task
        calls = []

        def metric():
            calls.append(1)
            return float(len(calls))

        result = repro.tune(
            model, data=split, sparsity=0.5, granularity=4, n_stages=2,
            evaluate=metric,
        )
        assert len(calls) == result.n_stages
        assert result.metric == float(len(calls))
        assert [t["metric"] for t in result.trajectory()] == [1.0, 2.0]
