"""Tests for the multi-stage Algorithm 1 driver."""

import numpy as np
import pytest

from repro.core import (
    ArrayModel,
    AprioriConfig,
    GradualSchedule,
    ImportanceConfig,
    TWPruneConfig,
    TWPruner,
)
from repro.core.masks import validate_tw_mask


def make_pruner(target=0.75, g=8, stages=3, **kw):
    return TWPruner(
        TWPruneConfig(granularity=g, **kw.pop("config_kw", {})),
        GradualSchedule(target=target, n_stages=stages),
        kw.pop("importance", ImportanceConfig(method="magnitude")),
        kw.pop("apriori", None),
    )


class TestArrayModel:
    def test_apply_masks_zeroes_weights(self):
        w = np.ones((4, 4))
        m = ArrayModel([w])
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        m.apply_masks([mask])
        assert m.weight_matrices()[0].sum() == 1.0

    def test_mask_shape_mismatch(self):
        m = ArrayModel([np.ones((4, 4))])
        with pytest.raises(ValueError):
            m.apply_masks([np.ones((2, 2), dtype=bool)])

    def test_mask_count_mismatch(self):
        m = ArrayModel([np.ones((4, 4))])
        with pytest.raises(ValueError):
            m.apply_masks([])

    def test_gradient_count_mismatch(self):
        with pytest.raises(ValueError):
            ArrayModel([np.ones((2, 2))], gradients=[])

    def test_satisfies_protocol(self):
        from repro.core.pruner import PrunableModel

        assert isinstance(ArrayModel([np.ones((2, 2))]), PrunableModel)


class TestTWPruner:
    def test_reaches_target(self):
        rng = np.random.default_rng(0)
        model = ArrayModel([rng.standard_normal((32, 64)), rng.standard_normal((48, 32))])
        res = make_pruner(target=0.75).prune(model)
        assert res.achieved_sparsity == pytest.approx(0.75, abs=0.03)

    def test_monotone_history(self):
        rng = np.random.default_rng(1)
        model = ArrayModel([rng.standard_normal((32, 64))])
        res = make_pruner(target=0.8, stages=4).prune(model)
        achieved = [h.achieved_sparsity for h in res.history]
        assert all(b >= a - 1e-9 for a, b in zip(achieved, achieved[1:]))

    def test_final_masks_are_tw(self):
        rng = np.random.default_rng(2)
        model = ArrayModel([rng.standard_normal((32, 64))])
        res = make_pruner(target=0.6, g=8).prune(model)
        validate_tw_mask(res.masks[0], 8)

    def test_masks_applied_to_model(self):
        rng = np.random.default_rng(3)
        model = ArrayModel([rng.standard_normal((16, 32))])
        res = make_pruner(target=0.5).prune(model)
        w = model.weight_matrices()[0]
        assert np.all(w[~res.masks[0]] == 0.0)

    def test_taylor_fallback_without_grads(self):
        """Requesting Taylor scores with no gradients degrades to magnitude."""
        rng = np.random.default_rng(4)
        model = ArrayModel([rng.standard_normal((16, 16))])
        pruner = make_pruner(importance=ImportanceConfig(method="taylor"))
        res = pruner.prune(model)  # must not raise
        assert res.achieved_sparsity > 0.5

    def test_taylor_with_gradients(self):
        rng = np.random.default_rng(5)
        w = rng.standard_normal((16, 32))
        g = rng.standard_normal((16, 32))
        model = ArrayModel([w], gradients=[g])
        pruner = make_pruner(importance=ImportanceConfig(method="taylor"))
        res = pruner.prune(model)
        assert res.achieved_sparsity == pytest.approx(0.75, abs=0.03)

    def test_apriori_integration(self):
        rng = np.random.default_rng(6)
        model = ArrayModel([np.abs(rng.standard_normal((32, 64))) + 0.1])
        pruner = make_pruner(apriori=AprioriConfig(top_n=0.1, last_n=0.1))
        res = pruner.prune(model)
        assert res.achieved_sparsity == pytest.approx(0.75, abs=0.03)

    def test_fine_tune_called_each_stage(self):
        calls = []

        class CountingModel(ArrayModel):
            def fine_tune(self):
                calls.append(1)

        rng = np.random.default_rng(7)
        model = CountingModel([rng.standard_normal((16, 16))])
        pruner = make_pruner(target=0.6, stages=4)
        pruner.prune(model)
        assert len(calls) == len(pruner.schedule.stages())

    def test_rejects_non_model(self):
        with pytest.raises(TypeError):
            make_pruner().prune(object())

    def test_uneven_per_layer_sparsity_emerges(self):
        """Fig. 5 behaviour: layers with smaller weights lose more."""
        rng = np.random.default_rng(8)
        big = np.abs(rng.standard_normal((32, 64))) * 10
        small = np.abs(rng.standard_normal((32, 64)))
        model = ArrayModel([big, small])
        res = make_pruner(target=0.75).prune(model)
        sp = res.history[-1].per_matrix_sparsity
        assert sp[0] < sp[1]

    def test_granularity_extremes(self):
        """G=1 behaves like fine-grained pruning; G=N like whole-matrix
        row/column pruning (paper §I: EW and global-structural limits)."""
        rng = np.random.default_rng(9)
        w = np.abs(rng.standard_normal((16, 32)))
        res_small = make_pruner(target=0.5, g=1).prune(ArrayModel([w.copy()]))
        res_large = make_pruner(target=0.5, g=32).prune(ArrayModel([w.copy()]))
        # with G=N, row pruning removes whole rows of the matrix
        groups = res_large.step.column_groups[0]
        assert len(groups) == 1
        # both still hit the target
        for res in (res_small, res_large):
            assert res.achieved_sparsity == pytest.approx(0.5, abs=0.05)
