"""Tests for distribution analysis, Pareto frontiers and reporting."""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentRecord,
    ParetoPoint,
    ascii_bars,
    ascii_series,
    format_table,
    load_results,
    mask_heatmap,
    pareto_frontier,
    per_matrix_sparsity,
    save_results,
    unit_zero_fractions,
    zero_fraction_cdf,
)
from repro.analysis.pareto import dominates


class TestDistribution:
    def test_per_matrix_sparsity(self):
        masks = [np.ones((4, 4), dtype=bool), np.zeros((2, 2), dtype=bool)]
        np.testing.assert_allclose(per_matrix_sparsity(masks), [0.0, 1.0])

    def test_unit_zero_fractions_blocks(self):
        mask = np.ones((4, 4), dtype=bool)
        mask[:2, :2] = False  # one fully-zero 2x2 block
        fr = unit_zero_fractions(mask, (2, 2))
        assert sorted(fr) == [0.0, 0.0, 0.0, 1.0]

    def test_unit_zero_fractions_rows(self):
        mask = np.ones((2, 8), dtype=bool)
        mask[0, :4] = False
        fr = unit_zero_fractions(mask, (1, 4))
        assert sorted(fr) == [0.0, 0.0, 0.0, 1.0]

    def test_unit_zero_fractions_ragged(self):
        mask = np.ones((3, 5), dtype=bool)
        fr = unit_zero_fractions(mask, (2, 2))
        assert fr.shape == (6,)  # 2x3 grid with ragged edges

    def test_unit_validation(self):
        with pytest.raises(ValueError):
            unit_zero_fractions(np.ones((2, 2), dtype=bool), (0, 2))
        with pytest.raises(ValueError):
            unit_zero_fractions(np.ones(4, dtype=bool), (1, 2))

    def test_cdf_monotone(self):
        rng = np.random.default_rng(0)
        fr = rng.random(100)
        x, cdf = zero_fraction_cdf(fr)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_cdf_empty(self):
        x, cdf = zero_fraction_cdf(np.array([]))
        assert np.all(cdf == 1.0)

    def test_fig6_tw_below_bw(self):
        """TW's 1×G units capture more fully-zero units than BW's square
        blocks on a row-structured EW mask (the Fig. 6 ordering).

        Real EW masks concentrate zeros along rows/columns (unimportant
        neurons); a 1×G unit lives inside one row and so goes fully zero
        with that row, while an 8×8 block mixes eight rows of different
        densities and almost never empties.
        """
        rng = np.random.default_rng(1)
        row_density = rng.random(128) ** 3  # heavy tail of near-empty rows
        mask = rng.random((128, 128)) < row_density[:, None]
        tw_fr = unit_zero_fractions(mask, (1, 64))
        bw_fr = unit_zero_fractions(mask, (8, 8))
        assert (tw_fr > 0.95).mean() > (bw_fr > 0.95).mean()

    def test_heatmap_shape_and_range(self):
        rng = np.random.default_rng(2)
        mask = rng.random((64, 96)) < 0.25
        hm = mask_heatmap(mask, grid=8)
        assert hm.shape == (8, 8)
        assert 0.0 <= hm.min() and hm.max() <= 1.0
        assert hm.mean() == pytest.approx(0.25, abs=0.05)

    def test_heatmap_small_mask(self):
        hm = mask_heatmap(np.ones((4, 4), dtype=bool), grid=16)
        assert hm.shape == (4, 4)

    def test_heatmap_validation(self):
        with pytest.raises(ValueError):
            mask_heatmap(np.ones(4, dtype=bool))
        with pytest.raises(ValueError):
            mask_heatmap(np.ones((4, 4), dtype=bool), grid=0)


class TestPareto:
    def test_dominates(self):
        a = ParetoPoint(0.9, 2.0)
        b = ParetoPoint(0.8, 1.0)
        assert dominates(a, b)
        assert not dominates(b, a)
        assert not dominates(a, a)

    def test_frontier_filters_dominated(self):
        pts = [
            ParetoPoint(0.90, 2.0, "tw"),
            ParetoPoint(0.95, 1.0, "dense"),
            ParetoPoint(0.85, 0.5, "bw"),   # dominated by tw
            ParetoPoint(0.92, 0.7, "ew"),   # dominated by dense
        ]
        frontier = pareto_frontier(pts)
        labels = [p.label for p in frontier]
        assert labels == ["dense", "tw"]

    def test_frontier_keeps_incomparable(self):
        pts = [ParetoPoint(0.9, 1.0), ParetoPoint(0.8, 2.0)]
        assert len(pareto_frontier(pts)) == 2

    def test_frontier_empty(self):
        assert pareto_frontier([]) == []

    def test_as_dict(self):
        d = ParetoPoint(0.9, 2.0, "tw").as_dict()
        assert d == {"accuracy": 0.9, "speedup": 2.0, "label": "tw"}


class TestReporting:
    def test_record_roundtrip(self, tmp_path):
        rec = ExperimentRecord(
            experiment="fig9b",
            description="latency vs sparsity",
            series={"sparsity": [0.0, 0.5], "speedup": [0.8, 1.4]},
            paper_anchors={"s75": 2.26},
        )
        path = save_results(rec, tmp_path)
        assert path.name == "fig9b.json"
        loaded = load_results("fig9b", tmp_path)
        assert loaded["series"]["speedup"] == [0.8, 1.4]
        assert loaded["paper_anchors"]["s75"] == 2.26

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.34567], [10, 0.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.346" in out

    def test_ascii_series(self):
        out = ascii_series([0.0, 0.5], [1.0, 2.0], width=10, label="speedup")
        assert "speedup" in out
        assert "##########" in out  # the max bar is full width

    def test_ascii_series_validation(self):
        with pytest.raises(ValueError):
            ascii_series([1.0], [])

    def test_ascii_bars(self):
        out = ascii_bars({"dense": 1.0, "tw": 2.0})
        assert "dense" in out and "tw" in out

    def test_ascii_empty(self):
        assert "(empty)" in ascii_bars({})
        assert "(empty)" in ascii_series([], [], label="x")
