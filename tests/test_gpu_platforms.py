"""Tests for the §VIII platform extensions: systolic array + sparse tensor core."""

import numpy as np
import pytest

from repro.formats.io import (
    load_bsr,
    load_csc,
    load_csr,
    load_tiled,
    save_bsr,
    save_csc,
    save_csr,
    save_tiled,
)
from repro.formats import BSRMatrix, CSCMatrix, CSRMatrix, TiledTWMatrix
from repro.gpu import dense_gemm_tc_cost, tw_gemm_cost
from repro.gpu.sparse_tensor_core import vw_sparse_tc_cost
from repro.gpu.systolic import (
    SystolicSpec,
    TPU_V3_LIKE,
    dense_gemm_systolic_cost,
    tw_gemm_systolic_cost,
)
from repro.gpu.tw_kernel import TWShapeStats

M, K, N = 8192, 768, 768


class TestSystolic:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SystolicSpec(array_dim=0)
        with pytest.raises(ValueError):
            SystolicSpec(pass_setup_us=-1)

    def test_peak_flops(self):
        assert TPU_V3_LIKE.peak_flops == pytest.approx(
            2 * 128 * 128 * 0.94e9
        )

    def test_dense_pass_count(self):
        bd = dense_gemm_systolic_cost(M, N, K)
        assert bd.kernels == (-(-K // 128)) * (-(-N // 128))

    def test_dense_zero_extent(self):
        assert dense_gemm_systolic_cost(0, N, K).total_us == 0.0

    def test_tw_with_g128_accelerates(self):
        """§VIII: TW with G = array width is feasible on a TPU."""
        dense = dense_gemm_systolic_cost(M, N, K)
        shape = TWShapeStats.synthetic(K, N, 128, 0.75, seed=1)
        tw = tw_gemm_systolic_cost(M, shape)
        assert dense.total_us / tw.total_us > 1.3

    def test_row_pruning_quantised_to_array_dim(self):
        """Sub-128 depth reductions do not reduce pass counts."""
        full = TWShapeStats(k=256, n=128, granularity=128, tiles=((256, 128),))
        shaved = TWShapeStats(k=256, n=128, granularity=128, tiles=((200, 128),))
        halved = TWShapeStats(k=256, n=128, granularity=128, tiles=((128, 128),))
        t_full = tw_gemm_systolic_cost(M, full).kernels
        t_shaved = tw_gemm_systolic_cost(M, shaved).kernels
        t_halved = tw_gemm_systolic_cost(M, halved).kernels
        assert t_full == t_shaved  # 200 rows still need 2 passes
        assert t_halved == t_full // 2

    def test_small_g_wastes_the_array(self):
        """G below the array width costs full passes per tile — the reason
        the paper requires G = 128 on TPU."""
        dense = dense_gemm_systolic_cost(M, N, K)
        g32 = TWShapeStats.synthetic(K, N, 32, 0.75, seed=1)
        g128 = TWShapeStats.synthetic(K, N, 128, 0.75, seed=1)
        t32 = tw_gemm_systolic_cost(M, g32).total_us
        t128 = tw_gemm_systolic_cost(M, g128).total_us
        assert t32 > t128
        assert dense.total_us / t32 < 1.0  # G=32 is a slowdown on the TPU

    def test_gpu_beats_tpu_for_tw(self):
        """The paper's caution: no stream concurrency / fine control on the
        high-level TPU interface ⇒ TW gains are smaller than on the GPU."""
        shape = TWShapeStats.synthetic(K, N, 128, 0.75, seed=1)
        gpu_speedup = (
            dense_gemm_tc_cost(M, N, K).total_us / tw_gemm_cost(M, shape).total_us
        )
        tpu_speedup = (
            dense_gemm_systolic_cost(M, N, K).total_us
            / tw_gemm_systolic_cost(M, shape).total_us
        )
        assert tpu_speedup < gpu_speedup

    def test_validation(self):
        with pytest.raises(ValueError):
            dense_gemm_systolic_cost(-1, N, K)
        with pytest.raises(ValueError):
            tw_gemm_systolic_cost(-1, TWShapeStats.synthetic(K, N, 128, 0.5))


class TestSparseTensorCore:
    def test_vw_on_modified_hardware_reaches_1_5x(self):
        """Zhu et al. report ~1.5×: the number the paper quotes in §III-B."""
        dense = dense_gemm_tc_cost(M, N, K)
        stc = vw_sparse_tc_cost(M, K, N, sparsity=0.75)
        speedup = dense.total_us / stc.total_us
        assert 1.2 <= speedup <= 1.9

    def test_scales_with_sparsity(self):
        lo = vw_sparse_tc_cost(M, K, N, 0.5)
        hi = vw_sparse_tc_cost(M, K, N, 0.9)
        assert hi.total_us < lo.total_us

    def test_tw_software_beats_vw_hardware(self):
        """The paper's pitch: software-only TW (~2×) beats hardware-assisted
        VW (~1.5×) at equal sparsity."""
        dense = dense_gemm_tc_cost(M, N, K)
        stc = vw_sparse_tc_cost(M, K, N, 0.75)
        shape = TWShapeStats.synthetic(K, N, 128, 0.75, seed=1)
        tw = tw_gemm_cost(M, shape)
        assert dense.total_us / tw.total_us > dense.total_us / stc.total_us

    def test_zero_extent(self):
        assert vw_sparse_tc_cost(0, K, N, 0.5).kernels == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            vw_sparse_tc_cost(M, K, N, 1.5)
        with pytest.raises(ValueError):
            vw_sparse_tc_cost(M, K, N, 0.5, vector_size=0)
        with pytest.raises(ValueError):
            vw_sparse_tc_cost(-1, K, N, 0.5)


class TestSerialization:
    def test_csr_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((16, 12)) * (rng.random((16, 12)) < 0.3)
        m = CSRMatrix.from_dense(w)
        save_csr(m, tmp_path / "w.npz")
        assert load_csr(tmp_path / "w.npz") == m

    def test_csc_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        w = rng.standard_normal((9, 14)) * (rng.random((9, 14)) < 0.4)
        m = CSCMatrix.from_dense(w)
        save_csc(m, tmp_path / "w.npz")
        assert load_csc(tmp_path / "w.npz") == m

    def test_bsr_roundtrip(self, tmp_path):
        rng = np.random.default_rng(2)
        w = np.zeros((8, 8))
        w[:4, :4] = rng.standard_normal((4, 4))
        m = BSRMatrix.from_dense(w, (4, 4))
        save_bsr(m, tmp_path / "w.npz")
        assert load_bsr(tmp_path / "w.npz") == m

    def test_tiled_roundtrip(self, tmp_path):
        rng = np.random.default_rng(3)
        w = rng.standard_normal((16, 24))
        col_keep = rng.random(24) < 0.7
        groups = TiledTWMatrix.column_groups(col_keep, 8)
        row_masks = [rng.random(16) < 0.6 for _ in groups]
        m = TiledTWMatrix.from_masks(w, 8, col_keep, row_masks)
        save_tiled(m, tmp_path / "w.npz")
        loaded = load_tiled(tmp_path / "w.npz")
        assert loaded.shape == m.shape
        assert loaded.granularity == m.granularity
        np.testing.assert_array_equal(loaded.to_dense(), m.to_dense())

    def test_kind_mismatch_rejected(self, tmp_path):
        m = CSRMatrix.from_dense(np.eye(3))
        save_csr(m, tmp_path / "w.npz")
        with pytest.raises(ValueError):
            load_csc(tmp_path / "w.npz")

    def test_empty_tiled_roundtrip(self, tmp_path):
        m = TiledTWMatrix(shape=(4, 4), granularity=2, tiles=())
        save_tiled(m, tmp_path / "e.npz")
        loaded = load_tiled(tmp_path / "e.npz")
        assert loaded.n_tiles == 0
        assert loaded.sparsity == 1.0
