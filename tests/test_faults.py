"""Chaos suite for the fault-tolerant serving path (ISSUE 6).

The invariant under test: under every seeded fault schedule (exceptions,
latency spikes, stalls, poison requests) and both executors, each
submitted request reaches a terminal status, ``ok`` outputs are
bit-identical to a fault-free ``inline`` run of the same requests, and no
``flush()`` hangs (the threaded driver's watchdog bounds every wait).
"""

import time

import numpy as np
import pytest

from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.runtime import (
    EXECUTORS,
    QueueFullError,
    ServerConfig,
    TWModelServer,
)
from repro.runtime import arena
from repro.runtime.executor import ThreadedExecutor, resolve_executor
from repro.runtime.faults import (
    FAULTS,
    ExceptionFault,
    Fault,
    FaultInjector,
    FaultRule,
    InjectedFault,
    KillFault,
    LatencyFault,
    StallFault,
    WorkerKilled,
    available_faults,
    resolve_faults,
)

TERMINAL = {"ok", "failed", "shed", "expired"}


def _pruned_layer(rng, k, n, sparsity=0.5, g=8):
    dense = rng.standard_normal((k, n))
    step = tw_prune_step([np.abs(dense)], sparsity, TWPruneConfig(granularity=g))
    return dense, step.col_keeps[0], step.row_masks[0]


def _layers(seed, n_layers=2, k=24, g=8):
    rng = np.random.default_rng(seed)
    return [_pruned_layer(rng, k, k, g=g) for _ in range(n_layers)]


def _server(layers, **cfg_kw):
    cfg_kw.setdefault("granularity", 8)
    server = TWModelServer(ServerConfig(**cfg_kw))
    for dense, ck, rm in layers:
        server.add_layer(dense, ck, rm)
    return server


def _requests(seed, n=6, rows=2, k=24):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((rows, k)) for _ in range(n)]


def _oracle_outputs(layers, reqs):
    """Fault-free inline run: the bit-identity reference, one serve each."""
    server = _server(layers)
    return [server.serve(x).output for x in reqs]


class TestRegistry:
    def test_names_and_aliases(self):
        assert available_faults() == ["exception", "kill", "latency", "stall"]
        assert FAULTS.canonical("error") == "exception"
        assert FAULTS.canonical("spike") == "latency"
        assert FAULTS.canonical("hang") == "stall"
        assert FAULTS.canonical("crash") == "kill"
        with pytest.raises(KeyError):
            FAULTS.canonical("oom")

    def test_create_with_options(self):
        f = FAULTS.create("latency", duration_s=0.01)
        assert isinstance(f, LatencyFault)
        assert f.duration_s == 0.01
        assert isinstance(FAULTS.create("stall"), StallFault)

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            LatencyFault(duration_s=-1.0)
        with pytest.raises(ValueError):
            LatencyFault(duration_s=float("nan"))

    def test_base_fault_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Fault().fire(0, 0, 0)


class TestFaultRule:
    def test_predicates(self):
        rule = FaultRule(fault="exception", wave=1, layer=(0, 2), slot=None)
        assert rule.matches(1, 0, 5)
        assert rule.matches(1, 2, 0)
        assert not rule.matches(0, 0, 0)  # wrong wave
        assert not rule.matches(1, 1, 0)  # wrong layer

    def test_callable_predicate(self):
        rule = FaultRule(fault="exception", wave=lambda w: w % 2 == 0)
        assert rule.matches(0, 0, 0)
        assert not rule.matches(1, 0, 0)

    def test_rate_is_site_deterministic(self):
        rule = FaultRule(fault="exception", rate=0.5, seed=7)
        sites = [(w, l, s) for w in range(8) for l in range(3) for s in range(2)]
        first = [rule.matches(*site) for site in sites]
        second = [rule.matches(*site) for site in sites]
        assert first == second  # pure function of (seed, site)
        assert any(first) and not all(first)  # the rate actually thins
        other = FaultRule(fault="exception", rate=0.5, seed=8)
        assert [other.matches(*s) for s in sites] != first  # seed matters

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule(fault="exception", rate=1.5)
        with pytest.raises(ValueError):
            FaultRule(fault="exception", max_fires=0)
        with pytest.raises(TypeError):
            FaultRule(fault=42)

    def test_max_fires_caps_injections(self):
        inj = FaultInjector([FaultRule(fault="exception", max_fires=2)])
        for _ in range(2):
            with pytest.raises(InjectedFault):
                inj.before_step(0, 0, 0)
        inj.before_step(0, 0, 0)  # budget exhausted: no raise
        assert inj.total_fired == 2
        assert inj.fired_by_kind == {"exception": 2}


class TestFromSpec:
    def test_round_trip(self):
        inj = FaultInjector.from_spec(
            "exception:wave=1;latency:rate=0.25:duration=0.01;"
            "stall:layer=0|2:max_fires=1"
        )
        assert len(inj.rules) == 3
        assert isinstance(inj.rules[0].fault, ExceptionFault)
        assert inj.rules[0].wave == 1
        assert inj.rules[1].rate == 0.25
        assert inj.rules[1].fault.duration_s == 0.01
        assert inj.rules[2].layer == (0, 2)
        assert inj.rules[2].max_fires == 1

    def test_aliases_and_seed(self):
        inj = FaultInjector.from_spec("error:seed=5", seed=1)
        assert inj.rules[0].seed == 5
        inj = FaultInjector.from_spec("error", seed=1)
        assert inj.rules[0].seed == 1

    def test_errors(self):
        with pytest.raises(ValueError):
            FaultInjector.from_spec("oom")
        with pytest.raises(ValueError):
            FaultInjector.from_spec("exception:wave")
        with pytest.raises(ValueError):
            FaultInjector.from_spec("exception:nope=1")

    def test_resolve_faults(self):
        inj = FaultInjector()
        assert resolve_faults(None) is None
        assert resolve_faults(inj) is inj
        assert isinstance(resolve_faults("exception"), FaultInjector)
        with pytest.raises(TypeError):
            resolve_faults(42)


# fault schedules for the chaos invariant: (spec, all_ok).  all_ok marks
# schedules guaranteed to recover fully — wave-pinned rules are transient
# (retried waves get fresh indices), latency never fails a wave, and
# max_fires budgets exhaust inside the retry budget.  Rate-based
# exception schedules stay under the *invariant* only: under threaded,
# how many waves launch before a failure is noticed is timing-dependent,
# so retried groups see different wave indices run-to-run and a request
# may legitimately exhaust its budget and terminate failed.
CHAOS_SCHEDULES = [
    ("exception:wave=1", True),
    ("exception:wave=0;exception:wave=2", True),
    ("exception:rate=0.3:seed=3", False),
    ("latency:rate=0.5:duration=0.002:seed=1", True),
    ("exception:max_fires=3", True),
    ("exception:wave=1;latency:rate=0.25:duration=0.001:seed=2", True),
]


class TestChaosInvariant:
    """Every request terminal, ok bits identical to fault-free inline."""

    @pytest.mark.parametrize("spec,all_ok", CHAOS_SCHEDULES)
    @pytest.mark.parametrize("executor", ["inline", "threaded"])
    def test_recovers_from_schedule(self, executor, spec, all_ok):
        layers = _layers(100)
        reqs = _requests(101, n=6)
        want = _oracle_outputs(layers, reqs)
        server = _server(
            layers,
            executor=executor,
            max_wave_rows=4,  # 2-row requests -> 2 per wave
            max_retries=2,
            watchdog_s=20.0 if executor == "threaded" else None,
            faults=spec,
        )
        rids = [server.submit(x) for x in reqs]
        served = server.flush()
        by_id = {s.request_id: s for s in served}
        assert set(by_id) == set(rids)  # every request reached terminal
        assert all(s.status in TERMINAL for s in served)
        for rid, ref in zip(rids, want):
            if all_ok:
                assert by_id[rid].status == "ok"
            if by_id[rid].status == "ok":
                np.testing.assert_array_equal(by_id[rid].output, ref)
            else:
                assert by_id[rid].status == "failed"
                assert isinstance(by_id[rid].error, InjectedFault)

    @pytest.mark.parametrize("executor", ["inline", "threaded"])
    def test_deterministic_layer_fault_poisons_every_request(self, executor):
        # layer-pinned with rate 1: survives retries and bisection alike,
        # so every request terminates failed -- but flush never raises
        layers = _layers(102)
        reqs = _requests(103, n=4)
        server = _server(
            layers,
            executor=executor,
            max_wave_rows=4,
            max_retries=1,
            watchdog_s=20.0 if executor == "threaded" else None,
            faults="exception:layer=0",
        )
        rids = [server.submit(x) for x in reqs]
        served = server.flush()
        assert {s.request_id for s in served} == set(rids)
        assert all(s.status == "failed" for s in served)
        assert all(isinstance(s.error, InjectedFault) for s in served)
        assert server.stats.poisoned == len(reqs)
        # and the server stays usable once the schedule is cleared
        object.__setattr__(server.config, "faults", None)
        ok = server.serve(reqs[0])
        assert ok.status == "ok"

    def test_same_schedule_replays_identically(self):
        # inline is the determinism oracle: the wave-index sequence is a
        # pure function of the request stream, so the whole trajectory —
        # statuses, fire counts, retry counts — replays exactly
        layers = _layers(104)
        reqs = _requests(105, n=5)

        def run():
            server = _server(
                layers,
                max_wave_rows=4,
                max_retries=2,
                faults="exception:rate=0.4:seed=9",
            )
            for x in reqs:
                server.submit(x)
            served = server.flush()
            return (
                [(s.request_id, s.status) for s in served],
                server.config.faults.fired_by_kind,
                server.stats.retries,
            )

        assert run() == run()


class TestChaosInvariantIngress:
    """The continuous ingress preserves the chaos invariant (ISSUE 8).

    Same schedules, same oracle, but requests stream through the asyncio
    :class:`~repro.runtime.ingress.ServingLoop` with mid-stream arrivals
    instead of one lock-step drain: every request still reaches a
    terminal status and every ``ok`` output stays bit-identical to the
    fault-free inline reference.
    """

    @staticmethod
    def _stream(server, reqs, *, deadline_s=None):
        import asyncio

        from repro.runtime.ingress import ServingLoop

        async def go():
            async with ServingLoop(server, max_wave_rows=4) as loop:
                futures = []
                for i, x in enumerate(reqs):
                    futures.append(loop.submit_nowait(x, deadline_s=deadline_s))
                    if i % 2 == 1:  # mid-stream: arrivals during flushes
                        await asyncio.sleep(0.001)
                return list(await asyncio.gather(*futures))

        return asyncio.run(go())

    @pytest.mark.parametrize("spec,all_ok", CHAOS_SCHEDULES)
    @pytest.mark.parametrize("executor", ["inline", "threaded"])
    def test_ingress_recovers_from_schedule(self, executor, spec, all_ok):
        layers = _layers(100)
        reqs = _requests(101, n=6)
        want = _oracle_outputs(layers, reqs)
        server = _server(
            layers,
            executor=executor,
            max_wave_rows=4,
            max_retries=2,
            watchdog_s=20.0 if executor == "threaded" else None,
            faults=spec,
        )
        with server:
            served = self._stream(server, reqs)
        assert all(s.status in TERMINAL for s in served)
        for s, ref in zip(served, want):
            if all_ok:
                assert s.status == "ok"
            if s.status == "ok":
                np.testing.assert_array_equal(s.output, ref)
            else:
                assert s.status == "failed"
                assert isinstance(s.error, InjectedFault)

    def test_ingress_deadline_expiry_under_faults(self):
        # zero deadline: every request expires before any GEMM runs, even
        # with a fault schedule attached — the ingress surfaces the same
        # graceful terminal statuses the lock-step drain does
        layers = _layers(108)
        reqs = _requests(109, n=4)
        server = _server(
            layers,
            max_wave_rows=4,
            faults="exception:wave=0",
        )
        with server:
            served = self._stream(server, reqs, deadline_s=0.0)
        assert [s.status for s in served] == ["expired"] * len(reqs)
        assert server.stats.expired == len(reqs)


class TestPlacementsUnderFaults:
    @pytest.mark.parametrize("executor", ["inline", "threaded"])
    @pytest.mark.parametrize("placement_kind", ["replicated", "layer_sharded"])
    def test_multi_device_recovery_bit_identical(self, executor, placement_kind):
        from repro.gpu.device import T4, V100
        from repro.runtime.placement import Placement

        layers = _layers(106)
        reqs = _requests(107, n=6)
        want = _oracle_outputs(layers, reqs)
        server = _server(
            layers,
            executor=executor,
            max_wave_rows=4,
            max_retries=2,
            placement=Placement(placement_kind, (V100, T4)),
            watchdog_s=20.0 if executor == "threaded" else None,
            faults="exception:wave=1;latency:rate=0.2:duration=0.001:seed=4",
        )
        rids = [server.submit(x) for x in reqs]
        served = server.flush()
        by_id = {s.request_id: s for s in served}
        assert set(by_id) == set(rids)
        for rid, ref in zip(rids, want):
            assert by_id[rid].status == "ok"
            np.testing.assert_array_equal(by_id[rid].output, ref)


class TestAdmission:
    def test_reject_policy_raises_queue_full(self):
        layers = _layers(108)
        server = _server(layers, max_queue_rows=4)
        server.submit(np.zeros((2, 24)))
        server.submit(np.zeros((2, 24)))
        with pytest.raises(QueueFullError):
            server.submit(np.zeros((2, 24)))
        assert server.stats.shed == 0
        assert len(server.flush()) == 2  # admitted requests unaffected

    def test_oversized_request_always_rejected(self):
        layers = _layers(109)
        for policy in ("reject", "shed_oldest"):
            server = _server(layers, max_queue_rows=4, shed_policy=policy)
            with pytest.raises(QueueFullError):
                server.submit(np.zeros((5, 24)))

    def test_shed_oldest_policy_sheds_with_terminal_status(self):
        layers = _layers(110)
        reqs = _requests(111, n=3)
        want = _oracle_outputs(layers, reqs)
        server = _server(layers, max_queue_rows=4, shed_policy="shed_oldest")
        rids = [server.submit(x) for x in reqs]  # third submit sheds first
        assert server.stats.shed == 1
        served = server.flush()
        by_id = {s.request_id: s for s in served}
        assert set(by_id) == set(rids)  # the shed request still surfaces
        assert by_id[rids[0]].status == "shed"
        assert by_id[rids[0]].output is None
        for rid, ref in zip(rids[1:], want[1:]):
            assert by_id[rid].status == "ok"
            np.testing.assert_array_equal(by_id[rid].output, ref)

    def test_expired_deadline_sheds_before_any_gemm(self):
        layers = _layers(112)
        reqs = _requests(113, n=2)
        server = _server(layers)
        expired_rid = server.submit(reqs[0], deadline_s=0.0)
        ok_rid = server.submit(reqs[1])
        time.sleep(0.002)
        gemms_before = server.stats.gemms
        served = server.flush()
        by_id = {s.request_id: s for s in served}
        assert by_id[expired_rid].status == "expired"
        assert by_id[expired_rid].output is None
        assert by_id[ok_rid].status == "ok"
        assert server.stats.expired == 1
        # only the surviving request's layers ran
        assert server.stats.gemms - gemms_before == len(layers)

    def test_deadline_orders_wave_assembly(self):
        layers = _layers(114)
        reqs = _requests(115, n=3)
        server = _server(layers, max_wave_rows=2)  # one request per wave
        no_deadline = server.submit(reqs[0])
        tight = server.submit(reqs[1], deadline_s=60.0)
        loose = server.submit(reqs[2], deadline_s=120.0)
        served = server.flush()
        by_id = {s.request_id: s for s in served}
        # shortest deadline runs first; deadline-free traffic goes last
        assert by_id[tight].batch_id < by_id[loose].batch_id
        assert by_id[loose].batch_id < by_id[no_deadline].batch_id

    def test_deadline_validation(self):
        layers = _layers(116)
        server = _server(layers)
        with pytest.raises(ValueError):
            server.submit(np.zeros((1, 24)), deadline_s=-1.0)
        with pytest.raises(ValueError):
            server.submit(np.zeros((1, 24)), deadline_s=float("inf"))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ServerConfig(shed_policy="drop_newest")
        with pytest.raises(ValueError):
            ServerConfig(max_queue_rows=-1)
        with pytest.raises(ValueError):
            ServerConfig(retry_backoff_s=-0.1)
        with pytest.raises(ValueError):
            ServerConfig(watchdog_s=float("nan"))
        with pytest.raises(TypeError):
            ServerConfig(faults=42)


class TestWatchdog:
    def test_stall_fails_wave_instead_of_hanging(self):
        # a stall far beyond the watchdog: flush must return (bounded),
        # the wave fails with TimeoutError, and retries then succeed
        # because the stall rule is wave-pinned (transient)
        layers = _layers(117)
        reqs = _requests(118, n=2)
        want = _oracle_outputs(layers, reqs)
        server = _server(
            layers,
            executor="threaded",
            max_wave_rows=4,
            max_retries=1,
            watchdog_s=0.2,
            faults=FaultInjector(
                [FaultRule(fault=StallFault(duration_s=1.0), wave=0)]
            ),
        )
        rids = [server.submit(x) for x in reqs]
        t0 = time.perf_counter()
        served = server.flush()
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0  # bounded: no unbounded hang on the stall
        by_id = {s.request_id: s for s in served}
        assert set(by_id) == set(rids)
        for rid, ref in zip(rids, want):
            assert by_id[rid].status == "ok"
            np.testing.assert_array_equal(by_id[rid].output, ref)
        assert server.stats.retries >= 1

    def test_persistent_stall_terminates_failed(self):
        # layer-pinned stall: every attempt (and bisected half) stalls, so
        # requests terminate failed with TimeoutError -- still no hang
        layers = _layers(119)
        server = _server(
            layers,
            executor="threaded",
            max_retries=0,
            watchdog_s=0.15,
            faults=FaultInjector(
                [FaultRule(fault=StallFault(duration_s=0.6), layer=0)]
            ),
        )
        rid = server.submit(np.zeros((2, 24)))
        served = server.flush()
        (req,) = served
        assert req.request_id == rid
        assert req.status == "failed"
        assert isinstance(req.error, TimeoutError)

    def test_watchdog_respawns_worker(self):
        layers = _layers(120)
        server = _server(layers, executor="threaded", max_retries=0, watchdog_s=0.15)
        # workers spawn lazily on first use: serve once to materialise one
        assert server.serve(np.zeros((2, 24))).status == "ok"
        before = list(server.executor._threads)
        assert len(before) == 1
        object.__setattr__(
            server.config,
            "faults",
            FaultInjector([FaultRule(fault=StallFault(duration_s=0.5), layer=0)]),
        )
        server.submit(np.zeros((2, 24)))
        (req,) = server.flush()
        assert req.status == "failed"
        after = list(server.executor._threads)
        assert len(after) == len(before)
        assert after[0] is not before[0]  # stalled worker replaced
        # the respawned worker serves the next flush normally
        object.__setattr__(server.config, "faults", None)
        assert server.serve(np.zeros((2, 24))).status == "ok"

    def test_watchdog_validation(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(watchdog_s=-1.0)
        assert ThreadedExecutor(watchdog_s=0).watchdog_s is None  # disabled
        assert ThreadedExecutor().watchdog_s == 60.0


class TestExecutorHardening:
    def test_strict_option_validation(self):
        # ISSUE 6 satellite: inline used to silently swallow workers
        with pytest.raises(ValueError, match="does not accept"):
            EXECUTORS.create("inline", workers=3)
        with pytest.raises(ValueError, match="does not accept"):
            EXECUTORS.create("threaded", turbo=True)
        with pytest.raises(ValueError, match="does not accept"):
            resolve_executor("inline", workers=3)
        from repro.runtime.executor import InlineExecutor

        assert isinstance(EXECUTORS.create("inline"), InlineExecutor)

    def test_server_config_rejects_inline_workers(self):
        with pytest.raises(ValueError, match="does not accept"):
            TWModelServer(ServerConfig(executor="inline", workers=2))

    def test_worker_survives_base_exception(self):
        # a non-Exception error must fail the wave visibly, not kill the
        # worker thread silently (the old loop had no guard at all)
        class Boom(BaseException):
            pass

        class BaseExceptionFault(Fault):
            kind = "base-boom"

            def fire(self, wave, layer, slot):
                raise Boom(f"wave={wave}")

        layers = _layers(121)
        reqs = _requests(122, n=2)
        want = _oracle_outputs(layers, reqs)
        server = _server(
            layers,
            executor="threaded",
            max_retries=1,
            watchdog_s=10.0,
            faults=FaultInjector(
                [FaultRule(fault=BaseExceptionFault(), wave=0)]
            ),
        )
        rids = [server.submit(x) for x in reqs]
        served = server.flush()
        by_id = {s.request_id: s for s in served}
        for rid, ref in zip(rids, want):
            assert by_id[rid].status == "ok"  # retried on a live worker
            np.testing.assert_array_equal(by_id[rid].output, ref)
        assert all(t.is_alive() for t in server.executor._threads)

    def test_worker_loop_survives_malformed_queue_item(self):
        ex = ThreadedExecutor(workers=1)
        ex._ensure_workers(1)
        ex._queues[0].put("garbage")  # would have killed the old loop
        time.sleep(0.05)
        assert ex._threads[0].is_alive()

class TestStatsAndStrictMode:
    def test_retry_stats_accounted(self):
        layers = _layers(125)
        server = _server(
            layers,
            max_wave_rows=4,
            max_retries=2,
            faults="exception:wave=0",
        )
        for x in _requests(126, n=2):
            server.submit(x)
        served = server.flush()
        assert all(s.status == "ok" for s in served)
        assert server.stats.retries == 1
        assert server.stats.requeues == 2
        assert server.stats.poisoned == 0

    def test_strict_mode_raises_and_keeps_tail(self):
        layers = _layers(127)
        server = _server(
            layers,
            max_wave_rows=2,
            faults="exception:wave=0",
        )
        for x in _requests(128, n=3):
            server.submit(x)
        with pytest.raises(InjectedFault):
            server.flush(strict=True)
        assert len(server._pending) > 0  # unconsumed tail still queued
        assert server.stats.retries == 0  # strict mode never retries
        # the wave-0 rule is spent (wave indices advance), so the retry
        # flush drains the tail cleanly
        tail = server.flush(strict=True)
        assert all(s.status == "ok" for s in tail)

    def test_backoff_sleeps_between_attempts(self):
        layers = _layers(129)
        server = _server(
            layers,
            max_retries=1,
            retry_backoff_s=0.05,
            faults="exception:wave=0",
        )
        server.submit(np.zeros((2, 24)))
        t0 = time.perf_counter()
        served = server.flush()
        elapsed = time.perf_counter() - t0
        assert all(s.status == "ok" for s in served)
        assert elapsed >= 0.05  # the backoff actually waited

    def test_flush_returns_sorted_by_request_id(self):
        layers = _layers(130)
        reqs = _requests(131, n=4)
        server = _server(layers, max_wave_rows=2, faults="exception:wave=1")
        rids = [server.submit(x) for x in reqs]
        served = server.flush()
        assert [s.request_id for s in served] == sorted(rids)


class TestKillFault:
    """The `kill` fault kind (ISSUE 7): a worker crash as a schedulable event."""

    def test_registry_and_fire(self):
        fault = FAULTS.create("kill")
        assert isinstance(fault, KillFault)
        with pytest.raises(WorkerKilled):
            fault.fire(1, 0, 0)
        assert issubclass(WorkerKilled, InjectedFault)

    @pytest.mark.parametrize("executor", ["inline", "threaded"])
    def test_kill_is_ordinary_transient_failure_in_process_free_executors(
        self, executor
    ):
        # without a process boundary there is nothing to SIGKILL: the kill
        # fault degrades to an injected failure the retry path clears
        layers = _layers(140)
        reqs = _requests(141, n=4)
        want = _oracle_outputs(layers, reqs)
        server = _server(
            layers,
            executor=executor,
            max_wave_rows=4,
            max_retries=2,
            watchdog_s=20.0 if executor == "threaded" else None,
            faults="kill:wave=0",
        )
        rids = [server.submit(x) for x in reqs]
        served = server.flush()
        by_id = {s.request_id: s for s in served}
        assert all(by_id[rid].status == "ok" for rid in rids)
        for rid, ref in zip(rids, want):
            np.testing.assert_array_equal(by_id[rid].output, ref)
        assert server.config.faults.fired_by_kind.get("kill", 0) >= 1
        assert server.stats.retries >= 1


class TestProcessChaos:
    """ISSUE 7 chaos contract: a worker process killed mid-wave leaves
    every request terminal, ok outputs bit-identical to the fault-free
    inline oracle, and not one shared-memory segment behind after close."""

    @pytest.mark.parametrize("placement_kind", [None, "replicated", "layer_sharded"])
    def test_worker_killed_mid_wave_recovers(self, placement_kind):
        from repro.gpu.device import T4, V100
        from repro.runtime.placement import Placement

        shm_before = set(arena.leaked_segments())
        layers = _layers(142)
        reqs = _requests(143, n=6)
        want = _oracle_outputs(layers, reqs)
        placement = (
            None if placement_kind is None
            else Placement(placement_kind, (V100, T4))
        )
        server = _server(
            layers,
            executor="process",
            max_wave_rows=4,
            max_retries=2,
            placement=placement,
            faults="kill:wave=1",  # 3 waves; the second one's worker dies
        )
        try:
            rids = [server.submit(x) for x in reqs]
            served = server.flush()
        finally:
            server.close()
        by_id = {s.request_id: s for s in served}
        assert set(by_id) == set(rids)
        assert all(s.status in TERMINAL for s in served)
        for rid, ref in zip(rids, want):
            assert by_id[rid].status == "ok"
            np.testing.assert_array_equal(by_id[rid].output, ref)
        assert server.stats.retries >= 1
        assert not set(arena.leaked_segments()) - shm_before

    def test_persistent_kill_terminates_failed_and_stays_clean(self):
        from repro.runtime.executor import WorkerCrashed

        shm_before = set(arena.leaked_segments())
        layers = _layers(144)
        reqs = _requests(145, n=2)
        server = _server(
            layers,
            executor="process",
            max_wave_rows=4,
            max_retries=0,  # straight to bisection: 3 kill/respawn cycles
            faults="kill:layer=0",  # fires on every wave, retries included
        )
        try:
            rids = [server.submit(x) for x in reqs]
            served = server.flush()
        finally:
            server.close()
        by_id = {s.request_id: s for s in served}
        assert set(by_id) == set(rids)
        assert all(s.status == "failed" for s in served)
        assert all(isinstance(s.error, WorkerCrashed) for s in served)
        assert server.stats.poisoned == len(reqs)
        assert not set(arena.leaked_segments()) - shm_before

    def test_faultfree_process_matches_inline_across_placements(self):
        from repro.gpu.device import T4, V100
        from repro.runtime.placement import Placement

        shm_before = set(arena.leaked_segments())
        layers = _layers(146)
        reqs = _requests(147, n=6)
        want = _oracle_outputs(layers, reqs)
        for kind in (None, "replicated", "layer_sharded"):
            placement = None if kind is None else Placement(kind, (V100, T4))
            server = _server(
                layers, executor="process", max_wave_rows=4,
                placement=placement,
            )
            try:
                rids = [server.submit(x) for x in reqs]
                served = server.flush()
            finally:
                server.close()
            by_id = {s.request_id: s for s in served}
            for rid, ref in zip(rids, want):
                assert by_id[rid].status == "ok"
                np.testing.assert_array_equal(by_id[rid].output, ref)
        assert not set(arena.leaked_segments()) - shm_before

    def test_mixed_schedule_with_kills_keeps_invariant(self):
        # kills + exceptions + latency in one schedule: the strongest
        # version of the terminal-status invariant across the boundary
        shm_before = set(arena.leaked_segments())
        layers = _layers(148)
        reqs = _requests(149, n=6)
        want = _oracle_outputs(layers, reqs)
        server = _server(
            layers,
            executor="process",
            max_wave_rows=4,
            max_retries=2,
            faults="kill:wave=2;exception:wave=0;"
                   "latency:rate=0.3:duration=0.001:seed=6",
        )
        try:
            rids = [server.submit(x) for x in reqs]
            served = server.flush()
        finally:
            server.close()
        by_id = {s.request_id: s for s in served}
        assert set(by_id) == set(rids)
        assert all(s.status in TERMINAL for s in served)
        for rid, ref in zip(rids, want):
            if by_id[rid].status == "ok":
                np.testing.assert_array_equal(by_id[rid].output, ref)
        # exception fires are merged back from workers; kill fires cannot
        # be (the killed worker never reports) -- only assert the former
        assert server.config.faults.fired_by_kind.get("exception", 0) >= 1
        assert not set(arena.leaked_segments()) - shm_before
