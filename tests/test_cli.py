"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def weight_file(tmp_path):
    rng = np.random.default_rng(0)
    path = tmp_path / "w.npy"
    np.save(path, rng.standard_normal((128, 128)))
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_prune_defaults(self, weight_file):
        args = build_parser().parse_args(["prune", str(weight_file)])
        assert args.sparsity == 0.75
        assert args.granularity == 128

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize"])


class TestPrune:
    def test_prints_stats(self, weight_file, capsys):
        rc = main(["prune", str(weight_file), "--sparsity", "0.5", "-G", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "achieved sparsity" in out
        assert "tiles" in out

    def test_writes_output(self, weight_file, tmp_path, capsys):
        out_path = tmp_path / "pruned.npz"
        rc = main([
            "prune", str(weight_file), "--sparsity", "0.75",
            "-G", "32", "--out", str(out_path),
        ])
        assert rc == 0
        import repro

        model = repro.load(out_path)
        assert model.n_layers == 1
        assert model.achieved_sparsity == pytest.approx(0.75, abs=0.03)
        assert model.layers[0].tw.sparsity == pytest.approx(0.75, abs=0.03)

    def test_missing_file(self, tmp_path, capsys):
        rc = main(["prune", str(tmp_path / "nope.npy")])
        assert rc == 2
        assert "cannot load" in capsys.readouterr().err

    def test_rejects_1d(self, tmp_path, capsys):
        path = tmp_path / "v.npy"
        np.save(path, np.ones(8))
        rc = main(["prune", str(path)])
        assert rc == 2

    def test_rejects_bad_sparsity(self, weight_file, capsys):
        rc = main(["prune", str(weight_file), "--sparsity", "1.5"])
        assert rc == 2


class TestTune:
    # small task budgets: the dense training runs inside the command
    _FAST = ["tune", "mnli", "--train-samples", "48", "--stages", "1",
             "--sparsity", "0.5", "-G", "8"]

    def test_tasks_mirror_experiments(self):
        from repro.cli import _TASKS
        from repro.experiments.accuracy import TASKS

        assert _TASKS == TASKS

    def test_prints_trajectory(self, capsys):
        rc = main(self._FAST)
        assert rc == 0
        out = capsys.readouterr().out
        assert "target" in out and "achieved" in out
        assert "dense accuracy" in out

    def test_json_trajectory(self, capsys):
        import json

        rc = main(self._FAST + ["--json"])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["pattern"] == "tw"
        assert len(record["trajectory"]) == 1
        stage = record["trajectory"][0]
        assert stage["kind"] == "prune"
        assert stage["achieved_sparsity"] == pytest.approx(0.5, abs=0.03)
        assert record["final_metric"] is not None

    def test_tew_adds_overlay_stage(self, capsys):
        import json

        rc = main(self._FAST + ["--pattern", "tew", "--json"])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["pattern"] == "tew"
        assert record["trajectory"][-1]["kind"] == "overlay"

    def test_out_saves_loadable_model(self, tmp_path, capsys):
        out = tmp_path / "tuned.npz"
        rc = main(self._FAST + ["--out", str(out)])
        assert rc == 0
        import repro

        model = repro.load(out)
        assert model.achieved_sparsity == pytest.approx(0.5, abs=0.03)

    def test_tew_out_rejected(self, tmp_path, capsys):
        rc = main(self._FAST + ["--pattern", "tew",
                                "--out", str(tmp_path / "t.npz")])
        assert rc == 2
        assert "residual" in capsys.readouterr().err

    def test_zero_finetune_epochs_allowed(self, capsys):
        rc = main(self._FAST + ["--finetune-epochs", "0"])
        assert rc == 0

    def test_bad_sparsity(self, capsys):
        rc = main(["tune", "mnli", "--sparsity", "1.0"])
        assert rc == 2

    def test_bad_stages(self, capsys):
        rc = main(["tune", "mnli", "--stages", "0"])
        assert rc == 2

    def test_bad_granularity_rejected_before_training(self, capsys):
        rc = main(["tune", "mnli", "-G", "0"])
        assert rc == 2
        assert "granularity" in capsys.readouterr().err

    def test_oneshot_schedule_runs(self, capsys):
        import json

        rc = main(["tune", "mnli", "--train-samples", "48", "--sparsity",
                   "0.5", "-G", "8", "--schedule", "oneshot", "--json"])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert len(record["trajectory"]) == 1

    def test_oneshot_with_stages_conflict(self, capsys):
        rc = main(["tune", "mnli", "--schedule", "oneshot", "--stages", "3"])
        assert rc == 2
        assert "single-stage" in capsys.readouterr().err

    def test_bad_schedule_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["tune", "mnli", "--schedule", "warmup"])

    def test_bad_importance_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["tune", "mnli", "--importance", "entropy"])


class TestLatency:
    def test_tw_latency(self, capsys):
        rc = main(["latency", "bert", "--pattern", "tw", "--sparsity", "0.75"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GEMM-only speedup" in out
        assert "end-to-end latency" in out

    def test_dense(self, capsys):
        rc = main(["latency", "vgg", "--pattern", "dense", "--sparsity", "0"])
        assert rc == 0

    def test_bad_sparsity(self, capsys):
        rc = main(["latency", "bert", "--sparsity", "2.0"])
        assert rc == 2

    def test_bad_model_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["latency", "resnet"])


class TestSweep:
    def test_prints_table(self, capsys):
        rc = main([
            "sweep", "bert", "--pattern", "tw",
            "--sparsities", "0.5", "0.75",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "50%" in out and "75%" in out

    def test_bad_sparsity(self, capsys):
        rc = main(["sweep", "bert", "--sparsities", "1.5"])
        assert rc == 2


class TestServe:
    def test_single_device(self, capsys):
        rc = main([
            "serve", "bert", "--scale", "32", "--blocks", "1",
            "--requests", "4", "--rows", "2", "-G", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rows/s" in out
        assert "single x1" in out

    def test_layer_sharded_devices(self, capsys):
        rc = main([
            "serve", "bert", "--scale", "32", "--blocks", "1",
            "--requests", "4", "--rows", "2", "-G", "4",
            "--devices", "2", "--placement", "layer_sharded",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "layer_sharded x2" in out

    def test_threaded_executor(self, capsys):
        rc = main([
            "serve", "bert", "--scale", "32", "--blocks", "1",
            "--requests", "4", "--rows", "2", "-G", "4",
            "--devices", "2", "--placement", "replicated",
            "--executor", "threaded",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "threaded" in out
        assert "wall time (measured)" in out
        assert "parallel efficiency" in out

    def test_bad_workers_rejected(self, capsys):
        rc = main([
            "serve", "bert", "--executor", "threaded", "--workers", "0",
        ])
        assert rc == 2

    def test_bad_pace_rejected(self, capsys):
        rc = main(["serve", "bert", "--pace", "-1"])
        assert rc == 2

    def test_single_with_many_devices_rejected(self, capsys):
        rc = main([
            "serve", "bert", "--devices", "2", "--placement", "single",
        ])
        assert rc == 2

    def test_bad_sparsity(self, capsys):
        rc = main(["serve", "bert", "--sparsity", "1.0"])
        assert rc == 2


class TestInfo:
    def test_dumps_device_and_calibration(self, capsys):
        rc = main(["info"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sm_count" in out
        assert "tw_masked_load_stall" in out
        assert "patterns" in out

    def test_json_output(self, capsys):
        import json

        rc = main(["info", "--json"])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["device"]["sm_count"] == 80
        assert "tw" in record["registries"]["patterns"]
        assert record["registries"]["engines"] == ["cuda_core", "tensor_core"]
        assert "layer_sharded" in record["registries"]["placements"]
        assert record["registries"]["executors"] == ["inline", "process", "threaded"]
        assert record["registries"]["schedules"] == ["gradual", "oneshot"]
        assert record["registries"]["importance"] == ["magnitude", "taylor"]
        assert "tw_masked_load_stall" in record["calibration"]
