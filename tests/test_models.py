"""Tests for MiniBERT / MiniVGG / MiniNMT and the shape registry."""

import numpy as np
import pytest

from repro.models import (
    BertConfig,
    MiniBERTClassifier,
    MiniBERTSpan,
    MiniNMT,
    MiniVGG,
    NMTConfig,
    VGGConfig,
    bert_base_gemm_shapes,
    build_model,
    nmt_gemm_shapes,
    vgg16_gemm_shapes,
)
from repro.models.registry import GemmShape, nongemm_time_fraction
from repro.nn.datasets import (
    ImagePatternDataset,
    SentencePairDataset,
    Seq2SeqDataset,
    SpanQADataset,
)
from repro.nn.optimizer import Adam
from repro.nn.trainer import TrainConfig, Trainer

SMALL_BERT = BertConfig(vocab_size=128, dim=32, n_layers=2, n_heads=4, max_len=32, seed=0)


class TestMiniBERT:
    def test_forward_shape(self):
        model = MiniBERTClassifier(SMALL_BERT, n_classes=3)
        ids = np.random.default_rng(0).integers(0, 128, size=(4, 16))
        assert model(ids).shape == (4, 3)

    def test_prunable_count_matches_paper_accounting(self):
        """6 matrices per layer — 72 for 12 layers (Fig. 5)."""
        model = MiniBERTClassifier(SMALL_BERT)
        assert len(model.prunable_weights()) == 6 * SMALL_BERT.n_layers
        cfg12 = BertConfig(dim=32, n_layers=12, n_heads=4)
        assert len(MiniBERTClassifier(cfg12).prunable_weights()) == 72

    def test_learns_sentence_pair_task(self):
        ds = SentencePairDataset(vocab_size=128, seq_len=16, seed=0)
        train = ds.sample(512, seed=1)
        test = ds.sample(256, seed=2)
        model = MiniBERTClassifier(SMALL_BERT, n_classes=3)
        opt = Adam(list(model.parameters()), lr=2e-3)
        Trainer(model.loss, opt).train(train, TrainConfig(epochs=6, batch_size=64))
        acc = model.evaluate(test)
        assert acc > 0.55  # well above the 1/3 chance level

    def test_span_model_shapes(self):
        model = MiniBERTSpan(SMALL_BERT)
        ids = np.random.default_rng(0).integers(0, 128, size=(3, 20))
        s, e = model(ids)
        assert s.shape == (3, 20) and e.shape == (3, 20)

    def test_span_model_learns(self):
        ds = SpanQADataset(vocab_size=128, seq_len=24, n_marker_kinds=3, seed=0)
        train = ds.sample(1024, seed=1)
        test = ds.sample(128, seed=2)
        cfg = BertConfig(vocab_size=128, dim=48, n_layers=2, n_heads=4, max_len=32, seed=0)
        model = MiniBERTSpan(cfg)
        opt = Adam(list(model.parameters()), lr=2e-3)
        Trainer(model.loss, opt).train(train, TrainConfig(epochs=8, batch_size=64))
        assert model.evaluate(test) > 0.7  # span F1 well above chance

    def test_sequence_too_long_raises(self):
        model = MiniBERTClassifier(SMALL_BERT)
        with pytest.raises(ValueError):
            model(np.zeros((1, 64), dtype=np.int64))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BertConfig(dim=30, n_heads=4)
        with pytest.raises(ValueError):
            MiniBERTClassifier(SMALL_BERT, n_classes=1)


class TestMiniVGG:
    def test_forward_shape(self):
        model = MiniVGG(VGGConfig(seed=0))
        x = np.random.default_rng(0).standard_normal((2, 3, 16, 16))
        assert model(x).shape == (2, 10)

    def test_learns_image_task(self):
        ds = ImagePatternDataset(n_classes=4, seed=0)
        train = ds.sample(512, seed=1)
        test = ds.sample(128, seed=2)
        model = MiniVGG(VGGConfig(n_classes=4, seed=0))
        opt = Adam(list(model.parameters()), lr=2e-3)
        Trainer(model.loss, opt).train(train, TrainConfig(epochs=4, batch_size=64))
        assert model.evaluate(test) > 0.7

    def test_prunable_weights_are_gemm_views(self):
        model = MiniVGG(VGGConfig())
        ws = model.prunable_weights()
        # 2 convs per stage × 2 stages + 2 FCs
        assert len(ws) == 6
        assert ws[0].shape == (3 * 9, 16)  # first conv, im2col-lowered

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VGGConfig(stages=())
        with pytest.raises(ValueError):
            VGGConfig(image_size=10, stages=(8, 16))


class TestMiniNMT:
    def test_forward_shape(self):
        model = MiniNMT(NMTConfig(vocab_size=32, dim=16, seed=0))
        src = np.random.default_rng(0).integers(3, 32, size=(2, 6))
        tgt_in = np.random.default_rng(1).integers(3, 32, size=(2, 5))
        assert model(src, tgt_in).shape == (2, 5, 32)

    def test_greedy_decode_terminates(self):
        model = MiniNMT(NMTConfig(vocab_size=32, dim=16, seed=0))
        src = np.random.default_rng(0).integers(3, 32, size=(3, 6))
        outs = model.greedy_decode(src, max_len=8)
        assert len(outs) == 3
        assert all(len(o) <= 8 for o in outs)

    def test_learns_toy_translation(self):
        ds = Seq2SeqDataset(vocab_size=32, max_len=8, seed=0)
        train = ds.sample(768, seed=1)
        test = ds.sample(64, seed=2)
        model = MiniNMT(NMTConfig(vocab_size=32, dim=48, seed=0))
        opt = Adam(list(model.parameters()), lr=5e-3)
        before = model.evaluate(test)
        Trainer(model.loss, opt).train(train, TrainConfig(epochs=12, batch_size=64))
        after = model.evaluate(test)
        assert after > before + 20.0  # BLEU improves substantially
        assert after > 40.0

    def test_prunable_weights(self):
        model = MiniNMT(NMTConfig(vocab_size=32, dim=16))
        ws = model.prunable_weights()
        assert len(ws) == 7  # 2+2 gates, attention, combine, out_proj


class TestRegistry:
    def test_bert_shapes_paper_dimensions(self):
        shapes = bert_base_gemm_shapes(batch=64, seq=128)
        assert sum(s.count for s in shapes) == 72  # 6 per layer × 12
        attn = next(s for s in shapes if s.name == "attn-proj")
        assert (attn.k, attn.n) == (768, 768)
        ffn1 = next(s for s in shapes if s.name == "ffn-1")
        assert (ffn1.k, ffn1.n) == (768, 3072)

    def test_vgg16_shapes(self):
        shapes = vgg16_gemm_shapes(batch=8)
        assert len(shapes) == 16  # 13 conv + 3 FC (paper §III-B)
        conv1 = shapes[0]
        assert conv1.k == 27 and conv1.n == 64
        fc1 = next(s for s in shapes if s.name == "fc1")
        assert fc1.k == 512 * 49 and fc1.n == 4096

    def test_nmt_shapes(self):
        shapes = nmt_gemm_shapes()
        gates = next(s for s in shapes if s.name == "enc-gates")
        assert gates.n == 4 * 512

    def test_gemm_shape_flops(self):
        s = GemmShape(2, 3, 4, count=5)
        assert s.flops == 2.0 * 2 * 3 * 4 * 5

    def test_gemm_shape_validation(self):
        with pytest.raises(ValueError):
            GemmShape(0, 1, 1)

    def test_nongemm_fraction(self):
        assert nongemm_time_fraction("bert", fused=False) == pytest.approx(0.39)
        assert nongemm_time_fraction("bert", fused=True) == pytest.approx(0.29)
        assert nongemm_time_fraction("vgg", fused=False) < 0.1
        with pytest.raises(KeyError):
            nongemm_time_fraction("resnet", fused=True)

    def test_build_model(self):
        assert isinstance(build_model("bert", dim=32, n_heads=4), MiniBERTClassifier)
        assert isinstance(build_model("bert-span", dim=32, n_heads=4), MiniBERTSpan)
        assert isinstance(build_model("vgg"), MiniVGG)
        assert isinstance(build_model("nmt"), MiniNMT)
        with pytest.raises(KeyError):
            build_model("gpt")
