"""Tests for functional ops, layers, attention, losses and optimizers."""

import numpy as np
import pytest

from repro.kernels.fusion import gelu as np_gelu
from repro.kernels.fusion import layernorm as np_layernorm
from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import (
    Conv2d,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    LSTMCell,
    MaxPool2d,
    Module,
    Sequential,
)
from repro.nn.loss import cross_entropy, sequence_cross_entropy
from repro.nn.optimizer import SGD, Adam
from repro.nn.tensor import Tensor

from tests.test_nn_tensor import numerical_grad


class TestFunctional:
    def test_softmax_sums_to_one(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((4, 7)))
        out = F.softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-12)

    def test_softmax_stability(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = F.softmax(x)
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12
        )

    def test_gelu_matches_kernel(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 4))
        np.testing.assert_allclose(F.gelu(Tensor(x)).data, np_gelu(x), atol=1e-12)

    def test_layer_norm_matches_kernel(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 8))
        np.testing.assert_allclose(
            F.layer_norm(Tensor(x)).data, np_layernorm(x), atol=1e-9
        )

    def test_softmax_gradcheck(self):
        rng = np.random.default_rng(4)
        x_data = rng.standard_normal((3, 4))
        x = Tensor(x_data.copy(), requires_grad=True)
        (F.softmax(x) * Tensor(np.arange(12.0).reshape(3, 4))).sum().backward()

        def f(v):
            e = np.exp(v - v.max(axis=-1, keepdims=True))
            s = e / e.sum(axis=-1, keepdims=True)
            return (s * np.arange(12.0).reshape(3, 4)).sum()

        np.testing.assert_allclose(x.grad, numerical_grad(f, x_data.copy()), atol=1e-5)

    def test_layer_norm_gradcheck(self):
        rng = np.random.default_rng(5)
        x_data = rng.standard_normal((2, 6))
        x = Tensor(x_data.copy(), requires_grad=True)
        F.layer_norm(x).sum().backward()

        def f(v):
            mu = v.mean(axis=-1, keepdims=True)
            var = v.var(axis=-1, keepdims=True)
            return ((v - mu) / np.sqrt(var + 1e-5)).sum()

        np.testing.assert_allclose(x.grad, numerical_grad(f, x_data.copy()), atol=1e-4)

    def test_dropout_eval_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_dropout_train_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        # inverted dropout preserves expectation
        assert abs(out.data.mean() - 1.0) < 0.1

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(2)), 1.0, True, np.random.default_rng(0))


class TestModules:
    def test_linear_shapes_and_grad(self):
        rng = np.random.default_rng(0)
        lin = Linear(6, 4, rng=rng)
        x = Tensor(rng.standard_normal((3, 6)), requires_grad=True)
        out = lin(x)
        assert out.shape == (3, 4)
        out.sum().backward()
        assert lin.weight.grad.shape == (6, 4)
        assert lin.bias.grad.shape == (4,)

    def test_linear_no_bias(self):
        lin = Linear(3, 2, bias=False, rng=np.random.default_rng(0))
        assert lin.bias is None
        assert lin(Tensor(np.ones((1, 3)))).shape == (1, 2)

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            Linear(0, 4)

    def test_module_parameter_registry(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(4, 4, rng=np.random.default_rng(0))
                self.b = Linear(4, 2, rng=np.random.default_rng(1))

            def forward(self, x):
                return self.b(self.a(x))

        net = Net()
        params = list(net.parameters())
        assert len(params) == 4  # 2 weights + 2 biases
        assert net.n_parameters() == 4 * 4 + 4 + 4 * 2 + 2

    def test_module_shared_parameter_deduplicated(self):
        class Tied(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(4, 4, rng=np.random.default_rng(0))
                self.b = self.a  # shared

            def forward(self, x):
                return self.b(self.a(x))

        assert len(list(Tied().parameters())) == 2

    def test_train_eval_recursive(self):
        net = Sequential(Linear(4, 4), Dropout(0.5))
        net.eval()
        assert not net.steps[1].training
        net.train()
        assert net.steps[1].training

    def test_zero_grad(self):
        lin = Linear(3, 3, rng=np.random.default_rng(0))
        lin(Tensor(np.ones((2, 3)))).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_embedding_forward(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_embedding_range_check(self):
        emb = Embedding(4, 2)
        with pytest.raises(ValueError):
            emb(np.array([7]))

    def test_layernorm_module(self):
        ln = LayerNorm(8)
        out = ln(Tensor(np.random.default_rng(0).standard_normal((3, 8))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)

    def test_sequential(self):
        net = Sequential(
            Linear(4, 8, rng=np.random.default_rng(0)),
            Linear(8, 2, rng=np.random.default_rng(1)),
        )
        assert net(Tensor(np.ones((5, 4)))).shape == (5, 2)


class TestConvPool:
    def test_conv_matches_reference_kernel(self):
        from repro.kernels.im2col import conv2d_gemm

        rng = np.random.default_rng(0)
        conv = Conv2d(3, 5, 3, stride=1, padding=1, rng=rng)
        x = rng.standard_normal((2, 3, 8, 8))
        out = conv(Tensor(x))
        # rebuild OIHW filters from the lowered weight
        w_oihw = conv.weight.data.T.reshape(5, 3, 3, 3)
        expected = conv2d_gemm(x, w_oihw, conv.bias.data, 1, 1)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_conv_input_gradcheck(self):
        rng = np.random.default_rng(1)
        conv = Conv2d(2, 3, 2, rng=rng)
        x_data = rng.standard_normal((1, 2, 4, 4))
        x = Tensor(x_data.copy(), requires_grad=True)
        conv(x).sum().backward()
        w, b = conv.weight.data, conv.bias.data

        def f(v):
            from repro.kernels.im2col import im2col

            cols = im2col(v, 2, 2, 1, 0)
            return (cols @ w + b).sum()

        np.testing.assert_allclose(x.grad, numerical_grad(f, x_data.copy()), atol=1e-5)

    def test_conv_weight_grad_shape(self):
        conv = Conv2d(2, 4, 3, rng=np.random.default_rng(2))
        x = Tensor(np.random.default_rng(3).standard_normal((2, 2, 5, 5)))
        conv(x).sum().backward()
        assert conv.weight.grad.shape == (2 * 3 * 3, 4)

    def test_conv_validation(self):
        with pytest.raises(ValueError):
            Conv2d(0, 1, 3)
        conv = Conv2d(2, 2, 3)
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((1, 3, 8, 8))))  # wrong channels

    def test_maxpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(Tensor(x))
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_grad_routes_to_max(self):
        x_data = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        x = Tensor(x_data, requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_array_equal(x.grad[0, 0], expected)

    def test_maxpool_validation(self):
        with pytest.raises(ValueError):
            MaxPool2d(0)
        with pytest.raises(ValueError):
            MaxPool2d(3)(Tensor(np.ones((1, 1, 4, 4))))


class TestAttention:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        mha = MultiHeadSelfAttention(16, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 16)))
        assert mha(x).shape == (2, 5, 16)

    def test_padding_mask_blocks_positions(self):
        rng = np.random.default_rng(1)
        mha = MultiHeadSelfAttention(8, 2, rng=rng)
        x_data = rng.standard_normal((1, 4, 8))
        mask = np.array([[False, False, True, True]])
        out_masked = mha(Tensor(x_data), mask)
        # changing a masked position's content must not affect the output
        # at unmasked positions
        x2 = x_data.copy()
        x2[0, 3] += 10.0
        out_masked2 = mha(Tensor(x2), mask)
        np.testing.assert_allclose(
            out_masked.data[:, :2], out_masked2.data[:, :2], atol=1e-10
        )

    def test_gradients_flow(self):
        rng = np.random.default_rng(2)
        mha = MultiHeadSelfAttention(8, 2, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 8)), requires_grad=True)
        mha(x).sum().backward()
        assert x.grad is not None
        for w in mha.projection_weights():
            assert w.grad is not None

    def test_projection_weights_count(self):
        mha = MultiHeadSelfAttention(8, 2)
        assert len(mha.projection_weights()) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)  # not divisible
        mha = MultiHeadSelfAttention(8, 2)
        with pytest.raises(ValueError):
            mha(Tensor(np.ones((1, 3, 6))))
        with pytest.raises(ValueError):
            mha(Tensor(np.ones((1, 3, 8))), np.ones((2, 3), dtype=bool))


class TestLSTM:
    def test_step_shapes(self):
        rng = np.random.default_rng(0)
        cell = LSTMCell(6, 8, rng=rng)
        h, c = cell.init_state(3)
        x = Tensor(rng.standard_normal((3, 6)))
        h2, c2 = cell(x, (h, c))
        assert h2.shape == (3, 8) and c2.shape == (3, 8)

    def test_gradients_through_time(self):
        rng = np.random.default_rng(1)
        cell = LSTMCell(4, 4, rng=rng)
        h, c = cell.init_state(2)
        for _ in range(5):
            x = Tensor(rng.standard_normal((2, 4)))
            h, c = cell(x, (h, c))
        h.sum().backward()
        assert cell.w_ih.grad is not None
        assert cell.w_hh.grad is not None

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(4, 4)
        hs = 4
        np.testing.assert_array_equal(cell.bias.data[hs : 2 * hs], np.ones(4))

    def test_gemm_weights(self):
        cell = LSTMCell(4, 8)
        ws = cell.gemm_weights()
        assert ws[0].shape == (4, 32) and ws[1].shape == (8, 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 4)


class TestLoss:
    def test_cross_entropy_known_value(self):
        logits = Tensor(np.array([[np.log(3.0), 0.0]]))
        # softmax = [0.75, 0.25]; CE(label 0) = -log 0.75
        loss = cross_entropy(logits, np.array([0]))
        assert loss.item() == pytest.approx(-np.log(0.75))

    def test_cross_entropy_gradcheck(self):
        rng = np.random.default_rng(0)
        logits_data = rng.standard_normal((4, 5))
        labels = np.array([0, 2, 4, 1])
        logits = Tensor(logits_data.copy(), requires_grad=True)
        cross_entropy(logits, labels).backward()

        def f(v):
            shifted = v - v.max(axis=1, keepdims=True)
            logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            return -logp[np.arange(4), labels].mean()

        np.testing.assert_allclose(
            logits.grad, numerical_grad(f, logits_data.copy()), atol=1e-5
        )

    def test_label_smoothing_increases_loss_on_confident_model(self):
        logits = Tensor(np.array([[10.0, -10.0]]))
        plain = cross_entropy(logits, np.array([0])).item()
        smooth = cross_entropy(logits, np.array([0]), label_smoothing=0.2).item()
        assert smooth > plain

    def test_cross_entropy_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.ones((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.ones((2, 3))), np.array([0, 5]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.ones(3)), np.array([0]))

    def test_sequence_cross_entropy_ignores_padding(self):
        logits = Tensor(np.zeros((1, 3, 4)), requires_grad=True)
        labels = np.array([[1, 2, 0]])  # last is pad
        loss = sequence_cross_entropy(logits, labels, pad_id=0)
        assert loss.item() == pytest.approx(np.log(4.0))
        loss.backward()
        # padded position receives no gradient
        np.testing.assert_allclose(logits.grad[0, 2], 0.0)

    def test_sequence_cross_entropy_validation(self):
        with pytest.raises(ValueError):
            sequence_cross_entropy(Tensor(np.ones((2, 3))), np.ones((2, 3), dtype=int))


class TestOptimizers:
    def _quadratic_descent(self, opt_cls, **kw):
        target = np.array([3.0, -2.0])
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = opt_cls([p], **kw)
        for _ in range(300):
            opt.zero_grad()
            ((p - Tensor(target)) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_sgd_converges(self):
        self._quadratic_descent(SGD, lr=0.1)

    def test_sgd_momentum_converges(self):
        self._quadratic_descent(SGD, lr=0.05, momentum=0.9)

    def test_adam_converges(self):
        self._quadratic_descent(Adam, lr=0.1)

    def test_mask_freezes_pruned_weights(self):
        p = Tensor(np.ones(4), requires_grad=True)
        opt = SGD([p], lr=0.5)
        mask = np.array([True, False, True, False])
        opt.set_mask(p, mask)
        np.testing.assert_allclose(p.data, [1, 0, 1, 0])
        for _ in range(3):
            opt.zero_grad()
            (p * Tensor(np.array([1.0, 2.0, 3.0, 4.0]))).sum().backward()
            opt.step()
        assert p.data[1] == 0.0 and p.data[3] == 0.0
        assert p.data[0] != 1.0  # unmasked entries still learn

    def test_clear_masks(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = SGD([p], lr=0.1)
        opt.set_mask(p, np.array([True, False]))
        opt.clear_masks()
        assert not opt.masks

    def test_mask_shape_check(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = SGD([p], lr=0.1)
        with pytest.raises(ValueError):
            opt.set_mask(p, np.ones(3, dtype=bool))

    def test_weight_decay(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 10.0  # decay shrinks even with zero task grad

    def test_validation(self):
        p = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([p], lr=-1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, betas=(1.0, 0.9))
