"""Tests for the EW / VW / BW / TW pattern implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import (
    BlockWisePattern,
    ElementWisePattern,
    TileWisePattern,
    VectorWisePattern,
)
from repro.core.masks import validate_tw_mask


def rand_scores(rng, shapes):
    return [np.abs(rng.standard_normal(s)) + 1e-6 for s in shapes]


class TestElementWise:
    def test_global_exact_sparsity(self):
        rng = np.random.default_rng(0)
        scores = rand_scores(rng, [(32, 32), (16, 64)])
        res = ElementWisePattern().prune(scores, 0.75)
        assert res.achieved_sparsity == pytest.approx(0.75, abs=1e-3)

    def test_local_uniform_per_layer(self):
        rng = np.random.default_rng(1)
        scores = rand_scores(rng, [(20, 20), (40, 10)])
        res = ElementWisePattern(scope="local").prune(scores, 0.5)
        for sp in res.per_matrix_sparsity():
            assert sp == pytest.approx(0.5, abs=0.01)

    def test_global_uneven_per_layer(self):
        """Fig. 5: global ranking yields uneven per-layer sparsity."""
        rng = np.random.default_rng(2)
        scores = [np.abs(rng.standard_normal((32, 32))) * (1 + 3 * i) for i in range(3)]
        res = ElementWisePattern().prune(scores, 0.75)
        sp = res.per_matrix_sparsity()
        assert max(sp) - min(sp) > 0.1

    def test_invalid_scope(self):
        with pytest.raises(ValueError):
            ElementWisePattern(scope="cosmic")

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            ElementWisePattern().prune([np.ones((2, 2))], -0.1)


class TestVectorWise:
    def test_exact_per_vector_quota(self):
        rng = np.random.default_rng(3)
        scores = rand_scores(rng, [(32, 8)])
        vw = VectorWisePattern(vector_size=16)
        res = vw.prune(scores, 0.5)
        counts = vw.vector_nnz_counts(res.masks[0])
        assert np.all(counts == 8)  # 16 - round(0.5*16)

    def test_balanced_property_all_vectors_equal(self):
        """The defining VW property: every vector has identical nnz."""
        rng = np.random.default_rng(4)
        scores = rand_scores(rng, [(64, 16)])
        vw = VectorWisePattern(vector_size=4)
        for s in (0.25, 0.5, 0.75):
            res = vw.prune(scores, s)
            counts = vw.vector_nnz_counts(res.masks[0])
            assert len(np.unique(counts)) == 1

    def test_keeps_largest_in_vector(self):
        scores = np.array([[4.0], [1.0], [3.0], [2.0]])
        vw = VectorWisePattern(vector_size=4)
        res = vw.prune([scores], 0.5)
        np.testing.assert_array_equal(res.masks[0][:, 0], [True, False, True, False])

    def test_ragged_tail_vector(self):
        rng = np.random.default_rng(5)
        scores = rand_scores(rng, [(10, 4)])  # 10 = 2 full vectors of 4 + tail of 2
        vw = VectorWisePattern(vector_size=4)
        res = vw.prune(scores, 0.5)
        # tail quota: 2 - round(0.5*2) = 1 kept per tail vector
        tail = res.masks[0][8:]
        assert np.all(tail.sum(axis=0) == 1)

    def test_sparsity_close_to_target(self):
        rng = np.random.default_rng(6)
        scores = rand_scores(rng, [(64, 32)])
        res = VectorWisePattern(vector_size=16).prune(scores, 0.75)
        assert res.achieved_sparsity == pytest.approx(0.75, abs=0.02)

    def test_cannot_express_uneven_sparsity(self):
        """The paper's criticism (§IV-B): per-column sparsity is forced
        uniform even when importance is concentrated in a few columns."""
        rng = np.random.default_rng(7)
        scores = np.abs(rng.standard_normal((64, 8)))
        scores[:, 0] *= 100  # hugely important column
        res = VectorWisePattern(vector_size=16).prune([scores], 0.5)
        per_col = 1 - res.masks[0].mean(axis=0)
        assert np.allclose(per_col, per_col[0])  # identical everywhere

    def test_invalid_vector_size(self):
        with pytest.raises(ValueError):
            VectorWisePattern(vector_size=0)

    def test_full_sparsity(self):
        res = VectorWisePattern(4).prune([np.ones((8, 2))], 1.0)
        assert not res.masks[0].any()

    def test_zero_sparsity(self):
        res = VectorWisePattern(4).prune([np.ones((8, 2))], 0.0)
        assert res.masks[0].all()


class TestBlockWise:
    def test_block_granular_mask(self):
        rng = np.random.default_rng(8)
        scores = rand_scores(rng, [(32, 32)])
        bw = BlockWisePattern(block_shape=(8, 8))
        res = bw.prune(scores, 0.5)
        mask = res.masks[0]
        # mask must be constant within each block
        for r0 in range(0, 32, 8):
            for c0 in range(0, 32, 8):
                blk = mask[r0 : r0 + 8, c0 : c0 + 8]
                assert blk.all() or not blk.any()

    def test_sparsity_close_to_target(self):
        rng = np.random.default_rng(9)
        scores = rand_scores(rng, [(64, 64), (32, 96)])
        res = BlockWisePattern(block_shape=(32, 32)).prune(scores, 0.75)
        assert res.achieved_sparsity == pytest.approx(0.75, abs=0.05)

    def test_keeps_high_score_blocks(self):
        scores = np.ones((4, 4)) * 0.01
        scores[:2, :2] = 100.0
        res = BlockWisePattern(block_shape=(2, 2)).prune([scores], 0.75)
        assert res.masks[0][:2, :2].all()
        assert not res.masks[0][2:, 2:].any()

    def test_edge_blocks_allowed(self):
        rng = np.random.default_rng(10)
        scores = rand_scores(rng, [(33, 33)])  # not divisible by 8
        res = BlockWisePattern(block_shape=(8, 8)).prune(scores, 0.5)
        assert res.masks[0].shape == (33, 33)

    def test_global_ranking_across_layers(self):
        rng = np.random.default_rng(11)
        hi = np.abs(rng.standard_normal((16, 16))) + 10
        lo = np.abs(rng.standard_normal((16, 16))) * 0.01
        res = BlockWisePattern(block_shape=(8, 8)).prune([hi, lo], 0.5)
        sp = res.per_matrix_sparsity()
        assert sp[0] < sp[1]

    def test_block_keep_grid(self):
        scores = np.ones((4, 4)) * 0.01
        scores[:2, :2] = 100.0
        bw = BlockWisePattern(block_shape=(2, 2))
        res = bw.prune([scores], 0.75)
        grid = bw.block_keep_grid(res.masks[0])
        assert grid[0, 0] and grid.sum() == 1

    def test_invalid_block_shape(self):
        with pytest.raises(ValueError):
            BlockWisePattern(block_shape=(0, 2))

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            BlockWisePattern(reduction="max")


class TestTileWisePattern:
    def test_masks_are_tw_shaped(self):
        rng = np.random.default_rng(12)
        scores = rand_scores(rng, [(32, 64)])
        res = TileWisePattern(granularity=8).prune(scores, 0.6)
        validate_tw_mask(res.masks[0], 8)

    def test_sparsity_close_to_target(self):
        rng = np.random.default_rng(13)
        scores = rand_scores(rng, [(64, 128)])
        res = TileWisePattern(granularity=16).prune(scores, 0.75)
        assert res.achieved_sparsity == pytest.approx(0.75, abs=0.03)

    def test_config_and_granularity_mutually_exclusive(self):
        from repro.core.tile_sparsity import TWPruneConfig

        with pytest.raises(ValueError):
            TileWisePattern(config=TWPruneConfig(granularity=8), granularity=8)


class TestIrregularityOrdering:
    """Paper §IV-B: irregularity EW > TW > VW ≈ BW, measured as how many of
    the EW-chosen zeros each pattern can capture at equal sparsity (Fig. 6
    methodology)."""

    def test_tw_captures_more_ew_zeros_than_bw(self):
        rng = np.random.default_rng(14)
        # concentrated importance: some columns/areas matter much more
        base = np.abs(rng.standard_normal((128, 128)))
        col_importance = np.exp(rng.standard_normal(128))
        scores = [base * col_importance[None, :]]
        s = 0.75
        ew = ElementWisePattern().prune(scores, s).masks[0]
        tw = TileWisePattern(granularity=16).prune(scores, s).masks[0]
        bw = BlockWisePattern(block_shape=(32, 32)).prune(scores, s).masks[0]
        # overlap of pruned sets with EW's pruned set
        ew_pruned = ~ew
        tw_overlap = (~tw & ew_pruned).sum() / ew_pruned.sum()
        bw_overlap = (~bw & ew_pruned).sum() / ew_pruned.sum()
        assert tw_overlap > bw_overlap


@given(
    st.sampled_from([0.0, 0.25, 0.5, 0.75, 0.9]),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_all_patterns_sparsity_property(sparsity, seed):
    rng = np.random.default_rng(seed)
    scores = [np.abs(rng.standard_normal((32, 32))) + 1e-9]
    for pattern in (
        ElementWisePattern(),
        VectorWisePattern(vector_size=8),
        BlockWisePattern(block_shape=(8, 8)),
        TileWisePattern(granularity=8),
    ):
        res = pattern.prune(scores, sparsity)
        assert res.achieved_sparsity == pytest.approx(sparsity, abs=0.1)
        assert res.masks[0].dtype == bool
