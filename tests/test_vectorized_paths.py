"""Vectorized-vs-reference equivalence: the vectorisation contract.

Every fast path must produce *bit-identical* outputs to its scalar oracle
(see the contract notes in ``repro.kernels`` and
``repro.core.tile_sparsity``):

- ``_global_select``            vs ``_global_select_reference``
- ``tw_prune_step``             vs ``tw_prune_step_reference``
- ``csr_spmm`` / ``csc_left_spmm`` vs the scalar row-/column-wise loops
- ``blocked_transpose``         vs ``blocked_transpose_reference``
- ``tw_mask_from_tiles``        vs its per-tile scatter loop
- ``CSRMatrix.transpose``       vs the dense round-trip it replaced

Selection equivalence over arbitrary score/weight arrays is exercised with
heavy tie pressure (small-integer scores) because tie-breaking order is part
of the contract.  Full prune-step equivalence uses integer-valued score
matrices — there every unit score is exactly representable, so the fast
path's re-associated summations are provably exact — plus seeded continuous
data, where the deterministic seeds pin the behaviour.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.importance import row_unit_scores, row_unit_scores_matrix
from repro.core.masks import _tw_mask_from_tiles_loop, tw_mask_from_tiles
from repro.core.tile_sparsity import (
    TWPruneConfig,
    _global_select,
    _global_select_reference,
    tw_prune_step,
    tw_prune_step_reference,
)
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.tiled import TiledTWMatrix
from repro.kernels.spmm import (
    csc_left_spmm,
    csr_spmm,
    spmm_colwise_reference,
    spmm_rowwise_reference,
)
from repro.kernels.im2col import col2im, col2im_reference, im2col
from repro.kernels.masked import DTYPE_TOLERANCES, tw_gemm, tw_gemm_reference
from repro.kernels.transpose import blocked_transpose, blocked_transpose_reference
from repro.runtime.batching import batching_plan
from repro.runtime.scheduler import build_execution_plan


def assert_step_equal(a, b):
    assert len(a.masks) == len(b.masks)
    for x, y in zip(a.col_keeps, b.col_keeps):
        np.testing.assert_array_equal(x, y)
    for ga, gb in zip(a.column_groups, b.column_groups):
        assert len(ga) == len(gb)
        for x, y in zip(ga, gb):
            np.testing.assert_array_equal(x, y)
    for ra, rb in zip(a.row_masks, b.row_masks):
        assert len(ra) == len(rb)
        for x, y in zip(ra, rb):
            np.testing.assert_array_equal(x, y)
    for x, y in zip(a.masks, b.masks):
        np.testing.assert_array_equal(x, y)
    assert a.achieved_sparsity == b.achieved_sparsity


class TestGlobalSelect:
    @given(
        st.integers(0, 2**32 - 1),
        st.sampled_from(["elements", "units"]),
        st.sampled_from(["ties", "continuous", "constant", "inf"]),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_reference(self, seed, budget, style):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 80))
        if style == "ties":
            scores = rng.integers(0, 4, n).astype(float)
        elif style == "continuous":
            scores = rng.standard_normal(n)
        elif style == "constant":
            scores = np.full(n, 3.0)
        else:
            scores = rng.integers(0, 4, n).astype(float)
            if n:
                scores[rng.integers(0, n)] = np.inf
        weights = rng.integers(0, 9, n).astype(float)
        forced = rng.random(n) < 0.2
        keep_frac = float(rng.choice([0.0, 0.1, 0.5, 0.9, 1.0, rng.random()]))
        got = _global_select(scores, weights, keep_frac, forced, budget)
        want = _global_select_reference(scores, weights, keep_frac, forced, budget)
        np.testing.assert_array_equal(got, want)

    def test_nan_scores_fall_back_consistently(self):
        scores = np.array([1.0, np.nan, 3.0, np.nan, 2.0])
        weights = np.ones(5)
        forced = np.zeros(5, dtype=bool)
        for budget in ("elements", "units"):
            got = _global_select(scores, weights, 0.6, forced, budget)
            want = _global_select_reference(scores, weights, 0.6, forced, budget)
            np.testing.assert_array_equal(got, want)

    def test_tie_breaking_prefers_low_index(self):
        # four identical scores, budget for two: the two lowest indices win
        scores = np.full(4, 7.0)
        keep = _global_select(scores, np.ones(4), 0.5, np.zeros(4, bool), "elements")
        np.testing.assert_array_equal(keep, [True, True, False, False])


class TestPruneStepEquivalence:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(1, 3),
        st.sampled_from(["elements", "units"]),
        st.sampled_from(["sum", "mean", "l2"]),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_integer_scores_bit_identical(self, seed, layers, budget, reduction, reorg):
        rng = np.random.default_rng(seed)
        mats = [
            rng.integers(0, 50, (int(rng.integers(1, 40)), int(rng.integers(1, 50))))
            .astype(float)
            for _ in range(layers)
        ]
        cfg = TWPruneConfig(
            granularity=int(rng.integers(1, 12)),
            col_row_split=float(rng.choice([0.0, 0.3, 0.5, 1.0])),
            reorganize=reorg,
            reduction=reduction,
            min_keep_cols=int(rng.integers(0, 3)),
            min_keep_rows=int(rng.integers(0, 3)),
            budget=budget,
        )
        target = float(rng.uniform(0.0, 0.95))
        assert_step_equal(
            tw_prune_step(mats, target, cfg),
            tw_prune_step_reference(mats, target, cfg),
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_continuous_scores_seeded(self, seed):
        rng = np.random.default_rng(seed)
        mats = [np.abs(rng.standard_normal((24, 40))), np.abs(rng.standard_normal((16, 33)))]
        cfg = TWPruneConfig(granularity=8, budget=["elements", "units"][seed % 2])
        target = float(rng.uniform(0.0, 0.9))
        assert_step_equal(
            tw_prune_step(mats, target, cfg),
            tw_prune_step_reference(mats, target, cfg),
        )

    def test_narrow_tile_gather_path(self):
        # > 768 groups triggers the bulk-gather scoring branch
        rng = np.random.default_rng(9)
        mats = [rng.integers(0, 20, (8, 1600)).astype(float)]
        cfg = TWPruneConfig(granularity=1, min_keep_cols=0, min_keep_rows=0)
        assert_step_equal(
            tw_prune_step(mats, 0.3, cfg),
            tw_prune_step_reference(mats, 0.3, cfg),
        )

    def test_nan_score_matrix_matches_reference(self):
        # a NaN element makes its column/tile-row scores NaN; the fast
        # path's argmax shortcut and quickselect must fall back so the
        # forced sets and selections still match the stable-sort oracle
        rng = np.random.default_rng(11)
        mats = [rng.integers(1, 30, (12, 24)).astype(float)]
        mats[0][3, 7] = np.nan
        cfg = TWPruneConfig(granularity=4)
        assert_step_equal(
            tw_prune_step(mats, 0.5, cfg),
            tw_prune_step_reference(mats, 0.5, cfg),
        )

    def test_inf_in_pruned_column_matches_reference(self):
        # an inf importance score in a column that loses phase-1 pruning
        # sits inside a surviving tile's span; the span-dgemv would compute
        # 0*inf = NaN without the recompute guard
        rng = np.random.default_rng(12)
        mats = [rng.integers(1, 30, (12, 24)).astype(float)]
        adjust = [rng.integers(1, 30, 24).astype(float)]
        adjust[0][5] = 0.0  # force column 5 to be pruned in phase 1
        mats[0][:, 5] = np.inf
        cfg = TWPruneConfig(granularity=4, min_keep_cols=0)
        assert_step_equal(
            tw_prune_step(mats, 0.5, cfg, column_score_adjust=adjust),
            tw_prune_step_reference(mats, 0.5, cfg, column_score_adjust=adjust),
        )

    def test_apriori_adjust_paths_agree(self):
        rng = np.random.default_rng(10)
        mats = [rng.integers(0, 30, (12, 24)).astype(float)]
        adjust = [rng.integers(0, 30, 24).astype(float)]
        cfg = TWPruneConfig(granularity=4)
        assert_step_equal(
            tw_prune_step(mats, 0.5, cfg, column_score_adjust=adjust),
            tw_prune_step_reference(mats, 0.5, cfg, column_score_adjust=adjust),
        )


class TestRowUnitScores:
    @given(st.integers(0, 2**32 - 1), st.sampled_from(["sum", "mean", "l2"]))
    @settings(max_examples=40, deadline=None)
    def test_matrix_matches_per_tile_on_integers(self, seed, reduction):
        rng = np.random.default_rng(seed)
        k, n = int(rng.integers(1, 20)), int(rng.integers(1, 40))
        scores = rng.integers(0, 9, (k, n)).astype(float)
        keep = rng.random(n) < 0.7
        groups = TiledTWMatrix.column_groups(keep, int(rng.integers(1, 8)))
        got = row_unit_scores_matrix(scores, groups, reduction)
        want = row_unit_scores(scores, groups, reduction)
        assert got.shape == (len(groups), k)
        for t, w in enumerate(want):
            np.testing.assert_array_equal(got[t], w)

    def test_unsorted_group_falls_back(self):
        scores = np.arange(12.0).reshape(3, 4)
        groups = [np.array([2, 0])]  # unsorted → reference gather path
        got = row_unit_scores_matrix(scores, groups, "sum")
        np.testing.assert_array_equal(got[0], scores[:, [2, 0]].sum(axis=1))

    def test_empty_group_scores_zero_under_mean(self):
        # many uniform-width groups with an empty straggler: the bulk-gather
        # branch must not divide 0/0 — empty groups score 0 like the oracle
        scores = np.ones((2, 400))
        groups = [np.array([i]) for i in range(250)] + [np.array([], dtype=np.int64)]
        got = row_unit_scores_matrix(scores, groups, "mean", assume_sorted=True)
        want = row_unit_scores(scores, groups, "mean")
        for t, w in enumerate(want):
            np.testing.assert_array_equal(got[t], w)
        assert not np.isnan(got).any()


class TestSpMM:
    # dyadic-rational operands: every product and partial sum is exactly
    # representable, so segment reduction must be BIT-identical regardless
    # of summation association; continuous operands then pin agreement to
    # summation-order rounding (the documented contract)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_csr_bit_identical_on_dyadic(self, seed):
        rng = np.random.default_rng(seed)
        m, k, b = int(rng.integers(1, 30)), int(rng.integers(1, 30)), int(rng.integers(1, 8))
        w = rng.integers(-8, 9, (m, k)) * 0.25 * (rng.random((m, k)) < 0.3)
        csr = CSRMatrix.from_dense(w)
        rhs = rng.integers(-8, 9, (k, b)) * 0.5
        np.testing.assert_array_equal(
            csr_spmm(csr, rhs), spmm_rowwise_reference(csr, rhs)
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_csc_bit_identical_on_dyadic(self, seed):
        rng = np.random.default_rng(seed)
        m, k, b = int(rng.integers(1, 30)), int(rng.integers(1, 30)), int(rng.integers(1, 8))
        w = rng.integers(-8, 9, (k, m)) * 0.25 * (rng.random((k, m)) < 0.3)
        csc = CSCMatrix.from_dense(w)
        lhs = rng.integers(-8, 9, (b, k)) * 0.5
        np.testing.assert_array_equal(
            csc_left_spmm(lhs, csc), spmm_colwise_reference(lhs, csc)
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_continuous_within_rounding(self, seed):
        rng = np.random.default_rng(seed)
        m, k, b = int(rng.integers(1, 40)), int(rng.integers(1, 40)), int(rng.integers(1, 8))
        w = rng.standard_normal((m, k)) * (rng.random((m, k)) < 0.4)
        csr = CSRMatrix.from_dense(w)
        rhs = rng.standard_normal((k, b))
        np.testing.assert_allclose(
            csr_spmm(csr, rhs), spmm_rowwise_reference(csr, rhs),
            rtol=0, atol=1e-12,
        )

    def test_empty_rows_and_matrix(self):
        w = np.zeros((4, 5))
        w[1, 2] = 3.0
        csr = CSRMatrix.from_dense(w)
        rhs = np.ones((5, 2))
        np.testing.assert_array_equal(
            csr_spmm(csr, rhs), spmm_rowwise_reference(csr, rhs)
        )
        empty = CSRMatrix.from_dense(np.zeros((3, 4)))
        np.testing.assert_array_equal(
            csr_spmm(empty, np.ones((4, 2))), np.zeros((3, 2))
        )


class TestTranspose:
    @given(
        st.integers(1, 90),
        st.integers(1, 90),
        st.sampled_from([1, 3, 64, 200]),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_identical(self, m, n, block, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        got = blocked_transpose(a, block)
        np.testing.assert_array_equal(got, blocked_transpose_reference(a, block))
        np.testing.assert_array_equal(got, np.ascontiguousarray(a.T))
        assert got.flags.c_contiguous

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            blocked_transpose(np.ones(3))
        with pytest.raises(ValueError):
            blocked_transpose(np.ones((2, 2)), block=0)
        with pytest.raises(ValueError):
            blocked_transpose_reference(np.ones((2, 2)), block=-1)


class TestMaskFromTiles:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_matches_scatter_loop(self, seed):
        rng = np.random.default_rng(seed)
        k, n = int(rng.integers(1, 20)), int(rng.integers(1, 40))
        keep = rng.random(n) < 0.6
        groups = TiledTWMatrix.column_groups(keep, int(rng.integers(1, 8)))
        row_masks = [rng.random(k) < 0.5 for _ in groups]
        got = tw_mask_from_tiles((k, n), groups, row_masks)
        want = _tw_mask_from_tiles_loop((k, n), groups, row_masks)
        np.testing.assert_array_equal(got, want)

    def test_duplicate_columns_use_union_semantics(self):
        # two tiles owning the same column: the loop ORs their rows; the
        # fast path must detect the overlap and fall back rather than let
        # the second tile overwrite the first
        groups = [np.array([0, 1]), np.array([1, 2])]
        row_masks = [np.array([True, False]), np.array([False, True])]
        got = tw_mask_from_tiles((2, 3), groups, row_masks)
        np.testing.assert_array_equal(
            got, _tw_mask_from_tiles_loop((2, 3), groups, row_masks)
        )
        assert got[0, 1] and got[1, 1]  # both tiles' rows survive on col 1

    def test_rejects_bad_row_mask_length(self):
        with pytest.raises(ValueError):
            tw_mask_from_tiles((3, 4), [np.array([0])], [np.ones(2, dtype=bool)])
        with pytest.raises(ValueError):
            tw_mask_from_tiles((3, 4), [np.array([0])], [])


class TestCSRTranspose:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_matches_dense_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        m, k = int(rng.integers(1, 25)), int(rng.integers(1, 25))
        w = rng.standard_normal((m, k)) * (rng.random((m, k)) < 0.4)
        csr = CSRMatrix.from_dense(w)
        got = csr.transpose()
        want = CSRMatrix.from_dense(csr.to_dense().T)
        assert got == want

    def test_explicit_zeros_dropped(self):
        # hand-built CSR with an explicit zero: the historical dense
        # round-trip dropped it, so the index-level transpose must too
        csr = CSRMatrix(
            shape=(2, 2),
            indptr=np.array([0, 2, 2], dtype=np.int64),
            indices=np.array([0, 1], dtype=np.int64),
            data=np.array([5.0, 0.0]),
        )
        t = csr.transpose()
        assert t.nnz == 1
        assert t == CSRMatrix.from_dense(csr.to_dense().T)


def _random_tw(rng, k, n, g) -> TiledTWMatrix:
    """A TW matrix with integer payloads and uneven per-tile depths."""
    col_keep = rng.random(n) < rng.uniform(0.2, 0.9)
    groups = TiledTWMatrix.column_groups(col_keep, g)
    row_masks = [rng.random(k) < rng.uniform(0.0, 0.9) for _ in groups]
    dense = rng.integers(-8, 9, (k, n)).astype(float)
    return TiledTWMatrix.from_masks(dense, g, col_keep, row_masks)


class TestTWGemmBatched:
    # the batched executor zero-pads each group's payloads to the shared
    # depth bound, so on exactly-representable data every padded term adds
    # an exact zero: bit-identity with the per-tile oracle is required

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_on_integer_data(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 12))
        k, n = int(rng.integers(1, 40)), int(rng.integers(1, 60))
        tw = _random_tw(rng, k, n, int(rng.integers(1, 10)))
        a = rng.integers(-8, 9, (m, k)).astype(float)
        np.testing.assert_array_equal(tw_gemm(a, tw), tw_gemm_reference(a, tw))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_continuous_within_rounding(self, seed):
        rng = np.random.default_rng(seed)
        m, k, n = int(rng.integers(1, 10)), int(rng.integers(1, 30)), int(rng.integers(1, 50))
        col_keep = rng.random(n) < 0.6
        groups = TiledTWMatrix.column_groups(col_keep, 4)
        row_masks = [rng.random(k) < 0.5 for _ in groups]
        tw = TiledTWMatrix.from_masks(rng.standard_normal((k, n)), 4, col_keep, row_masks)
        a = rng.standard_normal((m, k))
        np.testing.assert_allclose(
            tw_gemm(a, tw), tw_gemm_reference(a, tw), rtol=0, atol=1e-12
        )

    def test_empty_weight(self):
        tw = TiledTWMatrix(shape=(6, 8), granularity=4, tiles=())
        out = tw_gemm(np.ones((3, 6)), tw)
        np.testing.assert_array_equal(out, np.zeros((3, 8)))

    def test_full_depth_padding_group(self):
        # one group mixing a full-depth tile with a nearly-empty one: the
        # padded tail of the shallow tile must contribute exact zeros
        rng = np.random.default_rng(0)
        k, n, g = 10, 8, 4
        col_keep = np.ones(n, dtype=bool)
        masks = [np.ones(k, dtype=bool), np.zeros(k, dtype=bool)]
        masks[1][3] = True  # depth 1 vs depth 10 in the same width group
        dense = rng.integers(-5, 6, (k, n)).astype(float)
        tw = TiledTWMatrix.from_masks(dense, g, col_keep, masks)
        a = rng.integers(-5, 6, (4, k)).astype(float)
        np.testing.assert_array_equal(tw_gemm(a, tw), tw_gemm_reference(a, tw))

    def test_unbatched_plan_matches(self):
        rng = np.random.default_rng(1)
        tw = _random_tw(rng, 20, 30, 4)
        a = rng.integers(-6, 7, (5, 20)).astype(float)
        plan = batching_plan(tw, enabled=False)  # one group per tile
        np.testing.assert_array_equal(tw_gemm(a, tw, plan=plan), tw_gemm_reference(a, tw))

    def test_execution_plan_stream_order_matches(self):
        rng = np.random.default_rng(2)
        tw = _random_tw(rng, 24, 40, 4)
        a = rng.integers(-6, 7, (3, 24)).astype(float)
        plan = build_execution_plan(tw)
        np.testing.assert_array_equal(tw_gemm(a, tw, plan=plan), tw_gemm_reference(a, tw))

    def test_dtype_respected_not_promoted(self):
        # satellite fix: float32 in, float32 out (the reference oracle
        # promotes to float64 — that behaviour is pinned separately)
        rng = np.random.default_rng(3)
        col_keep = np.ones(8, dtype=bool)
        masks = [np.ones(6, dtype=bool), np.ones(6, dtype=bool)]
        dense = rng.integers(-4, 5, (6, 8)).astype(float)
        tw32 = TiledTWMatrix.from_masks(dense, 4, col_keep, masks, dtype=np.float32)
        a32 = rng.integers(-4, 5, (3, 6)).astype(np.float32)
        out = tw_gemm(a32, tw32)
        assert out.dtype == np.float32
        assert tw_gemm_reference(a32, tw32).dtype == np.float64
        # float64 activations against float32 payloads promote as numpy does
        assert tw_gemm(a32.astype(np.float64), tw32).dtype == np.float64
        np.testing.assert_array_equal(
            out.astype(np.float64),
            tw_gemm_reference(a32.astype(np.float64),
                              TiledTWMatrix.from_masks(dense, 4, col_keep, masks)),
        )

    def test_repeat_calls_hit_operand_memo(self):
        rng = np.random.default_rng(4)
        tw = _random_tw(rng, 16, 24, 4)
        a = rng.integers(-4, 5, (3, 16)).astype(float)
        first = tw_gemm(a, tw)
        assert "_group_operands" in tw.__dict__  # memo materialised
        np.testing.assert_array_equal(tw_gemm(a, tw), first)

    # --- the explicit oracle-comparison policy (mixed precision) -------
    # tw_gemm_reference is the float-payload scalar oracle and promotes
    # its output to float64; the batched path preserves the storage
    # dtype.  Policy: compare in the *batched path's* dtype (reference
    # output cast to it), within the DTYPE_TOLERANCES table.

    @pytest.mark.parametrize("dtype", ["float64", "float32", "float16"])
    def test_float_dtypes_match_oracle_within_policy(self, dtype):
        rng = np.random.default_rng(11)
        k, n, g = 32, 48, 8
        col_keep = rng.random(n) < 0.7
        groups = TiledTWMatrix.column_groups(col_keep, g)
        row_masks = [rng.random(k) < 0.6 for _ in groups]
        dense = rng.standard_normal((k, n))
        tw = TiledTWMatrix.from_masks(
            dense, g, col_keep, row_masks, dtype=np.dtype(dtype)
        )
        a = rng.standard_normal((6, k)).astype(dtype)
        got = tw_gemm(a, tw)
        assert got.dtype == np.dtype(dtype)
        want = tw_gemm_reference(a, tw).astype(dtype)
        tol = DTYPE_TOLERANCES[dtype]
        np.testing.assert_allclose(got, want, rtol=tol["rtol"], atol=tol["atol"])

    def test_int8_matches_dequantised_float_path(self):
        # int8 has no scalar oracle: the policy compares against the
        # float64 tw_gemm over the dequantised weights (to_dense carries
        # the per-tile scales), which bounds the error at exactly the
        # quantisation error
        rng = np.random.default_rng(12)
        k, n, g = 32, 48, 8
        col_keep = rng.random(n) < 0.7
        groups = TiledTWMatrix.column_groups(col_keep, g)
        row_masks = [rng.random(k) < 0.6 for _ in groups]
        dense = rng.standard_normal((k, n))
        tw8 = TiledTWMatrix.from_masks(
            dense, g, col_keep, row_masks, dtype=np.dtype("int8")
        )
        assert tw8.quantized
        a = rng.standard_normal((6, k)).astype(np.float32)
        got = tw_gemm(a, tw8)
        assert got.dtype == np.float32  # fp32 accumulation, float out
        want = a.astype(np.float64) @ tw8.to_dense().astype(np.float64)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    def test_compute_operand_memo_reused_across_calls(self):
        # fp16 storage accumulates in fp32: the upcast operand is memoised
        # per (group, compute dtype) so a serving loop upcasts once
        rng = np.random.default_rng(13)
        col_keep = np.ones(8, dtype=bool)
        masks = [np.ones(16, dtype=bool), np.ones(16, dtype=bool)]
        dense = rng.standard_normal((16, 8))
        tw = TiledTWMatrix.from_masks(dense, 4, col_keep, masks, dtype=np.float16)
        a = rng.standard_normal((3, 16)).astype(np.float16)
        first = tw_gemm(a, tw)
        ccache = tw.__dict__["_compute_operands"]
        ids = {k: id(v) for k, v in ccache.items()}
        again = tw_gemm(a, tw)
        assert {k: id(v) for k, v in ccache.items()} == ids  # no rebuild
        np.testing.assert_array_equal(first, again)


class TestCol2ImEquivalence:
    # the fast path scatters kernel-offset-major, so every output cell
    # accumulates its overlapping contributions in the reference loop's
    # (i, j) order: bit-identity holds even on continuous data

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(1, 3),
        st.integers(1, 3),
        st.integers(1, 3),
        st.integers(0, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_identical(self, seed, kh, kw, stride, padding):
        rng = np.random.default_rng(seed)
        n, c = int(rng.integers(1, 3)), int(rng.integers(1, 4))
        h = int(rng.integers(kh, kh + 6))
        w = int(rng.integers(kw, kw + 6))
        oh = (h + 2 * padding - kh) // stride + 1
        ow = (w + 2 * padding - kw) // stride + 1
        cols = rng.standard_normal((n * oh * ow, c * kh * kw))
        got = col2im(cols, (n, c, h, w), kh, kw, stride, padding)
        want = col2im_reference(cols, (n, c, h, w), kh, kw, stride, padding)
        np.testing.assert_array_equal(got, want)

    def test_adjoint_of_im2col_round_trip(self):
        # col2im(im2col(x)) counts each input position once per window
        rng = np.random.default_rng(5)
        x = rng.standard_normal((2, 3, 6, 6))
        cols = im2col(x, 3, 3, stride=3)  # non-overlapping: exact identity
        np.testing.assert_array_equal(col2im(cols, x.shape, 3, 3, stride=3), x)

    def test_dtype_preserved(self):
        cols = np.ones((4, 4), dtype=np.float32)
        out = col2im(cols, (1, 1, 3, 3), 2, 2, stride=1, padding=0)
        assert out.dtype == np.float32
        np.testing.assert_array_equal(
            out, col2im_reference(cols, (1, 1, 3, 3), 2, 2)
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            col2im(np.ones((3, 3)), (1, 1, 4, 4), 2, 2)


class TestValidatorsStillRaise:
    def test_csr_unsorted_row(self):
        with pytest.raises(ValueError, match="row 1 has unsorted"):
            CSRMatrix(
                shape=(2, 4),
                indptr=np.array([0, 1, 3], dtype=np.int64),
                indices=np.array([0, 2, 1], dtype=np.int64),
                data=np.ones(3),
            )

    def test_csr_duplicate_column(self):
        with pytest.raises(ValueError, match="unsorted or duplicate"):
            CSRMatrix(
                shape=(1, 4),
                indptr=np.array([0, 2], dtype=np.int64),
                indices=np.array([1, 1], dtype=np.int64),
                data=np.ones(2),
            )

    def test_csr_sorted_across_boundary_ok(self):
        # column index drops across a row boundary — legal, and the
        # vectorised adjacent-pair check must not flag it
        CSRMatrix(
            shape=(2, 4),
            indptr=np.array([0, 2, 4], dtype=np.int64),
            indices=np.array([2, 3, 0, 1], dtype=np.int64),
            data=np.ones(4),
        )

    def test_csc_unsorted_column(self):
        with pytest.raises(ValueError, match="column 0 has unsorted"):
            CSCMatrix(
                shape=(4, 2),
                indptr=np.array([0, 2, 2], dtype=np.int64),
                indices=np.array([2, 1], dtype=np.int64),
                data=np.ones(2),
            )
