"""Tests for the experiment pipelines (accuracy, latency, matched-sparsity)."""

import numpy as np
import pytest

from repro.experiments import (
    MODEL_SHAPES,
    accuracy_matched_sparsity,
    gemm_speedup,
    model_plans,
    prepare_task,
    prune_and_evaluate,
    sparsity_sweep,
)
from repro.experiments.latency import end_to_end_report
from repro.experiments.matched import DROP_BUDGETS


@pytest.fixture(scope="module")
def mnli_bundle():
    # small budget: enough to be clearly above chance, fast enough for CI
    return prepare_task("mnli", train_samples=512)


class TestAccuracyPipeline:
    def test_baseline_above_chance(self, mnli_bundle):
        assert mnli_bundle.baseline_metric > 0.5

    def test_restore_resets_weights(self, mnli_bundle):
        w = mnli_bundle.model.prunable_weights()[0]
        original = w.data.copy()
        w.data[...] = 0.0
        mnli_bundle.restore()
        np.testing.assert_array_equal(w.data, original)

    def test_dense_pattern_returns_baseline(self, mnli_bundle):
        acc = prune_and_evaluate(mnli_bundle, "dense", 0.0)
        assert acc == pytest.approx(mnli_bundle.baseline_metric)

    def test_tw_prune_reaches_sparsity_and_keeps_accuracy(self, mnli_bundle):
        acc = prune_and_evaluate(mnli_bundle, "tw", 0.5, granularity=16)
        # the model stays close to its dense accuracy at 50% (paper: "BERT
        # is at least 50% redundant")
        assert acc > mnli_bundle.baseline_metric - 0.1
        # masks actually applied at the requested sparsity
        total = kept = 0
        for w in mnli_bundle.model.prunable_weights():
            total += w.size
            kept += int(np.count_nonzero(w.data))
        assert 1 - kept / total == pytest.approx(0.5, abs=0.06)

    def test_bw_loses_more_than_ew_at_high_sparsity(self, mnli_bundle):
        ew = prune_and_evaluate(mnli_bundle, "ew", 0.85)
        bw = prune_and_evaluate(mnli_bundle, "bw", 0.85, block_shape=(16, 16))
        assert ew >= bw - 0.02  # EW is the accuracy upper bound (Fig. 9a/12)

    def test_unknown_pattern_raises(self, mnli_bundle):
        with pytest.raises(KeyError):
            prune_and_evaluate(mnli_bundle, "magic", 0.5)

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            prepare_task("imagenet22k")


class TestLatencyPipeline:
    def test_model_plans_cover_shapes(self):
        plans = model_plans("bert", "tw", 0.75)
        assert len(plans) == len(MODEL_SHAPES["bert"]())
        assert all(p.pattern == "tw" for p in plans)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            model_plans("resnet", "tw", 0.5)

    def test_tw_speedup_monotone_in_sparsity(self):
        sweep = sparsity_sweep("bert", "tw", [0.25, 0.5, 0.75, 0.95])
        assert all(b > a for a, b in zip(sweep, sweep[1:]))

    def test_paper_pairings(self):
        """EW compares against dense CUDA cores even under a TC config."""
        ew = gemm_speedup("bert", "ew", 0.8, engine="tensor_core")
        assert ew < 1.0  # slower than dense-CUDA (Fig. 3)
        tw = gemm_speedup("bert", "tw", 0.75, engine="tensor_core")
        assert tw > 1.5

    def test_bw_slower_than_dense(self):
        assert gemm_speedup("bert", "bw", 0.5, block_size=32) < 1.0

    def test_all_models_price(self):
        for model in MODEL_SHAPES:
            s = gemm_speedup(model, "tw", 0.75)
            assert s > 1.0

    def test_end_to_end_report(self):
        rep = end_to_end_report("bert", "tw", 0.75)
        assert rep.total_us > 0
        assert rep.transpose_us > 0
        fr = rep.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-9


class TestMatched:
    def test_picks_highest_within_budget(self):
        s = accuracy_matched_sparsity(
            [0.25, 0.5, 0.75, 0.9], [0.90, 0.89, 0.87, 0.70], baseline=0.90, budget=0.03
        )
        assert s == 0.75

    def test_none_when_budget_never_met(self):
        s = accuracy_matched_sparsity([0.5, 0.9], [0.5, 0.4], baseline=0.9, budget=0.03)
        assert s is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_matched_sparsity([0.5], [], 0.9, 0.03)

    def test_budget_table(self):
        assert DROP_BUDGETS["vgg"] < DROP_BUDGETS["mnli"]
        assert DROP_BUDGETS["nmt"] == 1.0
