"""Tests for the cost-model machinery, device specs and stream scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.costmodel import (
    CostBreakdown,
    PerfCounters,
    l2_reread_factor,
    roofline_us,
    short_k_efficiency,
    tile_quantization,
    wave_efficiency,
)
from repro.gpu.device import A100, T4, V100, DeviceSpec
from repro.gpu.streams import concurrent_makespan, lpt_makespan, sequential_makespan


class TestDeviceSpec:
    def test_v100_paper_numbers(self):
        """§VII-A: 15.7 TFLOPS CUDA cores, 125 TFLOPS tensor cores, 80 SMs."""
        assert V100.tensor_core_tflops == 125.0
        assert V100.cuda_core_tflops == 15.7
        assert V100.sm_count == 80

    def test_derived_units(self):
        assert V100.tensor_core_flops == 125.0e12
        assert V100.mem_bandwidth == 900.0e9
        assert V100.block_slots == 160

    def test_variants_exist(self):
        assert T4.sm_count < V100.sm_count < A100.sm_count

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", sm_count=0)
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", kernel_launch_us=-1.0)


class TestQuantization:
    def test_tile_quantization_exact(self):
        assert tile_quantization(256, 256, 128, 128) == 1.0

    def test_tile_quantization_partial(self):
        # 129 rows need 2 tiles of 128 -> covered 256
        assert tile_quantization(129, 128, 128, 128) == pytest.approx(129 / 256)

    def test_wave_efficiency_exact(self):
        assert wave_efficiency(V100.block_slots, V100) == 1.0

    def test_wave_efficiency_partial(self):
        assert wave_efficiency(V100.block_slots + 1, V100) == pytest.approx(
            (V100.block_slots + 1) / (2 * V100.block_slots)
        )

    def test_wave_efficiency_small(self):
        assert wave_efficiency(16, V100) == pytest.approx(16 / V100.block_slots)

    def test_short_k(self):
        assert short_k_efficiency(96, 96.0) == pytest.approx(0.5)
        assert short_k_efficiency(0, 96.0) == 0.0
        assert short_k_efficiency(10**9, 96.0) == pytest.approx(1.0, abs=1e-3)

    def test_l2_reread(self):
        l2 = 6 * 1024 * 1024
        assert l2_reread_factor(1024, 10, l2) == 1.0  # fits
        big = 10 * l2
        assert 1.0 < l2_reread_factor(big, 100, l2) <= 100

    def test_roofline(self):
        c, m = roofline_us(1e12, 1e12, 9e9, 900e9)
        assert c == pytest.approx(1e6)
        assert m == pytest.approx(1e4)


class TestCostBreakdown:
    def test_total_is_roofline_plus_launch(self):
        bd = CostBreakdown(compute_us=10.0, memory_us=4.0, launch_us=1.0)
        assert bd.busy_us == 10.0
        assert bd.total_us == 11.0

    def test_memory_bound(self):
        bd = CostBreakdown(compute_us=2.0, memory_us=7.0, launch_us=0.0)
        assert bd.busy_us == 7.0

    def test_flops_efficiency(self):
        bd = CostBreakdown(
            compute_us=100.0, counters=PerfCounters(flops=1e9)
        )
        # 1e9 flops in 100us = 1e13 flop/s
        assert bd.flops_efficiency(1e14) == pytest.approx(0.1)

    def test_counters_transactions(self):
        c = PerfCounters(bytes_loaded=3200, bytes_stored=640)
        assert c.load_transactions == 100
        assert c.store_transactions == 20

    def test_merge_serial(self):
        a = CostBreakdown(compute_us=5, memory_us=10, launch_us=1, kernels=1,
                          counters=PerfCounters(flops=1.0))
        b = CostBreakdown(compute_us=7, memory_us=2, launch_us=1, kernels=2,
                          counters=PerfCounters(flops=2.0))
        m = a.merge_serial(b)
        assert m.busy_us == pytest.approx(10 + 7)
        assert m.launch_us == 2
        assert m.kernels == 3
        assert m.counters.flops == 3.0


class TestStreams:
    def test_lpt_single_worker(self):
        assert lpt_makespan([3.0, 2.0, 1.0], 1) == pytest.approx(6.0)

    def test_lpt_enough_workers(self):
        assert lpt_makespan([3.0, 2.0, 1.0], 5) == pytest.approx(3.0)

    def test_lpt_two_workers(self):
        # LPT: 3 -> w1, 2 -> w2, 2 -> w2?? no: after 3,2 loads are (3,2); 2 -> w2 (4)
        assert lpt_makespan([3.0, 2.0, 2.0], 2) == pytest.approx(4.0)

    def test_lpt_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_lpt_invalid_workers(self):
        with pytest.raises(ValueError):
            lpt_makespan([1.0], 0)

    def test_sequential_vs_concurrent(self):
        """Pooling kernels through streams can only help."""
        device = DeviceSpec(name="tiny", sm_count=2, blocks_per_sm=1)
        kernels = [[4.0], [4.0]]  # two 1-block kernels on a 2-slot device
        assert sequential_makespan(kernels, device) == pytest.approx(8.0)
        assert concurrent_makespan(kernels, device) == pytest.approx(4.0)

    def test_concurrent_bounded_by_stream_count(self):
        device = DeviceSpec(
            name="tiny", sm_count=4, blocks_per_sm=1, max_concurrent_streams=2
        )
        kernels = [[1.0]] * 4  # 4 kernels, only 2 streams
        # groups of 2 kernels each fill 2 of 4 slots -> 1.0 per group
        assert concurrent_makespan(kernels, device) == pytest.approx(2.0)

    def test_concurrent_empty(self):
        assert concurrent_makespan([], V100) == 0.0


@given(
    st.lists(st.floats(0.01, 100), min_size=1, max_size=50),
    st.integers(1, 16),
)
@settings(max_examples=60, deadline=None)
def test_lpt_bounds_property(tasks, workers):
    """LPT makespan is bounded by max(avg load, longest task) and their sum."""
    ms = lpt_makespan(tasks, workers)
    lower = max(sum(tasks) / workers, max(tasks))
    assert ms >= lower - 1e-9
    assert ms <= sum(tasks) + 1e-9
    # 4/3-approximation guarantee of LPT
    assert ms <= (4.0 / 3.0) * lower + max(tasks)
