"""Tests for synthetic datasets, metrics, trainer and the pruning adapter."""

import numpy as np
import pytest

from repro.nn.datasets import (
    ImagePatternDataset,
    SentencePairDataset,
    Seq2SeqDataset,
    SpanQADataset,
    batches,
)
from repro.nn.layers import Linear, Sequential
from repro.nn.loss import cross_entropy
from repro.nn.metrics import accuracy, bleu, corpus_bleu, span_exact_match, span_f1
from repro.nn.optimizer import Adam
from repro.nn.tensor import Tensor
from repro.nn.trainer import TrainConfig, TrainedModelAdapter, Trainer


class TestDatasets:
    def test_sentence_pair_reproducible(self):
        ds = SentencePairDataset(seed=0)
        a = ds.sample(16, seed=1)
        b = ds.sample(16, seed=1)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_sentence_pair_labels_balanced(self):
        ds = SentencePairDataset(seed=0)
        split = ds.sample(600, seed=2)
        counts = np.bincount(split.y, minlength=3)
        assert counts.min() > 120

    def test_sentence_pair_structure(self):
        ds = SentencePairDataset(vocab_size=64, seq_len=20, seed=0)
        split = ds.sample(8, seed=0)
        assert split.x.shape == (8, 22)
        assert (split.x[:, 0] == ds.cls_id).all()
        assert (split.x[:, 11] == ds.sep_id).all()

    def test_sentence_pair_validation(self):
        with pytest.raises(ValueError):
            SentencePairDataset(vocab_size=4)
        with pytest.raises(ValueError):
            SentencePairDataset(n_topics=2)

    def test_span_qa_labels_point_at_markers(self):
        ds = SpanQADataset(seed=0)
        split = ds.sample(32, seed=1)
        for i in range(32):
            kind = split.x[i, 0] - ds.question_base
            marker = ds.marker_ids[kind]
            assert split.x[i, split.extra["start"][i]] == marker
            assert split.extra["end"][i] - split.extra["start"][i] == ds.span_len - 1

    def test_span_qa_validation(self):
        with pytest.raises(ValueError):
            SpanQADataset(seq_len=8, n_marker_kinds=4, span_len=3)

    def test_image_dataset_shapes(self):
        ds = ImagePatternDataset(n_classes=4, seed=0)
        split = ds.sample(10, seed=0)
        assert split.x.shape == (10, 3, 16, 16)
        assert split.y.max() < 4

    def test_image_dataset_classes_distinguishable(self):
        """Nearest-template classification must beat chance by a wide margin
        (otherwise the task would be unlearnable)."""
        ds = ImagePatternDataset(n_classes=4, seed=0)
        split = ds.sample(200, seed=1)
        flat_templates = ds._templates.reshape(4, -1)
        preds = np.array([
            np.argmax(flat_templates @ x.ravel()) for x in split.x
        ])
        assert accuracy(preds, split.y) > 0.6

    def test_seq2seq_structure(self):
        ds = Seq2SeqDataset(seed=0)
        split = ds.sample(16, seed=0)
        for i in range(16):
            src = split.x[i][split.x[i] != ds.pad_id]
            tgt = split.y[i][(split.y[i] != ds.pad_id)]
            assert tgt[0] == ds.bos_id and tgt[-1] == ds.eos_id
            content = tgt[1:-1]
            np.testing.assert_array_equal(content, ds._mapping[src[::-1]])

    def test_batches_cover_everything(self):
        seen = np.concatenate(list(batches(10, 3)))
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_batches_shuffled(self):
        rng = np.random.default_rng(0)
        order = np.concatenate(list(batches(100, 10, rng)))
        assert not np.array_equal(order, np.arange(100))

    def test_batches_validation(self):
        with pytest.raises(ValueError):
            list(batches(10, 0))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_accuracy_shape_check(self):
        with pytest.raises(ValueError):
            accuracy(np.ones(2), np.ones(3))

    def test_span_metrics_perfect(self):
        s = np.array([2, 5])
        e = np.array([4, 7])
        assert span_exact_match(s, e, s, e) == 1.0
        assert span_f1(s, e, s, e) == 1.0

    def test_span_f1_partial_overlap(self):
        # pred [2,4], true [3,5]: overlap 2, p=2/3, r=2/3 -> f1=2/3
        f1 = span_f1(np.array([2]), np.array([4]), np.array([3]), np.array([5]))
        assert f1 == pytest.approx(2 / 3)

    def test_span_f1_no_overlap(self):
        assert span_f1(np.array([0]), np.array([1]), np.array([5]), np.array([6])) == 0.0

    def test_bleu_identity(self):
        ref = [3, 4, 5, 6, 7, 8]
        assert bleu(ref, ref) == pytest.approx(100.0)

    def test_bleu_disjoint_zero(self):
        assert bleu([1, 2, 3, 4], [5, 6, 7, 8]) == 0.0

    def test_bleu_brevity_penalty(self):
        ref = [3, 4, 5, 6, 7, 8, 9, 10]
        short = ref[:4]
        trunc = bleu(short, ref)
        full = bleu(ref, ref)
        assert trunc < full

    def test_corpus_bleu_monotone_in_quality(self):
        rng = np.random.default_rng(0)
        refs = [list(rng.integers(3, 50, size=10)) for _ in range(20)]
        perfect = corpus_bleu(refs, refs)
        noisy = corpus_bleu(
            [r[:5] + list(rng.integers(3, 50, size=5)) for r in refs], refs
        )
        assert perfect > noisy > 0.0

    def test_corpus_bleu_validation(self):
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [])
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [[1]], max_n=0)


def _make_mlp_and_data():
    """Tiny 2-class problem: sign of a linear projection of the input."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((256, 8))
    w_true = rng.standard_normal(8)
    y = (x @ w_true > 0).astype(np.int64)
    from repro.nn.datasets import ClassificationSplit

    split = ClassificationSplit(x=x, y=y)
    model = Sequential(
        Linear(8, 16, rng=np.random.default_rng(1)),
        Linear(16, 2, rng=np.random.default_rng(2)),
    )

    def loss_fn(s, idx):
        logits = model(Tensor(s.x[idx]))
        return cross_entropy(logits, s.y[idx])

    return model, split, loss_fn


class TestTrainer:
    def test_loss_decreases(self):
        model, split, loss_fn = _make_mlp_and_data()
        opt = Adam(list(model.parameters()), lr=1e-2)
        trainer = Trainer(loss_fn, opt)
        losses = trainer.train(split, TrainConfig(epochs=5, batch_size=32))
        assert losses[-1] < losses[0] * 0.5

    def test_model_learns_task(self):
        model, split, loss_fn = _make_mlp_and_data()
        opt = Adam(list(model.parameters()), lr=1e-2)
        Trainer(loss_fn, opt).train(split, TrainConfig(epochs=10, batch_size=32))
        preds = model(Tensor(split.x)).data.argmax(axis=1)
        assert accuracy(preds, split.y) > 0.9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=-1)
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)


class TestTrainedModelAdapter:
    def _adapter(self):
        model, split, loss_fn = _make_mlp_and_data()
        opt = Adam(list(model.parameters()), lr=1e-2)
        Trainer(loss_fn, opt).train(split, TrainConfig(epochs=5, batch_size=32))
        prunable = [model.steps[0].weight, model.steps[1].weight]
        adapter = TrainedModelAdapter(
            prunable, loss_fn, split, TrainConfig(epochs=1, batch_size=32)
        )
        return model, split, adapter

    def test_satisfies_protocol(self):
        from repro.core.pruner import PrunableModel

        _, _, adapter = self._adapter()
        assert isinstance(adapter, PrunableModel)

    def test_weight_matrices_are_live_views(self):
        model, _, adapter = self._adapter()
        ws = adapter.weight_matrices()
        assert ws[0] is model.steps[0].weight.data

    def test_gradient_matrices_nonzero(self):
        _, _, adapter = self._adapter()
        grads = adapter.gradient_matrices()
        assert len(grads) == 2
        assert all(np.abs(g).sum() > 0 for g in grads)

    def test_apply_masks_zeroes_and_freezes(self):
        model, split, adapter = self._adapter()
        masks = [np.ones((8, 16), dtype=bool), np.ones((16, 2), dtype=bool)]
        masks[0][:, :8] = False
        adapter.apply_masks(masks)
        assert np.all(model.steps[0].weight.data[:, :8] == 0.0)
        adapter.fine_tune()
        assert np.all(model.steps[0].weight.data[:, :8] == 0.0)  # stays pruned
        assert adapter.overall_sparsity == pytest.approx(
            (8 * 8) / (8 * 16 + 16 * 2)
        )

    def test_full_pruner_integration(self):
        """End-to-end: train → TW-prune with fine-tuning → accuracy holds."""
        from repro.core import GradualSchedule, ImportanceConfig, TWPruneConfig, TWPruner

        model, split, adapter = self._adapter()
        pruner = TWPruner(
            TWPruneConfig(granularity=4),
            GradualSchedule(target=0.5, n_stages=2),
            ImportanceConfig(method="taylor"),
        )
        result = pruner.prune(adapter)
        assert result.achieved_sparsity == pytest.approx(0.5, abs=0.05)
        preds = model(Tensor(split.x)).data.argmax(axis=1)
        assert accuracy(preds, split.y) > 0.8  # fine-tuning recovered accuracy

    def test_validation(self):
        _, split, _ = self._adapter()
        with pytest.raises(ValueError):
            TrainedModelAdapter([], lambda s, i: None, split)
        _, _, adapter = self._adapter()
        with pytest.raises(ValueError):
            adapter.apply_masks([np.ones((8, 16), dtype=bool)])
