"""Network serving front: wire protocol, HTTP server and clients (ISSUE 10).

The core property mirrors the ingress suite one level further out:
responses served over real sockets are bit-identical (float64 binary
wire format) to the in-process ``serve_async`` path on the same
requests — including under injected faults, where every request must
still get a *terminal* HTTP response (200/429/500/504), never a hang or
a traceback over the wire.  Plus the protocol satellites: strict
request validation → 400 with a structured JSON error body, deadline
header → 504, backpressure → 429 with ``Retry-After``, graceful drain
with a final stats flush.

The servers here run on a background daemon thread (``NetServer`` as a
context manager) against ``127.0.0.1`` ephemeral ports; clients are the
stdlib-only ones from :mod:`repro.runtime.netclient`.
"""

import asyncio
import contextlib
import json
import struct
import threading
import time

import numpy as np
import pytest

from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.runtime import (
    InferClient,
    NetServer,
    ServerConfig,
    ServingLoop,
    TWModelServer,
)
from repro.runtime import wire
from repro.runtime.loadgen import run_open_loop
from repro.runtime.netclient import (
    AsyncInferClient,
    HttpLoadTransport,
    _split_http_url,
)

HTTP_TERMINAL = {200, 429, 500, 504}


def _pruned_layer(rng, k, n, sparsity=0.5, g=8):
    dense = rng.standard_normal((k, n))
    step = tw_prune_step([np.abs(dense)], sparsity, TWPruneConfig(granularity=g))
    return dense, step.col_keeps[0], step.row_masks[0]


def _layers(seed, n_layers=2, k=24, g=8):
    rng = np.random.default_rng(seed)
    return [_pruned_layer(rng, k, k, g=g) for _ in range(n_layers)]


def _server(layers, **cfg_kw):
    cfg_kw.setdefault("granularity", 8)
    server = TWModelServer(ServerConfig(**cfg_kw))
    for dense, ck, rm in layers:
        server.add_layer(dense, ck, rm)
    return server


def _requests(seed, n=6, rows=2, k=24):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((rows, k)) for _ in range(n)]


def _oracle_outputs(layers, reqs):
    """Fault-free sequential inline drain: the bit-identity reference."""
    server = _server(layers)
    return [server.serve(x).output for x in reqs]


@contextlib.contextmanager
def _serving(server, *, max_wave_rows=4, **net_kw):
    """A NetServer over ``server`` on a daemon thread, ready to accept."""
    loop = ServingLoop(server, max_wave_rows=max_wave_rows)
    net_kw.setdefault("drain_timeout_s", 10.0)
    net = NetServer(loop, port=0, owns_loop=True, **net_kw)
    with net:
        yield net


def _client(net):
    return InferClient("127.0.0.1", net.port)


class TestWireCodec:
    @pytest.mark.parametrize("dtype", [np.float16, np.float32, np.float64])
    def test_binary_round_trip_bit_exact(self, dtype):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 7)).astype(dtype)
        back = wire.decode_tensor(wire.encode_tensor(x))
        assert back.dtype == x.dtype
        np.testing.assert_array_equal(back, x)

    def test_json_round_trip(self):
        x = np.random.default_rng(1).standard_normal((3, 4))
        back = wire.decode_json_tensor(wire.encode_json_tensor(x))
        assert back.dtype == np.float64
        np.testing.assert_array_equal(back, x)

    @pytest.mark.parametrize("body,code", [
        (b"short", "bad_payload"),
        (b"XXX" + bytes([1]) + b"<f8".ljust(8, b"\0") + struct.pack("<II", 1, 1) + b"\0" * 8,
         "bad_magic"),
        (b"TWT" + bytes([9]) + b"<f8".ljust(8, b"\0") + struct.pack("<II", 1, 1) + b"\0" * 8,
         "unsupported_version"),
        (b"TWT" + bytes([1]) + b"<i8".ljust(8, b"\0") + struct.pack("<II", 1, 1) + b"\0" * 8,
         "bad_dtype"),
        (b"TWT" + bytes([1]) + b"@@@".ljust(8, b"\0") + struct.pack("<II", 1, 1) + b"\0" * 8,
         "bad_dtype"),
        (b"TWT" + bytes([1]) + b"<f8".ljust(8, b"\0") + struct.pack("<II", 0, 4),
         "bad_shape"),
        (b"TWT" + bytes([1]) + b"<f8".ljust(8, b"\0") + struct.pack("<II", 2, 4) + b"\0" * 8,
         "length_mismatch"),
    ])
    def test_strict_binary_validation(self, body, code):
        with pytest.raises(wire.WireError) as err:
            wire.decode_tensor(body)
        assert err.value.code == code

    @pytest.mark.parametrize("body,code", [
        (b"not json{", "bad_json"),
        (b'{"y": [[1.0]]}', "bad_json"),
        (b'{"x": [["a"]]}', "bad_payload"),
        (b'{"x": [[1.0]], "dtype": "int32"}', "bad_dtype"),
        (b'{"x": []}', "bad_shape"),
    ])
    def test_strict_json_validation(self, body, code):
        with pytest.raises(wire.WireError) as err:
            wire.decode_json_tensor(body)
        assert err.value.code == code

    def test_integer_payloads_refused_on_encode(self):
        with pytest.raises(wire.WireError):
            wire.encode_tensor(np.ones((2, 2), dtype=np.int8))

    def test_url_split(self):
        assert _split_http_url("http://127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert _split_http_url("127.0.0.1:9999") == ("127.0.0.1", 9999)
        with pytest.raises(ValueError):
            _split_http_url("https://127.0.0.1:1")


class TestEndpoints:
    def test_healthz_stats_and_routing(self):
        layers = _layers(20)
        server = _server(layers)
        with server, _serving(server) as net:
            c = _client(net)
            status, doc = c.healthz()
            assert status == 200 and doc["ready"] is True
            assert doc["wire_version"] == wire.VERSION

            c.infer(_requests(21, n=1)[0])
            stats = c.stats()
            assert stats["requests"] == 1
            assert stats["net"]["requests_seen"] == 1
            assert stats["ingress"]["closed"] is False

            status, headers, body = c.request("GET", "/nope")
            assert status == 404
            assert json.loads(body)["error"]["code"] == "not_found"
            status, _h, body = c.request("GET", "/v1/infer")
            assert status == 405
            assert json.loads(body)["error"]["code"] == "method_not_allowed"
            c.close()

    @pytest.mark.parametrize("binary", [True, False])
    def test_payload_encodings_bit_identical(self, binary):
        # float64 survives both encodings exactly: the binary frame
        # carries raw bytes, the JSON fallback round-trips via repr
        layers = _layers(22)
        reqs = _requests(23, n=4)
        want = _oracle_outputs(layers, reqs)
        server = _server(layers)
        with server, _serving(server) as net:
            c = _client(net)
            for x, ref in zip(reqs, want):
                r = c.infer(x, binary=binary)
                assert r.status == "ok" and r.http_status == 200
                assert r.output.dtype == np.float64
                np.testing.assert_array_equal(r.output, ref)
                assert r.request_id is not None
                assert r.server_latency_s >= r.service_s >= 0.0
            c.close()

    def test_response_mirrors_request_encoding(self):
        layers = _layers(24)
        server = _server(layers)
        with server, _serving(server) as net:
            c = _client(net)
            x = _requests(25, n=1)[0]
            _st, headers, _body = c.request(
                "POST", "/v1/infer", wire.encode_tensor(x),
                {"Content-Type": wire.CONTENT_TYPE_TENSOR},
            )
            assert headers["content-type"] == wire.CONTENT_TYPE_TENSOR
            assert headers["x-wire-version"] == str(wire.VERSION)
            _st, headers, body = c.request(
                "POST", "/v1/infer", wire.encode_json_tensor(x),
                {"Content-Type": wire.CONTENT_TYPE_JSON},
            )
            assert headers["content-type"] == wire.CONTENT_TYPE_JSON
            assert json.loads(body)["status"] == "ok"
            c.close()

    def test_keep_alive_idle_time_is_not_queue_wait(self):
        # regression: the arrival anchor for keep-alive successors is the
        # request's own arrival — idle time between requests on a pooled
        # connection must not inflate reported latency
        layers = _layers(26)
        server = _server(layers)
        with server, _serving(server) as net:
            c = _client(net)
            x = _requests(27, n=1)[0]
            for _ in range(3):
                time.sleep(0.1)  # idle keep-alive gap
                r = c.infer(x)
                assert r.status == "ok"
                assert r.server_latency_s < 0.05
            c.close()


class TestValidationOverHttp:
    def test_bad_payloads_get_structured_400(self):
        layers = _layers(30)
        server = _server(layers)
        bad_frame = b"TWT" + bytes([9]) + b"<f8".ljust(8, b"\0") + struct.pack("<II", 1, 24) + b"\0" * 192
        cases = [
            (b"garbage", wire.CONTENT_TYPE_TENSOR, "bad_payload"),
            (bad_frame, wire.CONTENT_TYPE_TENSOR, "unsupported_version"),
            (b"{broken", wire.CONTENT_TYPE_JSON, "bad_json"),
            (wire.encode_tensor(np.zeros((2, 25))), wire.CONTENT_TYPE_TENSOR,
             "shape_mismatch"),
        ]
        with server, _serving(server) as net:
            c = _client(net)
            for body, ctype, code in cases:
                status, headers, payload = c.request(
                    "POST", "/v1/infer", body, {"Content-Type": ctype}
                )
                assert status == 400, (code, payload)
                doc = json.loads(payload)  # structured, never a traceback
                assert doc["error"]["code"] == code
                assert "Traceback" not in doc["error"]["message"]
            # server still healthy after a pile of rejects
            r = c.infer(_requests(31, n=1)[0])
            assert r.status == "ok"
            c.close()

    def test_bad_deadline_header_is_400(self):
        layers = _layers(32)
        server = _server(layers)
        with server, _serving(server) as net:
            c = _client(net)
            x = wire.encode_tensor(_requests(33, n=1)[0])
            for bad in ("abc", "-5", "inf"):
                status, _h, payload = c.request(
                    "POST", "/v1/infer", x,
                    {"Content-Type": wire.CONTENT_TYPE_TENSOR, "X-Deadline-Ms": bad},
                )
                assert status == 400
                assert json.loads(payload)["error"]["code"] == "bad_deadline"
            c.close()

    def test_oversized_body_is_refused(self):
        layers = _layers(34)
        server = _server(layers)
        with server, _serving(server, max_body_bytes=1024) as net:
            c = _client(net)
            status, _h, payload = c.request(
                "POST", "/v1/infer", b"\0" * 2048,
                {"Content-Type": wire.CONTENT_TYPE_TENSOR},
            )
            assert status == 413
            assert json.loads(payload)["error"]["code"] == "bad_request"
            c.close()


class TestSloOverHttp:
    def test_deadline_header_expires_to_504(self):
        layers = _layers(40)
        server = _server(layers)
        with server, _serving(server) as net:
            c = _client(net)
            r = c.infer(_requests(41, n=1)[0], deadline_ms=0.0)
            assert r.http_status == 504
            assert r.status == "expired"
            assert r.error["code"] == "deadline_expired"
            assert server.stats.expired == 1
            c.close()

    def test_backpressure_is_429_with_retry_after(self):
        # queue bound of 1 row can never admit a 2-row request: the
        # QueueFullError surfaces deterministically as 429 + Retry-After
        layers = _layers(42)
        server = _server(layers, max_queue_rows=1, shed_policy="reject")
        with server, _serving(server) as net:
            c = _client(net)
            r = c.infer(_requests(43, n=1, rows=2)[0])
            assert r.http_status == 429
            assert r.status == "rejected"
            assert r.error["code"] == "queue_full"
            assert r.retry_after_s is not None and r.retry_after_s > 0
            c.close()

    def test_failed_request_is_500_with_isolated_error(self):
        # a deterministic always-on exception fault exhausts retries and
        # bisection isolates the poison request: 500, structured error
        layers = _layers(44)
        server = _server(layers, max_retries=1, faults="exception:rate=1.0:seed=5")
        with server, _serving(server) as net:
            c = _client(net)
            r = c.infer(_requests(45, n=1)[0])
            assert r.http_status == 500
            assert r.status == "failed"
            assert r.error["code"] == "request_failed"
            assert "injected" in r.error["message"].lower()
            c.close()


class TestBitIdentityOverHttp:
    def test_concurrent_clients_match_serve_async_float64(self):
        # N concurrent HTTP clients vs the same requests streamed through
        # an in-process ServingLoop: float64, bit for bit
        layers = _layers(50, n_layers=3)
        n_clients, per_client = 4, 4
        reqs = _requests(51, n=n_clients * per_client)

        async def inproc():
            server = _server(layers)
            with server:
                async with ServingLoop(server, max_wave_rows=4) as loop:
                    futs = [loop.submit_nowait(x) for x in reqs]
                    return [r.output for r in await asyncio.gather(*futs)]

        want = asyncio.run(inproc())

        server = _server(layers)
        outs: dict[int, np.ndarray] = {}
        errors: list = []
        with server, _serving(server) as net:
            def worker(c_idx):
                try:
                    client = _client(net)
                    for j in range(per_client):
                        i = c_idx * per_client + j
                        r = client.infer(reqs[i])
                        assert r.status == "ok", r
                        outs[i] = r.output
                    client.close()
                except BaseException as exc:  # surfaces in the main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(c,)) for c in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
        assert not errors, errors
        assert len(outs) == len(reqs)
        for i, ref in enumerate(want):
            np.testing.assert_array_equal(outs[i], ref)

    @pytest.mark.parametrize("spec,all_ok", [
        ("exception:wave=1", True),
        ("latency:rate=0.5:duration=0.002:seed=1", True),
        ("exception:rate=0.3:seed=3", False),
    ])
    def test_chaos_over_http_every_request_terminal(self, spec, all_ok):
        # the chaos invariant one network hop out: with faults injected,
        # every HTTP request still gets a terminal response, and every
        # 200 body is bit-identical to the fault-free inline oracle
        layers = _layers(52)
        n_clients, per_client = 3, 2
        reqs = _requests(53, n=n_clients * per_client)
        want = _oracle_outputs(layers, reqs)
        server = _server(layers, max_retries=2, faults=spec)
        results: dict[int, object] = {}
        errors: list = []
        with server, _serving(server) as net:
            def worker(c_idx):
                try:
                    client = _client(net)
                    for j in range(per_client):
                        i = c_idx * per_client + j
                        results[i] = client.infer(reqs[i])
                    client.close()
                except BaseException as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(c,)) for c in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
        assert not errors, errors
        assert len(results) == len(reqs)
        for i, r in sorted(results.items()):
            assert r.http_status in HTTP_TERMINAL, (i, r)
            if all_ok:
                assert r.status == "ok", (i, r)
            if r.status == "ok":
                np.testing.assert_array_equal(r.output, want[i])
            else:
                assert r.status == "failed"
                assert r.error["code"] == "request_failed"


class TestAsyncClientAndTransport:
    def test_async_client_and_load_transport(self):
        layers = _layers(60)
        reqs = _requests(61, n=8)
        want = _oracle_outputs(layers, reqs)
        server = _server(layers)
        with server, _serving(server) as net:
            async def go():
                async with AsyncInferClient("127.0.0.1", net.port) as client:
                    status, doc = await client.get_json("/healthz")
                    assert status == 200 and doc["ready"]
                    r = await client.infer(reqs[0])
                    assert r.status == "ok"
                    np.testing.assert_array_equal(r.output, want[0])
                async with HttpLoadTransport(
                    "127.0.0.1", net.port, connections=4
                ) as transport:
                    result = await run_open_loop(
                        transport,
                        lambda i: reqs[i % len(reqs)],
                        rate=200.0,
                        duration_s=0.2,
                        arrival="fixed",
                        seed=0,
                    )
                assert result.all_ok and result.requests > 0
                for i, r in enumerate(result.served):
                    np.testing.assert_array_equal(
                        r.output, want[i % len(reqs)]
                    )
                assert result.latency_ms["p99"] > 0.0

            asyncio.run(go())


class TestLifecycle:
    def test_graceful_drain_writes_final_stats(self, tmp_path):
        stats_path = tmp_path / "net-stats.json"
        layers = _layers(70)
        server = _server(layers)
        loop = ServingLoop(server, max_wave_rows=4)
        net = NetServer(
            loop, port=0, owns_loop=True, drain_timeout_s=10.0,
            stats_json=str(stats_path),
        )
        with server:
            net.start_background()
            c = _client(net)
            for x in _requests(71, n=5):
                assert c.infer(x).status == "ok"
            c.close()
            net.stop_background()
        assert net.final_stats is not None
        assert net.final_stats["requests"] == 5
        assert net.final_stats["net"]["requests_seen"] == 5
        assert net.final_stats["net"]["drained"] is True
        on_disk = json.loads(stats_path.read_text())
        assert on_disk["requests"] == 5

    def test_submissions_after_close_are_refused(self):
        layers = _layers(72)
        server = _server(layers)
        with server:
            with _serving(server) as net:
                port = net.port
                c = _client(net)
                assert c.infer(_requests(73, n=1)[0]).status == "ok"
                c.close()
            # listener is gone after close: connections are refused
            with pytest.raises(OSError):
                InferClient("127.0.0.1", port).infer(_requests(73, n=1)[0])
