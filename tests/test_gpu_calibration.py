"""Calibration anchor tests — pin the simulator to the paper's numbers.

These tests assert, with explicit tolerance bands, the anchor points from
the paper that the cost models were calibrated to (DESIGN.md §5).  If a
code change moves the model outside a band, the reproduction claims in
EXPERIMENTS.md no longer hold and the change must be reviewed.

Known, documented deviation: the TW break-even sparsity sits near 25–30 %
in the model versus the paper's ~40 % (the model's masked-load stall scales
smoothly with the main loop, while the real kernel has additional fixed
overheads at low sparsity we chose not to add free parameters for).  The
band below encodes the model's actual behaviour, bounded away from the
regions that would change any qualitative conclusion.
"""

import numpy as np
import pytest

from repro.gpu import (
    TWExecutionOptions,
    V100,
    bsr_gemm_cost,
    csr_spmm_cost,
    dense_gemm_cuda_cost,
    dense_gemm_tc_cost,
    tw_gemm_cost,
)
from repro.gpu.tw_kernel import TWShapeStats

# BERT-base weight GEMM at high-throughput inference (M = tokens in flight)
M, K, N, G = 8192, 768, 768, 128


@pytest.fixture(scope="module")
def dense_tc():
    return dense_gemm_tc_cost(M, N, K)


@pytest.fixture(scope="module")
def dense_cuda():
    return dense_gemm_cuda_cost(M, N, K)


def tw_speedup(sparsity, dense, **opts):
    shape = TWShapeStats.synthetic(K, N, G, sparsity, seed=1)
    bd = tw_gemm_cost(M, shape, options=TWExecutionOptions(**opts) if opts else None)
    return dense.total_us / bd.total_us


class TestTWAnchors:
    def test_zero_sparsity_overhead(self, dense_tc):
        """Fig. 11: TW at 0% sparsity is ~35% slower than dense (2× loads)."""
        s = tw_speedup(0.0, dense_tc)
        assert 0.65 <= s <= 0.85  # paper: 1/1.35 ≈ 0.74

    def test_load_transactions_double_at_zero(self, dense_tc):
        """Fig. 11: ~2× global load transactions at 0% sparsity."""
        shape = TWShapeStats.synthetic(K, N, G, 0.0, seed=1)
        bd = tw_gemm_cost(M, shape)
        ratio = bd.counters.load_transactions / dense_tc.counters.load_transactions
        assert 1.6 <= ratio <= 2.4

    def test_breakeven_band(self, dense_tc):
        """Paper: break-even ≈40%; model lands earlier (documented)."""
        assert tw_speedup(0.15, dense_tc) < 1.0
        assert tw_speedup(0.45, dense_tc) > 1.0

    def test_75_percent_speedup(self, dense_tc):
        """Fig. 9b / §VII-B: 2.26× at 75% sparsity with G=128."""
        s = tw_speedup(0.75, dense_tc)
        assert 1.7 <= s <= 2.6

    def test_99_percent_speedup(self, dense_tc):
        """Fig. 11: 11.6× at 99% sparsity."""
        s = tw_speedup(0.99, dense_tc)
        assert 8.0 <= s <= 15.0

    def test_smaller_g_slower(self, dense_tc):
        """Fig. 9b: G=64 delivers less speedup than G=128 at equal sparsity."""
        s128 = tw_speedup(0.75, dense_tc)
        shape64 = TWShapeStats.synthetic(K, N, 64, 0.75, seed=1)
        s64 = dense_tc.total_us / tw_gemm_cost(M, shape64).total_us
        assert s64 < s128

    def test_without_transpose_no_benefit(self, dense_tc):
        """Fig. 15: w/o the transpose optimisation the GEMM cannot benefit
        from high sparsity."""
        s = tw_speedup(0.75, dense_tc, transpose=False)
        assert s < 1.3  # roughly dense-level or worse
        assert s < 0.75 * tw_speedup(0.75, dense_tc)


class TestBaselineAnchors:
    def test_ew_slower_than_dense_below_90(self, dense_cuda):
        """Fig. 3 / §II-B: cuSparse EW loses to dense below ~90-95%."""
        for s in (0.5, 0.75, 0.85):
            bd = csr_spmm_cost(M, K, N, nnz=int((1 - s) * K * N))
            assert bd.total_us > dense_cuda.total_us

    def test_ew_crossover_beyond_90(self, dense_cuda):
        """§II-B: speedup requires very high sparsity (>90-95%)."""
        bd97 = csr_spmm_cost(M, K, N, nnz=int(0.03 * K * N))
        assert bd97.total_us < dense_cuda.total_us
        bd90 = csr_spmm_cost(M, K, N, nnz=int(0.10 * K * N))
        assert bd90.total_us > dense_cuda.total_us * 0.8

    def test_bw32_three_times_slower_at_half_sparsity(self, dense_tc):
        """Fig. 3: BlockSparse BW ~3× slower than dense-T at its
        accuracy-matched sparsity (~50-60%)."""
        nb = int(0.5 * (K // 32) * (N // 32))
        bd = bsr_gemm_cost(M, K, N, 32, nb)
        ratio = bd.total_us / dense_tc.total_us
        assert 2.0 <= ratio <= 4.0

    def test_bw64_breakeven_near_90(self, dense_tc):
        """Fig. 9b: BW 64×64 beats dense only above ~90% sparsity."""
        nb80 = int(0.2 * (K // 64) * (N // 64))
        assert bsr_gemm_cost(M, K, N, 64, nb80).total_us > dense_tc.total_us
        nb95 = int(0.05 * (K // 64) * (N // 64))
        assert bsr_gemm_cost(M, K, N, 64, nb95).total_us < dense_tc.total_us

    def test_bw_smaller_blocks_worse_than_32(self, dense_tc):
        """§IV-B: BW needs ≥32×32 blocks for performance."""
        nb8 = int(0.25 * (K // 8) * (N // 8))
        nb32 = int(0.25 * (K // 32) * (N // 32))
        t8 = bsr_gemm_cost(M, K, N, 8, nb8).total_us
        t32 = bsr_gemm_cost(M, K, N, 32, nb32).total_us
        assert t8 > t32


class TestHeadlineShape:
    """The paper's summary comparison (§VII-C): at accuracy-matched
    sparsities, TW ≈2× on tensor cores while EW/VW/BW all slow down."""

    def test_tw_wins_baselines_lose(self, dense_tc, dense_cuda):
        # accuracy-matched sparsity assumptions (paper's regime):
        tw = tw_speedup(0.75, dense_tc)
        ew = dense_cuda.total_us / csr_spmm_cost(
            M, K, N, nnz=int(0.15 * K * N)
        ).total_us  # EW reaches 85% at matched accuracy
        bw = dense_tc.total_us / bsr_gemm_cost(
            M, K, N, 32, int(0.4 * (K // 32) * (N // 32))
        ).total_us  # BW only 60%
        assert tw > 1.5
        assert ew < 1.0
        assert bw < 1.0
