"""Pluggable wave executors: how placed work actually runs (ISSUE 4).

:class:`~repro.runtime.placement.Placement` decides *where* each layer of a
micro-batch wave runs (the device→work mapping,
:meth:`~repro.runtime.placement.Placement.wave_slots`); an :class:`Executor`
decides *how* that mapping executes in wall-time:

- ``inline``   — every wave's layers run sequentially on the calling
  thread.  This is the historical server behaviour, kept as the
  bit-identity oracle the concurrent executors are tested against.
- ``threaded`` — one worker thread per device slot, with a bounded
  in-flight wave window.  Waves bound for different slots (``replicated``)
  run concurrently, and under ``layer_sharded`` successive waves *stream*
  through the shard pipeline — wave ``i+1`` occupies shard 0 while wave
  ``i`` runs on shard 1 — instead of marching lock-step.  NumPy GEMMs
  release the GIL, so on a multi-core host the overlap is real compute
  overlap; paced runs (see below) overlap their simulated device dwell on
  any host.

Executors are resolved through :data:`EXECUTORS` — the same
:class:`~repro.patterns.registry.Registry` class as patterns, engines and
placements — so a new execution strategy (process pool, async, remote) is
a registry entry, not a new dispatch path in the server.

Determinism contract
--------------------
Outputs are **bit-identical across executors**: each wave's layer chain is
a fixed sequence of :func:`~repro.kernels.masked.tw_gemm` calls on the
same operands and plans regardless of which thread runs them, and waves
never share mutable state (the group-operand memos on frozen weights are
value-deterministic, so racing builders write identical entries).  Only
*wall-time* and the measured busy/dwell stats differ.

Pacing (simulated device time)
------------------------------
Every :class:`WaveStep` may carry ``dwell_s``: a minimum wall-time the
step occupies its device slot, derived by the server from the cost model's
predicted device time (``tw_gemm_cost``).  The host GEMM computes the real
(bit-exact) output; the slot then stays busy until the dwell elapses.
Sleeping releases the GIL, so paced slots overlap in *measured* wall-time
exactly as the simulated devices would — which is what turns the modeled
``critical_path_s()`` bound into an observable quantity even on
single-core CI hosts where concurrent compute cannot speed up.

Fault tolerance (ISSUE 6)
-------------------------
A :class:`WaveTask` may carry a
:class:`~repro.runtime.faults.FaultInjector`; both executors consult it
before every step, so a seeded fault schedule replays identically across
executors.  Failures — injected or genuine — are *recorded* on the wave's
:class:`WaveResult` rather than raised, and the hardened ``threaded``
driver additionally runs a **watchdog**: a wave that fails to finish
within ``watchdog_s`` (e.g. a stalled worker) is failed with
:class:`TimeoutError` and its worker is respawned, so ``run`` — and
therefore ``TWModelServer.flush`` — never hangs on a dead thread.  Worker
loops survive arbitrary errors (including non-``Exception``
``BaseException``\\ s): any error in a wave's bookkeeping fails that wave
visibly instead of silently killing the thread.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.formats.tiled import TiledTWMatrix
from repro.kernels.masked import tw_gemm
from repro.patterns.registry import Registry
from repro.runtime.faults import FaultInjector
from repro.runtime.scheduler import ExecutionPlan

__all__ = [
    "EXECUTORS",
    "Executor",
    "InlineExecutor",
    "ThreadedExecutor",
    "WaveStep",
    "WaveTask",
    "WaveResult",
    "available_executors",
    "resolve_executor",
]

EXECUTORS = Registry("executor")


@dataclass(frozen=True)
class WaveStep:
    """One layer of one wave, tagged with the device slot that runs it.

    The placement emits the ``(layer, slot)`` mapping; the server resolves
    the cached format/plan and the optional pacing dwell; the executor
    only ever consumes these finished work items.
    """

    layer: int
    tw: TiledTWMatrix
    plan: ExecutionPlan
    slot: int
    label: str
    #: minimum wall-time this step occupies its slot (0 = unpaced)
    dwell_s: float = 0.0


@dataclass(frozen=True)
class WaveTask:
    """One micro-batch wave: stacked activations + its device-tagged steps.

    ``faults`` optionally carries the server's
    :class:`~repro.runtime.faults.FaultInjector`: attaching the schedule
    to the task (rather than the executor) keeps executors config-free and
    guarantees both executors consult the same schedule at the same
    ``(wave index, layer, slot)`` sites.
    """

    index: int
    batch: np.ndarray
    steps: tuple[WaveStep, ...]
    faults: FaultInjector | None = None


@dataclass
class WaveResult:
    """One executed wave: output + measured per-slot occupancy.

    ``busy_by_label``/``gemms_by_label`` are keyed by the placement's slot
    labels (``name#slot``); ``done_at`` is the ``perf_counter`` timestamp
    the wave finished (request latency = ``done_at - submit time``).

    ``error`` records a step failure instead of raising from the
    executor: the caller (the server) can then account the work that
    *did* complete — including this wave's pre-failure steps, whose
    busy/gemm numbers are already merged in — before surfacing the error.
    """

    output: np.ndarray
    busy_by_label: dict[str, float] = field(default_factory=dict)
    gemms_by_label: dict[str, int] = field(default_factory=dict)
    done_at: float = 0.0
    error: BaseException | None = None


def _execute_steps(
    a: np.ndarray,
    steps,
    result: WaveResult,
    *,
    wave_index: int = 0,
    faults: FaultInjector | None = None,
) -> np.ndarray:
    """Run ``steps`` sequentially on ``a``, timing slot occupancy.

    Shared by both executors so the math — and therefore the output bits —
    cannot diverge between them.  The optional fault injector is consulted
    *inside* the timed region before each GEMM: an injected exception
    fires before the math runs (a failing kernel launch), and an injected
    latency spike shows up in the slot's busy accounting like any real
    slow step would.
    """
    for step in steps:
        t0 = time.perf_counter()
        if faults is not None:
            faults.before_step(wave_index, step.layer, step.slot)
        a = tw_gemm(a, step.tw, plan=step.plan)
        if step.dwell_s > 0.0:
            remaining = step.dwell_s - (time.perf_counter() - t0)
            if remaining > 0.0:
                time.sleep(remaining)
        dt = time.perf_counter() - t0
        result.busy_by_label[step.label] = (
            result.busy_by_label.get(step.label, 0.0) + dt
        )
        result.gemms_by_label[step.label] = (
            result.gemms_by_label.get(step.label, 0) + 1
        )
    return a


class Executor:
    """Interface: run waves, return per-wave results in submission order.

    ``tasks`` may be any iterable — executors pull from it *lazily*, so a
    caller can materialise each wave's (potentially large) batch only
    when the executor is ready to admit it.  A step failure is recorded
    on its :attr:`WaveResult.error` (executors do not raise for it) and
    stops further pulling, leaving the iterable's unconsumed tail
    untouched for the caller to retry; the returned list covers exactly
    the consumed prefix, so completed work is never lost to one bad wave.
    """

    name = "base"

    def run(self, tasks) -> list[WaveResult]:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner for CLI/stats reporting."""
        return self.name


class InlineExecutor(Executor):
    """Sequential execution on the calling thread (the bit-identity oracle).

    Exactly the pre-executor server behaviour: waves run one after
    another, each wave's layers in order.  ``critical_path_s()`` remains a
    *modeled* bound here — wall-time equals the summed busy time.
    """

    name = "inline"

    def run(self, tasks) -> list[WaveResult]:
        results = []
        for task in tasks:  # lazy: one wave materialised at a time
            result = WaveResult(output=task.batch)
            results.append(result)
            try:
                result.output = _execute_steps(
                    task.batch,
                    task.steps,
                    result,
                    wave_index=task.index,
                    faults=task.faults,
                )
            except (KeyboardInterrupt, SystemExit):
                raise  # never swallow an interpreter-level shutdown
            except BaseException as exc:
                result.error = exc
                result.done_at = time.perf_counter()
                break  # stop pulling; the caller keeps the tail queued
            result.done_at = time.perf_counter()
        return results


class ThreadedExecutor(Executor):
    """One worker thread per device slot; waves pipeline through slots.

    Each wave's steps are grouped into contiguous per-worker *segments*
    (``layer_sharded`` → one segment per shard; ``replicated``/``single``
    → one segment).  A wave enters the pipeline at its first segment's
    worker; finishing a segment forwards the intermediate activations to
    the next segment's queue.  The driver admits at most ``inflight``
    waves at once (a bounded work-queue), so ``layer_sharded`` streams
    successive waves through the shards — shard 0 starts wave ``i+1``
    while shard 1 still runs wave ``i`` — without unbounded buffering.

    Waves are pulled from the input iterable **lazily**: the driver
    admits a wave only when the in-flight window has room, so a caller
    feeding a generator keeps at most ``inflight`` materialised batches
    alive at once, and when a wave errors the driver stops pulling — the
    iterable's unconsumed tail is left for the caller (the server keeps
    those requests queued for a retry flush).

    Worker threads are **persistent** on the executor instance (daemon
    threads, spawned on first use of a worker index and reused across
    ``run`` calls), so a serving loop flushing per request does not pay
    thread creation/teardown inside the wall-times it is measuring.

    Parameters
    ----------
    workers:
        Cap on worker threads.  ``None`` (default) = one per device slot
        seen in the submitted waves (threads spawn on first use of a
        slot).  Fewer workers than slots folds slots onto workers
        round-robin (their work serialises).
    inflight:
        Bound on concurrently admitted waves (default ``2 ×`` the workers
        active in the run): enough to keep every pipeline stage busy,
        small enough to bound memory.
    watchdog_s:
        Wall-time bound on any single wave (default 60s).  A wave that has
        not finished this long after launch is failed with
        :class:`TimeoutError`, its worker thread is abandoned and a fresh
        one is respawned on the same queue — so the driver never hangs on
        a stalled or dead worker.  ``None``/``0`` disables the watchdog
        (the historical unbounded wait).
    """

    name = "threaded"

    def __init__(
        self,
        workers: int | None = None,
        inflight: int | None = None,
        watchdog_s: float | None = 60.0,
    ):
        if workers is not None and (not isinstance(workers, int) or workers < 1):
            raise ValueError(f"workers must be a positive int or None, got {workers!r}")
        if inflight is not None and (not isinstance(inflight, int) or inflight < 1):
            raise ValueError(f"inflight must be a positive int or None, got {inflight!r}")
        if watchdog_s is not None:
            watchdog_s = float(watchdog_s)
            if not np.isfinite(watchdog_s) or watchdog_s < 0:
                raise ValueError(
                    f"watchdog_s must be finite and >= 0 (0/None disables), "
                    f"got {watchdog_s!r}"
                )
        self.workers = workers
        self.inflight = inflight
        self.watchdog_s = watchdog_s or None  # 0 → disabled
        self._queues: list[queue.SimpleQueue] = []
        self._threads: list[threading.Thread] = []
        self._spawn_lock = threading.Lock()

    def describe(self) -> str:
        w = self.workers if self.workers is not None else "per-slot"
        return f"threaded(workers={w})"

    def _worker_loop(self, q: queue.SimpleQueue) -> None:
        # stateless: every item carries its run's state, so one persistent
        # thread serves any number of (even interleaved) run() calls
        while True:
            item = q.get()
            try:
                state, ti, seg_idx, a = item
            except (TypeError, ValueError):
                continue  # malformed item: drop it, keep the worker alive
            try:
                state.step(ti, seg_idx, a)
            except BaseException as exc:
                # step() guards the math itself; anything escaping here is
                # a bookkeeping error — fail the wave visibly instead of
                # letting it kill the thread silently (ISSUE 6 satellite)
                try:
                    state.fail(ti, exc)
                except BaseException:
                    pass  # never let error handling kill the worker

    def _ensure_workers(self, n: int) -> None:
        with self._spawn_lock:
            while len(self._threads) < n:
                q: queue.SimpleQueue = queue.SimpleQueue()
                t = threading.Thread(
                    target=self._worker_loop, args=(q,), daemon=True
                )
                self._queues.append(q)
                self._threads.append(t)
                t.start()

    def _respawn(self, worker_idx: int) -> None:
        """Replace an abandoned worker with a fresh thread on the same queue.

        The stalled thread is left to run out as a daemon; any late writes
        it attempts are discarded by the terminal-wave guard in
        :class:`_ThreadedRun`.  Queued items survive on the ``SimpleQueue``,
        so work behind the stall is picked up by the replacement.
        """
        with self._spawn_lock:
            if worker_idx >= len(self._queues):
                return
            t = threading.Thread(
                target=self._worker_loop,
                args=(self._queues[worker_idx],),
                daemon=True,
            )
            self._threads[worker_idx] = t
            t.start()

    def run(self, tasks) -> list[WaveResult]:
        state = _ThreadedRun(self)
        worker_of: dict[int, int] = {}

        def worker_for(slot: int) -> int:
            hit = worker_of.get(slot)
            if hit is not None:
                return hit
            idx = len(worker_of)
            wi = idx if self.workers is None else idx % self.workers
            self._ensure_workers(wi + 1)
            worker_of[slot] = wi
            return wi

        it = iter(tasks)
        while True:  # lazy: pulls the next wave only when admitted
            if state.failed.is_set():
                break  # leave the iterable's tail to the caller
            # the failure check precedes the pull: a pulled task is always
            # launched, so every task the iterable hands out gets a result
            # (a task pulled then dropped would be silently lost work)
            task = next(it, None)
            if task is None:
                break
            segs: list[tuple[int, list[WaveStep]]] = []
            for step in task.steps:
                w = worker_for(step.slot)
                if not segs or segs[-1][0] != w:
                    segs.append((w, []))
                segs[-1][1].append(step)
            n_active = max(1, min(len(worker_of), self.workers or len(worker_of)))
            state.admit(self.inflight or 2 * n_active)
            state.launch(task, segs)
        for ev in state.done:
            # bounded wait: if a wave exceeds the watchdog it is failed
            # (TimeoutError) and its event set by abandon_stalled(), so
            # this loop — and the server's flush() above it — cannot hang
            while not ev.wait(timeout=self.watchdog_s):
                state.abandon_stalled()
        return state.results


class _ThreadedRun:
    """Per-``run`` state shared between the driver and the worker pool.

    Driver-owned lists are append-only, and workers only index entries
    appended before their queue item was put (the queue provides the
    happens-before edge).  A small lock guards the *terminal* flags and
    result merging: once the watchdog abandons a wave, any late writes
    from its (still running) original thread are discarded, so an
    abandoned thread can never corrupt a result the server already read.
    """

    def __init__(self, executor: ThreadedExecutor) -> None:
        self.executor = executor
        self.segments: list[list[tuple[int, list[WaveStep]]]] = []
        self.results: list[WaveResult] = []
        self.done: list[threading.Event] = []
        self.tasks: list[WaveTask] = []
        self.launched_at: list[float] = []
        self.on_worker: list[int | None] = []
        self.terminal: list[bool] = []
        self.failed = threading.Event()
        self._lock = threading.Lock()
        self._window = threading.Condition()
        self._in_flight = 0

    def admit(self, limit: int) -> None:
        """Block until the bounded in-flight wave window has room.

        The wait is watchdog-bounded: a stalled wave holding the window
        open is abandoned (failed + worker respawned) instead of
        deadlocking the driver before it ever reaches the final waits.
        """
        wd = self.executor.watchdog_s
        while True:
            with self._window:
                if self._in_flight < limit:
                    self._in_flight += 1
                    return
                self._window.wait(timeout=wd)
                if self._in_flight < limit:
                    self._in_flight += 1
                    return
            if wd:
                self.abandon_stalled()

    def launch(self, task: WaveTask, segs: list[tuple[int, list[WaveStep]]]) -> None:
        ti = len(self.results)
        self.segments.append(segs)
        self.results.append(WaveResult(output=task.batch))
        self.done.append(threading.Event())
        self.tasks.append(task)
        self.launched_at.append(time.perf_counter())
        self.on_worker.append(segs[0][0] if segs else None)
        self.terminal.append(False)
        if segs:
            self.executor._queues[segs[0][0]].put((self, ti, 0, task.batch))
        else:  # degenerate zero-layer wave: pass the batch through
            self.finish(ti)

    def step(self, ti: int, seg_idx: int, a) -> None:
        """Execute one wave segment on a worker thread; forward or finish.

        Accounting accumulates into a thread-local scratch result and is
        merged under the lock only while the wave is non-terminal — an
        abandoned thread's late merge is dropped on the floor.
        """
        _, steps = self.segments[ti][seg_idx]
        task = self.tasks[ti]
        scratch = WaveResult(output=a)
        error: BaseException | None = None
        try:
            a = _execute_steps(
                a, steps, scratch, wave_index=task.index, faults=task.faults
            )
        except BaseException as exc:  # recorded; the caller decides to raise
            error = exc
        with self._lock:
            if self.terminal[ti]:
                return  # watchdog already failed this wave; discard quietly
            result = self.results[ti]
            for label, busy in scratch.busy_by_label.items():
                result.busy_by_label[label] = (
                    result.busy_by_label.get(label, 0.0) + busy
                )
            for label, n in scratch.gemms_by_label.items():
                result.gemms_by_label[label] = (
                    result.gemms_by_label.get(label, 0) + n
                )
            if error is not None:
                result.error = error
        if error is not None:
            self.finish(ti)
            return
        if seg_idx + 1 < len(self.segments[ti]):
            nxt = self.segments[ti][seg_idx + 1][0]
            with self._lock:
                if self.terminal[ti]:
                    return
                self.on_worker[ti] = nxt
            self.executor._queues[nxt].put((self, ti, seg_idx + 1, a))
        else:
            self.results[ti].output = a
            self.finish(ti)

    def fail(self, ti: int, exc: BaseException) -> None:
        """Record an error that escaped ``step``'s own guard, then finish."""
        with self._lock:
            if self.terminal[ti]:
                return
            self.results[ti].error = exc
        self.finish(ti)

    def finish(self, ti: int) -> None:
        """Mark a wave terminal exactly once (idempotent under the lock)."""
        with self._lock:
            if self.terminal[ti]:
                return
            self.terminal[ti] = True
            if self.results[ti].error is not None:
                self.failed.set()
        self.results[ti].done_at = time.perf_counter()
        self.done[ti].set()
        with self._window:
            self._in_flight -= 1
            self._window.notify()

    def abandon_stalled(self) -> None:
        """Fail every wave older than the watchdog; respawn its worker.

        Called from the driver when a bounded wait times out.  The stalled
        wave gets a :class:`TimeoutError` and is marked terminal *before*
        its event is set, so the original thread — still sleeping inside
        the stalled step — finds ``terminal`` set when it eventually wakes
        and discards its work.
        """
        wd = self.executor.watchdog_s
        if not wd:
            return
        now = time.perf_counter()
        stalled: list[tuple[int, int | None]] = []
        with self._lock:
            for ti in range(len(self.results)):
                if self.terminal[ti] or now - self.launched_at[ti] <= wd:
                    continue
                self.terminal[ti] = True
                self.results[ti].error = TimeoutError(
                    f"wave {self.tasks[ti].index} stalled past the "
                    f"{wd:g}s watchdog on worker {self.on_worker[ti]}"
                )
                self.failed.set()
                stalled.append((ti, self.on_worker[ti]))
        respawned: set[int] = set()
        for ti, worker in stalled:
            self.results[ti].done_at = now
            self.done[ti].set()
            with self._window:
                self._in_flight -= 1
                self._window.notify()
            if worker is not None and worker not in respawned:
                respawned.add(worker)
                self.executor._respawn(worker)


def _reject_options(name: str, options: dict) -> None:
    """Fail loudly on options an executor does not accept.

    The old ``**kw`` factories silently swallowed them —
    ``EXECUTORS.create("inline", workers=3)`` looked like it worked while
    the knob did nothing (ISSUE 6 satellite).
    """
    extra = {k: v for k, v in options.items() if v is not None}
    if extra:
        opts = ", ".join(f"{k}={v!r}" for k, v in sorted(extra.items()))
        raise ValueError(f"executor {name!r} does not accept options: {opts}")


def _make_inline(**options) -> InlineExecutor:
    _reject_options("inline", options)
    return InlineExecutor()


def _make_threaded(
    workers: int | None = None,
    inflight: int | None = None,
    watchdog_s: float | None = 60.0,
    **options,
) -> ThreadedExecutor:
    _reject_options("threaded", options)
    return ThreadedExecutor(workers=workers, inflight=inflight, watchdog_s=watchdog_s)


EXECUTORS.register("inline", _make_inline, aliases=("serial",))
EXECUTORS.register("threaded", _make_threaded, aliases=("threads",))


def available_executors() -> list[str]:
    """Canonical executor names."""
    return EXECUTORS.names()


def resolve_executor(
    executor: "Executor | str | None",
    *,
    workers: int | None = None,
    inflight: int | None = None,
    watchdog_s: float | None = None,
) -> Executor:
    """Normalise an ``executor=`` argument to a ready :class:`Executor`.

    Accepts a ready instance (``workers``/``inflight``/``watchdog_s``
    must then be ``None`` — they belong to the instance), a registry
    name, or ``None`` (inline).  Only the options actually given are
    forwarded, and factories reject options they do not accept —
    ``resolve_executor("inline", workers=3)`` is an error, not a no-op.
    """
    if executor is None:
        executor = "inline"
    if isinstance(executor, Executor):
        if workers is not None or inflight is not None or watchdog_s is not None:
            raise ValueError(
                "pass workers/inflight/watchdog_s to the Executor "
                "constructor, not alongside a ready instance"
            )
        return executor
    if isinstance(executor, str):
        options = {
            k: v
            for k, v in (
                ("workers", workers),
                ("inflight", inflight),
                ("watchdog_s", watchdog_s),
            )
            if v is not None
        }
        return EXECUTORS.create(executor, **options)
    raise TypeError(
        f"executor must be an Executor, name string or None, "
        f"got {type(executor).__name__}"
    )
