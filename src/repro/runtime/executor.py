"""Pluggable wave executors: how placed work actually runs (ISSUE 4).

:class:`~repro.runtime.placement.Placement` decides *where* each layer of a
micro-batch wave runs (the device→work mapping,
:meth:`~repro.runtime.placement.Placement.wave_slots`); an :class:`Executor`
decides *how* that mapping executes in wall-time:

- ``inline``   — every wave's layers run sequentially on the calling
  thread.  This is the historical server behaviour, kept as the
  bit-identity oracle the concurrent executors are tested against.
- ``threaded`` — one worker thread per device slot, with a bounded
  in-flight wave window.  Waves bound for different slots (``replicated``)
  run concurrently, and under ``layer_sharded`` successive waves *stream*
  through the shard pipeline — wave ``i+1`` occupies shard 0 while wave
  ``i`` runs on shard 1 — instead of marching lock-step.  NumPy GEMMs
  release the GIL, so on a multi-core host the overlap is real compute
  overlap; paced runs (see below) overlap their simulated device dwell on
  any host.
- ``process``  — one worker *process* per device slot (ISSUE 7): the
  non-BLAS portions of a wave escape the GIL too, so multi-core hosts see
  *unpaced* measured speedup.  Weights travel through shared-memory
  arenas (:mod:`repro.runtime.arena`) — only small wave descriptors cross
  the pickle boundary — and each worker's BLAS pools are pinned
  (``blas_threads``, default 1) so workers do not oversubscribe cores.
  A killed or crashed worker fails its wave visibly
  (:class:`WorkerCrashed`), is respawned, and the server's retry path
  re-runs the requests.

Oracle contract (standing, ISSUE 4/7)
-------------------------------------
``inline`` **is and remains the bit-identity oracle**: every concurrent
executor — ``threaded``, ``process``, and any future registry entry —
must produce byte-identical outputs to an ``inline`` run of the same
waves, with and without injected faults.  ``inline`` itself must never
grow concurrency or be "optimised"; it is the simplest possible
semantics the others are measured against
(``tests/test_executor.py``/``tests/test_faults.py`` enforce this).

Executors are resolved through :data:`EXECUTORS` — the same
:class:`~repro.patterns.registry.Registry` class as patterns, engines and
placements — so a new execution strategy (process pool, async, remote) is
a registry entry, not a new dispatch path in the server.

Determinism contract
--------------------
Outputs are **bit-identical across executors**: each wave's layer chain is
a fixed sequence of :func:`~repro.kernels.masked.tw_gemm` calls on the
same operands and plans regardless of which thread runs them, and waves
never share mutable state (the group-operand memos on frozen weights are
value-deterministic, so racing builders write identical entries).  Only
*wall-time* and the measured busy/dwell stats differ.

Pacing (simulated device time)
------------------------------
Every :class:`WaveStep` may carry ``dwell_s``: a minimum wall-time the
step occupies its device slot, derived by the server from the cost model's
predicted device time (``tw_gemm_cost``).  The host GEMM computes the real
(bit-exact) output; the slot then stays busy until the dwell elapses.
Sleeping releases the GIL, so paced slots overlap in *measured* wall-time
exactly as the simulated devices would — which is what turns the modeled
``critical_path_s()`` bound into an observable quantity even on
single-core CI hosts where concurrent compute cannot speed up.

Fault tolerance (ISSUE 6)
-------------------------
A :class:`WaveTask` may carry a
:class:`~repro.runtime.faults.FaultInjector`; both executors consult it
before every step, so a seeded fault schedule replays identically across
executors.  Failures — injected or genuine — are *recorded* on the wave's
:class:`WaveResult` rather than raised, and the hardened ``threaded``
driver additionally runs a **watchdog**: a wave that fails to finish
within ``watchdog_s`` (e.g. a stalled worker) is failed with
:class:`TimeoutError` and its worker is respawned, so ``run`` — and
therefore ``TWModelServer.flush`` — never hangs on a dead thread.  Worker
loops survive arbitrary errors (including non-``Exception``
``BaseException``\\ s): any error in a wave's bookkeeping fails that wave
visibly instead of silently killing the thread.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import queue
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.formats.tiled import TiledTWMatrix
from repro.kernels.fusion import EpilogueSpec, apply_epilogue
from repro.kernels.masked import tw_gemm
from repro.patterns.registry import Registry
from repro.runtime.arena import ArenaRef
from repro.runtime.arena import attach as _arena_attach
from repro.runtime.arena import detach_all as _arena_detach_all
from repro.runtime.faults import FaultInjector, WorkerKilled
from repro.runtime.scheduler import ExecutionPlan

__all__ = [
    "EXECUTORS",
    "Executor",
    "InlineExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "WorkerCrashed",
    "WaveStep",
    "WaveTask",
    "WaveResult",
    "available_executors",
    "resolve_executor",
]

EXECUTORS = Registry("executor")


@dataclass(frozen=True)
class WaveStep:
    """One layer of one wave, tagged with the device slot that runs it.

    The placement emits the ``(layer, slot)`` mapping; the server resolves
    the cached format/plan and the optional pacing dwell; the executor
    only ever consumes these finished work items.
    """

    layer: int
    tw: TiledTWMatrix
    plan: ExecutionPlan
    slot: int
    label: str
    #: minimum wall-time this step occupies its slot (0 = unpaced)
    dwell_s: float = 0.0
    #: shared-memory handle for this step's weights (``process`` executor):
    #: when set, workers attach the arena instead of unpickling ``tw``
    arena: ArenaRef | None = None
    #: optional fused non-GEMM consumer applied right after this step's
    #: GEMM, inside the wave task (the step's input activations serve as
    #: the residual stream); its time counts in the slot's busy accounting
    epilogue: EpilogueSpec | None = None


@dataclass(frozen=True)
class WaveTask:
    """One micro-batch wave: stacked activations + its device-tagged steps.

    ``faults`` optionally carries the server's
    :class:`~repro.runtime.faults.FaultInjector`: attaching the schedule
    to the task (rather than the executor) keeps executors config-free and
    guarantees both executors consult the same schedule at the same
    ``(wave index, layer, slot)`` sites.
    """

    index: int
    batch: np.ndarray
    steps: tuple[WaveStep, ...]
    faults: FaultInjector | None = None


@dataclass
class WaveResult:
    """One executed wave: output + measured per-slot occupancy.

    ``busy_by_label``/``gemms_by_label`` are keyed by the placement's slot
    labels (``name#slot``); ``started_at``/``done_at`` are ``perf_counter``
    timestamps bracketing the wave's executor service — ``started_at`` is
    set when the wave is launched into its executor (first GEMM imminent),
    so the server can split request latency (``done_at - submit time``)
    into queue wait (``started_at - submit time``) and wave service
    (``done_at - started_at``).

    ``error`` records a step failure instead of raising from the
    executor: the caller (the server) can then account the work that
    *did* complete — including this wave's pre-failure steps, whose
    busy/gemm numbers are already merged in — before surfacing the error.
    """

    output: np.ndarray
    busy_by_label: dict[str, float] = field(default_factory=dict)
    gemms_by_label: dict[str, int] = field(default_factory=dict)
    started_at: float = 0.0
    done_at: float = 0.0
    error: BaseException | None = None


def _execute_steps(
    a: np.ndarray,
    steps,
    result: WaveResult,
    *,
    wave_index: int = 0,
    faults: FaultInjector | None = None,
) -> np.ndarray:
    """Run ``steps`` sequentially on ``a``, timing slot occupancy.

    Shared by both executors so the math — and therefore the output bits —
    cannot diverge between them.  The optional fault injector is consulted
    *inside* the timed region before each GEMM: an injected exception
    fires before the math runs (a failing kernel launch), and an injected
    latency spike shows up in the slot's busy accounting like any real
    slow step would.
    """
    for step in steps:
        t0 = time.perf_counter()
        if faults is not None:
            faults.before_step(wave_index, step.layer, step.slot)
        y = tw_gemm(a, step.tw, plan=step.plan)
        if step.epilogue is not None:
            y = apply_epilogue(y, step.epilogue, residual=a)
        a = y
        if step.dwell_s > 0.0:
            remaining = step.dwell_s - (time.perf_counter() - t0)
            if remaining > 0.0:
                time.sleep(remaining)
        dt = time.perf_counter() - t0
        result.busy_by_label[step.label] = (
            result.busy_by_label.get(step.label, 0.0) + dt
        )
        result.gemms_by_label[step.label] = (
            result.gemms_by_label.get(step.label, 0) + 1
        )
    return a


class Executor:
    """Interface: run waves, return per-wave results in submission order.

    ``tasks`` may be any iterable — executors pull from it *lazily*, so a
    caller can materialise each wave's (potentially large) batch only
    when the executor is ready to admit it.  A step failure is recorded
    on its :attr:`WaveResult.error` (executors do not raise for it) and
    stops further pulling, leaving the iterable's unconsumed tail
    untouched for the caller to retry; the returned list covers exactly
    the consumed prefix, so completed work is never lost to one bad wave.
    """

    name = "base"
    #: executors whose workers live in other processes set this so the
    #: server places weights in shared-memory arenas at cache-fill time
    needs_arenas = False

    def run(self, tasks) -> list[WaveResult]:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner for CLI/stats reporting."""
        return self.name

    def close(self) -> None:
        """Release executor-owned resources (worker processes, pipes).

        Idempotent; a no-op for executors without out-of-process state
        (``inline``'s calling thread, ``threaded``'s daemon threads die
        with the interpreter).  The server calls this from
        ``TWModelServer.close()``.
        """

    def warm(self) -> None:
        """Bring executor workers fully up before measured work begins.

        A no-op for in-process executors.  ``process`` overrides this to
        spawn every worker and block until each answers a handshake —
        a spawned interpreter takes hundreds of milliseconds to import,
        and without the handshake that boot cost lands inside whichever
        later run first touches the cold worker (its pipe cannot drain
        until the import finishes).  ``TWModelServer.warm()`` calls this.
        """


class InlineExecutor(Executor):
    """Sequential execution on the calling thread (the bit-identity oracle).

    Exactly the pre-executor server behaviour: waves run one after
    another, each wave's layers in order.  ``critical_path_s()`` remains a
    *modeled* bound here — wall-time equals the summed busy time.
    """

    name = "inline"

    def run(self, tasks) -> list[WaveResult]:
        results = []
        for task in tasks:  # lazy: one wave materialised at a time
            result = WaveResult(output=task.batch, started_at=time.perf_counter())
            results.append(result)
            try:
                result.output = _execute_steps(
                    task.batch,
                    task.steps,
                    result,
                    wave_index=task.index,
                    faults=task.faults,
                )
            except (KeyboardInterrupt, SystemExit):
                raise  # never swallow an interpreter-level shutdown
            except BaseException as exc:
                result.error = exc
                result.done_at = time.perf_counter()
                break  # stop pulling; the caller keeps the tail queued
            result.done_at = time.perf_counter()
        return results


class ThreadedExecutor(Executor):
    """One worker thread per device slot; waves pipeline through slots.

    Each wave's steps are grouped into contiguous per-worker *segments*
    (``layer_sharded`` → one segment per shard; ``replicated``/``single``
    → one segment).  A wave enters the pipeline at its first segment's
    worker; finishing a segment forwards the intermediate activations to
    the next segment's queue.  The driver admits at most ``inflight``
    waves at once (a bounded work-queue), so ``layer_sharded`` streams
    successive waves through the shards — shard 0 starts wave ``i+1``
    while shard 1 still runs wave ``i`` — without unbounded buffering.

    Waves are pulled from the input iterable **lazily**: the driver
    admits a wave only when the in-flight window has room, so a caller
    feeding a generator keeps at most ``inflight`` materialised batches
    alive at once, and when a wave errors the driver stops pulling — the
    iterable's unconsumed tail is left for the caller (the server keeps
    those requests queued for a retry flush).

    Worker threads are **persistent** on the executor instance (daemon
    threads, spawned on first use of a worker index and reused across
    ``run`` calls), so a serving loop flushing per request does not pay
    thread creation/teardown inside the wall-times it is measuring.

    Parameters
    ----------
    workers:
        Cap on worker threads.  ``None`` (default) = one per device slot
        seen in the submitted waves (threads spawn on first use of a
        slot).  Fewer workers than slots folds slots onto workers
        round-robin (their work serialises).
    inflight:
        Bound on concurrently admitted waves (default ``2 ×`` the workers
        active in the run): enough to keep every pipeline stage busy,
        small enough to bound memory.
    watchdog_s:
        Wall-time bound on any single wave (default 60s).  A wave that has
        not finished this long after launch is failed with
        :class:`TimeoutError`, its worker thread is abandoned and a fresh
        one is respawned on the same queue — so the driver never hangs on
        a stalled or dead worker.  ``None``/``0`` disables the watchdog
        (the historical unbounded wait).
    """

    name = "threaded"

    def __init__(
        self,
        workers: int | None = None,
        inflight: int | None = None,
        watchdog_s: float | None = 60.0,
    ):
        problems: list[str] = []
        _check_positive_int(problems, "workers", workers)
        _check_positive_int(problems, "inflight", inflight)
        watchdog_s = _check_watchdog(problems, watchdog_s)
        _raise_option_problems(self.name, problems)
        self.workers = workers
        self.inflight = inflight
        self.watchdog_s = watchdog_s or None  # 0 → disabled
        self._queues: list[queue.SimpleQueue] = []
        self._threads: list[threading.Thread] = []
        self._spawn_lock = threading.Lock()

    def describe(self) -> str:
        w = self.workers if self.workers is not None else "per-slot"
        return f"threaded(workers={w})"

    def _worker_loop(self, q: queue.SimpleQueue) -> None:
        # stateless: every item carries its run's state, so one persistent
        # thread serves any number of (even interleaved) run() calls
        while True:
            item = q.get()
            try:
                state, ti, seg_idx, a = item
            except (TypeError, ValueError):
                continue  # malformed item: drop it, keep the worker alive
            try:
                state.step(ti, seg_idx, a)
            except BaseException as exc:
                # step() guards the math itself; anything escaping here is
                # a bookkeeping error — fail the wave visibly instead of
                # letting it kill the thread silently (ISSUE 6 satellite)
                try:
                    state.fail(ti, exc)
                except BaseException:
                    pass  # never let error handling kill the worker

    def _ensure_workers(self, n: int) -> None:
        with self._spawn_lock:
            while len(self._threads) < n:
                q: queue.SimpleQueue = queue.SimpleQueue()
                t = threading.Thread(
                    target=self._worker_loop, args=(q,), daemon=True
                )
                self._queues.append(q)
                self._threads.append(t)
                t.start()

    def _respawn(self, worker_idx: int) -> None:
        """Replace an abandoned worker with a fresh thread on the same queue.

        The stalled thread is left to run out as a daemon; any late writes
        it attempts are discarded by the terminal-wave guard in
        :class:`_ThreadedRun`.  Queued items survive on the ``SimpleQueue``,
        so work behind the stall is picked up by the replacement.
        """
        with self._spawn_lock:
            if worker_idx >= len(self._queues):
                return
            t = threading.Thread(
                target=self._worker_loop,
                args=(self._queues[worker_idx],),
                daemon=True,
            )
            self._threads[worker_idx] = t
            t.start()

    def run(self, tasks) -> list[WaveResult]:
        state = _ThreadedRun(self)
        worker_of: dict[int, int] = {}

        def worker_for(slot: int) -> int:
            hit = worker_of.get(slot)
            if hit is not None:
                return hit
            idx = len(worker_of)
            wi = idx if self.workers is None else idx % self.workers
            self._ensure_workers(wi + 1)
            worker_of[slot] = wi
            return wi

        it = iter(tasks)
        while True:  # lazy: pulls the next wave only when admitted
            if state.failed.is_set():
                break  # leave the iterable's tail to the caller
            # the failure check precedes the pull: a pulled task is always
            # launched, so every task the iterable hands out gets a result
            # (a task pulled then dropped would be silently lost work)
            task = next(it, None)
            if task is None:
                break
            segs: list[tuple[int, list[WaveStep]]] = []
            for step in task.steps:
                w = worker_for(step.slot)
                if not segs or segs[-1][0] != w:
                    segs.append((w, []))
                segs[-1][1].append(step)
            n_active = max(1, min(len(worker_of), self.workers or len(worker_of)))
            state.admit(self.inflight or 2 * n_active)
            state.launch(task, segs)
        for ev in state.done:
            # bounded wait: if a wave exceeds the watchdog it is failed
            # (TimeoutError) and its event set by abandon_stalled(), so
            # this loop — and the server's flush() above it — cannot hang
            while not ev.wait(timeout=self.watchdog_s):
                state.abandon_stalled()
        return state.results


class _ThreadedRun:
    """Per-``run`` state shared between the driver and the worker pool.

    Driver-owned lists are append-only, and workers only index entries
    appended before their queue item was put (the queue provides the
    happens-before edge).  A small lock guards the *terminal* flags and
    result merging: once the watchdog abandons a wave, any late writes
    from its (still running) original thread are discarded, so an
    abandoned thread can never corrupt a result the server already read.
    """

    def __init__(self, executor: ThreadedExecutor) -> None:
        self.executor = executor
        self.segments: list[list[tuple[int, list[WaveStep]]]] = []
        self.results: list[WaveResult] = []
        self.done: list[threading.Event] = []
        self.tasks: list[WaveTask] = []
        self.launched_at: list[float] = []
        self.on_worker: list[int | None] = []
        self.terminal: list[bool] = []
        self.failed = threading.Event()
        self._lock = threading.Lock()
        self._window = threading.Condition()
        self._in_flight = 0

    def admit(self, limit: int) -> None:
        """Block until the bounded in-flight wave window has room.

        The wait is watchdog-bounded: a stalled wave holding the window
        open is abandoned (failed + worker respawned) instead of
        deadlocking the driver before it ever reaches the final waits.
        """
        wd = self.executor.watchdog_s
        while True:
            with self._window:
                if self._in_flight < limit:
                    self._in_flight += 1
                    return
                self._window.wait(timeout=wd)
                if self._in_flight < limit:
                    self._in_flight += 1
                    return
            if wd:
                self.abandon_stalled()

    def launch(self, task: WaveTask, segs: list[tuple[int, list[WaveStep]]]) -> None:
        ti = len(self.results)
        launched = time.perf_counter()
        self.segments.append(segs)
        self.results.append(WaveResult(output=task.batch, started_at=launched))
        self.done.append(threading.Event())
        self.tasks.append(task)
        self.launched_at.append(launched)
        self.on_worker.append(segs[0][0] if segs else None)
        self.terminal.append(False)
        if segs:
            self.executor._queues[segs[0][0]].put((self, ti, 0, task.batch))
        else:  # degenerate zero-layer wave: pass the batch through
            self.finish(ti)

    def step(self, ti: int, seg_idx: int, a) -> None:
        """Execute one wave segment on a worker thread; forward or finish.

        Accounting accumulates into a thread-local scratch result and is
        merged under the lock only while the wave is non-terminal — an
        abandoned thread's late merge is dropped on the floor.
        """
        _, steps = self.segments[ti][seg_idx]
        task = self.tasks[ti]
        scratch = WaveResult(output=a)
        error: BaseException | None = None
        try:
            a = _execute_steps(
                a, steps, scratch, wave_index=task.index, faults=task.faults
            )
        except BaseException as exc:  # recorded; the caller decides to raise
            error = exc
        with self._lock:
            if self.terminal[ti]:
                return  # watchdog already failed this wave; discard quietly
            result = self.results[ti]
            for label, busy in scratch.busy_by_label.items():
                result.busy_by_label[label] = (
                    result.busy_by_label.get(label, 0.0) + busy
                )
            for label, n in scratch.gemms_by_label.items():
                result.gemms_by_label[label] = (
                    result.gemms_by_label.get(label, 0) + n
                )
            if error is not None:
                result.error = error
        if error is not None:
            self.finish(ti)
            return
        if seg_idx + 1 < len(self.segments[ti]):
            nxt = self.segments[ti][seg_idx + 1][0]
            with self._lock:
                if self.terminal[ti]:
                    return
                self.on_worker[ti] = nxt
            self.executor._queues[nxt].put((self, ti, seg_idx + 1, a))
        else:
            self.results[ti].output = a
            self.finish(ti)

    def fail(self, ti: int, exc: BaseException) -> None:
        """Record an error that escaped ``step``'s own guard, then finish."""
        with self._lock:
            if self.terminal[ti]:
                return
            self.results[ti].error = exc
        self.finish(ti)

    def finish(self, ti: int) -> None:
        """Mark a wave terminal exactly once (idempotent under the lock)."""
        with self._lock:
            if self.terminal[ti]:
                return
            self.terminal[ti] = True
            if self.results[ti].error is not None:
                self.failed.set()
        self.results[ti].done_at = time.perf_counter()
        self.done[ti].set()
        with self._window:
            self._in_flight -= 1
            self._window.notify()

    def abandon_stalled(self) -> None:
        """Fail every wave older than the watchdog; respawn its worker.

        Called from the driver when a bounded wait times out.  The stalled
        wave gets a :class:`TimeoutError` and is marked terminal *before*
        its event is set, so the original thread — still sleeping inside
        the stalled step — finds ``terminal`` set when it eventually wakes
        and discards its work.
        """
        wd = self.executor.watchdog_s
        if not wd:
            return
        now = time.perf_counter()
        stalled: list[tuple[int, int | None]] = []
        with self._lock:
            for ti in range(len(self.results)):
                if self.terminal[ti] or now - self.launched_at[ti] <= wd:
                    continue
                self.terminal[ti] = True
                self.results[ti].error = TimeoutError(
                    f"wave {self.tasks[ti].index} stalled past the "
                    f"{wd:g}s watchdog on worker {self.on_worker[ti]}"
                )
                self.failed.set()
                stalled.append((ti, self.on_worker[ti]))
        respawned: set[int] = set()
        for ti, worker in stalled:
            self.results[ti].done_at = now
            self.done[ti].set()
            with self._window:
                self._in_flight -= 1
                self._window.notify()
            if worker is not None and worker not in respawned:
                respawned.add(worker)
                self.executor._respawn(worker)


class WorkerCrashed(RuntimeError):
    """A worker *process* died mid-wave (SIGKILL, segfault, OOM-kill).

    Recorded on the dead worker's wave like any step failure: the server's
    graceful ``flush()`` retries the wave's requests (a crash is transient
    unless a layer-pinned ``kill`` fault keeps reproducing it, in which
    case bisection isolates the poison).  The worker itself is respawned
    with fresh pipes before the driver continues.
    """


#: environment variables that cap the common BLAS/OpenMP thread pools —
#: exported around ``spawn`` so the child's NumPy import sees them
_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


@contextlib.contextmanager
def _pinned_blas_env(n: int | None):
    """Temporarily export BLAS thread caps (the spawn-plumbing pin path)."""
    if not n:
        yield
        return
    saved = {k: os.environ.get(k) for k in _BLAS_ENV_VARS}
    os.environ.update({k: str(n) for k in _BLAS_ENV_VARS})
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _pin_blas_in_worker(n: int | None) -> None:
    """Best-effort in-process pin: ``threadpoolctl`` when available.

    The env-var plumbing above already pinned ``spawn`` children (the
    vars were exported before the child imported NumPy); ``threadpoolctl``
    additionally covers ``fork`` children, whose BLAS pools were sized
    before the fork.  Its absence is fine — it is optional by contract.
    """
    if not n:
        return
    try:
        import threadpoolctl

        threadpoolctl.threadpool_limits(limits=n)
    except Exception:
        pass


def _picklable_error(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round trip, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _run_segment(item):
    """Execute one wave segment inside a worker process.

    ``item`` is the wave descriptor the driver sent: activations, step
    specs (arena refs for weights — the payloads themselves never cross
    the pipe), the wave index and the pickled fault-injector snapshot.
    Returns the reply tuple; never raises except for an injected
    :class:`~repro.runtime.faults.WorkerKilled`, which hard-kills the
    process (simulating a crash that never reports back).
    """
    ti, seg_idx, wave_index, a, specs, faults = item
    scratch = WaveResult(output=a)
    snapshot = faults.snapshot_fires() if faults is not None else None
    error: BaseException | None = None
    try:
        steps = tuple(
            WaveStep(
                layer=layer,
                tw=_arena_attach(ref) if ref is not None else tw,
                plan=plan,
                slot=slot,
                label=label,
                dwell_s=dwell_s,
                epilogue=epilogue,
            )
            for layer, slot, label, dwell_s, ref, tw, plan, epilogue in specs
        )
        a = _execute_steps(
            a, steps, scratch, wave_index=wave_index, faults=faults
        )
    except WorkerKilled:
        # the `kill` fault: die like a segfault would — no reply, no
        # cleanup, the parent finds a corpse via the process sentinel
        os.kill(os.getpid(), signal.SIGKILL)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        error = _picklable_error(exc)
    fires = faults.fires_since(snapshot) if faults is not None else None
    payload = a if error is None else error
    return (
        ti, seg_idx, error is None, payload,
        scratch.busy_by_label, scratch.gemms_by_label, fires,
    )


def _process_worker_main(in_conn, out_conn, blas_threads: int | None) -> None:
    """Worker process entry point: recv segment → execute → send reply.

    Top-level (picklable) so it works under the ``spawn`` start method.
    The loop exits on the ``None`` sentinel or a closed pipe; arena
    mappings are dropped on the way out (the owner, not the worker,
    unlinks segments — a worker can never leak ``/dev/shm`` entries).
    """
    _pin_blas_in_worker(blas_threads)
    try:
        while True:
            try:
                item = in_conn.recv()
            except (EOFError, OSError):
                break
            if item is None:
                break
            try:
                out_conn.send(_run_segment(item))
            except (BrokenPipeError, OSError):
                break  # driver went away; nothing left to report to
    finally:
        _arena_detach_all()


class ProcessExecutor(Executor):
    """One worker process per device slot: real multi-core parallelism.

    The same :class:`WaveTask` protocol and per-slot segment pipelining as
    :class:`ThreadedExecutor`, but each slot's worker is an OS process, so
    the wave's *whole* step — operand lookup, output scatter, Python
    bookkeeping — runs outside the parent's GIL.  Combined with the
    shared-memory weight arenas (the server places compacted formats and
    group operands once; workers map them zero-copy and each wave message
    carries only rows + step specs) this is what turns the paper's
    "independent batched GEMMs" into measured, unpaced speedup on
    multi-core hosts.

    Protocol: each worker owns a pair of one-way pipes and holds **at most
    one outstanding segment** at a time (the driver queues further work
    parent-side), so a send can never deadlock against an unread reply.
    The driver multiplexes replies and process-death sentinels through
    :func:`multiprocessing.connection.wait`.

    Failure semantics route PR 6 through the process boundary: a wave
    stalled past ``watchdog_s`` is failed with :class:`TimeoutError` and
    its worker killed + respawned; a worker that *dies* mid-wave (the
    ``kill`` chaos fault, a real segfault/OOM) fails its wave with
    :class:`WorkerCrashed` and is respawned with fresh pipes — the
    server's retry/bisection then re-runs the requests.  Either way
    ``run`` returns a result for every consumed wave and never hangs.

    Parameters
    ----------
    workers:
        Cap on worker processes (``None`` = one per device slot, spawned
        on first use; fewer workers than slots folds slots round-robin).
    inflight:
        Bound on concurrently admitted waves (default ``2 ×`` active
        workers), exactly as for ``threaded``.
    watchdog_s:
        Per-wave stall bound (default 60s; ``0``/``None`` disables).
    blas_threads:
        BLAS/OpenMP thread cap *per worker* (default ``1``: workers are
        the parallelism, so each GEMM stays single-threaded and ``N``
        workers never oversubscribe ``N`` cores).  ``0`` leaves the pools
        unpinned.  Applied via ``threadpoolctl`` inside the worker when
        available, else via env vars exported around the ``spawn``.
    start_method:
        ``multiprocessing`` start method (default ``"spawn"``: children
        import NumPy under the pinned env and inherit no thread/lock
        state).  ``"fork"`` starts faster but its children keep the
        parent's BLAS pool size unless ``threadpoolctl`` is installed.
    """

    name = "process"
    needs_arenas = True

    def __init__(
        self,
        workers: int | None = None,
        inflight: int | None = None,
        watchdog_s: float | None = 60.0,
        blas_threads: int | None = None,
        start_method: str = "spawn",
    ):
        problems: list[str] = []
        _check_positive_int(problems, "workers", workers)
        _check_positive_int(problems, "inflight", inflight)
        watchdog_s = _check_watchdog(problems, watchdog_s)
        if blas_threads is not None and (
            not isinstance(blas_threads, int) or blas_threads < 0
        ):
            problems.append(
                f"blas_threads must be a non-negative int or None (0 = "
                f"unpinned), got {blas_threads!r}"
            )
        if start_method not in multiprocessing.get_all_start_methods():
            problems.append(
                f"start_method must be one of "
                f"{multiprocessing.get_all_start_methods()}, got {start_method!r}"
            )
        _raise_option_problems(self.name, problems)
        self.workers = workers
        self.inflight = inflight
        self.watchdog_s = watchdog_s or None  # 0 → disabled
        self.blas_threads = 1 if blas_threads is None else blas_threads
        self.start_method = start_method
        self._ctx = None
        self._procs: list = []
        self._to: list = []    # parent → worker send ends
        self._from: list = []  # worker → parent recv ends

    def describe(self) -> str:
        w = self.workers if self.workers is not None else "per-slot"
        pin = self.blas_threads or "unpinned"
        return f"process(workers={w}, blas_threads={pin})"

    # -------------------------------------------------------------- #
    # worker pool management
    # -------------------------------------------------------------- #
    def _context(self):
        if self._ctx is None:
            self._ctx = multiprocessing.get_context(self.start_method)
        return self._ctx

    def _spawn(self, w: int) -> None:
        """(Re)create worker ``w``: fresh process, fresh pipe pair.

        Fresh pipes per (re)spawn are what make crash recovery safe: a
        SIGKILLed worker can leave a pipe mid-message, so the replacement
        never reuses its predecessor's channels (unlike the threaded
        executor, whose queues survive because threads die cleanly).
        """
        ctx = self._context()
        from_worker, to_parent = ctx.Pipe(duplex=False)
        to_worker, to_worker_send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_process_worker_main,
            args=(to_worker, to_parent, self.blas_threads),
            daemon=True,
            name=f"repro-process-worker-{w}",
        )
        with _pinned_blas_env(self.blas_threads):
            proc.start()
        # close the parent's copies of the child ends so EOF propagates
        to_parent.close()
        to_worker.close()
        if w == len(self._procs):
            self._procs.append(proc)
            self._to.append(to_worker_send)
            self._from.append(from_worker)
        else:
            self._procs[w] = proc
            self._to[w] = to_worker_send
            self._from[w] = from_worker

    def _ensure_workers(self, n: int) -> None:
        while len(self._procs) < n:
            self._spawn(len(self._procs))

    def _respawn(self, w: int) -> None:
        """Kill worker ``w`` (if still alive) and replace it wholesale."""
        proc = self._procs[w]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        for conn in (self._to[w], self._from[w]):
            try:
                conn.close()
            except OSError:
                pass
        self._spawn(w)

    def close(self) -> None:
        """Shut the pool down: sentinel, join, escalate, drop the pipes."""
        for w, proc in enumerate(self._procs):
            if proc.is_alive():
                try:
                    self._to[w].send(None)
                except (BrokenPipeError, OSError):
                    pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        for conn in (*self._to, *self._from):
            try:
                conn.close()
            except OSError:
                pass
        self._procs.clear()
        self._to.clear()
        self._from.clear()

    def warm(self) -> None:
        """Spawn the full pool and handshake every worker (blocking).

        Each worker gets a zero-step segment — the smallest message the
        worker protocol admits — and the call returns only once every
        echo is back, i.e. once every interpreter has finished booting.
        Workers that die during the handshake are left for the next
        ``run``'s corpse detection to respawn; lazy spawn still covers
        callers that never warm.  Requires a bounded pool (``workers``
        set); with ``workers=None`` the pool size is discovered per run,
        so there is nothing to pre-boot.
        """
        if self.workers is None:
            return
        self._ensure_workers(self.workers)
        probe = np.empty((0, 0))
        pending = []
        for w in range(self.workers):
            try:
                self._to[w].send((0, 0, 0, probe, (), None))
                pending.append(w)
            except (BrokenPipeError, OSError):
                continue  # corpse: the next run replaces it
        for w in pending:
            try:
                self._from[w].recv()
            except (EOFError, OSError):
                continue

    def run(self, tasks) -> list[WaveResult]:
        # eager spawn: boot the whole pool on first use instead of lazily
        # per slot.  A spawned worker takes ~hundreds of ms to import its
        # interpreter; booting all of them during the first (warm-up) run
        # keeps that cost out of later runs — otherwise the first
        # multi-wave flush would block mid-measurement on a cold worker
        # whose pipe cannot drain until its import finishes.
        if self.workers is not None:
            self._ensure_workers(self.workers)
        return _ProcessRun(self).drive(tasks)


class _ProcessRun:
    """Per-``run`` driver state for :class:`ProcessExecutor`.

    Single-threaded: the driver alone touches this state, multiplexing
    worker replies through ``multiprocessing.connection.wait`` — no locks,
    no races, and a dead worker is an *event* (its sentinel) rather than a
    hung join.  Mirrors :class:`_ThreadedRun`'s contracts: lazy pulling,
    bounded in-flight window, stop-pulling-on-failure, late results for
    terminal (watchdog-failed) waves are discarded.
    """

    def __init__(self, executor: ProcessExecutor) -> None:
        self.ex = executor
        self.tasks: list[WaveTask] = []
        self.results: list[WaveResult] = []
        self.segments: list[list[tuple[int, list[WaveStep]]]] = []
        self.launched_at: list[float] = []
        self.terminal: list[bool] = []
        self.worker_of: dict[int, int] = {}  # slot -> worker
        self.ready: dict[int, deque] = {}    # worker -> queued segments
        self.outstanding: dict[int, tuple[int, int] | None] = {}
        self.in_flight = 0
        self.failed = False

    # -------------------------------------------------------------- #
    def worker_for(self, slot: int) -> int:
        hit = self.worker_of.get(slot)
        if hit is not None:
            return hit
        idx = len(self.worker_of)
        w = idx if self.ex.workers is None else idx % self.ex.workers
        self.ex._ensure_workers(w + 1)
        self.worker_of[slot] = w
        self.ready.setdefault(w, deque())
        self.outstanding.setdefault(w, None)
        return w

    def limit(self) -> int:
        if self.ex.inflight:
            return self.ex.inflight
        return 2 * max(1, len(set(self.worker_of.values())))

    def drive(self, tasks) -> list[WaveResult]:
        it = iter(tasks)
        exhausted = False
        while True:
            while (
                not exhausted and not self.failed
                and self.in_flight < self.limit()
            ):
                task = next(it, None)
                if task is None:
                    exhausted = True
                    break
                self.launch(task)
            if self.in_flight == 0:
                if exhausted or self.failed:
                    return self.results
                continue
            self.poll()

    def launch(self, task: WaveTask) -> None:
        ti = len(self.results)
        segs: list[tuple[int, list[WaveStep]]] = []
        for step in task.steps:
            w = self.worker_for(step.slot)
            if not segs or segs[-1][0] != w:
                segs.append((w, []))
            segs[-1][1].append(step)
        ti_launched = time.perf_counter()
        self.tasks.append(task)
        self.results.append(WaveResult(output=task.batch, started_at=ti_launched))
        self.segments.append(segs)
        self.launched_at.append(ti_launched)
        self.terminal.append(False)
        self.in_flight += 1
        if segs:
            self.enqueue(segs[0][0], ti, 0, task.batch)
        else:  # degenerate zero-layer wave: pass the batch through
            self.finish(ti)

    # -------------------------------------------------------------- #
    def enqueue(self, w: int, ti: int, seg_idx: int, a) -> None:
        self.ready[w].append((ti, seg_idx, a))
        self.pump(w)

    def pump(self, w: int) -> None:
        """Send the worker its next segment iff it is idle (≤1 in pipe)."""
        while self.outstanding[w] is None and self.ready[w]:
            ti, seg_idx, a = self.ready[w].popleft()
            if self.terminal[ti]:
                continue  # watchdog already failed this wave; skip stale work
            task = self.tasks[ti]
            specs = tuple(
                (s.layer, s.slot, s.label, s.dwell_s, s.arena,
                 None if s.arena is not None else s.tw, s.plan, s.epilogue)
                for s in self.segments[ti][seg_idx][1]
            )
            try:
                self.ex._to[w].send(
                    (ti, seg_idx, task.index, a, specs, task.faults)
                )
            except (BrokenPipeError, OSError):
                # found a corpse at send time: requeue the item, replace
                # the worker, and let crash() re-pump on the fresh pipe
                self.ready[w].appendleft((ti, seg_idx, a))
                self.crash(w, None)
                return
            self.outstanding[w] = (ti, seg_idx)

    def finish(self, ti: int) -> None:
        if self.terminal[ti]:
            return
        self.terminal[ti] = True
        self.results[ti].done_at = time.perf_counter()
        if self.results[ti].error is not None:
            self.failed = True
        self.in_flight -= 1

    def crash(self, w: int, error: BaseException | None) -> None:
        """Replace a dead (or condemned) worker; fail its in-flight wave."""
        out = self.outstanding[w]
        self.outstanding[w] = None
        self.ex._respawn(w)
        if out is not None and not self.terminal[out[0]]:
            ti = out[0]
            self.results[ti].error = error or WorkerCrashed(
                f"worker {w} died while running wave {self.tasks[ti].index}"
            )
            self.finish(ti)
        self.pump(w)

    def handle(self, w: int, msg) -> None:
        ti, seg_idx, ok, payload, busy, gemms, fires = msg
        self.outstanding[w] = None
        task = self.tasks[ti]
        if fires is not None and task.faults is not None:
            # fold the worker's fire counts back into the parent injector
            # so `fired_by_kind` observability spans the process boundary
            task.faults.merge_fires(fires)
        if not self.terminal[ti]:
            result = self.results[ti]
            for label, t in busy.items():
                result.busy_by_label[label] = (
                    result.busy_by_label.get(label, 0.0) + t
                )
            for label, n in gemms.items():
                result.gemms_by_label[label] = (
                    result.gemms_by_label.get(label, 0) + n
                )
            if not ok:
                result.error = payload
                self.finish(ti)
            elif seg_idx + 1 < len(self.segments[ti]):
                nxt = self.segments[ti][seg_idx + 1][0]
                self.enqueue(nxt, ti, seg_idx + 1, payload)
            else:
                result.output = payload
                self.finish(ti)
        self.pump(w)

    def poll(self) -> None:
        """One multiplexed wait: replies, corpses, then the watchdog."""
        waitables = []
        owner: dict[object, int] = {}
        for w, out in self.outstanding.items():
            if out is None:
                continue
            conn = self.ex._from[w]
            waitables.append(conn)
            owner[conn] = w
            sentinel = self.ex._procs[w].sentinel
            waitables.append(sentinel)
            owner[sentinel] = w
        if not waitables:
            return
        crashed: list[int] = []
        for ev in multiprocessing.connection.wait(waitables, timeout=0.1):
            w = owner[ev]
            if ev is self.ex._from[w]:
                try:
                    msg = ev.recv()
                except (EOFError, OSError):
                    crashed.append(w)
                    continue
                self.handle(w, msg)
            else:
                crashed.append(w)  # process sentinel fired
        for w in set(crashed):
            if self.ex._procs[w].is_alive():
                continue  # stale sentinel: the reply landed and was handled
            if self.outstanding[w] is None:
                continue  # idle corpse: the next send detects and respawns
            ti = self.outstanding[w][0]
            self.crash(w, WorkerCrashed(
                f"worker {w} died (exitcode "
                f"{self.ex._procs[w].exitcode}) while running wave "
                f"{self.tasks[ti].index}"
            ))
        self.watchdog()

    def watchdog(self) -> None:
        """Fail every wave older than the watchdog; kill stalled workers."""
        wd = self.ex.watchdog_s
        if not wd:
            return
        now = time.perf_counter()
        for ti in range(len(self.results)):
            if self.terminal[ti] or now - self.launched_at[ti] <= wd:
                continue
            err = TimeoutError(
                f"wave {self.tasks[ti].index} stalled past the {wd:g}s "
                f"watchdog"
            )
            stalled_on = next(
                (w for w, out in self.outstanding.items()
                 if out is not None and out[0] == ti),
                None,
            )
            if stalled_on is not None:
                self.crash(stalled_on, err)  # kills + respawns the worker
            else:
                # queued parent-side behind a stalled sibling: fail it in
                # place; pump() discards its stale queue entries
                self.results[ti].error = err
                self.finish(ti)


def _check_positive_int(problems: list[str], name: str, value) -> None:
    if value is not None and (not isinstance(value, int) or value < 1):
        problems.append(f"{name} must be a positive int or None, got {value!r}")


def _check_watchdog(problems: list[str], watchdog_s) -> float | None:
    if watchdog_s is None:
        return None
    try:
        watchdog_s = float(watchdog_s)
    except (TypeError, ValueError):
        problems.append(
            f"watchdog_s must be finite and >= 0 (0/None disables), "
            f"got {watchdog_s!r}"
        )
        return None
    if not np.isfinite(watchdog_s) or watchdog_s < 0:
        problems.append(
            f"watchdog_s must be finite and >= 0 (0/None disables), "
            f"got {watchdog_s!r}"
        )
        return None
    return watchdog_s


def _raise_option_problems(name: str, problems: list[str]) -> None:
    """Raise ONE error naming every invalid option value (ISSUE 7 satellite).

    The old per-option checks raised on the first bad value, so a caller
    fixing ``workers`` would only then learn ``inflight`` was bad too.
    """
    if problems:
        raise ValueError(
            f"invalid options for executor {name!r}: " + "; ".join(problems)
        )


def _reject_options(name: str, options: dict) -> None:
    """Fail loudly on options an executor does not accept.

    The old ``**kw`` factories silently swallowed them —
    ``EXECUTORS.create("inline", workers=3)`` looked like it worked while
    the knob did nothing (ISSUE 6 satellite).
    """
    extra = {k: v for k, v in options.items() if v is not None}
    if extra:
        opts = ", ".join(f"{k}={v!r}" for k, v in sorted(extra.items()))
        raise ValueError(f"executor {name!r} does not accept options: {opts}")


def _make_inline(**options) -> InlineExecutor:
    _reject_options("inline", options)
    return InlineExecutor()


def _make_threaded(
    workers: int | None = None,
    inflight: int | None = None,
    watchdog_s: float | None = 60.0,
    **options,
) -> ThreadedExecutor:
    _reject_options("threaded", options)
    return ThreadedExecutor(workers=workers, inflight=inflight, watchdog_s=watchdog_s)


def _make_process(
    workers: int | None = None,
    inflight: int | None = None,
    watchdog_s: float | None = 60.0,
    blas_threads: int | None = None,
    start_method: str = "spawn",
    **options,
) -> ProcessExecutor:
    _reject_options("process", options)
    return ProcessExecutor(
        workers=workers,
        inflight=inflight,
        watchdog_s=watchdog_s,
        blas_threads=blas_threads,
        start_method=start_method,
    )


EXECUTORS.register("inline", _make_inline, aliases=("serial",))
EXECUTORS.register("threaded", _make_threaded, aliases=("threads",))
EXECUTORS.register("process", _make_process, aliases=("mp",))


def available_executors() -> list[str]:
    """Canonical executor names."""
    return EXECUTORS.names()


def resolve_executor(
    executor: "Executor | str | None",
    *,
    workers: int | None = None,
    inflight: int | None = None,
    watchdog_s: float | None = None,
) -> Executor:
    """Normalise an ``executor=`` argument to a ready :class:`Executor`.

    Accepts a ready instance (``workers``/``inflight``/``watchdog_s``
    must then be ``None`` — they belong to the instance), a registry
    name, or ``None`` (inline).  Only the options actually given are
    forwarded, and factories reject options they do not accept —
    ``resolve_executor("inline", workers=3)`` is an error, not a no-op.
    """
    if executor is None:
        executor = "inline"
    if isinstance(executor, Executor):
        if workers is not None or inflight is not None or watchdog_s is not None:
            raise ValueError(
                "pass workers/inflight/watchdog_s to the Executor "
                "constructor, not alongside a ready instance"
            )
        return executor
    if isinstance(executor, str):
        options = {
            k: v
            for k, v in (
                ("workers", workers),
                ("inflight", inflight),
                ("watchdog_s", watchdog_s),
            )
            if v is not None
        }
        return EXECUTORS.create(executor, **options)
    raise TypeError(
        f"executor must be an Executor instance, a registry name "
        f"({', '.join(available_executors())}) or None, "
        f"got {type(executor).__name__}"
    )
