"""Wire protocol for the network serving front (ROADMAP item 1).

One compact, versioned binary framing for activations over HTTP, plus a
JSON fallback for hand-written requests, plus the minimal HTTP/1.1
message plumbing shared by :mod:`repro.runtime.netserve` and
:mod:`repro.runtime.netclient`.  Everything here is stdlib + numpy.

Binary tensor frame (``application/x-tw-tensor``), version 1::

    offset  size  field
    0       4     magic  b"TWT" + version byte (0x01)
    4       8     dtype  numpy array-protocol string (e.g. "<f8"),
                         ASCII, NUL-padded
    12      4     rows   uint32 little-endian
    16      4     cols   uint32 little-endian
    20      ...   payload: rows*cols elements, row-major (C order)

The frame is strict by design: a decoder rejects anything it cannot
prove consistent (unknown magic/version, non-float dtype, zero shape,
payload length that disagrees with ``rows*cols*itemsize``) with a
:class:`WireError` carrying a machine-readable ``code`` — the server
maps these to HTTP 400 with a structured JSON body, never a traceback.

JSON fallback (``application/json``)::

    {"x": [[1.0, 2.0, ...], ...], "dtype": "float32"}   # dtype optional

Responses mirror the request encoding: a binary request gets a binary
tensor body back on success, a JSON request gets ``{"output": [[...]]}``.
Errors are always JSON: ``{"status": ..., "error": {"code", "message"}}``.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Mapping

import numpy as np

__all__ = [
    "CONTENT_TYPE_JSON",
    "CONTENT_TYPE_TENSOR",
    "HEADER_SIZE",
    "MAGIC",
    "VERSION",
    "ProtocolError",
    "WireError",
    "decode_json_tensor",
    "decode_tensor",
    "encode_json_tensor",
    "encode_tensor",
    "error_body",
    "read_http_message",
]

MAGIC = b"TWT"
VERSION = 1
HEADER_SIZE = 20
CONTENT_TYPE_TENSOR = "application/x-tw-tensor"
CONTENT_TYPE_JSON = "application/json"

#: dtypes a request may carry — activation payloads are always floats
#: (int8 models quantise *weights*; their requests arrive as float32)
_ALLOWED_KINDS = ("f",)

_HEADER = struct.Struct("<3sB8sII")  # magic, version, dtype, rows, cols


class WireError(ValueError):
    """A request body that fails strict validation.

    ``code`` is a stable machine-readable slug (``bad_magic``,
    ``bad_dtype``, ``length_mismatch``, ...) surfaced verbatim in the
    HTTP 400 error body so clients can branch without parsing prose.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ProtocolError(RuntimeError):
    """A malformed HTTP message (framing, not payload)."""


# ---------------------------------------------------------------------- #
# binary tensor frame
# ---------------------------------------------------------------------- #
def encode_tensor(x: np.ndarray) -> bytes:
    """Encode a 2-D float array as a version-1 binary tensor frame."""
    arr = np.ascontiguousarray(np.atleast_2d(np.asarray(x)))
    if arr.ndim != 2:
        raise WireError("bad_shape", f"expected 2-D tensor, got {arr.ndim}-D")
    if arr.dtype.kind not in _ALLOWED_KINDS:
        raise WireError("bad_dtype", f"unsupported dtype {arr.dtype.name}")
    dtype_str = arr.dtype.str.encode("ascii")
    if len(dtype_str) > 8:
        raise WireError("bad_dtype", f"dtype tag too long: {arr.dtype.str!r}")
    header = _HEADER.pack(
        MAGIC, VERSION, dtype_str.ljust(8, b"\0"), arr.shape[0], arr.shape[1]
    )
    return header + arr.tobytes(order="C")


def decode_tensor(body: bytes) -> np.ndarray:
    """Decode and strictly validate a binary tensor frame.

    Raises :class:`WireError` on any inconsistency; never lets numpy
    guess at a shape or silently truncate a payload.
    """
    if len(body) < HEADER_SIZE:
        raise WireError(
            "bad_payload",
            f"body too short for tensor header ({len(body)} < {HEADER_SIZE} bytes)",
        )
    magic, version, dtype_raw, rows, cols = _HEADER.unpack_from(body)
    if magic != MAGIC:
        raise WireError("bad_magic", "not a TW tensor frame (magic mismatch)")
    if version != VERSION:
        raise WireError(
            "unsupported_version",
            f"wire version {version} not supported (server speaks {VERSION})",
        )
    try:
        dtype = np.dtype(dtype_raw.rstrip(b"\0").decode("ascii"))
    except (TypeError, UnicodeDecodeError) as exc:
        raise WireError("bad_dtype", f"unparseable dtype tag: {exc}") from None
    if dtype.kind not in _ALLOWED_KINDS:
        raise WireError("bad_dtype", f"unsupported dtype {dtype.name}")
    if rows < 1 or cols < 1:
        raise WireError("bad_shape", f"degenerate shape ({rows}, {cols})")
    expected = rows * cols * dtype.itemsize
    payload = body[HEADER_SIZE:]
    if len(payload) != expected:
        raise WireError(
            "length_mismatch",
            f"payload is {len(payload)} bytes but shape ({rows}, {cols}) "
            f"{dtype.name} requires {expected}",
        )
    return np.frombuffer(payload, dtype=dtype).reshape(rows, cols)


# ---------------------------------------------------------------------- #
# JSON fallback
# ---------------------------------------------------------------------- #
def encode_json_tensor(x: np.ndarray) -> bytes:
    arr = np.atleast_2d(np.asarray(x))
    return json.dumps({"x": arr.tolist(), "dtype": arr.dtype.name}).encode()


def decode_json_tensor(body: bytes) -> np.ndarray:
    """Decode the ``{"x": [[...]], "dtype": ...}`` fallback, strictly."""
    try:
        doc = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError("bad_json", f"request body is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or "x" not in doc:
        raise WireError("bad_json", 'JSON requests must be {"x": [[...]], ...}')
    dtype_name = doc.get("dtype", "float32")
    try:
        dtype = np.dtype(dtype_name)
    except TypeError:
        raise WireError("bad_dtype", f"unknown dtype {dtype_name!r}") from None
    if dtype.kind not in _ALLOWED_KINDS:
        raise WireError("bad_dtype", f"unsupported dtype {dtype.name}")
    try:
        arr = np.asarray(doc["x"], dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise WireError("bad_payload", f"x is not a numeric matrix: {exc}") from None
    arr = np.atleast_2d(arr)
    if arr.ndim != 2 or arr.shape[0] < 1 or arr.shape[1] < 1:
        raise WireError("bad_shape", f"x must be a non-empty 2-D matrix, got shape {arr.shape}")
    return arr


def error_body(status: str, code: str, message: str) -> bytes:
    """The one JSON error shape every non-2xx response carries."""
    return json.dumps({"status": status, "error": {"code": code, "message": message}}).encode()


# ---------------------------------------------------------------------- #
# HTTP/1.1 message plumbing (shared by server and clients)
# ---------------------------------------------------------------------- #
_MAX_START_LINE = 8 * 1024
_MAX_HEADERS = 64


async def read_http_message(
    reader: asyncio.StreamReader, *, max_body_bytes: int
) -> tuple[str, dict[str, str], bytes] | None:
    """Read one HTTP/1.1 message: ``(start_line, headers, body)``.

    Works for both requests (server side) and responses (client side) —
    the caller interprets the start line.  Bodies are framed by
    ``Content-Length`` only; chunked transfer encoding is refused (both
    ends of this protocol always know their payload size up front).
    Returns ``None`` on a clean EOF before the start line (peer closed
    an idle keep-alive connection).  Raises :class:`ProtocolError` on
    malformed framing and ``asyncio.IncompleteReadError`` on mid-message
    disconnect.
    """
    try:
        start = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ProtocolError(f"start line too long: {exc}") from None
    if not start:
        return None
    start_line = start.decode("latin-1").rstrip("\r\n")
    if len(start_line) > _MAX_START_LINE or not start_line:
        raise ProtocolError("malformed start line")
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise ProtocolError(f"header line too long: {exc}") from None
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise asyncio.IncompleteReadError(partial=raw, expected=2)
        line = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(f"more than {_MAX_HEADERS} headers")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked transfer encoding is not supported")
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_raw!r}") from None
    if length < 0:
        raise ProtocolError(f"bad Content-Length: {length}")
    if length > max_body_bytes:
        raise ProtocolError(
            f"body of {length} bytes exceeds the {max_body_bytes}-byte limit"
        )
    body = await reader.readexactly(length) if length else b""
    return start_line, headers, body


def format_message(
    start_line: str, headers: Mapping[str, str], body: bytes
) -> bytes:
    """Serialise one HTTP/1.1 message with a correct ``Content-Length``."""
    lines = [start_line]
    lines.extend(f"{k}: {v}" for k, v in headers.items())
    lines.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
