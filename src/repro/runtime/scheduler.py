"""Stream-assignment heuristics (paper Fig. 7 step 4).

Batched kernels are distributed across CUDA streams so the hardware
scheduler can overlap their thread blocks.  The heuristic is longest-work-
first round-robin: heavy kernels land on distinct streams, small remainder
kernels fill the gaps — mirroring how the paper "relies on the underlying
scheduler to maximise resource utilisation".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceSpec, V100
from repro.runtime.batching import BatchGroup

__all__ = ["StreamAssignment", "assign_streams"]


@dataclass
class StreamAssignment:
    """Mapping of batch groups to streams."""

    streams: list[list[BatchGroup]] = field(default_factory=list)

    @property
    def n_streams(self) -> int:
        """Streams actually used."""
        return sum(1 for s in self.streams if s)

    def stream_work(self) -> list[int]:
        """Padded multiply-add work per stream (balance diagnostic)."""
        return [sum(g.padded_work() for g in s) for s in self.streams]

    def imbalance(self) -> float:
        """Max/mean work ratio across used streams (1.0 = balanced)."""
        work = [w for w in self.stream_work() if w > 0]
        if not work:
            return 1.0
        mean = sum(work) / len(work)
        return max(work) / mean if mean > 0 else 1.0


def assign_streams(
    groups: list[BatchGroup], device: DeviceSpec = V100, enabled: bool = True
) -> StreamAssignment:
    """Assign batch groups to streams, heaviest first onto the lightest.

    With streams disabled, everything lands on one stream (sequential
    execution — the "Naive Stream" row of Fig. 7).
    """
    if not enabled:
        return StreamAssignment(streams=[list(groups)])
    n = max(1, min(device.max_concurrent_streams, len(groups)))
    streams: list[list[BatchGroup]] = [[] for _ in range(n)]
    load = [0] * n
    for g in sorted(groups, key=lambda g: g.padded_work(), reverse=True):
        target = min(range(n), key=load.__getitem__)
        streams[target].append(g)
        load[target] += g.padded_work()
    return StreamAssignment(streams=streams)
