"""Stream-assignment heuristics (paper Fig. 7 step 4).

Batched kernels are distributed across CUDA streams so the hardware
scheduler can overlap their thread blocks.  The heuristic is longest-work-
first round-robin: heavy kernels land on distinct streams, small remainder
kernels fill the gaps — mirroring how the paper "relies on the underlying
scheduler to maximise resource utilisation".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.formats.tiled import TiledTWMatrix
from repro.gpu.device import DeviceSpec, V100
from repro.gpu.tw_kernel import TWShapeStats
from repro.runtime.batching import BatchGroup, batching_plan

__all__ = ["StreamAssignment", "assign_streams", "ExecutionPlan", "build_execution_plan"]


@dataclass
class StreamAssignment:
    """Mapping of batch groups to streams."""

    streams: list[list[BatchGroup]] = field(default_factory=list)

    @property
    def n_streams(self) -> int:
        """Streams actually used."""
        return sum(1 for s in self.streams if s)

    def stream_work(self) -> list[int]:
        """Padded multiply-add work per stream (balance diagnostic)."""
        return [sum(g.padded_work() for g in s) for s in self.streams]

    def imbalance(self) -> float:
        """Max/mean work ratio across used streams (1.0 = balanced)."""
        work = [w for w in self.stream_work() if w > 0]
        if not work:
            return 1.0
        mean = sum(work) / len(work)
        return max(work) / mean if mean > 0 else 1.0

    def _issue_walk(self):
        """Yield ``(group, stream_index)`` round-robin across streams,
        breadth-first — the single source of truth for issue order."""
        depth = max((len(s) for s in self.streams), default=0)
        for d in range(depth):
            for si, s in enumerate(self.streams):
                if d < len(s):
                    yield s[d], si

    def execution_order(self) -> list[BatchGroup]:
        """Groups in issue order: round-robin across streams, breadth-first.

        This is the order a host thread would issue the batched kernels so
        every stream has work in flight — the functional executor runs
        groups in this order, making the stream schedule observable (each
        position ``i`` issues on stream ``order_streams()[i]``).
        """
        return [g for g, _ in self._issue_walk()]

    def order_streams(self) -> list[int]:
        """Stream index of each :meth:`execution_order` position."""
        return [si for _, si in self._issue_walk()]


def assign_streams(
    groups: list[BatchGroup], device: DeviceSpec = V100, enabled: bool = True
) -> StreamAssignment:
    """Assign batch groups to streams, heaviest first onto the lightest.

    With streams disabled, everything lands on one stream (sequential
    execution — the "Naive Stream" row of Fig. 7).
    """
    if not enabled:
        return StreamAssignment(streams=[list(groups)])
    n = max(1, min(device.max_concurrent_streams, len(groups)))
    streams: list[list[BatchGroup]] = [[] for _ in range(n)]
    load = [0] * n
    for g in sorted(groups, key=lambda g: g.padded_work(), reverse=True):
        target = min(range(n), key=load.__getitem__)
        streams[target].append(g)
        load[target] += g.padded_work()
    return StreamAssignment(streams=streams)


@dataclass(frozen=True)
class ExecutionPlan:
    """One layer's full execution schedule: batch groups + stream mapping.

    The single artifact the serving path caches per weight matrix — built
    once by :func:`build_execution_plan`, then replayed by
    :func:`repro.kernels.masked.tw_gemm` for every request (the paper's
    pipeline: plan → batch → stream → execute).
    """

    groups: tuple[BatchGroup, ...]
    assignment: StreamAssignment

    @property
    def n_kernels(self) -> int:
        """Kernel launches the plan issues (one per batch group)."""
        return len(self.groups)

    def execution_order(self) -> list[BatchGroup]:
        """Issue order over streams (see :meth:`StreamAssignment.execution_order`)."""
        return self.assignment.execution_order()


def build_execution_plan(
    shape: TWShapeStats | TiledTWMatrix,
    device: DeviceSpec = V100,
    *,
    batching: bool = True,
    streams: bool = True,
) -> ExecutionPlan:
    """Plan a layer end to end: width-group its tiles, assign streams."""
    groups = batching_plan(shape, enabled=batching)
    assignment = assign_streams(groups, device, enabled=streams)
    return ExecutionPlan(groups=tuple(groups), assignment=assignment)
