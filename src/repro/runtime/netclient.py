"""Clients for the network serving front (:mod:`repro.runtime.netserve`).

Stdlib-only, mirroring the server's dependency posture:

- :class:`InferClient` — blocking, on :mod:`http.client`; what a test,
  a script, or one loadgen worker thread uses.
- :class:`AsyncInferClient` — one keep-alive connection on asyncio
  streams; what the async load generator multiplexes.
- :class:`HttpLoadTransport` — a pool of async clients exposing the
  ``submit``/``submit_nowait`` surface of :class:`ServingLoop`, so
  :func:`repro.runtime.loadgen.run_open_loop` / ``run_closed_loop``
  drive real sockets unchanged (``--transport http``).

Every call resolves to a :class:`NetResult`.  Its ``latency_s`` is the
*client-observed* wall time (send → response read), so network overhead
is part of any percentile computed from it; the server's own
arrival-anchored timings ride along as ``server_latency_s`` /
``queue_wait_s`` / ``service_s`` from the ``X-*-Ms`` response headers.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Mapping
from urllib.parse import urlsplit

import numpy as np

from repro.runtime import wire

__all__ = ["AsyncInferClient", "HttpLoadTransport", "InferClient", "NetResult"]

#: fallback status when a response carries no X-Status header
_HTTP_STATUS_NAMES = {
    200: "ok",
    400: "invalid",
    429: "rejected",
    500: "failed",
    503: "unavailable",
    504: "expired",
}


@dataclass
class NetResult:
    """One ``/v1/infer`` round trip, terminal either way.

    Duck-type compatible with :class:`ServedRequest` where the load
    generator cares (``status``/``rows``/``latency_s``/``queue_wait_s``/
    ``service_s``), so :func:`loadgen.run_open_loop` summarises HTTP
    results exactly like in-process ones.
    """

    status: str
    http_status: int
    rows: int
    output: np.ndarray | None = None
    request_id: int | None = None
    #: client-observed wall time, network included
    latency_s: float = 0.0
    #: the server's arrival-anchored latency (X-Latency-Ms), if reported
    server_latency_s: float = 0.0
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    error: dict | None = None
    retry_after_s: float | None = None
    headers: dict[str, str] = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _header_ms(headers: Mapping[str, str], name: str) -> float:
    raw = headers.get(name)
    if raw is None:
        return 0.0
    try:
        return float(raw) / 1e3
    except ValueError:
        return 0.0


def parse_infer_response(
    http_status: int,
    headers: Mapping[str, str],
    body: bytes,
    *,
    rows: int,
    client_latency_s: float,
) -> NetResult:
    """Turn one HTTP response (lower-cased header names) into a NetResult."""
    status = headers.get("x-status") or _HTTP_STATUS_NAMES.get(http_status, "error")
    output = None
    error = None
    request_id = None
    if http_status == 200:
        ctype = headers.get("content-type", "").split(";", 1)[0].strip().lower()
        if ctype == wire.CONTENT_TYPE_JSON:
            doc = json.loads(body)
            output = np.asarray(doc["output"], dtype=doc.get("dtype", "float32"))
            request_id = doc.get("request_id")
        else:
            output = wire.decode_tensor(body)
    else:
        try:
            doc = json.loads(body)
            error = doc.get("error")
        except (UnicodeDecodeError, json.JSONDecodeError):
            error = {"code": "unparseable_body", "message": body[:200].decode("latin-1")}
    rid_raw = headers.get("x-request-id")
    if rid_raw is not None:
        try:
            request_id = int(rid_raw)
        except ValueError:
            pass
    retry_raw = headers.get("retry-after")
    retry_after_s = None
    if retry_raw is not None:
        try:
            retry_after_s = float(retry_raw)
        except ValueError:
            pass
    return NetResult(
        status=status,
        http_status=http_status,
        rows=rows,
        output=output,
        request_id=request_id,
        latency_s=client_latency_s,
        server_latency_s=_header_ms(headers, "x-latency-ms"),
        queue_wait_s=_header_ms(headers, "x-queue-wait-ms"),
        service_s=_header_ms(headers, "x-service-ms"),
        error=error,
        retry_after_s=retry_after_s,
        headers=dict(headers),
    )


def _infer_headers(binary: bool, deadline_ms: float | None) -> dict[str, str]:
    headers = {
        "Content-Type": wire.CONTENT_TYPE_TENSOR if binary else wire.CONTENT_TYPE_JSON
    }
    if deadline_ms is not None:
        headers["X-Deadline-Ms"] = "%.3f" % float(deadline_ms)
    return headers


def _encode_request(x: np.ndarray, binary: bool) -> tuple[bytes, int]:
    arr = np.atleast_2d(np.asarray(x))
    body = wire.encode_tensor(arr) if binary else wire.encode_json_tensor(arr)
    return body, int(arr.shape[0])


# ---------------------------------------------------------------------- #
# blocking client
# ---------------------------------------------------------------------- #
class InferClient:
    """Blocking keep-alive client on :mod:`http.client`.

    One instance = one connection = one request at a time; concurrent
    callers each hold their own client (see the loadgen worker threads).
    Transparently reconnects once if the server closed the keep-alive
    socket between requests.
    """

    def __init__(self, host: str, port: int, *, timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self._conn: http.client.HTTPConnection | None = None

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "InferClient":
        host, port = _split_http_url(url)
        return cls(host, port, **kwargs)

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One round trip; returns (status, lower-cased headers, body)."""
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=dict(headers or {}))
                resp = conn.getresponse()
                payload = resp.read()
            except (
                ConnectionError,
                http.client.BadStatusLine,
                http.client.CannotSendRequest,
                http.client.RemoteDisconnected,
            ):
                self.close()
                if attempt:
                    raise
                continue
            resp_headers = {k.lower(): v for k, v in resp.getheaders()}
            if resp_headers.get("connection", "").lower() == "close":
                self.close()
            return resp.status, resp_headers, payload
        raise AssertionError("unreachable")

    def infer(
        self,
        x: np.ndarray,
        *,
        deadline_ms: float | None = None,
        binary: bool = True,
    ) -> NetResult:
        body, rows = _encode_request(x, binary)
        t0 = time.perf_counter()
        status, headers, payload = self.request(
            "POST", "/v1/infer", body, _infer_headers(binary, deadline_ms)
        )
        return parse_infer_response(
            status, headers, payload, rows=rows,
            client_latency_s=time.perf_counter() - t0,
        )

    def healthz(self) -> tuple[int, dict]:
        status, _headers, body = self.request("GET", "/healthz")
        return status, json.loads(body)

    def stats(self) -> dict:
        status, _headers, body = self.request("GET", "/v1/stats")
        if status != 200:
            raise RuntimeError(f"/v1/stats returned HTTP {status}")
        return json.loads(body)

    def wait_ready(self, timeout_s: float = 60.0) -> None:
        """Poll ``/healthz`` until the server reports ready."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                status, _doc = self.healthz()
                if status == 200:
                    return
            except OSError:
                self.close()
            time.sleep(0.05)
        raise TimeoutError(
            f"server at {self.host}:{self.port} not ready within {timeout_s:.1f}s"
        )

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "InferClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# asyncio client
# ---------------------------------------------------------------------- #
class AsyncInferClient:
    """One keep-alive connection on asyncio streams; one request at a time.

    The load transport below pools these — a single instance must not be
    shared by concurrent tasks (HTTP/1.1 has no multiplexing).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 60.0,
        max_body_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.max_body_bytes = int(max_body_bytes)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure_connected(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        return await asyncio.wait_for(
            self._request(method, path, body, headers), self.timeout_s
        )

    async def _request(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None,
    ) -> tuple[int, dict[str, str], bytes]:
        all_headers = {"Host": f"{self.host}:{self.port}"}
        all_headers.update(headers or {})
        message = wire.format_message(f"{method} {path} HTTP/1.1", all_headers, body)
        for attempt in (0, 1):
            await self._ensure_connected()
            assert self._reader is not None and self._writer is not None
            try:
                self._writer.write(message)
                await self._writer.drain()
                response = await wire.read_http_message(
                    self._reader, max_body_bytes=self.max_body_bytes
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                response = None
            if response is None:  # stale keep-alive socket; reconnect once
                await self.close()
                if attempt:
                    raise ConnectionError(
                        f"server at {self.host}:{self.port} closed the connection"
                    )
                continue
            start_line, resp_headers, payload = response
            parts = start_line.split(None, 2)
            if len(parts) < 2 or not parts[0].startswith("HTTP/1"):
                await self.close()
                raise wire.ProtocolError(f"malformed status line: {start_line!r}")
            if resp_headers.get("connection", "").lower() == "close":
                await self.close()
            return int(parts[1]), resp_headers, payload
        raise AssertionError("unreachable")

    async def infer(
        self,
        x: np.ndarray,
        *,
        deadline_ms: float | None = None,
        binary: bool = True,
    ) -> NetResult:
        body, rows = _encode_request(x, binary)
        t0 = time.perf_counter()
        status, headers, payload = await self.request(
            "POST", "/v1/infer", body, _infer_headers(binary, deadline_ms)
        )
        return parse_infer_response(
            status, headers, payload, rows=rows,
            client_latency_s=time.perf_counter() - t0,
        )

    async def get_json(self, path: str) -> tuple[int, dict]:
        status, _headers, body = await self.request("GET", path)
        return status, json.loads(body)

    async def close(self) -> None:
        writer = self._writer
        self._reader = self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncInferClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


# ---------------------------------------------------------------------- #
# loadgen transport
# ---------------------------------------------------------------------- #
class HttpLoadTransport:
    """A :class:`ServingLoop`-shaped submit surface over real sockets.

    Holds ``connections`` keep-alive :class:`AsyncInferClient`\\ s in an
    asyncio pool; each ``submit_nowait`` checks one out for the round
    trip, so up to ``connections`` requests are on the wire at once and
    the rest queue client-side — the same back-pressure shape a real
    remote caller population has.

    ::

        async with HttpLoadTransport.from_url(url) as transport:
            result = run_open_loop(transport, make_request, rate=100, ...)
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connections: int = 16,
        binary: bool = True,
        timeout_s: float = 60.0,
    ) -> None:
        if connections < 1:
            raise ValueError("connections must be positive")
        self.host = host
        self.port = int(port)
        self.connections = int(connections)
        self.binary = binary
        self.timeout_s = float(timeout_s)
        self._pool: asyncio.Queue[AsyncInferClient] | None = None
        self._clients: list[AsyncInferClient] = []

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "HttpLoadTransport":
        host, port = _split_http_url(url)
        return cls(host, port, **kwargs)

    async def start(self) -> None:
        if self._pool is not None:
            return
        self._pool = asyncio.Queue()
        for _ in range(self.connections):
            client = AsyncInferClient(self.host, self.port, timeout_s=self.timeout_s)
            self._clients.append(client)
            self._pool.put_nowait(client)

    def submit_nowait(
        self,
        x: np.ndarray,
        *,
        deadline_s: float | None = None,
        enqueued_at: float | None = None,
    ) -> "asyncio.Task[NetResult]":
        """Fire one request; the returned task resolves to a NetResult.

        ``enqueued_at`` is accepted for signature parity with
        :class:`ServingLoop` but ignored — over the network the *server*
        stamps arrival, which is the honest anchor.
        """
        if self._pool is None:
            raise RuntimeError("HttpLoadTransport not started (use 'async with')")
        return asyncio.get_running_loop().create_task(self._one(x, deadline_s))

    async def submit(
        self, x: np.ndarray, *, deadline_s: float | None = None
    ) -> NetResult:
        return await self.submit_nowait(x, deadline_s=deadline_s)

    async def _one(self, x: np.ndarray, deadline_s: float | None) -> NetResult:
        assert self._pool is not None
        client = await self._pool.get()
        try:
            return await client.infer(
                x,
                deadline_ms=None if deadline_s is None else deadline_s * 1e3,
                binary=self.binary,
            )
        finally:
            self._pool.put_nowait(client)

    async def stats(self) -> dict:
        assert self._pool is not None
        client = await self._pool.get()
        try:
            status, doc = await client.get_json("/v1/stats")
            if status != 200:
                raise RuntimeError(f"/v1/stats returned HTTP {status}")
            return doc
        finally:
            self._pool.put_nowait(client)

    async def close(self) -> None:
        for client in self._clients:
            await client.close()
        self._clients.clear()
        self._pool = None

    async def __aenter__(self) -> "HttpLoadTransport":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


def _split_http_url(url: str) -> tuple[str, int]:
    """``http://host:port[/...]`` → ``(host, port)``; http only."""
    parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
    if parts.scheme != "http":
        raise ValueError(f"only http:// URLs are supported, got {url!r}")
    if not parts.hostname:
        raise ValueError(f"no host in URL {url!r}")
    return parts.hostname, parts.port or 80
