"""Async serving ingress: continuous batching over :class:`TWModelServer`.

The server's ``submit``/``flush`` API is lock-step — callers queue a
batch, drain it, and the executor idles until the next drain.  This
module adds the traffic layer (ROADMAP item 1): an asyncio
:class:`ServingLoop` whose background *admission loop* assembles the
next wave from whatever is backlogged the moment the executor frees up,
so a steady request stream keeps waves full with no offline batching.

Design notes (why this is simple *and* bit-identical):

- **One admission path, zero locks on the server.**  The event-loop
  thread owns the ingress backlog; each admission iteration takes at
  most one wave's worth of requests (never splitting a request),
  ``submit``\\ s them, and runs ``server.flush()`` on a dedicated
  single-thread pool via ``run_in_executor``.  The server is therefore
  only ever touched serially — all of its deadline assembly, retry,
  poison-isolation, and watchdog contracts apply unchanged.  Requests
  arriving *while* a flush runs land in the backlog and join the next
  wave: that is the continuous-batching property.
- **Bit-identity for free.**  TW GEMMs are row-independent, so how
  requests group into waves cannot change any request's output bits;
  continuous admission produces exactly the bits of a sequential drain
  of the same stream on the ``inline`` executor — including under
  injected faults, because retry/bisection runs inside the same
  ``flush`` it always did.
- **Latency honesty.**  Each request's arrival is stamped at
  ``submit_nowait`` time and passed to ``server.submit(...,
  enqueued_at=)``, so reported ``latency_s`` includes ingress backlog
  wait and deadline budgets start ticking at arrival, not admission.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.runtime.server import ServedRequest, TWModelServer

__all__ = ["IngressClosed", "ServingLoop"]

log = logging.getLogger("repro.ingress")


class IngressClosed(RuntimeError):
    """Submitting to a :class:`ServingLoop` that is closing or closed."""


@dataclass
class _Arrival:
    """One backlogged request: payload + arrival stamp + caller's future."""

    x: np.ndarray
    deadline_s: float | None
    enqueued_at: float
    future: asyncio.Future


class ServingLoop:
    """Continuous-batching async ingress over one :class:`TWModelServer`.

    ::

        loop = model.serve_async(executor="threaded", devices=2)
        async with loop:
            served = await loop.submit(x, deadline_s=0.05)

    ``submit`` resolves once the request reaches a *terminal*
    :class:`ServedRequest` (``ok``/``failed``/``shed``/``expired``) —
    the server's graceful-flush guarantee, surfaced per request instead
    of per drain.  ``submit_nowait`` returns the future without
    awaiting, which is what an open-loop load generator wants.

    Parameters
    ----------
    server:
        A configured :class:`TWModelServer` (layers added, ideally
        ``warm()``\\ ed).  The loop never reconfigures it.
    max_wave_rows:
        Admission cap per iteration; defaults to the server's own
        ``config.max_wave_rows``.  A smaller value admits more, smaller
        waves (lower latency, less batching amortisation).
    stats_interval_s:
        When > 0, a background task emits a one-line stats summary every
        interval through ``stats_log`` (default: this module's logger).
    owns_server:
        When true, :meth:`close` also closes the server — set by
        :meth:`CompiledTWModel.serve_async`, which builds the server
        itself.
    """

    def __init__(
        self,
        server: TWModelServer,
        *,
        max_wave_rows: int | None = None,
        stats_interval_s: float = 0.0,
        stats_log: Callable[[str], None] | None = None,
        owns_server: bool = False,
    ) -> None:
        if max_wave_rows is not None and max_wave_rows < 1:
            raise ValueError("max_wave_rows must be positive")
        self.server = server
        self.max_wave_rows = int(max_wave_rows or server.config.max_wave_rows)
        self.stats_interval_s = float(stats_interval_s)
        self._stats_log = stats_log if stats_log is not None else log.info
        self._owns_server = owns_server
        self._backlog: deque[_Arrival] = deque()
        self._arrived = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        #: rid → future for requests admitted to the server but not yet
        #: terminal; persists across flushes because a ``shed_oldest``
        #: victim only surfaces from a *later* flush
        self._waiting: dict[int, asyncio.Future] = {}
        self._unresolved = 0
        self._waves_admitted = 0
        self._admission_task: asyncio.Task | None = None
        self._stats_task: asyncio.Task | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._closing = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        x: np.ndarray,
        *,
        deadline_s: float | None = None,
        enqueued_at: float | None = None,
    ) -> ServedRequest:
        """Stream one request in; await its terminal :class:`ServedRequest`."""
        return await self.submit_nowait(x, deadline_s=deadline_s, enqueued_at=enqueued_at)

    def submit_nowait(
        self,
        x: np.ndarray,
        *,
        deadline_s: float | None = None,
        enqueued_at: float | None = None,
    ) -> "asyncio.Future[ServedRequest]":
        """Enqueue one request; return its future without awaiting it.

        Must be called from a running event loop (it is not thread-safe —
        cross-thread producers should use
        ``loop.call_soon_threadsafe``).  The arrival timestamp defaults
        to *now* but a front that observed the request earlier (e.g. the
        HTTP server, at socket accept) may pass ``enqueued_at`` — a past
        ``time.perf_counter()`` stamp — so reported latency and deadline
        budgets start at true arrival, not at parse time.
        """
        if self._closing or self._closed:
            raise IngressClosed("ServingLoop is closed to new submissions")
        now = time.perf_counter()
        if enqueued_at is None:
            enqueued_at = now
        elif enqueued_at > now:
            raise ValueError("enqueued_at must not be in the future")
        self._ensure_started()
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._backlog.append(
            _Arrival(
                x=np.atleast_2d(np.asarray(x)),
                deadline_s=deadline_s,
                enqueued_at=enqueued_at,
                future=fut,
            )
        )
        self._unresolved += 1
        self._idle.clear()
        fut.add_done_callback(self._on_resolved)
        self._arrived.set()
        return fut

    def _on_resolved(self, fut: asyncio.Future) -> None:
        self._unresolved -= 1
        if self._unresolved <= 0:
            self._idle.set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the admission loop (idempotent; auto-called by submit)."""
        self._ensure_started()

    def _ensure_started(self) -> None:
        if self._admission_task is not None:
            return
        loop = asyncio.get_running_loop()
        # one thread: flushes must serialise — the server is not
        # thread-safe and ordering is part of the bit-identity contract
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-ingress"
        )
        self._admission_task = loop.create_task(
            self._admission_loop(), name="repro-ingress-admission"
        )
        if self.stats_interval_s > 0:
            self._stats_task = loop.create_task(
                self._stats_loop(), name="repro-ingress-stats"
            )

    async def drain(self, *, timeout_s: float | None = None) -> bool:
        """Wait until every accepted request has reached a terminal result.

        With ``timeout_s`` the wait is bounded: returns ``True`` once
        idle, ``False`` if requests are still in flight when the budget
        expires (so graceful shutdown can stop waiting and hand the
        stragglers to :meth:`close`, instead of hanging past the
        server's own watchdog).
        """
        if timeout_s is None:
            await self._idle.wait()
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout_s)
            return True
        except asyncio.TimeoutError:
            return False

    async def close(self) -> None:
        """Drain the backlog, stop the loop, release the flush thread.

        Every request accepted before ``close()`` still reaches its
        terminal status (the admission loop finishes the backlog before
        exiting); submissions after are refused with
        :class:`IngressClosed`.  Closes the server too when this loop
        owns it (``serve_async``).  Idempotent.
        """
        if self._closed:
            return
        self._closing = True
        self._arrived.set()  # wake the admission loop so it can exit
        if self._admission_task is not None:
            # a crashed admission loop already routed its error to every
            # outstanding future; close() itself stays quiet about it
            with contextlib.suppress(Exception):
                await self._admission_task
        if self._stats_task is not None:
            self._stats_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._stats_task
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._closed = True
        self._fail_all(IngressClosed("ServingLoop closed before completion"))
        if self._owns_server:
            self.server.close()

    async def __aenter__(self) -> "ServingLoop":
        self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # admission loop
    # ------------------------------------------------------------------ #
    async def _admission_loop(self) -> None:
        try:
            while True:
                while not self._backlog:
                    if self._closing:
                        return
                    self._arrived.clear()
                    await self._arrived.wait()
                await self._run_wave(self._take_wave())
        except asyncio.CancelledError:
            self._fail_all(IngressClosed("ServingLoop admission cancelled"))
            raise
        except BaseException as exc:  # pragma: no cover - defensive
            log.exception("ingress admission loop crashed")
            self._fail_all(exc)
            raise

    def _take_wave(self) -> list[_Arrival]:
        """Pop up to one wave of requests (≥1; requests never split)."""
        wave = [self._backlog.popleft()]
        rows = wave[0].x.shape[0]
        while self._backlog and rows + self._backlog[0].x.shape[0] <= self.max_wave_rows:
            nxt = self._backlog.popleft()
            wave.append(nxt)
            rows += nxt.x.shape[0]
        return wave

    async def _run_wave(self, wave: list[_Arrival]) -> None:
        """Admit one wave to the server and flush it off the event loop."""
        for item in wave:
            if item.future.done():  # caller cancelled while backlogged
                continue
            try:
                rid = self.server.submit(
                    item.x,
                    deadline_s=item.deadline_s,
                    enqueued_at=item.enqueued_at,
                )
            except BaseException as exc:  # QueueFullError, bad shape, ...
                item.future.set_exception(exc)
                continue
            self._waiting[rid] = item.future
        if not self._waiting:
            return
        served = await asyncio.get_running_loop().run_in_executor(
            self._pool, self.server.flush
        )
        self._waves_admitted += 1
        for req in served:
            fut = self._waiting.pop(req.request_id, None)
            if fut is not None and not fut.done():
                fut.set_result(req)

    def _fail_all(self, exc: BaseException) -> None:
        """Resolve every outstanding future exceptionally (loop teardown)."""
        for item in list(self._backlog):
            if not item.future.done():
                item.future.set_exception(exc)
        self._backlog.clear()
        for fut in list(self._waiting.values()):
            if not fut.done():
                fut.set_exception(exc)
        self._waiting.clear()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats_record(self) -> dict:
        """Server's :meth:`~TWModelServer.stats_record` + ingress context."""
        rec = self.server.stats_record()
        rec["ingress"] = {
            "backlog_requests": len(self._backlog),
            "backlog_rows": int(sum(a.x.shape[0] for a in self._backlog)),
            "inflight_requests": len(self._waiting),
            "unresolved_requests": self._unresolved,
            "waves_admitted": self._waves_admitted,
            "max_wave_rows": self.max_wave_rows,
            "closed": self._closed,
        }
        return rec

    async def _stats_loop(self) -> None:
        while True:
            await asyncio.sleep(self.stats_interval_s)
            self._emit_stats_line()

    def _emit_stats_line(self) -> None:
        rec = self.stats_record()
        self._stats_log(
            "ingress: backlog=%d inflight=%d served=%d waves=%d "
            "occupancy=%.2f p99=%.1fms busy=%.0f%%"
            % (
                rec["ingress"]["backlog_requests"],
                rec["ingress"]["inflight_requests"],
                rec["requests"],
                rec["waves"]["count"],
                rec["waves"]["occupancy"],
                rec["latency_ms"]["p99"],
                max(rec["device_busy_pct"].values(), default=0.0),
            )
        )
