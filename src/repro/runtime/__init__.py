"""End-to-end inference runtime on the simulator.

Combines per-layer GEMM pricing with the non-GEMM kernels, transpose
placement and fusion decisions of paper §VI, producing the Fig. 15
end-to-end breakdowns and the Fig. 14 accuracy-latency trade-off points.

- :mod:`repro.runtime.engine` — the :class:`InferenceEngine` orchestrator;
- :mod:`repro.runtime.layout` — transpose-kernel placement and cost;
- :mod:`repro.runtime.batching` — cross-tile batching plans;
- :mod:`repro.runtime.scheduler` — stream-assignment heuristics.
"""

from repro.runtime.engine import EndToEndReport, EngineConfig, InferenceEngine, LayerPlan
from repro.runtime.layout import TransposePlan, transpose_cost
from repro.runtime.batching import BatchGroup, batching_plan
from repro.runtime.scheduler import StreamAssignment, assign_streams

__all__ = [
    "InferenceEngine",
    "EngineConfig",
    "LayerPlan",
    "EndToEndReport",
    "TransposePlan",
    "transpose_cost",
    "BatchGroup",
    "batching_plan",
    "StreamAssignment",
    "assign_streams",
]
