"""End-to-end inference runtime on the simulator.

Combines per-layer GEMM pricing with the non-GEMM kernels, transpose
placement and fusion decisions of paper §VI, producing the Fig. 15
end-to-end breakdowns and the Fig. 14 accuracy-latency trade-off points.

Execution pipeline (paper Fig. 7, steps 3–4)
--------------------------------------------
One plan representation flows through the whole stack —
**plan → batch → stream → execute**:

1. :func:`~repro.runtime.batching.batching_plan` groups a layer's
   equal-width tiles into :class:`~repro.runtime.batching.BatchGroup`
   batched kernels;
2. :func:`~repro.runtime.scheduler.assign_streams` spreads the groups over
   concurrent streams (:class:`~repro.runtime.scheduler.StreamAssignment`,
   whose ``execution_order`` is the observable issue order);
3. :func:`~repro.runtime.scheduler.build_execution_plan` bundles both into
   a cacheable :class:`~repro.runtime.scheduler.ExecutionPlan`;
4. the *same* plan is priced by the cost model
   (:func:`repro.gpu.tw_kernel.tw_gemm_cost`) and executed functionally by
   :func:`repro.kernels.masked.tw_gemm`.

Modules
-------
- :mod:`repro.runtime.engine` — the :class:`InferenceEngine` orchestrator;
- :mod:`repro.runtime.layout` — transpose-kernel placement and cost;
- :mod:`repro.runtime.batching` — cross-tile batching plans;
- :mod:`repro.runtime.scheduler` — stream assignment + execution plans;
- :mod:`repro.runtime.placement` — multi-device placement policies
  (``single`` / ``replicated`` / ``layer_sharded``);
- :mod:`repro.runtime.executor` — pluggable wave executors
  (``inline`` / ``threaded`` / ``process``): how the placement's
  device→work mapping actually runs in wall-time (bit-identical outputs
  in every case; ``inline`` is the standing oracle);
- :mod:`repro.runtime.arena` — shared-memory weight arenas for the
  ``process`` executor: compacted formats and plan operands published to
  ``/dev/shm`` once per cache fill, mapped zero-copy by worker processes,
  refcounted and unlinked deterministically on server close;
- :mod:`repro.runtime.faults` — seeded, deterministic fault injection
  (``exception`` / ``latency`` / ``stall`` / ``kill``) keyed by
  ``(wave, layer, slot)`` sites, for chaos testing the serving path;
- :mod:`repro.runtime.server` — :class:`TWModelServer`, the serving layer
  that caches formats/plans per weight fingerprint, micro-batches
  concurrent requests into one GEMM per layer, dispatches waves across a
  :class:`~repro.runtime.placement.Placement`'s devices through the
  configured :class:`~repro.runtime.executor.Executor`, and degrades
  gracefully under faults and overload (retry + poison isolation,
  deadline shedding, queue backpressure);
- :mod:`repro.runtime.ingress` — :class:`ServingLoop`, the asyncio
  traffic layer: continuous batching over a live request stream (the
  admission loop assembles the next wave from whatever is backlogged
  the moment the executor frees up), bit-identical to a sequential
  drain of the same stream;
- :mod:`repro.runtime.loadgen` — seeded open/closed-loop load
  generation (Poisson / fixed-rate arrivals) with latency percentiles,
  driving :class:`ServingLoop` for benchmarks and the CLI;
- :mod:`repro.runtime.wire` — the versioned binary tensor frame +
  JSON fallback and the shared HTTP/1.1 framing helpers;
- :mod:`repro.runtime.netserve` — :class:`NetServer`, the dependency-free
  asyncio HTTP front door over :class:`ServingLoop` (``POST /v1/infer``
  with deadline propagation and status→HTTP mapping, ``/healthz``,
  ``/v1/stats``, graceful SIGTERM drain);
- :mod:`repro.runtime.netclient` — stdlib blocking + asyncio clients and
  the pooled :class:`HttpLoadTransport` that lets the load generator
  drive real sockets.
"""

from repro.runtime.arena import ArenaRef, leaked_segments
from repro.runtime.engine import EndToEndReport, EngineConfig, InferenceEngine, LayerPlan
from repro.runtime.executor import (
    EXECUTORS,
    Executor,
    InlineExecutor,
    ProcessExecutor,
    ThreadedExecutor,
    WorkerCrashed,
    available_executors,
    resolve_executor,
)
from repro.runtime.faults import (
    FAULTS,
    FaultInjector,
    FaultRule,
    InjectedFault,
    available_faults,
    resolve_faults,
)
from repro.runtime.ingress import IngressClosed, ServingLoop
from repro.runtime.layout import TransposePlan, transpose_cost
from repro.runtime.netclient import (
    AsyncInferClient,
    HttpLoadTransport,
    InferClient,
    NetResult,
)
from repro.runtime.netserve import NetServer
from repro.runtime.wire import WireError
from repro.runtime.batching import BatchGroup, batching_plan
from repro.runtime.placement import PLACEMENTS, Placement, resolve_placement
from repro.runtime.scheduler import (
    ExecutionPlan,
    StreamAssignment,
    assign_streams,
    build_execution_plan,
)
from repro.runtime.server import (
    QueueFullError,
    ServedRequest,
    ServerConfig,
    ServerStats,
    TWModelServer,
    weight_fingerprint,
)

__all__ = [
    "Placement",
    "PLACEMENTS",
    "resolve_placement",
    "Executor",
    "EXECUTORS",
    "InlineExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "WorkerCrashed",
    "ArenaRef",
    "leaked_segments",
    "available_executors",
    "resolve_executor",
    "FAULTS",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "available_faults",
    "resolve_faults",
    "QueueFullError",
    "InferenceEngine",
    "EngineConfig",
    "LayerPlan",
    "EndToEndReport",
    "TransposePlan",
    "transpose_cost",
    "BatchGroup",
    "batching_plan",
    "StreamAssignment",
    "assign_streams",
    "ExecutionPlan",
    "build_execution_plan",
    "TWModelServer",
    "ServerConfig",
    "ServerStats",
    "ServedRequest",
    "ServingLoop",
    "IngressClosed",
    "NetServer",
    "InferClient",
    "AsyncInferClient",
    "HttpLoadTransport",
    "NetResult",
    "WireError",
    "weight_fingerprint",
]
