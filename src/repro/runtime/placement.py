"""Placement policies: mapping a compiled layer stack onto devices.

The ROADMAP's multi-device open item: the format/plan caches are keyed by
device, so spreading a model over several :class:`~repro.gpu.device.DeviceSpec`
instances is *cache composition*, not cache surgery.  A :class:`Placement`
says which device owns which work:

- ``single``        — everything on one device (the historical behaviour);
- ``replicated``    — the full layer stack is planned on every device and
  micro-batch *waves* round-robin across the replicas (throughput scaling);
- ``layer_sharded`` — layers are split contiguously across the devices and
  each wave flows shard to shard (model parallelism: each device only
  holds its shard's formats and plans).

Placements are resolved through :data:`PLACEMENTS` (same registry class as
patterns/engines) so new policies — e.g. width-sharded tiles — are registry
entries, not new dispatch paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec, V100
from repro.patterns.registry import Registry

__all__ = ["Placement", "PLACEMENTS", "resolve_placement"]

PLACEMENTS = Registry("placement")
for _kind in ("single", "replicated", "layer_sharded"):
    PLACEMENTS.register(_kind, (lambda k: lambda **kw: Placement(k, **kw))(_kind))


@dataclass(frozen=True)
class Placement:
    """One placement policy over an ordered device list.

    ``devices`` order is meaningful: ``single`` uses the first entry,
    ``layer_sharded`` assigns shard 0 to the first, and so on.  Frozen and
    hashable, so a placement can sit inside cache keys and ``ServerConfig``.
    """

    kind: str = "single"
    devices: tuple[DeviceSpec, ...] = (V100,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", PLACEMENTS.canonical(self.kind))
        devices = tuple(self.devices)
        if not devices:
            raise ValueError("placement needs at least one device")
        for d in devices:
            if not isinstance(d, DeviceSpec):
                raise TypeError(f"devices must be DeviceSpec, got {type(d).__name__}")
        if self.kind == "single" and len(devices) != 1:
            raise ValueError(
                f"'single' placement takes exactly one device, got {len(devices)}"
            )
        object.__setattr__(self, "devices", devices)

    @property
    def n_devices(self) -> int:
        """Devices participating in this placement."""
        return len(self.devices)

    @property
    def primary(self) -> DeviceSpec:
        """The device that anchors single-device work (first in the list)."""
        return self.devices[0]

    def layer_shards(self, n_layers: int) -> list[int]:
        """Device index owning each layer (contiguous balanced split).

        ``single`` and ``replicated`` map every layer to device 0 — for
        ``replicated`` the *wave*, not the layer, picks the replica (see
        :meth:`replica_for_wave`).
        """
        if n_layers < 0:
            raise ValueError("n_layers must be non-negative")
        if self.kind != "layer_sharded" or self.n_devices == 1:
            return [0] * n_layers
        d = min(self.n_devices, max(1, n_layers))
        return [min(i * d // n_layers, d - 1) for i in range(n_layers)]

    def device_for_layer(self, layer: int, n_layers: int) -> DeviceSpec:
        """The device owning ``layer`` of an ``n_layers`` stack."""
        if not (0 <= layer < n_layers):
            raise IndexError(f"layer {layer} out of range for {n_layers} layers")
        return self.devices[self.layer_shards(n_layers)[layer]]

    def replica_for_wave(self, wave_index: int) -> int:
        """Replica device index serving micro-batch wave ``wave_index``.

        Only ``replicated`` spreads waves; other kinds pin them to the
        primary device.
        """
        if self.kind != "replicated":
            return 0
        return wave_index % self.n_devices

    def wave_slots(self, wave_index: int, n_layers: int) -> list[int]:
        """Device slot executing each layer of micro-batch wave ``wave_index``.

        This is the device→work mapping an
        :class:`~repro.runtime.executor.Executor` consumes: ``replicated``
        pins the whole wave to :meth:`replica_for_wave`'s slot, every other
        kind follows the per-layer shard map.  The mapping is a pure
        function of ``(wave_index, n_layers)`` — executors may reorder
        *when* work runs, never *where*.
        """
        if self.kind == "replicated":
            return [self.replica_for_wave(wave_index)] * n_layers
        return self.layer_shards(n_layers)

    def device_labels(self) -> list[str]:
        """Unique per-slot labels (``name#slot``) for stats attribution.

        Two replicas of the same device model are distinct *slots* even
        though their :class:`DeviceSpec`\\ s compare equal (and therefore
        share plan-cache entries); stats must not collapse them or a
        replicated placement would look like one busy device.
        """
        return [f"{d.name}#{i}" for i, d in enumerate(self.devices)]

    def shard_labels(self, n_layers: int) -> list[str]:
        """Per-layer owning slot label under this placement."""
        labels = self.device_labels()
        return [labels[s] for s in self.layer_shards(n_layers)]

    def plan_devices(self, n_layers: int) -> list[tuple[DeviceSpec, ...]]:
        """Devices each layer needs execution plans for.

        ``replicated`` plans every layer on every device (any replica can
        serve any wave); ``layer_sharded`` plans each layer only on its
        shard; ``single`` only on the primary.
        """
        if self.kind == "replicated":
            return [self.devices] * n_layers
        shards = self.layer_shards(n_layers)
        return [(self.devices[s],) for s in shards]


def resolve_placement(
    placement: "Placement | str | None",
    devices: tuple[DeviceSpec, ...] | list[DeviceSpec] | None = None,
    default_device: DeviceSpec = V100,
) -> Placement:
    """Normalise the front door's ``placement=`` argument.

    Accepts a ready :class:`Placement`, a kind string (optionally with a
    device list), or ``None`` (single device, ``default_device``).
    """
    if placement is None:
        if devices:
            seq = tuple(devices)
            return Placement("single" if len(seq) == 1 else "replicated", seq)
        return Placement("single", (default_device,))
    if isinstance(placement, Placement):
        if devices:
            raise ValueError("pass devices inside the Placement, not separately")
        return placement
    if isinstance(placement, str):
        seq = tuple(devices) if devices else (default_device,)
        return Placement(placement, seq)
    raise TypeError(
        f"placement must be a Placement, kind string or None, got {type(placement).__name__}"
    )
