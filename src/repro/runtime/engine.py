"""The end-to-end inference engine (paper §VI + Fig. 15).

:class:`InferenceEngine` prices a whole model forward pass:

- every weight GEMM through the pattern-appropriate engine
  (dense / TW / TEW / EW / VW / BW);
- the transpose kernels implied by the layout plan;
- the non-GEMM kernels (Add-bias, LayerNorm, softmax, …) as an Amdahl
  fraction of the dense GEMM time, fused or unfused (paper: 39 % → 29 %
  for BERT).

The TEW hybrid runs its TW part on the selected engine and its CSC
residual through cuSparse on CUDA cores, sequentially — the reason δ=1 %
already erases the tensor-core speedup in Fig. 10b.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gpu.blocksparse import bsr_gemm_cost
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.costmodel import CostBreakdown
from repro.gpu.cuda_core import dense_gemm_cuda_cost
from repro.gpu.cusparse import csr_spmm_cost
from repro.gpu.device import DeviceSpec, V100
from repro.gpu.tensor_core import dense_gemm_tc_cost
from repro.gpu.tw_kernel import TWExecutionOptions, TWShapeStats, tw_gemm_cost
from repro.models.registry import GemmShape, nongemm_time_fraction
from repro.runtime.layout import TransposePlan, transpose_cost

__all__ = [
    "LayerPlan",
    "EngineConfig",
    "EndToEndReport",
    "InferenceEngine",
    "engine_for_dtype",
]

_PATTERNS = ("dense", "tw", "tew", "ew", "vw", "bw")


@dataclass(frozen=True)
class LayerPlan:
    """One weight GEMM plus its sparsity treatment.

    Attributes
    ----------
    shape:
        The GEMM geometry (``count`` repetitions share the plan).
    pattern:
        One of ``dense | tw | tew | ew | vw | bw``.
    sparsity:
        Overall weight sparsity of this layer.
    granularity:
        TW tile width ``G`` (TW/TEW only).
    tw_stats:
        Real tile geometry when available (from a pruned model); otherwise
        synthesised from ``sparsity``.
    tew_delta:
        EW-restored fraction for TEW.
    block_size:
        BW block size.
    """

    shape: GemmShape
    pattern: str = "dense"
    sparsity: float = 0.0
    granularity: int = 128
    tw_stats: TWShapeStats | None = None
    tew_delta: float = 0.0
    block_size: int = 32

    def __post_init__(self) -> None:
        if self.pattern not in _PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if not (0.0 <= self.sparsity <= 1.0):
            raise ValueError(f"sparsity must be in [0, 1], got {self.sparsity}")
        if self.pattern == "tew" and not (0.0 <= self.tew_delta < 1.0):
            raise ValueError(f"tew_delta must be in [0, 1), got {self.tew_delta}")


#: explicit dtype axis → per-element bytes for memory-traffic legs
_DTYPE_BYTES = {"float64": 8, "float32": 4, "float16": 2, "int8": 1}


@dataclass(frozen=True)
class EngineConfig:
    """Execution configuration for a whole forward pass."""

    engine: str = "tensor_core"
    transpose: TransposePlan = field(default_factory=TransposePlan)
    fusion: bool = True
    batching: bool = True
    streams: bool = True
    #: explicit serving dtype ("float64" | "float32" | "float16" | "int8");
    #: "" keeps the historical engine default (fp16 on tensor cores, fp32
    #: on CUDA cores — paper §VII-A).  The dtype axis only moves the
    #: memory-traffic legs; compute efficiency stays the engine's
    #: calibration (tensor-core MACs for fp16/int8, CUDA-core for fp32+).
    dtype: str = ""

    def __post_init__(self) -> None:
        if self.engine not in ("tensor_core", "cuda_core"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.dtype and self.dtype not in _DTYPE_BYTES:
            raise ValueError(
                f"unknown dtype {self.dtype!r}; "
                f"choose from {', '.join(_DTYPE_BYTES)} or ''"
            )

    @property
    def dtype_bytes(self) -> int:
        """Per-element bytes: the explicit dtype axis when set, otherwise
        FP16 on tensor cores / FP32 on CUDA cores (paper §VII-A)."""
        if self.dtype:
            return _DTYPE_BYTES[self.dtype]
        return 2 if self.engine == "tensor_core" else 4


def engine_for_dtype(dtype: str) -> str:
    """The natural engine for a serving dtype: reduced precision runs on
    tensor cores, full precision on CUDA cores (V100 tensor cores have no
    fp32/fp64 mode)."""
    if dtype and dtype not in _DTYPE_BYTES:
        raise ValueError(f"unknown dtype {dtype!r}")
    return "tensor_core" if dtype in ("float16", "int8") else "cuda_core"


@dataclass
class EndToEndReport:
    """Latency decomposition of one forward pass (the Fig. 15 bars)."""

    gemm_us: float = 0.0
    transpose_us: float = 0.0
    nongemm_us: float = 0.0
    kernels: int = 0
    label: str = ""

    @property
    def total_us(self) -> float:
        """End-to-end latency."""
        return self.gemm_us + self.transpose_us + self.nongemm_us

    def fractions(self) -> dict[str, float]:
        """Share of each component (for the stacked bars of Fig. 15)."""
        t = self.total_us
        if t <= 0:
            return {"gemm": 0.0, "transpose": 0.0, "others": 0.0}
        return {
            "gemm": self.gemm_us / t,
            "transpose": self.transpose_us / t,
            "others": self.nongemm_us / t,
        }


class InferenceEngine:
    """Prices model forward passes under pattern + optimisation choices."""

    def __init__(
        self,
        device: DeviceSpec = V100,
        calib: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.device = device
        self.calib = calib
        # per-engine memos: a model prices the same GEMM geometry many times
        # (every layer against its dense baseline, repeated plan shapes,
        # synthetic tile geometries), and the cost models are pure functions
        # of (geometry, device, calib), both fixed per engine instance
        self._dense_cost_cache: dict[tuple[int, int, int, str], CostBreakdown] = {}
        self._synthetic_cache: dict[tuple[int, int, int, float, int], TWShapeStats] = {}

    # ------------------------------------------------------------------ #
    # single GEMM
    # ------------------------------------------------------------------ #
    def _dense_cost(self, shape: GemmShape, config: EngineConfig) -> CostBreakdown:
        key = (shape.m, shape.n, shape.k, config.engine)
        hit = self._dense_cost_cache.get(key)
        if hit is None:
            if config.engine == "tensor_core":
                hit = dense_gemm_tc_cost(shape.m, shape.n, shape.k, self.device, self.calib)
            else:
                hit = dense_gemm_cuda_cost(shape.m, shape.n, shape.k, self.device, self.calib)
            self._dense_cost_cache[key] = hit
        # CostBreakdown (and its counters) are mutable — hand each caller a
        # copy that shares nothing with the cache entry
        return replace(hit, counters=replace(hit.counters))

    def _tw_stats(self, plan: LayerPlan, sparsity: float | None = None) -> TWShapeStats:
        if plan.tw_stats is not None and sparsity is None:
            return plan.tw_stats
        s = plan.sparsity if sparsity is None else sparsity
        seed = hash((plan.shape.k, plan.shape.n, plan.granularity)) % (2**31)
        key = (plan.shape.k, plan.shape.n, plan.granularity, s, seed)
        hit = self._synthetic_cache.get(key)
        if hit is None:
            hit = TWShapeStats.synthetic(
                plan.shape.k, plan.shape.n, plan.granularity, s, seed=seed
            )
            self._synthetic_cache[key] = hit
        return hit

    def gemm_cost(self, plan: LayerPlan, config: EngineConfig) -> CostBreakdown:
        """Price one occurrence of the layer's GEMM under its pattern."""
        shape = plan.shape
        if plan.pattern == "dense":
            return self._dense_cost(shape, config)
        if plan.pattern == "tw":
            opts = TWExecutionOptions(
                transpose=config.transpose.mode != "none",
                batching=config.batching,
                streams=config.streams,
                engine=config.engine,
                dtype_bytes=config.dtype_bytes if config.dtype else None,
            )
            return tw_gemm_cost(shape.m, self._tw_stats(plan), self.device, self.calib, opts)
        if plan.pattern == "tew":
            # TW part pruned to sparsity + delta, EW residual of delta·K·N
            tw_part = tw_gemm_cost(
                shape.m,
                self._tw_stats(plan, min(plan.sparsity + plan.tew_delta, 0.999)),
                self.device,
                self.calib,
                TWExecutionOptions(
                    transpose=config.transpose.mode != "none",
                    batching=config.batching,
                    streams=config.streams,
                    engine=config.engine,
                    dtype_bytes=config.dtype_bytes if config.dtype else None,
                ),
            )
            residual_nnz = int(plan.tew_delta * shape.k * shape.n)
            ew_part = csr_spmm_cost(
                shape.m, shape.k, shape.n, residual_nnz, self.device, self.calib
            )
            return tw_part.merge_serial(ew_part, label="tew")
        if plan.pattern in ("ew", "vw"):
            # cuSparse runs on CUDA cores regardless of the engine choice
            nnz = int((1.0 - plan.sparsity) * shape.k * shape.n)
            bd = csr_spmm_cost(shape.m, shape.k, shape.n, nnz, self.device, self.calib)
            return replace(bd, label=plan.pattern)
        # bw
        grid = -(-shape.k // plan.block_size) * -(-shape.n // plan.block_size)
        kept = int(round((1.0 - plan.sparsity) * grid))
        return bsr_gemm_cost(
            shape.m, shape.k, shape.n, plan.block_size, kept, self.device, self.calib
        )

    # ------------------------------------------------------------------ #
    # whole model
    # ------------------------------------------------------------------ #
    def end_to_end(
        self, model_name: str, plans: list[LayerPlan], config: EngineConfig
    ) -> EndToEndReport:
        """Price a full forward pass (the Fig. 15 stacked bars).

        The non-GEMM share is Amdahl-fixed relative to the *dense* GEMM
        time of the same model (non-GEMM work does not shrink with weight
        sparsity), which is exactly why end-to-end speedups (1.61× BERT)
        trail GEMM-only speedups (2.26×) in the paper.
        """
        if not plans:
            raise ValueError("no layer plans given")
        gemm_us = 0.0
        kernels = 0
        n_gemms = 0
        for plan in plans:
            bd = self.gemm_cost(plan, config)
            gemm_us += bd.total_us * plan.shape.count
            kernels += bd.kernels * plan.shape.count
            n_gemms += plan.shape.count

        # the dense-cost memo makes this Amdahl baseline free for layers
        # whose gemm_cost above already priced the same dense geometry
        dense_gemm_us = sum(
            self._dense_cost(p.shape, config).total_us * p.shape.count for p in plans
        )
        frac = nongemm_time_fraction(model_name, fused=config.fusion)
        nongemm_us = dense_gemm_us * frac / (1.0 - frac)
        needs_transpose = any(p.pattern in ("tw", "tew") for p in plans)
        transpose_us = 0.0
        if needs_transpose and config.transpose.mode == "per_layer":
            # one activation transpose into every GEMM, plus the final output
            for p in plans:
                bd_t = transpose_cost(
                    p.shape.m, p.shape.k, p.shape.count,
                    self.device, self.calib, config.dtype_bytes,
                )
                transpose_us += bd_t.total_us
                kernels += bd_t.kernels
            last = plans[-1].shape
            bd_t = transpose_cost(
                last.m, last.n, 1, self.device, self.calib, config.dtype_bytes
            )
            transpose_us += bd_t.total_us
            kernels += bd_t.kernels
        elif needs_transpose and config.transpose.mode == "boundary_only":
            # paper §VI: transpose A before the first layer, C after the last
            first, last = plans[0].shape, plans[-1].shape
            for rows, cols in ((first.m, first.k), (last.m, last.n)):
                bd_t = transpose_cost(
                    rows, cols, 1, self.device, self.calib, config.dtype_bytes
                )
                transpose_us += bd_t.total_us
                kernels += bd_t.kernels
        return EndToEndReport(
            gemm_us=gemm_us,
            transpose_us=transpose_us,
            nongemm_us=nongemm_us,
            kernels=kernels,
            label=f"{model_name}/{config.engine}",
        )
