"""Deterministic fault injection for the serving runtime (ISSUE 6).

A millions-of-users deployment is defined by how it behaves when things go
wrong, and "things going wrong" must be *reproducible* to be testable.
This module provides that: a seeded, deterministic :class:`FaultInjector`
that wraps wave-step execution (see
:func:`repro.runtime.executor._execute_steps`) and injects failures at
sites identified by ``(wave index, layer, slot)``:

- ``exception`` — raise :class:`InjectedFault` *before* the step's GEMM
  runs (a failing kernel launch);
- ``latency``   — sleep ``duration_s`` before the GEMM (a latency spike;
  the time shows up in the slot's busy accounting);
- ``stall``     — sleep ``duration_s`` before the GEMM (a hung worker;
  identical mechanics to ``latency`` but intended to exceed the driver's
  watchdog, which fails the wave and respawns the worker — under the
  ``inline`` executor a stall is just a bounded latency spike, since the
  calling thread *is* the worker);
- ``kill``      — raise :class:`WorkerKilled` before the GEMM.  Under
  ``inline``/``threaded`` this is a recorded injected error like
  ``exception``; under the ``process`` executor the worker translates it
  into ``SIGKILL`` on itself — a *hard* crash mid-wave, exercising the
  dead-worker detection, respawn and shared-memory-arena teardown paths
  (ISSUE 7).

Fault kinds resolve through :data:`FAULTS` — the same
:class:`~repro.registry.Registry` class as patterns, engines, placements
and executors — so a new failure mode (corrupted output, OOM, partial
write) is a registry entry, not a new dispatch path.

Determinism contract
--------------------
Whether a rule fires at a site is a pure function of
``(rule seed, wave index, layer, slot)`` — probabilistic rules
(``rate < 1``) hash the site into a fresh ``numpy`` generator rather than
consuming a shared stream — so a fault schedule replays *exactly* across
runs, executors and thread interleavings.  The only stateful knob is
``max_fires`` (a thread-safe countdown used to model faults that clear
after N hits); its count order is deterministic under ``inline`` and may
interleave under ``threaded`` — predicate-only rules are exact everywhere.

Retried waves get *fresh* wave indices (the server's wave counter is
global), so a rule pinned to ``wave=3`` models a transient fault — the
retry of that wave runs under a different index and succeeds — while a
rule with ``layer=0`` and no wave predicate models a deterministic fault
that survives retries and drives the server's bisection/poison path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.registry import Registry

__all__ = [
    "FAULTS",
    "Fault",
    "ExceptionFault",
    "LatencyFault",
    "StallFault",
    "KillFault",
    "FaultRule",
    "FaultInjector",
    "InjectedFault",
    "WorkerKilled",
    "available_faults",
    "resolve_faults",
]

FAULTS = Registry("fault")


class InjectedFault(RuntimeError):
    """The error an ``exception`` fault raises inside step execution.

    A distinct type so chaos tests (and retry accounting) can tell an
    injected failure from a genuine bug in the serving path.
    """


class WorkerKilled(InjectedFault):
    """The ``kill`` fault's signal: this worker should die *hard*.

    Raised at the fault site like any injected exception; the ``process``
    executor's worker loop intercepts it and ``SIGKILL``\\ s itself —
    simulating a segfaulting / OOM-killed worker that never gets to
    report back.  Executors without a process to kill (``inline``,
    ``threaded``) record it as an ordinary injected failure, so the same
    chaos schedule replays on every executor.
    """


class Fault:
    """One failure behaviour, fired at a matching ``(wave, layer, slot)`` site."""

    kind = "base"

    def fire(self, wave: int, layer: int, slot: int) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner for CLI/stats reporting."""
        return self.kind


@dataclass(frozen=True)
class ExceptionFault(Fault):
    """Raise :class:`InjectedFault` before the step's GEMM runs."""

    kind = "exception"

    def fire(self, wave: int, layer: int, slot: int) -> None:
        raise InjectedFault(
            f"injected exception at wave={wave} layer={layer} slot={slot}"
        )


@dataclass(frozen=True)
class LatencyFault(Fault):
    """Sleep ``duration_s`` before the step's GEMM (a latency spike)."""

    duration_s: float = 0.05
    kind = "latency"

    def __post_init__(self) -> None:
        if not np.isfinite(self.duration_s) or self.duration_s < 0:
            raise ValueError(
                f"duration_s must be finite and non-negative, got {self.duration_s!r}"
            )

    def fire(self, wave: int, layer: int, slot: int) -> None:
        time.sleep(self.duration_s)

    def describe(self) -> str:
        return f"{self.kind}({self.duration_s}s)"


@dataclass(frozen=True)
class StallFault(LatencyFault):
    """A hung worker: occupy the slot for ``duration_s`` before the GEMM.

    Mechanically a sleep, semantically distinct: a stall is expected to
    exceed the threaded driver's watchdog, which then fails the wave with
    :class:`TimeoutError` and respawns the worker instead of hanging
    ``flush()``.  Under ``inline`` there is no watchdog (the caller *is*
    the worker), so a stall degrades to a bounded latency spike.
    """

    duration_s: float = 0.25
    kind = "stall"


@dataclass(frozen=True)
class KillFault(Fault):
    """Hard-kill the executing worker (``process``) / injected error elsewhere."""

    kind = "kill"

    def fire(self, wave: int, layer: int, slot: int) -> None:
        raise WorkerKilled(
            f"injected worker kill at wave={wave} layer={layer} slot={slot}"
        )


FAULTS.register("exception", lambda **kw: ExceptionFault(**kw), aliases=("error",))
FAULTS.register("latency", lambda **kw: LatencyFault(**kw), aliases=("spike",))
FAULTS.register("stall", lambda **kw: StallFault(**kw), aliases=("hang",))
FAULTS.register("kill", lambda **kw: KillFault(**kw), aliases=("crash",))


def available_faults() -> list[str]:
    """Canonical fault-kind names."""
    return FAULTS.names()


def _match(predicate, value: int) -> bool:
    """One site coordinate against a rule predicate.

    ``None`` matches everything; an int matches exactly; a collection
    matches membership; a callable decides itself.
    """
    if predicate is None:
        return True
    if callable(predicate):
        return bool(predicate(value))
    if isinstance(predicate, (set, frozenset, tuple, list, range)):
        return value in predicate
    return value == int(predicate)


@dataclass
class FaultRule:
    """One injection rule: a fault kind plus site predicates.

    ``wave``/``layer``/``slot`` each accept ``None`` (match all), an int,
    a collection of ints, or a predicate callable.  ``rate`` thins the
    matching sites probabilistically but *deterministically*: the decision
    at a site hashes ``(seed, wave, layer, slot)`` into a fresh generator,
    so it never depends on execution order.  ``max_fires`` caps total
    fires (thread-safe countdown) to model faults that clear.
    """

    fault: Fault
    wave: object = None
    layer: object = None
    slot: object = None
    rate: float = 1.0
    max_fires: int | None = None
    seed: int = 0
    #: fires so far (observability; mutated under the injector's lock)
    fires: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if isinstance(self.fault, str):
            self.fault = FAULTS.create(self.fault)
        if not isinstance(self.fault, Fault):
            raise TypeError(
                f"fault must be a Fault or registry name, got {type(self.fault).__name__}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"rate must be in [0, 1], got {self.rate!r}")
        if self.max_fires is not None and (
            not isinstance(self.max_fires, int) or self.max_fires < 1
        ):
            raise ValueError(
                f"max_fires must be a positive int or None, got {self.max_fires!r}"
            )

    def matches(self, wave: int, layer: int, slot: int) -> bool:
        """Whether this rule fires at the site (ignoring ``max_fires``)."""
        if not (
            _match(self.wave, wave)
            and _match(self.layer, layer)
            and _match(self.slot, slot)
        ):
            return False
        if self.rate >= 1.0:
            return True
        # site-keyed determinism: a fresh generator per site, never a
        # shared stream — execution order cannot change the schedule
        draw = np.random.default_rng((self.seed, wave, layer, slot)).random()
        return bool(draw < self.rate)


class FaultInjector:
    """A seeded fault schedule consulted before every wave step.

    Built from :class:`FaultRule`\\ s and wired through
    ``ServerConfig(faults=...)``; the server attaches it to every
    :class:`~repro.runtime.executor.WaveTask` so both executors consult it
    at each ``(wave, layer, slot)`` site.  ``fired_by_kind`` counts
    injections for stats/bench reporting.
    """

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...] = ()) -> None:
        rules = list(rules)
        for r in rules:
            if not isinstance(r, FaultRule):
                raise TypeError(
                    f"rules must be FaultRule instances, got {type(r).__name__}"
                )
        self.rules = rules
        self.fired_by_kind: dict[str, int] = {}
        self._lock = threading.Lock()

    # The injector crosses the process boundary with every wave descriptor
    # (the server attaches it to each WaveTask): pickle everything but the
    # lock, and rebuild a fresh lock on the far side.  Workers run on a
    # *snapshot* — their fire deltas are merged back by the driver via
    # merge_fires(), so parent-side counts stay authoritative.  The one
    # soft spot is max_fires: each worker counts down its own snapshot, so
    # a budget can over-fire by up to the number of concurrent workers
    # (predicate-only rules stay exact everywhere, as under ``threaded``).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def snapshot_fires(self) -> tuple[dict[str, int], list[int]]:
        """Current counts ``(by kind, per rule)`` — a worker's baseline."""
        with self._lock:
            return dict(self.fired_by_kind), [r.fires for r in self.rules]

    def fires_since(
        self, snapshot: tuple[dict[str, int], list[int]]
    ) -> tuple[dict[str, int], list[int]]:
        """Delta of :meth:`snapshot_fires` since ``snapshot`` (worker side)."""
        base_kind, base_rules = snapshot
        with self._lock:
            kinds = {
                k: v - base_kind.get(k, 0)
                for k, v in self.fired_by_kind.items()
                if v - base_kind.get(k, 0)
            }
            rules = [r.fires - b for r, b in zip(self.rules, base_rules)]
        return kinds, rules

    def merge_fires(self, delta: tuple[dict[str, int], list[int]]) -> None:
        """Fold a worker's fire delta back into this (parent) injector."""
        kinds, rules = delta
        with self._lock:
            for kind, n in kinds.items():
                self.fired_by_kind[kind] = self.fired_by_kind.get(kind, 0) + n
            for rule, n in zip(self.rules, rules):
                rule.fires += n

    @property
    def total_fired(self) -> int:
        """Total injections across all rules."""
        return sum(self.fired_by_kind.values())

    def before_step(self, wave: int, layer: int, slot: int) -> None:
        """Fire every matching rule at this site (may raise or sleep)."""
        for rule in self.rules:
            if not rule.matches(wave, layer, slot):
                continue
            with self._lock:
                if rule.max_fires is not None and rule.fires >= rule.max_fires:
                    continue
                rule.fires += 1
                kind = rule.fault.kind
                self.fired_by_kind[kind] = self.fired_by_kind.get(kind, 0) + 1
            rule.fault.fire(wave, layer, slot)

    def describe(self) -> str:
        """Human-readable one-liner for CLI/stats reporting."""
        if not self.rules:
            return "faults(none)"
        return "faults(" + ", ".join(r.fault.describe() for r in self.rules) + ")"

    @classmethod
    def from_spec(cls, spec: str, *, seed: int = 0) -> "FaultInjector":
        """Parse a CLI-friendly schedule string into an injector.

        Grammar: rules joined by ``;``, each ``kind[:key=value]*`` where
        ``kind`` is a :data:`FAULTS` registry name and keys are
        ``wave``/``layer``/``slot`` (int, or ``|``-joined int list),
        ``rate`` (float), ``max_fires`` (int), ``duration`` (float
        seconds, fault-kind option), ``seed`` (int, overrides the shared
        default).  Example::

            exception:wave=1;latency:rate=0.25:duration=0.01;stall:layer=0:max_fires=1
        """
        rules: list[FaultRule] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, *options = chunk.split(":")
            kind = kind.strip()
            if kind not in FAULTS:
                raise ValueError(
                    f"unknown fault kind {kind!r} in spec {spec!r}; "
                    f"available: {', '.join(available_faults())}"
                )
            predicates: dict[str, object] = {}
            fault_kw: dict[str, float] = {}
            rate, max_fires, rule_seed = 1.0, None, seed
            for opt in options:
                if "=" not in opt:
                    raise ValueError(
                        f"malformed fault option {opt!r} in spec {spec!r} "
                        "(expected key=value)"
                    )
                key, _, value = opt.partition("=")
                key, value = key.strip(), value.strip()
                if key in ("wave", "layer", "slot"):
                    ints = tuple(int(v) for v in value.split("|"))
                    predicates[key] = ints[0] if len(ints) == 1 else ints
                elif key == "rate":
                    rate = float(value)
                elif key == "max_fires":
                    max_fires = int(value)
                elif key == "seed":
                    rule_seed = int(value)
                elif key == "duration":
                    fault_kw["duration_s"] = float(value)
                else:
                    raise ValueError(
                        f"unknown fault option {key!r} in spec {spec!r}"
                    )
            rules.append(
                FaultRule(
                    fault=FAULTS.create(kind, **fault_kw),
                    rate=rate,
                    max_fires=max_fires,
                    seed=rule_seed,
                    **predicates,
                )
            )
        return cls(rules)


def resolve_faults(faults: "FaultInjector | str | None") -> "FaultInjector | None":
    """Normalise a ``faults=`` argument (injector, spec string, or ``None``)."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, str):
        return FaultInjector.from_spec(faults)
    raise TypeError(
        f"faults must be a FaultInjector, spec string or None, "
        f"got {type(faults).__name__}"
    )
