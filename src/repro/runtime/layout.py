"""Transpose-kernel placement (paper §VI "Memory Accesses Coalesce").

The TW GEMM wants its operands transposed; a naive schedule transposes the
activations into every GEMM and the outputs back out (one extra kernel per
GEMM boundary, ~10 % of end-to-end latency in Fig. 15).  The paper instead
rewrites the *non-GEMM* kernels to consume/produce the transposed layout,
leaving only two real transpose kernels: matrix ``A`` before the first
layer and matrix ``C`` after the last.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.costmodel import CostBreakdown, PerfCounters
from repro.gpu.device import DeviceSpec, V100

__all__ = ["TransposePlan", "transpose_cost"]


@dataclass(frozen=True)
class TransposePlan:
    """How many transpose kernels a schedule needs.

    ``per_layer`` — one transpose at every GEMM boundary (n_gemms + 1);
    ``boundary_only`` — first-layer A and last-layer C only (the paper's
    fused layout); ``none`` — untransposed execution (the GEMM then pays
    the uncoalesced penalty instead).
    """

    mode: str = "boundary_only"

    def __post_init__(self) -> None:
        if self.mode not in ("per_layer", "boundary_only", "none"):
            raise ValueError(f"unknown transpose mode {self.mode!r}")

    def kernel_count(self, n_gemms: int) -> int:
        """Transpose kernels for a chain of ``n_gemms`` weight GEMMs."""
        if n_gemms < 0:
            raise ValueError(f"negative GEMM count {n_gemms}")
        if self.mode == "none" or n_gemms == 0:
            return 0
        if self.mode == "per_layer":
            return n_gemms + 1
        return 2


def transpose_cost(
    rows: int,
    cols: int,
    count: int,
    device: DeviceSpec = V100,
    calib: Calibration = DEFAULT_CALIBRATION,
    dtype_bytes: int = 2,
) -> CostBreakdown:
    """Price ``count`` transpose kernels of a ``rows×cols`` matrix.

    A transpose is a pure copy with one strided stream; it achieves only
    :attr:`Calibration.transpose_bw_fraction` of DRAM bandwidth.
    """
    if rows < 0 or cols < 0 or count < 0:
        raise ValueError("negative transpose geometry")
    if rows == 0 or cols == 0 or count == 0:
        return CostBreakdown(kernels=0, label="transpose")
    bytes_each = rows * cols * dtype_bytes
    loads = float(bytes_each * count)
    stores = float(bytes_each * count)
    memory_us = (loads + stores) / (
        device.mem_bandwidth * calib.transpose_bw_fraction
    ) * 1e6
    return CostBreakdown(
        compute_us=0.0,
        memory_us=memory_us,
        launch_us=count * device.kernel_launch_us,
        kernels=count,
        counters=PerfCounters(
            flops=0.0,
            bytes_loaded=loads,
            bytes_stored=stores,
            sector_bytes=device.sector_bytes,
        ),
        label="transpose",
    )
