"""Network serving front: asyncio HTTP/1.1 ingress over :class:`ServingLoop`.

This closes ROADMAP item 1's last open thread — a real network boundary
in front of the continuous-batching loop, so the SLO machinery
(deadlines, shedding, retry/poison isolation, stats) is exercisable by
remote clients.  Dependency-free: raw ``asyncio.start_server`` plus the
framing helpers in :mod:`repro.runtime.wire`; no web framework.

Endpoints
---------
``POST /v1/infer``
    Body is a version-1 binary tensor frame
    (``application/x-tw-tensor``) or the JSON fallback
    (``application/json``).  An ``X-Deadline-Ms`` header becomes
    ``submit_nowait(deadline_s=)``.  Terminal statuses map onto HTTP::

        ok       -> 200  (tensor/JSON body mirrors the request encoding)
        expired  -> 504  deadline_expired
        shed     -> 429  overloaded            (+ Retry-After)
        rejected -> 429  queue_full            (+ Retry-After; QueueFullError)
        failed   -> 500  request_failed        (the poison-isolated error)

    Invalid payloads get 400 with a structured JSON error body — a
    traceback never crosses the wire.
``GET /healthz``
    Readiness: 503 while ``server.warm()`` runs, 200 after.
``GET /v1/stats``
    The :meth:`ServingLoop.stats_record` snapshot as JSON.

Latency honesty over the network: ``enqueued_at`` is stamped when the
socket delivers the request (accept for the first request on a
connection, message arrival for keep-alive successors), so reported
latency and deadline budgets start at true arrival rather than at
admission — the same arrival-anchored accounting the in-process ingress
uses.

Graceful drain: on SIGTERM/``close()`` the listener stops accepting,
in-flight requests run to their terminal status via
``ServingLoop.drain(timeout_s=)`` (bounded, so shutdown cannot hang
past the server watchdog), a final stats snapshot is flushed (and
written to ``stats_json`` when configured), and only then do sockets
and the owned loop close.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import threading
import time
from typing import Callable

import numpy as np

from repro.runtime import wire
from repro.runtime.ingress import IngressClosed, ServingLoop
from repro.runtime.server import QueueFullError, ServedRequest

__all__ = ["NetServer"]

log = logging.getLogger("repro.netserve")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: ServedRequest.status → (http status, error code) for non-ok terminals
_STATUS_HTTP = {
    "expired": (504, "deadline_expired"),
    "shed": (429, "overloaded"),
    "failed": (500, "request_failed"),
}

_RETRY_AFTER_S = 1


class NetServer:
    """Asyncio HTTP/1.1 front door for one :class:`ServingLoop`.

    Three ways to run it::

        net = model.serve_http(port=8080)   # builds loop + NetServer
        net.run()                           # blocking; SIGTERM drains

        async with NetServer(loop, port=0) as net:   # inside a loop
            ...

        with NetServer(loop, port=0).background() as net:  # own thread
            client = InferClient("127.0.0.1", net.port)

    Parameters
    ----------
    loop:
        The :class:`ServingLoop` to front.  With ``owns_loop=True`` the
        server closes it (and, transitively, a loop-owned
        :class:`TWModelServer`) on shutdown — the ``serve_http`` path.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    drain_timeout_s:
        Budget for the graceful drain on shutdown; stragglers past it
        are failed by ``ServingLoop.close()`` instead of hanging the
        process.
    max_body_bytes:
        Hard cap on request bodies (413 beyond it).
    stats_json:
        Path to write the final stats snapshot to on shutdown.
    """

    def __init__(
        self,
        loop: ServingLoop,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        drain_timeout_s: float = 30.0,
        max_body_bytes: int = 64 * 1024 * 1024,
        stats_json: str | None = None,
        log_fn: Callable[[str], None] | None = None,
        owns_loop: bool = False,
    ) -> None:
        self.loop = loop
        self.host = host
        self._requested_port = int(port)
        self.drain_timeout_s = float(drain_timeout_s)
        self.max_body_bytes = int(max_body_bytes)
        self.stats_json = stats_json
        self._log = log_fn if log_fn is not None else log.info
        self._owns_loop = owns_loop
        self._listener: asyncio.base_events.Server | None = None
        self._bound_port: int | None = None
        self._conns: set[asyncio.Task] = set()
        self._busy: set[asyncio.Task] = set()
        self._ready = False
        self._closing = False
        self._closed = False
        self._requests_seen = 0
        self.final_stats: dict | None = None
        # background-thread mode state
        self._bg_thread: threading.Thread | None = None
        self._bg_started = threading.Event()
        self._bg_error: BaseException | None = None
        self._bg_loop: asyncio.AbstractEventLoop | None = None
        self._bg_stop: asyncio.Event | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        return self._bound_port if self._bound_port is not None else self._requested_port

    async def start(self) -> None:
        """Bind the listener, then warm the model off the event loop.

        The socket opens *before* the (potentially slow) ``warm()`` so
        orchestrators can poll ``/healthz`` — it answers 503 until the
        formats, plans, and executor workers are fully up, then 200.
        """
        if self._listener is not None:
            raise RuntimeError("NetServer already started")
        self.loop.start()
        self._listener = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port
        )
        if self._listener.sockets:
            self._bound_port = self._listener.sockets[0].getsockname()[1]
        # warm on the flush pool's thread-neighbourhood: a plain executor
        # thread is fine, the server is untouched by the event loop until
        # the first request is admitted
        await asyncio.get_running_loop().run_in_executor(None, self.loop.server.warm)
        self._ready = True

    async def serve_forever(self) -> None:
        if self._listener is None:
            await self.start()
        assert self._listener is not None
        with contextlib.suppress(asyncio.CancelledError):
            await self._listener.serve_forever()

    async def close(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, flush stats."""
        if self._closed:
            return
        self._closing = True
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        drained = await self.loop.drain(timeout_s=self.drain_timeout_s)
        if not drained:
            self._log(
                "netserve: drain timed out after %.1fs; failing stragglers"
                % self.drain_timeout_s
            )
        # handlers still marked busy have their terminal result and only
        # need to finish writing it; wait those out briefly, then cut the
        # idle keep-alive connections parked in readline
        for _ in range(500):
            if not self._busy:
                break
            await asyncio.sleep(0.01)
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
        self.final_stats = self.loop.stats_record()
        self.final_stats["net"] = {
            "requests_seen": self._requests_seen,
            "host": self.host,
            "port": self.port,
            "drained": drained,
        }
        if self.stats_json:
            with open(self.stats_json, "w") as fh:
                json.dump(self.final_stats, fh, indent=2, sort_keys=True)
            self._log("netserve: final stats written to %s" % self.stats_json)
        if self._owns_loop:
            await self.loop.close()
        self._closed = True

    async def __aenter__(self) -> "NetServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def run(self, *, install_signals: bool = True) -> None:
        """Blocking entry point: serve until SIGTERM/SIGINT, then drain."""
        asyncio.run(self._run(install_signals))

    async def _run(self, install_signals: bool) -> None:
        stop = asyncio.Event()
        if install_signals:
            running = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    running.add_signal_handler(sig, stop.set)
        await self.start()
        self._log(
            "netserve: listening on http://%s:%d (POST /v1/infer)"
            % (self.host, self.port)
        )
        serving = asyncio.create_task(self.serve_forever())
        await stop.wait()
        self._log("netserve: shutdown signal; draining")
        await self.close()
        serving.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serving

    # -- background-thread mode (tests, benchmarks, self-hosted loadgen) -- #
    def background(self) -> "NetServer":
        """Run the server on a daemon thread; context-managed.

        ``__enter__`` blocks until the listener is bound **and** the
        model is warm, so ``net.port`` is valid and the first request
        never eats cold-start.
        """
        return self

    def __enter__(self) -> "NetServer":
        self.start_background()
        return self

    def __exit__(self, *exc) -> None:
        self.stop_background()

    def start_background(self, timeout_s: float = 120.0) -> None:
        if self._bg_thread is not None:
            raise RuntimeError("NetServer background thread already running")
        self._bg_thread = threading.Thread(
            target=self._bg_main, name="repro-netserve", daemon=True
        )
        self._bg_thread.start()
        if not self._bg_started.wait(timeout_s):
            raise TimeoutError("NetServer did not start within %.1fs" % timeout_s)
        if self._bg_error is not None:
            raise self._bg_error

    def stop_background(self, timeout_s: float | None = None) -> None:
        thread = self._bg_thread
        if thread is None:
            return
        if self._bg_loop is not None and self._bg_stop is not None:
            with contextlib.suppress(RuntimeError):
                self._bg_loop.call_soon_threadsafe(self._bg_stop.set)
        thread.join(timeout_s if timeout_s is not None else self.drain_timeout_s + 30.0)
        if thread.is_alive():  # pragma: no cover - defensive
            raise TimeoutError("NetServer background thread did not stop")
        self._bg_thread = None
        if self._bg_error is not None:
            raise self._bg_error

    def _bg_main(self) -> None:
        try:
            asyncio.run(self._bg_run())
        except BaseException as exc:  # surface in the foreground thread
            self._bg_error = exc
        finally:
            self._bg_started.set()

    async def _bg_run(self) -> None:
        self._bg_loop = asyncio.get_running_loop()
        self._bg_stop = asyncio.Event()
        try:
            await self.start()
        except BaseException:
            with contextlib.suppress(BaseException):
                await self.close()
            raise
        serving = asyncio.create_task(self.serve_forever())
        self._bg_started.set()
        await self._bg_stop.wait()
        await self.close()
        serving.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serving

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conns.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        except (asyncio.IncompleteReadError, ConnectionError, BrokenPipeError):
            pass  # peer went away mid-message; nothing to answer
        except Exception:  # pragma: no cover - defensive
            log.exception("netserve: connection handler crashed")
        finally:
            self._conns.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # arrival anchor: the connection's first request is stamped at
        # socket accept (bytes follow the connect immediately); keep-alive
        # successors are stamped when their message arrives — NOT when we
        # started waiting for it, or idle keep-alive time between requests
        # would masquerade as queue wait
        accept_stamp = time.perf_counter()
        first_request = True
        while not self._closing:
            try:
                message = await wire.read_http_message(
                    reader, max_body_bytes=self.max_body_bytes
                )
            except wire.ProtocolError as exc:
                code = 413 if "limit" in str(exc) else 400
                await self._respond_error(
                    writer, code, "bad_request", str(exc), keep_alive=False
                )
                return
            if message is None:
                return  # clean keep-alive EOF
            arrived = accept_stamp if first_request else time.perf_counter()
            first_request = False
            start_line, headers, body = message
            keep_alive = headers.get("connection", "").lower() != "close"
            task = asyncio.current_task()
            assert task is not None
            self._busy.add(task)
            try:
                await self._dispatch(
                    writer, start_line, headers, body, arrived, keep_alive
                )
            finally:
                self._busy.discard(task)
            if not keep_alive:
                return

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        start_line: str,
        headers: dict[str, str],
        body: bytes,
        arrived: float,
        keep_alive: bool,
    ) -> None:
        parts = start_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            await self._respond_error(
                writer, 400, "bad_request", f"malformed request line: {start_line!r}",
                keep_alive=False,
            )
            return
        method, target, _version = parts
        target = target.split("?", 1)[0]
        if target == "/healthz":
            await self._handle_healthz(writer, method, keep_alive)
        elif target == "/v1/stats":
            await self._handle_stats(writer, method, keep_alive)
        elif target == "/v1/infer":
            if method != "POST":
                await self._respond_error(
                    writer, 405, "method_not_allowed",
                    "use POST for /v1/infer", keep_alive=keep_alive,
                )
                return
            self._requests_seen += 1
            await self._handle_infer(writer, headers, body, arrived, keep_alive)
        else:
            await self._respond_error(
                writer, 404, "not_found", f"no route for {target}",
                keep_alive=keep_alive,
            )

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    async def _handle_healthz(
        self, writer: asyncio.StreamWriter, method: str, keep_alive: bool
    ) -> None:
        if method not in ("GET", "HEAD"):
            await self._respond_error(
                writer, 405, "method_not_allowed", "use GET for /healthz",
                keep_alive=keep_alive,
            )
            return
        doc = {
            "ready": self._ready and not self._closing,
            "status": "ok" if self._ready and not self._closing else "warming",
            "requests_seen": self._requests_seen,
            "wire_version": wire.VERSION,
        }
        status = 200 if doc["ready"] else 503
        await self._respond(
            writer, status, json.dumps(doc).encode(),
            content_type=wire.CONTENT_TYPE_JSON, keep_alive=keep_alive,
        )

    async def _handle_stats(
        self, writer: asyncio.StreamWriter, method: str, keep_alive: bool
    ) -> None:
        if method != "GET":
            await self._respond_error(
                writer, 405, "method_not_allowed", "use GET for /v1/stats",
                keep_alive=keep_alive,
            )
            return
        record = self.loop.stats_record()
        record["net"] = {"requests_seen": self._requests_seen, "ready": self._ready}
        await self._respond(
            writer, 200, json.dumps(record, sort_keys=True).encode(),
            content_type=wire.CONTENT_TYPE_JSON, keep_alive=keep_alive,
        )

    async def _handle_infer(
        self,
        writer: asyncio.StreamWriter,
        headers: dict[str, str],
        body: bytes,
        arrived: float,
        keep_alive: bool,
    ) -> None:
        if not self._ready:
            await self._respond_error(
                writer, 503, "warming", "model is still warming; retry",
                keep_alive=keep_alive, retry_after=True,
            )
            return
        content_type = headers.get("content-type", wire.CONTENT_TYPE_TENSOR)
        content_type = content_type.split(";", 1)[0].strip().lower()
        binary_reply = content_type != wire.CONTENT_TYPE_JSON
        try:
            if binary_reply:
                x = wire.decode_tensor(body)
            else:
                x = wire.decode_json_tensor(body)
            deadline_s = self._parse_deadline(headers)
            model_k = self.loop.server.model_k
            if model_k is not None and x.shape[1] != model_k:
                raise wire.WireError(
                    "shape_mismatch",
                    f"request K={x.shape[1]} != model K={model_k}",
                )
        except wire.WireError as exc:
            await self._respond_error(
                writer, 400, exc.code, str(exc), keep_alive=keep_alive
            )
            return
        try:
            served = await self.loop.submit_nowait(
                x, deadline_s=deadline_s, enqueued_at=arrived
            )
        except QueueFullError as exc:
            await self._respond_error(
                writer, 429, "queue_full", str(exc),
                keep_alive=keep_alive, retry_after=True, served_status="rejected",
            )
            return
        except IngressClosed as exc:
            await self._respond_error(
                writer, 503, "shutting_down", str(exc), keep_alive=False
            )
            return
        except ValueError as exc:  # admission-time validation (shape, deadline)
            await self._respond_error(
                writer, 400, "invalid_request", str(exc), keep_alive=keep_alive
            )
            return
        await self._respond_served(writer, served, binary_reply, keep_alive)

    @staticmethod
    def _parse_deadline(headers: dict[str, str]) -> float | None:
        raw = headers.get("x-deadline-ms")
        if raw is None:
            return None
        try:
            deadline_ms = float(raw)
        except ValueError:
            raise wire.WireError(
                "bad_deadline", f"X-Deadline-Ms is not a number: {raw!r}"
            ) from None
        if not np.isfinite(deadline_ms) or deadline_ms < 0:
            raise wire.WireError(
                "bad_deadline", f"X-Deadline-Ms must be finite and >= 0, got {raw!r}"
            )
        return deadline_ms / 1e3

    async def _respond_served(
        self,
        writer: asyncio.StreamWriter,
        served: ServedRequest,
        binary_reply: bool,
        keep_alive: bool,
    ) -> None:
        timing = {
            "X-Request-Id": str(served.request_id),
            "X-Status": served.status,
            "X-Latency-Ms": "%.3f" % (served.latency_s * 1e3),
            "X-Queue-Wait-Ms": "%.3f" % (served.queue_wait_s * 1e3),
            "X-Service-Ms": "%.3f" % (served.service_s * 1e3),
        }
        if served.status == "ok":
            if binary_reply:
                body = wire.encode_tensor(served.output)
                ctype = wire.CONTENT_TYPE_TENSOR
            else:
                out = np.atleast_2d(served.output)
                body = json.dumps(
                    {
                        "status": "ok",
                        "request_id": served.request_id,
                        "dtype": out.dtype.name,
                        "output": out.tolist(),
                    }
                ).encode()
                ctype = wire.CONTENT_TYPE_JSON
            await self._respond(
                writer, 200, body, content_type=ctype,
                keep_alive=keep_alive, extra=timing,
            )
            return
        http_status, code = _STATUS_HTTP.get(served.status, (500, "request_failed"))
        message = str(served.error) if served.error is not None else served.status
        await self._respond_error(
            writer, http_status, code, message, keep_alive=keep_alive,
            retry_after=(http_status == 429), served_status=served.status,
            extra=timing,
        )

    # ------------------------------------------------------------------ #
    # response plumbing
    # ------------------------------------------------------------------ #
    async def _respond_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        code: str,
        message: str,
        *,
        keep_alive: bool,
        retry_after: bool = False,
        served_status: str | None = None,
        extra: dict[str, str] | None = None,
    ) -> None:
        body = wire.error_body(served_status or "error", code, message)
        headers = dict(extra or {})
        headers.setdefault("X-Status", served_status or "error")
        if retry_after:
            headers["Retry-After"] = str(_RETRY_AFTER_S)
        await self._respond(
            writer, status, body, content_type=wire.CONTENT_TYPE_JSON,
            keep_alive=keep_alive, extra=headers,
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        *,
        content_type: str,
        keep_alive: bool,
        extra: dict[str, str] | None = None,
    ) -> None:
        headers = {
            "Content-Type": content_type,
            "X-Wire-Version": str(wire.VERSION),
            "Connection": "keep-alive" if keep_alive else "close",
        }
        if extra:
            headers.update(extra)
        reason = _REASONS.get(status, "Unknown")
        writer.write(wire.format_message(f"HTTP/1.1 {status} {reason}", headers, body))
        await writer.drain()
