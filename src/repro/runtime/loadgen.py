"""Seeded load generation for the async serving ingress.

Two canonical traffic shapes drive any *transport* with the
:class:`~repro.runtime.ingress.ServingLoop` submit surface — the
in-process loop itself, or
:class:`~repro.runtime.netclient.HttpLoadTransport` for the same load
over real sockets (``--transport http``):

- **Open loop** (:func:`run_open_loop`): requests arrive on a
  pre-computed schedule — Poisson (seeded exponential inter-arrivals)
  or fixed-rate — *independent* of completions, so backlog builds when
  the offered rate exceeds capacity and latency percentiles reflect
  real queueing.
- **Closed loop** (:func:`run_closed_loop`): ``clients`` concurrent
  callers each issue their next request only after the previous one
  completes.  With enough clients this saturates the server, so the
  achieved rate *is* the saturation throughput.

Both return a :class:`LoadResult` with p50/p95/p99 latency, the
queue-wait/service split, and achieved throughput — JSON-ready via
:meth:`LoadResult.record`.  Arrival schedules are deterministic per
seed; actual wall-clock jitter comes only from the host scheduler.
Results are duck-typed (``status``/``rows``/``latency_s``/
``queue_wait_s``/``service_s``), so in-process
:class:`~repro.runtime.server.ServedRequest` and network
:class:`~repro.runtime.netclient.NetResult` summarise identically —
over HTTP, ``latency_s`` is the client-observed wall time, which is
exactly what makes network overhead an honest measured column.

This module lives in the runtime package (not ``benchmarks/``) so the
CLI's ``repro serve --continuous`` can import it from the installed
package; ``benchmarks/loadgen.py`` wraps it with a standalone harness.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "ARRIVALS",
    "LoadResult",
    "arrival_times",
    "latency_summary_ms",
    "run_closed_loop",
    "run_open_loop",
]

#: supported open-loop arrival processes
ARRIVALS = ("poisson", "fixed")


def arrival_times(
    rate: float,
    duration_s: float,
    *,
    arrival: str = "poisson",
    seed: int = 0,
) -> np.ndarray:
    """Arrival offsets (seconds from start) for an open-loop run.

    ``poisson`` draws exponential inter-arrival gaps at mean ``1/rate``
    from a seeded generator — identical schedules per seed; ``fixed``
    spaces arrivals exactly ``1/rate`` apart.  Offsets cover
    ``[0, duration_s)``.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s!r}")
    if arrival == "fixed":
        return np.arange(0.0, duration_s, 1.0 / rate)
    if arrival != "poisson":
        raise ValueError(f"unknown arrival process {arrival!r}; use one of {ARRIVALS}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=max(16, int(rate * duration_s * 2)))
    times = np.cumsum(gaps)
    while times.size and times[-1] < duration_s:  # tail undershot: extend
        more = np.cumsum(rng.exponential(1.0 / rate, size=gaps.size))
        times = np.concatenate([times, times[-1] + more])
    return times[times < duration_s]


def latency_summary_ms(values_s: Sequence[float]) -> dict:
    """mean/p50/p95/p99/max of a latency sample, in milliseconds."""
    if not len(values_s):
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    v = np.asarray(values_s, dtype=np.float64) * 1e3
    return {
        "mean": round(float(v.mean()), 3),
        "p50": round(float(np.percentile(v, 50)), 3),
        "p95": round(float(np.percentile(v, 95)), 3),
        "p99": round(float(np.percentile(v, 99)), 3),
        "max": round(float(v.max()), 3),
    }


@dataclass
class LoadResult:
    """One load-generation run: traffic shape, outcomes, percentiles."""

    mode: str  #: ``"open"`` or ``"closed"``
    arrival: str | None  #: arrival process (open loop only)
    offered_rps: float | None  #: offered request rate (open loop only)
    duration_s: float  #: measured wall-clock from first submit to last result
    requests: int
    rows: int
    statuses: dict[str, int]
    achieved_rps: float
    rows_per_s: float
    latency_ms: dict
    queue_wait_ms: dict
    service_ms: dict
    #: per-request terminal results (ServedRequest in process, NetResult
    #: over HTTP)
    served: list = field(repr=False, default_factory=list)

    @property
    def all_ok(self) -> bool:
        return self.statuses.get("ok", 0) == self.requests

    def record(self) -> dict:
        """JSON-ready summary (drops the raw per-request results)."""
        return {
            "mode": self.mode,
            "arrival": self.arrival,
            "offered_rps": (
                round(self.offered_rps, 2) if self.offered_rps is not None else None
            ),
            "duration_s": round(self.duration_s, 4),
            "requests": self.requests,
            "rows": self.rows,
            "statuses": dict(self.statuses),
            "achieved_rps": round(self.achieved_rps, 2),
            "rows_per_s": round(self.rows_per_s, 2),
            "latency_ms": self.latency_ms,
            "queue_wait_ms": self.queue_wait_ms,
            "service_ms": self.service_ms,
        }


def _summarise(
    mode: str,
    arrival: str | None,
    offered_rps: float | None,
    wall_s: float,
    served: list,
) -> LoadResult:
    statuses: dict[str, int] = {}
    for r in served:
        statuses[r.status] = statuses.get(r.status, 0) + 1
    wall_s = max(wall_s, 1e-9)
    return LoadResult(
        mode=mode,
        arrival=arrival,
        offered_rps=offered_rps,
        duration_s=wall_s,
        requests=len(served),
        rows=sum(r.rows for r in served),
        statuses=statuses,
        achieved_rps=len(served) / wall_s,
        rows_per_s=sum(r.rows for r in served) / wall_s,
        latency_ms=latency_summary_ms([r.latency_s for r in served]),
        queue_wait_ms=latency_summary_ms([r.queue_wait_s for r in served]),
        service_ms=latency_summary_ms(
            [r.service_s for r in served if r.status == "ok"]
        ),
        served=served,
    )


async def run_open_loop(
    ingress,
    make_request: Callable[[int], np.ndarray],
    *,
    rate: float,
    duration_s: float,
    arrival: str = "poisson",
    seed: int = 0,
    deadline_s: float | None = None,
) -> LoadResult:
    """Offer requests on a seeded arrival schedule; await all terminals.

    ``ingress`` is any transport with the :class:`ServingLoop` submit
    surface (the loop itself, or an ``HttpLoadTransport``).
    ``make_request(i)`` supplies the ``i``-th request's activations.
    Submissions never wait for completions (open loop): every arrival is
    pushed at its scheduled offset via
    :meth:`~repro.runtime.ingress.ServingLoop.submit_nowait`, then the
    run gathers all outstanding futures.  The reported duration spans
    first submission → last terminal result.
    """
    times = arrival_times(rate, duration_s, arrival=arrival, seed=seed)
    start = time.perf_counter()
    futures = []
    for i, t in enumerate(times):
        delay = start + float(t) - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        futures.append(ingress.submit_nowait(make_request(i), deadline_s=deadline_s))
    served = list(await asyncio.gather(*futures))
    wall = time.perf_counter() - start
    return _summarise("open", arrival, rate, wall, served)


async def run_closed_loop(
    ingress,
    make_request: Callable[[int], np.ndarray],
    *,
    clients: int = 4,
    requests_per_client: int = 16,
    deadline_s: float | None = None,
) -> LoadResult:
    """``clients`` concurrent callers, each issuing back-to-back requests.

    The achieved rate of a closed loop with enough clients is the
    server's saturation throughput: every completion immediately offers
    the next request, so the ingress always has work to admit.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be positive")
    start = time.perf_counter()

    async def client(c: int) -> list:
        out = []
        for j in range(requests_per_client):
            i = c * requests_per_client + j
            out.append(
                await ingress.submit(make_request(i), deadline_s=deadline_s)
            )
        return out

    groups = await asyncio.gather(*(client(c) for c in range(clients)))
    wall = time.perf_counter() - start
    served = [r for g in groups for r in g]
    return _summarise("closed", None, None, wall, served)
