"""High-throughput TW model serving (ROADMAP north star: many requests).

The paper's pipeline makes weight-side work — compaction into
:class:`~repro.formats.tiled.TiledTWMatrix`, width-grouped batching, stream
assignment — a *per-model* cost, while every request only pays the batched
GEMMs.  :class:`TWModelServer` operationalises that split:

- **Format & plan caches** keyed by
  ``(weight fingerprint, pattern, granularity, dtype)`` and
  ``(format key, batching, streams, device)``: the first request compacts
  and plans, every later request replays the cached
  :class:`~repro.runtime.scheduler.ExecutionPlan` — amortising construction
  across millions of calls (cache-hit counters make this observable).
  :meth:`TWModelServer.preload` lets a compiled model
  (:class:`repro.api.CompiledTWModel`) seed these caches so serving starts
  warm.
- **Micro-batching**: concurrent requests' activations stack into one
  matrix, so each layer runs *one* batched GEMM for the whole wave instead
  of one per request (``submit`` + ``flush``; ``serve`` is the
  single-request convenience).
- **Multi-device placement** (ROADMAP PR 2 open item): a
  :class:`~repro.runtime.placement.Placement` spreads work over several
  :class:`~repro.gpu.device.DeviceSpec`\\ s — ``replicated`` round-robins
  waves across full-model replicas, ``layer_sharded`` splits the layer
  stack so each wave flows shard to shard.  The plan cache is already
  device-keyed, so sharding composes with it rather than replacing it.
- **Pluggable execution** (ISSUE 4, extended ISSUE 7): the placement
  emits a device→work mapping
  (:meth:`~repro.runtime.placement.Placement.wave_slots`) and an
  :class:`~repro.runtime.executor.Executor` — ``inline`` (the sequential
  oracle), ``threaded`` (one worker thread per device slot, bounded wave
  pipeline) or ``process`` (one worker *process* per slot, weights
  published to shared-memory arenas at cache-fill time so only small
  wave descriptors cross the pickle boundary) — decides how those
  device-tagged work items overlap in wall-time.  Outputs are
  bit-identical across executors; only wall-time and the measured
  occupancy stats change.  Caches (and the arenas hanging off them) are
  bounded by ``ServerConfig(cache_budget=...)`` and torn down
  deterministically by :meth:`TWModelServer.close`.
- **Stats**: per-request latency, per-flush batch sizes, rows/s and
  requests/s throughput, per-device busy time/GEMM counts, measured flush
  wall-time (``wall_time_s`` / ``parallel_efficiency()``), and
  stream-imbalance diagnostics from the plans.
- **Fault tolerance & SLOs** (ISSUE 6): every submitted request reaches a
  *terminal* :attr:`ServedRequest.status` — ``ok``, ``failed`` (poison
  isolated after retries/bisection), ``shed`` (backpressure) or
  ``expired`` (deadline passed before execution).  ``flush()`` retries
  failed waves up to ``max_retries`` and bisects deterministically
  failing waves so one poison request cannot take down its wave-mates;
  ``flush(strict=True)`` keeps the legacy fail-fast contract (first error
  raises, failed wave's requests are dropped, tail stays queued).
  ``ServerConfig(faults=...)`` wires a deterministic
  :class:`~repro.runtime.faults.FaultInjector` through every wave for
  chaos testing and recovery benchmarks.

Execution order inside a layer follows the cached plan's stream issue
order, so what the cost model prices (plan → batch → stream) is exactly
what executes.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import time
from collections import OrderedDict, deque
from dataclasses import InitVar, dataclass, field

import numpy as np

from repro.formats.tiled import TiledTWMatrix
from repro.gpu.device import DeviceSpec, V100
from repro.runtime import arena as _arena
from repro.runtime.executor import (
    EXECUTORS,
    Executor,
    WaveStep,
    WaveTask,
    resolve_executor,
)
from repro.runtime.faults import FaultInjector, resolve_faults
from repro.runtime.placement import Placement
from repro.runtime.scheduler import ExecutionPlan, build_execution_plan

__all__ = [
    "QueueFullError",
    "ServerConfig",
    "ServedRequest",
    "ServerStats",
    "TWModelServer",
    "weight_fingerprint",
]


class QueueFullError(RuntimeError):
    """Raised by ``submit`` when ``max_queue_rows`` is hit under the
    ``reject`` shed policy (or when a single request can never fit)."""


class _LRUCache:
    """Insertion/recency-ordered mapping with an entry budget.

    ``budget=0`` means unbounded (the pre-ISSUE-7 behaviour).  Reads via
    :meth:`get` and writes refresh recency; when a write pushes the cache
    past its budget the least-recently-used entries are popped and handed
    to ``on_evict(key, value)`` — the server uses that hook to count
    evictions and release shared-memory arenas tied to evicted formats.
    """

    def __init__(self, budget: int = 0, on_evict=None) -> None:
        self.budget = budget
        self._on_evict = on_evict
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        hit = self._data.get(key)
        if hit is not None:
            self._data.move_to_end(key)
        return hit

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        self._trim()

    def setdefault(self, key, value):
        hit = self.get(key)
        if hit is not None:
            return hit
        self.put(key, value)
        return value

    def _trim(self) -> None:
        while self.budget and len(self._data) > self.budget:
            key, value = self._data.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(key, value)

    def values(self):
        return self._data.values()

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data


def _hash_array(h, tag: bytes, arr: np.ndarray) -> None:
    """Feed one array into ``h`` with an unambiguous header.

    The header carries a tag, the logical shape, the dtype and the
    contiguous strides, each length-delimited — so arrays of different
    shapes (a matrix vs its transpose, two masks vs one twice as long)
    can never produce the same byte stream even when their raw bytes
    coincide.  ``ascontiguousarray`` first normalises the memory order,
    making the fingerprint a function of the *logical* array: an F-order
    view and its C-order copy hash identically.
    """
    arr = np.ascontiguousarray(arr)
    header = repr((arr.shape, arr.dtype.str, arr.strides, "C")).encode()
    h.update(b"%s:%d:" % (tag, len(header)))
    h.update(header)
    h.update(b"%d:" % arr.nbytes)
    h.update(arr.tobytes())


def weight_fingerprint(
    dense: np.ndarray,
    col_keep: np.ndarray,
    row_masks: list[np.ndarray],
) -> str:
    """Content hash of a layer's weights + pruning masks (cache identity).

    Computed once at registration; two models sharing weights and masks
    share format-cache entries regardless of object identity.  Every array
    is hashed with a shape/dtype/strides header and a length delimiter, so
    a matrix and its transpose (same bytes, different shape) or two short
    row masks and one long one (same concatenated bytes) get distinct
    fingerprints.
    """
    h = hashlib.sha1()
    _hash_array(h, b"dense", np.asarray(dense))
    _hash_array(h, b"col_keep", np.ascontiguousarray(col_keep, dtype=bool))
    h.update(b"masks:%d:" % len(row_masks))
    for mask in row_masks:
        _hash_array(h, b"row_mask", np.ascontiguousarray(mask, dtype=bool))
    return h.hexdigest()


@dataclass(frozen=True)
class ServerConfig:
    """Engine configuration for one server instance.

    Every field is part of a cache key: changing the granularity, payload
    dtype, batching/stream switches or device re-plans on first use.

    Attributes
    ----------
    granularity:
        TW tile width the server compacts at.
    batching, streams:
        Plan switches (paper Fig. 7 steps 3–4).
    dtype:
        Activation dtype for serving (and, by default, the compact payload
        dtype too).
    storage_dtype:
        Compact *weight payload* dtype when it differs from the activation
        dtype (``""`` = same as ``dtype``).  The mixed-precision split:
        an int8-quantized model stores ``storage_dtype="int8"`` tiles
        (per-tile scales, weights-only quantization) while waves run
        ``dtype="float32"`` activations with fp32 accumulation.  Part of
        the format cache key, so the same weights served at two storage
        precisions never share compacted formats.
    max_wave_rows:
        Row cap per micro-batch wave; larger queues split into successive
        waves (requests never split across waves).  The PR 2 name
        ``max_batch_rows`` is still accepted as a constructor alias and
        readable as an attribute.
    queue_timeout_s:
        **Post-hoc SLO accounting only.**  Requests whose *observed*
        latency (queueing + execution) exceeds this budget are counted in
        ``stats.deadline_misses`` after they are served — they still run
        and still return output.  ``0`` disables the accounting.  This is
        distinct from per-request ``deadline_s`` (see
        :meth:`TWModelServer.submit`), which *sheds* a request — no GEMM
        ever runs for it — once its deadline passes.
    device:
        The single-device anchor (ignored when ``placement`` is given).
    placement:
        Multi-device policy; ``None`` means single-device on ``device``.
    executor:
        How placed waves execute in wall-time — an
        :data:`~repro.runtime.executor.EXECUTORS` registry name
        (``inline``/``threaded``/``process``).  ``inline`` is the
        sequential oracle; ``threaded`` runs one worker thread per device
        slot so replicated waves and layer-sharded pipeline stages overlap
        wherever the GIL allows; ``process`` (ISSUE 7) runs one worker
        *process* per slot with weights served from shared-memory arenas,
        escaping the GIL entirely for real multi-core speedup.  Outputs
        are bit-identical in every case.
    cache_budget:
        Entry budget shared by the format cache and the plan cache
        (``0`` = unbounded, the historical behaviour).  When a cache
        outgrows the budget its least-recently-used entries are evicted
        (``stats.format_evictions``/``plan_evictions`` count them), and an
        evicted format's shared-memory arena is released with it — with
        ``process`` executors an unbounded cache is an unbounded
        ``/dev/shm`` hazard, which is why this landed alongside them.
    workers:
        Worker-thread cap for ``threaded`` (``None`` = one per device
        slot).  Passing it with an executor that has no workers
        (``inline``) is an error, not a silent no-op.
    pace:
        Simulated-device pacing scale.  ``0`` (default) runs flat out;
        ``> 0`` makes every GEMM occupy its device slot for at least
        ``pace ×`` the cost model's predicted device time, so the
        *measured* ``wall_time_s`` reflects the placement's overlap on any
        host (sleeps release the GIL and overlap across slots).
    max_retries:
        Re-execution budget per failed wave group in a graceful
        ``flush()`` (``0`` = no retries, failures go straight to
        bisection/poison handling).  Ignored under ``flush(strict=True)``.
    retry_backoff_s:
        Base sleep before a failed group re-runs, doubled per attempt
        (``backoff × 2^(attempt-1)``).  ``0`` (default) retries
        immediately.
    max_queue_rows:
        Backpressure bound on queued activation rows (``0`` =
        unbounded).  When a ``submit`` would exceed it, ``shed_policy``
        decides: ``reject`` raises :class:`QueueFullError`; ``shed_oldest``
        drops the oldest queued requests (they surface from the next
        ``flush`` with ``status="shed"``) to make room.
    shed_policy:
        ``"reject"`` (default) or ``"shed_oldest"`` — see
        ``max_queue_rows``.
    watchdog_s:
        Per-wave stall bound forwarded to the executor (``None`` =
        executor default, 60s for ``threaded``).  Only meaningful for
        executors with watchdogs; setting it with ``inline`` is an error.
    faults:
        Deterministic fault schedule for chaos testing — a
        :class:`~repro.runtime.faults.FaultInjector`, a spec string
        (``"exception:wave=1;latency:rate=0.1"``), or ``None`` (default).
        Attached to every wave so both executors replay the same seeded
        schedule.
    """

    granularity: int = 128
    batching: bool = True
    streams: bool = True
    dtype: str = "float64"
    storage_dtype: str = ""
    max_wave_rows: int = 8192
    queue_timeout_s: float = 0.0
    device: DeviceSpec = V100
    placement: Placement | None = None
    executor: str = "inline"
    cache_budget: int = 0
    workers: int | None = None
    pace: float = 0.0
    max_retries: int = 2
    retry_backoff_s: float = 0.0
    max_queue_rows: int = 0
    shed_policy: str = "reject"
    watchdog_s: float | None = None
    faults: FaultInjector | str | None = None
    #: deprecated constructor alias for :attr:`max_wave_rows` (PR 2 name)
    max_batch_rows: InitVar[int | None] = None

    def __post_init__(self, max_batch_rows: int | None) -> None:
        if max_batch_rows is not None:
            if self.max_wave_rows != _DEFAULT_WAVE_ROWS and (
                self.max_wave_rows != max_batch_rows
            ):
                raise ValueError(
                    "pass max_wave_rows or its alias max_batch_rows, not "
                    f"conflicting values ({self.max_wave_rows} vs {max_batch_rows})"
                )
            object.__setattr__(self, "max_wave_rows", max_batch_rows)
        if not isinstance(self.granularity, int) or self.granularity <= 0:
            raise ValueError(f"granularity must be a positive int, got {self.granularity!r}")
        if not isinstance(self.max_wave_rows, int) or self.max_wave_rows <= 0:
            raise ValueError(
                f"max_wave_rows must be a positive int, got {self.max_wave_rows!r}"
            )
        if not np.isfinite(self.queue_timeout_s) or self.queue_timeout_s < 0:
            raise ValueError(
                f"queue_timeout_s must be finite and non-negative, got {self.queue_timeout_s!r}"
            )
        np.dtype(self.dtype)  # raises on unknown dtype names
        if self.storage_dtype:
            np.dtype(self.storage_dtype)
        if self.placement is not None and not isinstance(self.placement, Placement):
            raise TypeError(
                f"placement must be a Placement or None, got {type(self.placement).__name__}"
            )
        if not isinstance(self.executor, str):
            raise TypeError(
                f"executor must be a registry name string, got "
                f"{type(self.executor).__name__}"
            )
        object.__setattr__(self, "executor", EXECUTORS.canonical(self.executor))
        if not isinstance(self.cache_budget, int) or self.cache_budget < 0:
            raise ValueError(
                f"cache_budget must be a non-negative int (0 = unbounded), "
                f"got {self.cache_budget!r}"
            )
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            raise ValueError(
                f"workers must be a positive int or None, got {self.workers!r}"
            )
        if not np.isfinite(self.pace) or self.pace < 0:
            raise ValueError(
                f"pace must be finite and non-negative, got {self.pace!r}"
            )
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError(
                f"max_retries must be a non-negative int, got {self.max_retries!r}"
            )
        if not np.isfinite(self.retry_backoff_s) or self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be finite and non-negative, "
                f"got {self.retry_backoff_s!r}"
            )
        if not isinstance(self.max_queue_rows, int) or self.max_queue_rows < 0:
            raise ValueError(
                f"max_queue_rows must be a non-negative int (0 = unbounded), "
                f"got {self.max_queue_rows!r}"
            )
        if self.shed_policy not in ("reject", "shed_oldest"):
            raise ValueError(
                f"shed_policy must be 'reject' or 'shed_oldest', "
                f"got {self.shed_policy!r}"
            )
        if self.watchdog_s is not None and (
            not np.isfinite(self.watchdog_s) or self.watchdog_s < 0
        ):
            raise ValueError(
                f"watchdog_s must be finite and >= 0 or None, got {self.watchdog_s!r}"
            )
        # normalise once so the server (and repeated flushes) always see a
        # ready injector; spec strings parse here, at configuration time
        object.__setattr__(self, "faults", resolve_faults(self.faults))

    def resolved_placement(self) -> Placement:
        """The effective placement (``device`` wrapped as ``single``)."""
        return self.placement or Placement("single", (self.device,))

    @property
    def resolved_storage_dtype(self) -> str:
        """The effective compact-payload dtype (falls back to ``dtype``)."""
        return self.storage_dtype or self.dtype


_DEFAULT_WAVE_ROWS = 8192

# readable alias (the InitVar above only covers the constructor; the
# dataclass-generated __init__ captured its defaults at decoration, so
# replacing the class attribute with a property afterwards is safe)
ServerConfig.max_batch_rows = property(
    lambda self: self.max_wave_rows,
    doc="Backward-compatible read alias of max_wave_rows.",
)


@dataclass
class ServedRequest:
    """One *terminal* request: output (when served) plus observed latency.

    ``status`` is the terminal disposition every submitted request is
    guaranteed to reach under a graceful ``flush()``:

    - ``"ok"``      — served; ``output`` holds the result rows.
    - ``"failed"``  — the request failed deterministically even alone
      (poison, isolated by retry + bisection); ``error`` holds the last
      failure, ``output`` is ``None``.
    - ``"shed"``    — dropped by ``max_queue_rows`` backpressure under the
      ``shed_oldest`` policy; ``output`` is ``None``.
    - ``"expired"`` — its ``deadline_s`` passed before any GEMM ran;
      ``output`` is ``None``.

    ``latency_s`` is enqueue→terminal wall-time in every case — anchored
    at the *enqueue* timestamp (``submit(..., enqueued_at=)``) when the
    request arrived through an ingress queue, so time spent backlogged
    before admission counts.  For ``"ok"`` requests it splits as
    ``latency_s == queue_wait_s + service_s``: ``queue_wait_s`` is
    enqueue→wave-launch (ingress backlog + server queue + any retry
    churn before the wave that finally served it) and ``service_s`` is
    that wave's executor service (GEMM wall time).  Non-``ok`` requests
    never complete a wave, so the whole latency is queue wait
    (``service_s == 0``).  ``batch_id`` is the last wave that ran (or
    tried to run) the request, ``-1`` if it never entered a wave.
    """

    request_id: int
    output: np.ndarray | None
    rows: int
    latency_s: float
    batch_id: int
    status: str = "ok"
    error: BaseException | None = None
    queue_wait_s: float = 0.0
    service_s: float = 0.0


#: per-request latencies retained for percentile-style inspection; older
#: entries age out so a long-lived server's stats stay O(1) memory
LATENCY_WINDOW = 4096


@dataclass
class ServerStats:
    """Running counters; throughput is derived from GEMM busy time
    (format compaction and plan building are excluded — they are the
    amortised cold path the hit counters track)."""

    requests: int = 0
    rows: int = 0
    batches: int = 0
    gemms: int = 0
    format_hits: int = 0
    format_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    #: LRU entries dropped by a ``cache_budget`` (0 while unbounded)
    format_evictions: int = 0
    plan_evictions: int = 0
    busy_s: float = 0.0
    #: measured wall-clock seconds spent inside executor runs (``flush``);
    #: with a concurrent executor this is *less* than ``busy_s`` — the
    #: difference is realised overlap, not modeled headroom
    wall_time_s: float = 0.0
    latency_total_s: float = 0.0
    deadline_misses: int = 0
    #: wave-group re-executions after a failure (graceful ``flush`` only)
    retries: int = 0
    #: requests put back in the work queue by a retry or bisection
    requeues: int = 0
    #: requests dropped by ``max_queue_rows`` backpressure (``shed_oldest``)
    shed: int = 0
    #: requests shed because their ``deadline_s`` passed before execution
    expired: int = 0
    #: requests isolated as poison (terminal ``status="failed"``)
    poisoned: int = 0
    latencies_s: deque[float] = field(default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    #: GEMM busy seconds attributed to each placement slot (``name#index``;
    #: two replicas of the same device model are distinct slots)
    device_busy_s: dict[str, float] = field(default_factory=dict)
    #: GEMM launches attributed to each placement slot (``name#index``)
    device_gemms: dict[str, int] = field(default_factory=dict)

    def rows_per_s(self) -> float:
        """Activation rows served per second of GEMM busy time."""
        return self.rows / self.busy_s if self.busy_s > 0 else 0.0

    def requests_per_s(self) -> float:
        """Requests completed per second of GEMM busy time."""
        return self.requests / self.busy_s if self.busy_s > 0 else 0.0

    def mean_latency_s(self) -> float:
        """Mean per-request latency (queueing + execution) over all requests."""
        return self.latency_total_s / self.requests if self.requests else 0.0

    def critical_path_s(self) -> float:
        """Busiest single device's GEMM time — the sharded makespan bound.

        With perfect overlap across shards/replicas, wall time approaches
        this instead of :attr:`busy_s` (the sum over devices); the ratio
        ``busy_s / critical_path_s`` is the placement's parallel headroom.
        """
        return max(self.device_busy_s.values(), default=0.0)

    def measured_speedup(self) -> float:
        """Measured wall-time speedup over serial execution.

        ``busy_s / wall_time_s``: how much faster the executor ran the
        work than executing every slot's occupancy back to back.  ``1.0``
        for the ``inline`` executor (up to timing noise).
        """
        return self.busy_s / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def parallel_efficiency(self) -> float:
        """Measured speedup as a fraction of the modeled headroom.

        The modeled headroom is ``busy_s / critical_path_s()`` (perfect
        overlap); the measured speedup is ``busy_s / wall_time_s``.  Their
        ratio collapses to ``critical_path_s() / wall_time_s``: ``1.0``
        means wall-time hit the modeled bound, ``~0.5`` means a 2-device
        placement ran effectively serially (e.g. under ``inline``).
        """
        if self.wall_time_s <= 0:
            return 0.0
        return self.critical_path_s() / self.wall_time_s

    def percentile_latency_s(self, q: float) -> float:
        """Latency percentile over the retained window (0.0 when empty).

        Computed from :attr:`latencies_s`, the rolling
        :data:`LATENCY_WINDOW`-deep deque of per-request enqueue→terminal
        latencies — a long-lived server reports *recent* percentiles, not
        lifetime ones.
        """
        if not self.latencies_s:
            return 0.0
        window = np.fromiter(self.latencies_s, dtype=np.float64)
        return float(np.percentile(window, q))

    def p50_latency_s(self) -> float:
        return self.percentile_latency_s(50.0)

    def p95_latency_s(self) -> float:
        return self.percentile_latency_s(95.0)

    def p99_latency_s(self) -> float:
        return self.percentile_latency_s(99.0)

    def record(self) -> dict:
        """JSON-ready snapshot of every counter and derived metric.

        The structured twin of the CLI's stats table: plain dicts of
        numbers (no numpy scalars), safe to ``json.dump`` as-is.  The
        server adds queue/wave/topology context on top of this in
        :meth:`TWModelServer.stats_record`.
        """
        wall = self.wall_time_s
        fmt_total = self.format_hits + self.format_misses
        plan_total = self.plan_hits + self.plan_misses
        return {
            "requests": self.requests,
            "rows": self.rows,
            "gemms": self.gemms,
            "rows_per_s": round(self.rows_per_s(), 2),
            "requests_per_s": round(self.requests_per_s(), 2),
            "latency_ms": {
                "mean": round(self.mean_latency_s() * 1e3, 3),
                "p50": round(self.p50_latency_s() * 1e3, 3),
                "p95": round(self.p95_latency_s() * 1e3, 3),
                "p99": round(self.p99_latency_s() * 1e3, 3),
                "window": len(self.latencies_s),
            },
            "busy_s": round(self.busy_s, 6),
            "wall_time_s": round(wall, 6),
            "measured_speedup": round(self.measured_speedup(), 3),
            "parallel_efficiency": round(self.parallel_efficiency(), 3),
            "device_busy_pct": {
                label: round(100.0 * busy / wall, 1) if wall > 0 else 0.0
                for label, busy in sorted(self.device_busy_s.items())
            },
            "device_gemms": dict(sorted(self.device_gemms.items())),
            "cache": {
                "format_hits": self.format_hits,
                "format_misses": self.format_misses,
                "format_hit_rate": (
                    round(self.format_hits / fmt_total, 4) if fmt_total else 0.0
                ),
                "format_evictions": self.format_evictions,
                "plan_hits": self.plan_hits,
                "plan_misses": self.plan_misses,
                "plan_hit_rate": (
                    round(self.plan_hits / plan_total, 4) if plan_total else 0.0
                ),
                "plan_evictions": self.plan_evictions,
            },
            "slo": {
                "deadline_misses": self.deadline_misses,
                "retries": self.retries,
                "requeues": self.requeues,
                "shed": self.shed,
                "expired": self.expired,
                "poisoned": self.poisoned,
            },
        }


@dataclass(frozen=True)
class _Layer:
    """One registered weight layer (dense + masks + cache identity).

    ``epilogue`` is the optional fused non-GEMM consumer
    (:class:`~repro.kernels.fusion.EpilogueSpec`) applied inside the wave
    task right after this layer's GEMM.  It rides the wave step rather
    than the format/plan caches — compaction and planning are
    epilogue-independent, so two models differing only in epilogues still
    share cached formats.
    """

    dense: np.ndarray
    col_keep: np.ndarray
    row_masks: tuple[np.ndarray, ...]
    fingerprint: str
    epilogue: object | None = None


@dataclass
class _Pending:
    """One queued request: activations plus its admission metadata.

    ``deadline_at`` is an absolute ``perf_counter`` timestamp (``None`` =
    no deadline); ``attempts`` counts failed wave executions this request
    has been part of since its group last (re)formed — reset on bisection
    so each half gets a fresh budget.
    """

    rid: int
    x: np.ndarray
    submitted_at: float
    deadline_at: float | None = None
    attempts: int = 0


class TWModelServer:
    """Serve a stack of TW-pruned GEMM layers with cached plans.

    Layers are registered as ``(dense weight, col_keep, row_masks)`` — the
    pruner's outputs — and compacted lazily on first use.  A request's
    activations flow through every layer in order (``K`` of layer ``l+1``
    must equal ``N`` of layer ``l``); pruned output columns are exact
    zeros, so chaining is closed under TW execution.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.placement = self.config.resolved_placement()
        self.executor = resolve_executor(
            self.config.executor,
            workers=self.config.workers,
            watchdog_s=self.config.watchdog_s,
        )
        if (
            getattr(self.executor, "needs_arenas", False)
            and not isinstance(self.config.executor, Executor)
            and self.executor.workers is None
        ):
            # ISSUE 7 default: one worker process per device slot.  A
            # bounded pool is what lets ``run`` spawn every worker up
            # front and ``warm()`` handshake them, instead of discovering
            # pool size lazily and paying a worker's interpreter boot
            # (~hundreds of ms) inside the first multi-wave flush.  A
            # ready instance passed by the caller is left exactly as
            # configured.
            self.executor.workers = len(self.placement.devices)
        self.stats = ServerStats()
        self._layers: list[_Layer] = []
        self._formats: _LRUCache = _LRUCache(
            self.config.cache_budget, self._evict_format
        )
        self._plans: _LRUCache = _LRUCache(
            self.config.cache_budget, self._evict_plan
        )
        #: arenas this server *owns* (placed, to be released): format key →
        #: :class:`~repro.runtime.arena.ArenaRef`; populated lazily by
        #: ``_wave_task`` only when the executor declares ``needs_arenas``
        self._arenas: dict[tuple, _arena.ArenaRef] = {}
        #: arena keys evicted from the format cache whose release is
        #: deferred to the next quiescent point (flush boundary / close)
        self._retired_arenas: list[tuple] = []
        self._needs_arenas = bool(getattr(self.executor, "needs_arenas", False))
        self._closed = False
        self._dwell: dict[tuple, float] = {}
        self._pending: deque[_Pending] = deque()
        self._queued_rows = 0
        #: requests shed at submit time (``shed_oldest``), surfaced by the
        #: next ``flush`` so every request still reaches a terminal status
        self._shed_buffer: list[ServedRequest] = []
        self._next_id = 0
        self._batch_id = 0

    # ------------------------------------------------------------------ #
    # model registration
    # ------------------------------------------------------------------ #
    def add_layer(
        self,
        dense: np.ndarray,
        col_keep: np.ndarray,
        row_masks: list[np.ndarray],
        *,
        epilogue=None,
    ) -> str:
        """Register one pruned GEMM layer; returns its weight fingerprint.

        ``epilogue`` optionally attaches a fused
        :class:`~repro.kernels.fusion.EpilogueSpec` that every wave applies
        right after this layer's GEMM (same semantics as
        :meth:`repro.api.CompiledTWModel.run`).
        """
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("layer weight must be 2-D")
        if self._layers and self._layers[-1].dense.shape[1] != dense.shape[0]:
            raise ValueError(
                f"layer K={dense.shape[0]} does not chain onto previous "
                f"layer N={self._layers[-1].dense.shape[1]}"
            )
        fp = weight_fingerprint(dense, col_keep, row_masks)
        self._layers.append(
            _Layer(dense, np.asarray(col_keep, dtype=bool),
                   tuple(np.asarray(m, dtype=bool) for m in row_masks), fp,
                   epilogue)
        )
        return fp

    @property
    def n_layers(self) -> int:
        """Registered layers."""
        return len(self._layers)

    @property
    def model_k(self) -> int | None:
        """Input width a request row must have (``None`` before layers)."""
        return int(self._layers[0].dense.shape[0]) if self._layers else None

    def shard_layout(self) -> list[str]:
        """Device slot (``name#index``) owning each layer under the placement."""
        return self.placement.shard_labels(self.n_layers)

    def warm(self) -> None:
        """Prebuild every layer's format and plans (optional cold-start hide).

        Also brings the executor's workers fully up (a blocking handshake
        for the ``process`` pool, a no-op otherwise), so the first real
        flush never pays worker-interpreter boot time.
        """
        plan_devices = self.placement.plan_devices(self.n_layers)
        for layer, devices in zip(self._layers, plan_devices):
            tw = self._format_for(layer)
            for device in devices:
                self._plan_for(layer, tw, device)
        self.executor.warm()

    def preload(
        self,
        index: int,
        tw: TiledTWMatrix,
        plans: dict[DeviceSpec, ExecutionPlan] | None = None,
    ) -> bool:
        """Seed the caches for layer ``index`` with prebuilt artifacts.

        Called by :meth:`repro.api.CompiledTWModel.serve` so compilation
        work is reused instead of redone.  The format is only adopted when
        it matches this server's config (granularity and payload dtype);
        plans only when the server runs the full plan pipeline
        (``batching`` and ``streams`` on, as the compiler builds them).
        Returns whether the format was adopted.
        """
        layer = self._layers[index]
        storage = np.dtype(self.config.resolved_storage_dtype)
        if tw.granularity != self.config.granularity or tw.dtype != storage:
            return False
        if tw.shape != layer.dense.shape:
            return False
        self._formats.setdefault(self._format_key(layer), tw)
        if plans and self.config.batching and self.config.streams:
            for device, plan in plans.items():
                self._plans.setdefault(self._plan_key(layer, device), plan)
        return True

    # ------------------------------------------------------------------ #
    # caches
    # ------------------------------------------------------------------ #
    def _evict_format(self, key: tuple, tw: TiledTWMatrix) -> None:
        """LRU hook: count the eviction and *retire* the format's arena.

        The release is deferred to the next ``flush()`` boundary (or
        ``close()``) rather than done here: eviction can happen while a
        wave that references this arena is still being assembled or
        executed (a budget smaller than the layer count evicts within a
        single wave), and a worker must never attend an already-unlinked
        segment.  The arena layer refcounts by key, so a format that is
        re-missed and re-placed before the deferred release lands simply
        bumps the same segment's count — retire/re-place pairs always
        balance and ``close()`` settles the remainder.
        """
        self.stats.format_evictions += 1
        if self._arenas.pop(key, None) is not None:
            self._retired_arenas.append(key)

    def _evict_plan(self, key: tuple, plan: ExecutionPlan) -> None:
        self.stats.plan_evictions += 1

    def _format_key(self, layer: _Layer) -> tuple:
        return (
            layer.fingerprint,
            "tw",
            self.config.granularity,
            self.config.resolved_storage_dtype,
        )

    def _format_for(self, layer: _Layer) -> TiledTWMatrix:
        key = self._format_key(layer)
        hit = self._formats.get(key)
        if hit is not None:
            self.stats.format_hits += 1
            return hit
        self.stats.format_misses += 1
        tw = TiledTWMatrix.from_masks(
            layer.dense,
            self.config.granularity,
            layer.col_keep,
            list(layer.row_masks),
            dtype=np.dtype(self.config.resolved_storage_dtype),
        )
        self._formats.put(key, tw)
        return tw

    def _plan_key(self, layer: _Layer, device: DeviceSpec) -> tuple:
        return (
            self._format_key(layer),
            self.config.batching,
            self.config.streams,
            device,
        )

    def _plan_for(
        self, layer: _Layer, tw: TiledTWMatrix, device: DeviceSpec | None = None
    ) -> ExecutionPlan:
        device = device if device is not None else self.placement.primary
        key = self._plan_key(layer, device)
        hit = self._plans.get(key)
        if hit is not None:
            self.stats.plan_hits += 1
            return hit
        self.stats.plan_misses += 1
        plan = build_execution_plan(
            tw,
            device,
            batching=self.config.batching,
            streams=self.config.streams,
        )
        self._plans.put(key, plan)
        return plan

    def stream_imbalance(self) -> list[float]:
        """Per-cached-plan stream imbalance diagnostics (max/mean work)."""
        return [p.assignment.imbalance() for p in self._plans.values()]

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def submit(
        self,
        x: np.ndarray,
        *,
        deadline_s: float | None = None,
        enqueued_at: float | None = None,
    ) -> int:
        """Queue one request's activations (``rows × K``); returns its id.

        ``deadline_s`` is an optional latency budget, relative to the
        request's enqueue time: a request whose deadline passes before it
        executes is *shed* at the next ``flush`` (terminal
        ``status="expired"``, no GEMM runs for it), and waves assemble
        shortest-deadline-first.  Contrast with ``queue_timeout_s``,
        which only counts misses post-hoc.

        ``enqueued_at`` is an optional ``perf_counter`` timestamp of when
        the request *arrived* (defaults to now).  An ingress layer that
        backlogs requests before admitting them passes its arrival stamp
        here so reported latency includes ingress queue wait and the
        deadline budget starts ticking at arrival, not admission.

        When ``max_queue_rows`` is configured and this submit would
        exceed it, the ``shed_policy`` applies: ``reject`` raises
        :class:`QueueFullError`; ``shed_oldest`` drops the oldest queued
        requests to make room (they surface from the next ``flush`` with
        ``status="shed"``).
        """
        x = np.atleast_2d(np.asarray(x))
        if self._layers and x.shape[1] != self._layers[0].dense.shape[0]:
            raise ValueError(
                f"request K={x.shape[1]} != model K={self._layers[0].dense.shape[0]}"
            )
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if not np.isfinite(deadline_s) or deadline_s < 0:
                raise ValueError(
                    f"deadline_s must be finite and non-negative, got {deadline_s!r}"
                )
        now = time.perf_counter()
        arrival = now
        if enqueued_at is not None:
            arrival = float(enqueued_at)
            if arrival > now:
                raise ValueError("enqueued_at must not be in the future")
        rows = x.shape[0]
        bound = self.config.max_queue_rows
        if bound:
            if rows > bound:
                raise QueueFullError(
                    f"request of {rows} rows can never fit max_queue_rows={bound}"
                )
            if self._queued_rows + rows > bound:
                if self.config.shed_policy == "reject":
                    raise QueueFullError(
                        f"queue holds {self._queued_rows} rows; admitting "
                        f"{rows} more would exceed max_queue_rows={bound}"
                    )
                while self._pending and self._queued_rows + rows > bound:
                    victim = self._pending.popleft()
                    self._queued_rows -= victim.x.shape[0]
                    self.stats.shed += 1
                    self._shed_buffer.append(
                        ServedRequest(
                            request_id=victim.rid,
                            output=None,
                            rows=victim.x.shape[0],
                            latency_s=now - victim.submitted_at,
                            batch_id=-1,
                            status="shed",
                            queue_wait_s=now - victim.submitted_at,
                        )
                    )
        rid = self._next_id
        self._next_id += 1
        self._pending.append(
            _Pending(
                rid=rid,
                x=x,
                submitted_at=arrival,
                deadline_at=None if deadline_s is None else arrival + deadline_s,
            )
        )
        self._queued_rows += rows
        return rid

    def flush(self, strict: bool = False) -> list[ServedRequest]:
        """Run every queued request as micro-batched GEMMs (one per layer).

        Waves larger than ``max_wave_rows`` split into successive
        micro-batches; requests never split across waves, and waves
        assemble shortest-deadline-first (FIFO among requests without
        deadlines).  The placement maps every wave's layers to device
        slots (:meth:`~repro.runtime.placement.Placement.wave_slots`) and
        the configured executor runs the whole wave list — sequentially
        under ``inline``, overlapped across slots under ``threaded``.
        Outputs are bit-identical across executors.

        **Graceful mode (default).**  Every queued request reaches a
        terminal :attr:`ServedRequest.status` and nothing raises: expired
        requests are shed before any GEMM runs for them; a failed wave
        retries up to ``max_retries`` (with exponential
        ``retry_backoff_s``); a wave still failing after its budget is
        *bisected* so a deterministically-failing poison request
        terminates alone with ``status="failed"`` instead of taking down
        its wave-mates.  Results are returned sorted by request id.

        **Strict mode** (``strict=True``) preserves the legacy fail-fast
        contract: no retries, the first wave error re-raises after
        accounting, the failed wave's requests are dropped, and the
        unconsumed tail stays queued for a later flush.
        """
        self._release_retired_arenas()  # quiescent point: no waves in flight
        served: list[ServedRequest] = list(self._shed_buffer)
        self._shed_buffer.clear()
        if not self._pending:
            served.sort(key=lambda r: r.request_id)
            return served
        # drain the queue into wave groups: shortest-deadline-first; the
        # sort is stable, so deadline-free traffic stays strictly FIFO
        ordered = sorted(
            self._pending,
            key=lambda p: (
                p.deadline_at if p.deadline_at is not None else math.inf
            ),
        )
        self._pending.clear()
        self._queued_rows = 0
        work: deque[list[_Pending]] = deque()
        group: list[_Pending] = []
        rows = 0
        for p in ordered:
            r = p.x.shape[0]
            if group and rows + r > self.config.max_wave_rows:
                work.append(group)
                group, rows = [], 0
            group.append(p)
            rows += r
        if group:
            work.append(group)
        if strict:
            self._flush_strict(work, served)
        else:
            self._flush_graceful(work, served)
        served.sort(key=lambda r: r.request_id)
        return served

    def _run_waves(
        self,
        work: deque[list[_Pending]],
        waves: list[list[_Pending]],
        wave_ids: list[int],
        *,
        shed_expired_into: list[ServedRequest] | None = None,
        build_failures: list | None = None,
    ):
        """One executor pass over the current work queue (lazy stream).

        Waves are built as the executor admits them: requests leave
        ``work`` one group at a time (bounded peak memory), and when
        execution fails the executor stops pulling — the unconsumed tail
        stays on ``work`` for the caller.  Caches are resolved on the
        driver thread inside ``_wave_task``, so ``busy_s`` times GEMM
        execution only.  The first wave is built *outside* the timed
        region: it resolves every cold format/plan, so ``wall_time_s``
        (and ``measured_speedup``/``parallel_efficiency``) stays an
        execution measurement even on a cold server.
        """

        def task_stream():
            while work:
                g = work.popleft()
                if shed_expired_into is not None:
                    g = self._shed_expired(g, shed_expired_into)
                    if not g:
                        continue
                try:
                    task = self._wave_task(g)
                except Exception as exc:
                    # wave assembly itself failed (e.g. a malformed
                    # request breaks the concatenate): route the group
                    # through the caller's failure handling instead of
                    # blowing up the whole flush
                    if build_failures is None:
                        raise
                    build_failures.append((g, exc))
                    continue
                waves.append(g)
                wave_ids.append(task.index)
                yield task

        stream = task_stream()
        first = next(stream, None)
        if first is None:  # everything left had already expired
            return []
        t0 = time.perf_counter()
        results = self.executor.run(itertools.chain((first,), stream))
        self.stats.wall_time_s += time.perf_counter() - t0
        return results

    def _flush_strict(
        self, work: deque[list[_Pending]], served: list[ServedRequest]
    ) -> None:
        """Legacy fail-fast path: first error raises, tail stays queued."""
        waves: list[list[_Pending]] = []
        wave_ids: list[int] = []
        try:
            results = self._run_waves(work, waves, wave_ids)
        finally:
            for g in work:  # unconsumed tail back onto the queue
                for p in g:
                    self._pending.append(p)
                    self._queued_rows += p.x.shape[0]
            work.clear()
        first_error: BaseException | None = None
        for g, batch_id, result in zip(waves, wave_ids, results):
            self._merge_accounting(result)
            if result.error is not None:
                if first_error is None:
                    first_error = result.error
                continue  # this wave's requests are lost; tail stays queued
            self._emit_ok(g, batch_id, result, served)
        if first_error is not None:
            raise first_error

    def _flush_graceful(
        self, work: deque[list[_Pending]], served: list[ServedRequest]
    ) -> None:
        """Retry/bisect until every request reaches a terminal status.

        Each failed group retries whole up to ``max_retries`` — retried
        waves get *fresh* wave indices, so transient faults (wave-pinned
        injections, flaky workers) clear on retry.  A group that exhausts
        its budget with more than one request is bisected (fresh budgets
        per half); a single request that still fails is the poison and
        terminates alone.  Total work is bounded by
        ``O(n · max_retries · log n)`` wave executions.
        """
        while work:
            waves: list[list[_Pending]] = []
            wave_ids: list[int] = []
            build_failures: list[tuple[list[_Pending], BaseException]] = []
            results = self._run_waves(
                work,
                waves,
                wave_ids,
                shed_expired_into=served,
                build_failures=build_failures,
            )
            for g, batch_id, result in zip(waves, wave_ids, results):
                self._merge_accounting(result)
                if result.error is None:
                    self._emit_ok(g, batch_id, result, served)
                    continue
                self._handle_failed_group(
                    g, result.error, batch_id, result.done_at, work, served
                )
            for g, exc in build_failures:
                self._handle_failed_group(g, exc, -1, 0.0, work, served)

    def _handle_failed_group(
        self,
        g: list[_Pending],
        error: BaseException,
        batch_id: int,
        done_at: float,
        work: deque[list[_Pending]],
        served: list[ServedRequest],
    ) -> None:
        """Retry, bisect, or poison-isolate one failed wave group."""
        for p in g:
            p.attempts += 1
        attempts = g[0].attempts
        if attempts <= self.config.max_retries:
            self.stats.retries += 1
            self.stats.requeues += len(g)
            backoff = self.config.retry_backoff_s
            if backoff > 0.0:
                time.sleep(backoff * (2 ** (attempts - 1)))
            work.append(g)
        elif len(g) > 1:
            # deterministic failure: bisect to isolate the poison; each
            # half gets a fresh attempt budget
            mid = len(g) // 2
            self.stats.requeues += len(g)
            for half in (g[:mid], g[mid:]):
                for p in half:
                    p.attempts = 0
                work.append(half)
        else:
            p = g[0]
            self.stats.poisoned += 1
            latency = (done_at or time.perf_counter()) - p.submitted_at
            served.append(
                ServedRequest(
                    request_id=p.rid,
                    output=None,
                    rows=p.x.shape[0],
                    latency_s=latency,
                    batch_id=batch_id,
                    status="failed",
                    error=error,
                    queue_wait_s=latency,
                )
            )

    def _merge_accounting(self, result) -> None:
        """Merge one wave's measured occupancy — including a failed wave's
        pre-failure work — so stats never lose busy time."""
        for label, busy in result.busy_by_label.items():
            self.stats.device_busy_s[label] = (
                self.stats.device_busy_s.get(label, 0.0) + busy
            )
            self.stats.busy_s += busy
        for label, n in result.gemms_by_label.items():
            self.stats.device_gemms[label] = (
                self.stats.device_gemms.get(label, 0) + n
            )
            self.stats.gemms += n

    def _emit_ok(
        self,
        group: list[_Pending],
        batch_id: int,
        result,
        served: list[ServedRequest],
    ) -> None:
        """Slice one successful wave's output back into per-request results."""
        self.stats.batches += 1
        offset = 0
        service = max(0.0, result.done_at - result.started_at)
        for p in group:
            r = p.x.shape[0]
            latency = result.done_at - p.submitted_at
            self.stats.requests += 1
            self.stats.rows += r
            self.stats.latency_total_s += latency
            self.stats.latencies_s.append(latency)
            if self.config.queue_timeout_s and latency > self.config.queue_timeout_s:
                self.stats.deadline_misses += 1
            served.append(
                ServedRequest(
                    request_id=p.rid,
                    output=result.output[offset : offset + r],
                    rows=r,
                    latency_s=latency,
                    batch_id=batch_id,
                    queue_wait_s=max(0.0, latency - service),
                    service_s=service,
                )
            )
            offset += r

    def _shed_expired(
        self, group: list[_Pending], served: list[ServedRequest]
    ) -> list[_Pending]:
        """Drop already-expired requests from a group before any GEMM runs."""
        now = time.perf_counter()
        keep: list[_Pending] = []
        for p in group:
            if p.deadline_at is not None and now >= p.deadline_at:
                self.stats.expired += 1
                served.append(
                    ServedRequest(
                        request_id=p.rid,
                        output=None,
                        rows=p.x.shape[0],
                        latency_s=now - p.submitted_at,
                        batch_id=-1,
                        status="expired",
                        queue_wait_s=now - p.submitted_at,
                    )
                )
            else:
                keep.append(p)
        return keep

    def serve(self, x: np.ndarray) -> ServedRequest:
        """Submit one request and flush immediately."""
        rid = self.submit(x)
        for req in self.flush():
            if req.request_id == rid:
                return req
        raise RuntimeError(f"request {rid} did not reach a terminal status")

    def stats_record(self) -> dict:
        """Structured observability snapshot (ROADMAP item 5c, JSON-ready).

        :meth:`ServerStats.record` plus the server-level context the bare
        counters can't see: current queue depth, realised wave occupancy
        (mean admitted rows vs ``max_wave_rows``), and the
        executor/placement topology.  Safe to call at any quiescent point;
        when an ingress loop polls it while a flush runs on another
        thread, the snapshot is advisory (counters mid-update), which is
        fine for dashboards and periodic logs.
        """
        st = self.stats
        rec = st.record()
        rec["queue"] = {
            "depth_requests": len(self._pending),
            "depth_rows": self._queued_rows,
            "max_queue_rows": self.config.max_queue_rows,
        }
        mean_wave_rows = st.rows / st.batches if st.batches else 0.0
        rec["waves"] = {
            "count": st.batches,
            "mean_rows": round(mean_wave_rows, 2),
            "max_wave_rows": self.config.max_wave_rows,
            "occupancy": (
                round(mean_wave_rows / self.config.max_wave_rows, 4)
                if self.config.max_wave_rows
                else 0.0
            ),
        }
        rec["executor"] = self.executor.describe()
        rec["placement"] = f"{self.placement.kind} x{self.placement.n_devices}"
        return rec

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Tear the server down deterministically (idempotent).

        Shuts the executor's worker pool down (process workers get a
        sentinel, a join, and escalation if they ignore it) and releases
        every shared-memory arena this server placed — after ``close()``
        returns, no ``/dev/shm`` segment owned by this server remains
        linked, even if a worker crashed mid-wave (the arena layer's
        owner-side refcounts don't depend on worker exits).  Serving after
        ``close()`` simply re-misses the caches: formats recompact, and a
        process executor would need a fresh instance.
        """
        if self._closed:
            return
        self._closed = True
        self.executor.close()
        self._release_retired_arenas()
        for key in list(self._arenas):
            self._arenas.pop(key, None)
            _arena.release(key)
        self._formats.clear()
        self._plans.clear()

    def _release_retired_arenas(self) -> None:
        while self._retired_arenas:
            _arena.release(self._retired_arenas.pop())

    def __enter__(self) -> "TWModelServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _wave_task(self, wave: list[_Pending]) -> WaveTask:
        """Resolve one wave into device-tagged, plan-carrying work items."""
        dtype = np.dtype(self.config.dtype)
        batch = np.concatenate([p.x for p in wave], axis=0)
        slots = self.placement.wave_slots(self._batch_id, self.n_layers)
        labels = self.placement.device_labels()
        steps = []
        for li, (layer, slot) in enumerate(zip(self._layers, slots)):
            tw = self._format_for(layer)
            device = self.placement.devices[slot]
            plan = self._plan_for(layer, tw, device)
            ref = None
            if self._needs_arenas:
                # place-at-cache-fill: the first wave that touches a format
                # under a process executor publishes it (tiles + the plan's
                # width-group operands) to shared memory; every later wave
                # reuses the same segment and ships only this small ref.
                # Group tile-ids are device-independent, so one plan's
                # operands serve every device slot.
                key = self._format_key(layer)
                ref = self._arenas.get(key)
                if ref is None:
                    ref = _arena.place(key, tw, plans=(plan,))
                    self._arenas[key] = ref
            steps.append(
                WaveStep(
                    layer=li,
                    tw=tw,
                    plan=plan,
                    slot=slot,
                    label=labels[slot],
                    dwell_s=self._dwell_for(layer, tw, device, batch.shape[0]),
                    arena=ref,
                    epilogue=layer.epilogue,
                )
            )
        task = WaveTask(
            index=self._batch_id,
            batch=batch.astype(dtype, copy=False),
            steps=tuple(steps),
            faults=self.config.faults,
        )
        self._batch_id += 1
        return task

    def _dwell_for(
        self, layer: _Layer, tw: TiledTWMatrix, device: DeviceSpec, m: int
    ) -> float:
        """Paced slot occupancy for one GEMM (0.0 when pacing is off).

        ``pace ×`` the cost model's predicted device time for this layer's
        TW GEMM at ``m`` activation rows, memoised per (layer, device, m)
        so the cost model prices each configuration once.
        """
        if self.config.pace <= 0.0:
            return 0.0
        key = (self._format_key(layer), device, m)
        hit = self._dwell.get(key)
        if hit is None:
            from repro.gpu.tw_kernel import tw_gemm_cost

            hit = tw_gemm_cost(m, tw, device).total_us * 1e-6 * self.config.pace
            self._dwell[key] = hit
        return hit
