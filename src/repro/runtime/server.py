"""High-throughput TW model serving (ROADMAP north star: many requests).

The paper's pipeline makes weight-side work — compaction into
:class:`~repro.formats.tiled.TiledTWMatrix`, width-grouped batching, stream
assignment — a *per-model* cost, while every request only pays the batched
GEMMs.  :class:`TWModelServer` operationalises that split:

- **Format & plan caches** keyed by
  ``(weight fingerprint, pattern, granularity, dtype)`` and
  ``(format key, batching, streams, device)``: the first request compacts
  and plans, every later request replays the cached
  :class:`~repro.runtime.scheduler.ExecutionPlan` — amortising construction
  across millions of calls (cache-hit counters make this observable).
- **Micro-batching**: concurrent requests' activations stack into one
  matrix, so each layer runs *one* batched GEMM for the whole wave instead
  of one per request (``submit`` + ``flush``; ``serve`` is the
  single-request convenience).
- **Stats**: per-request latency, per-flush batch sizes, rows/s and
  requests/s throughput, and stream-imbalance diagnostics from the plans.

Execution order inside a layer follows the cached plan's stream issue
order, so what the cost model prices (plan → batch → stream) is exactly
what executes.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.formats.tiled import TiledTWMatrix
from repro.gpu.device import DeviceSpec, V100
from repro.kernels.masked import tw_gemm
from repro.runtime.scheduler import ExecutionPlan, build_execution_plan

__all__ = [
    "ServerConfig",
    "ServedRequest",
    "ServerStats",
    "TWModelServer",
    "weight_fingerprint",
]


def weight_fingerprint(
    dense: np.ndarray,
    col_keep: np.ndarray,
    row_masks: list[np.ndarray],
) -> str:
    """Content hash of a layer's weights + pruning masks (cache identity).

    Computed once at registration; two models sharing weights and masks
    share format-cache entries regardless of object identity.
    """
    h = hashlib.sha1()
    arr = np.ascontiguousarray(dense)
    h.update(repr((arr.shape, arr.dtype.str)).encode())
    h.update(arr.tobytes())
    h.update(np.ascontiguousarray(col_keep, dtype=bool).tobytes())
    for mask in row_masks:
        h.update(np.ascontiguousarray(mask, dtype=bool).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class ServerConfig:
    """Engine configuration for one server instance.

    Every field is part of a cache key: changing the granularity, payload
    dtype, batching/stream switches or device re-plans on first use.
    """

    granularity: int = 128
    batching: bool = True
    streams: bool = True
    dtype: str = "float64"
    max_batch_rows: int = 8192
    device: DeviceSpec = V100

    def __post_init__(self) -> None:
        if self.granularity <= 0:
            raise ValueError(f"granularity must be positive, got {self.granularity}")
        if self.max_batch_rows <= 0:
            raise ValueError(f"max_batch_rows must be positive, got {self.max_batch_rows}")
        np.dtype(self.dtype)  # raises on unknown dtype names


@dataclass
class ServedRequest:
    """One completed request: its output plus observed latency."""

    request_id: int
    output: np.ndarray
    rows: int
    latency_s: float
    batch_id: int


#: per-request latencies retained for percentile-style inspection; older
#: entries age out so a long-lived server's stats stay O(1) memory
LATENCY_WINDOW = 4096


@dataclass
class ServerStats:
    """Running counters; throughput is derived from GEMM busy time
    (format compaction and plan building are excluded — they are the
    amortised cold path the hit counters track)."""

    requests: int = 0
    rows: int = 0
    batches: int = 0
    gemms: int = 0
    format_hits: int = 0
    format_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    busy_s: float = 0.0
    latency_total_s: float = 0.0
    latencies_s: deque[float] = field(default_factory=lambda: deque(maxlen=LATENCY_WINDOW))

    def rows_per_s(self) -> float:
        """Activation rows served per second of GEMM busy time."""
        return self.rows / self.busy_s if self.busy_s > 0 else 0.0

    def requests_per_s(self) -> float:
        """Requests completed per second of GEMM busy time."""
        return self.requests / self.busy_s if self.busy_s > 0 else 0.0

    def mean_latency_s(self) -> float:
        """Mean per-request latency (queueing + execution) over all requests."""
        return self.latency_total_s / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class _Layer:
    """One registered weight layer (dense + masks + cache identity)."""

    dense: np.ndarray
    col_keep: np.ndarray
    row_masks: tuple[np.ndarray, ...]
    fingerprint: str


class TWModelServer:
    """Serve a stack of TW-pruned GEMM layers with cached plans.

    Layers are registered as ``(dense weight, col_keep, row_masks)`` — the
    pruner's outputs — and compacted lazily on first use.  A request's
    activations flow through every layer in order (``K`` of layer ``l+1``
    must equal ``N`` of layer ``l``); pruned output columns are exact
    zeros, so chaining is closed under TW execution.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self._layers: list[_Layer] = []
        self._formats: dict[tuple, TiledTWMatrix] = {}
        self._plans: dict[tuple, ExecutionPlan] = {}
        self._pending: deque[tuple[int, np.ndarray, float]] = deque()
        self._next_id = 0
        self._batch_id = 0

    # ------------------------------------------------------------------ #
    # model registration
    # ------------------------------------------------------------------ #
    def add_layer(
        self,
        dense: np.ndarray,
        col_keep: np.ndarray,
        row_masks: list[np.ndarray],
    ) -> str:
        """Register one pruned GEMM layer; returns its weight fingerprint."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("layer weight must be 2-D")
        if self._layers and self._layers[-1].dense.shape[1] != dense.shape[0]:
            raise ValueError(
                f"layer K={dense.shape[0]} does not chain onto previous "
                f"layer N={self._layers[-1].dense.shape[1]}"
            )
        fp = weight_fingerprint(dense, col_keep, row_masks)
        self._layers.append(
            _Layer(dense, np.asarray(col_keep, dtype=bool),
                   tuple(np.asarray(m, dtype=bool) for m in row_masks), fp)
        )
        return fp

    @property
    def n_layers(self) -> int:
        """Registered layers."""
        return len(self._layers)

    def warm(self) -> None:
        """Prebuild every layer's format and plan (optional cold-start hide)."""
        for layer in self._layers:
            tw = self._format_for(layer)
            self._plan_for(layer, tw)

    # ------------------------------------------------------------------ #
    # caches
    # ------------------------------------------------------------------ #
    def _format_key(self, layer: _Layer) -> tuple:
        return (layer.fingerprint, "tw", self.config.granularity, self.config.dtype)

    def _format_for(self, layer: _Layer) -> TiledTWMatrix:
        key = self._format_key(layer)
        hit = self._formats.get(key)
        if hit is not None:
            self.stats.format_hits += 1
            return hit
        self.stats.format_misses += 1
        tw = TiledTWMatrix.from_masks(
            layer.dense,
            self.config.granularity,
            layer.col_keep,
            list(layer.row_masks),
            dtype=np.dtype(self.config.dtype),
        )
        self._formats[key] = tw
        return tw

    def _plan_for(self, layer: _Layer, tw: TiledTWMatrix) -> ExecutionPlan:
        key = (
            self._format_key(layer),
            self.config.batching,
            self.config.streams,
            self.config.device,
        )
        hit = self._plans.get(key)
        if hit is not None:
            self.stats.plan_hits += 1
            return hit
        self.stats.plan_misses += 1
        plan = build_execution_plan(
            tw,
            self.config.device,
            batching=self.config.batching,
            streams=self.config.streams,
        )
        self._plans[key] = plan
        return plan

    def stream_imbalance(self) -> list[float]:
        """Per-cached-plan stream imbalance diagnostics (max/mean work)."""
        return [p.assignment.imbalance() for p in self._plans.values()]

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def submit(self, x: np.ndarray) -> int:
        """Queue one request's activations (``rows × K``); returns its id."""
        x = np.atleast_2d(np.asarray(x))
        if self._layers and x.shape[1] != self._layers[0].dense.shape[0]:
            raise ValueError(
                f"request K={x.shape[1]} != model K={self._layers[0].dense.shape[0]}"
            )
        rid = self._next_id
        self._next_id += 1
        self._pending.append((rid, x, time.perf_counter()))
        return rid

    def flush(self) -> list[ServedRequest]:
        """Run every queued request as micro-batched GEMMs (one per layer).

        Waves larger than ``max_batch_rows`` split into successive
        micro-batches; requests never split across batches.
        """
        served: list[ServedRequest] = []
        while self._pending:
            wave: list[tuple[int, np.ndarray, float]] = []
            rows = 0
            while self._pending:
                r = self._pending[0][1].shape[0]
                if wave and rows + r > self.config.max_batch_rows:
                    break
                wave.append(self._pending.popleft())
                rows += r
            served.extend(self._run_batch(wave))
        return served

    def serve(self, x: np.ndarray) -> ServedRequest:
        """Submit one request and flush immediately."""
        self.submit(x)
        return self.flush()[-1]

    def _run_batch(self, wave: list[tuple[int, np.ndarray, float]]) -> list[ServedRequest]:
        dtype = np.dtype(self.config.dtype)
        batch = np.concatenate([x for _, x, _ in wave], axis=0)
        # resolve caches first: busy_s times GEMM execution only, so the
        # cold construction path never inflates throughput numbers
        resolved = []
        for layer in self._layers:
            tw = self._format_for(layer)
            resolved.append((tw, self._plan_for(layer, tw)))
        t0 = time.perf_counter()
        a = batch.astype(dtype, copy=False)
        for tw, plan in resolved:
            a = tw_gemm(a, tw, plan=plan)
            self.stats.gemms += 1
        done = time.perf_counter()
        self.stats.busy_s += done - t0
        self.stats.batches += 1
        self._batch_id += 1
        out: list[ServedRequest] = []
        offset = 0
        for rid, x, t_submit in wave:
            r = x.shape[0]
            latency = done - t_submit
            self.stats.requests += 1
            self.stats.rows += r
            self.stats.latency_total_s += latency
            self.stats.latencies_s.append(latency)
            out.append(
                ServedRequest(
                    request_id=rid,
                    output=a[offset : offset + r],
                    rows=r,
                    latency_s=latency,
                    batch_id=self._batch_id - 1,
                )
            )
            offset += r
        return out
