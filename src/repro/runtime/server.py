"""High-throughput TW model serving (ROADMAP north star: many requests).

The paper's pipeline makes weight-side work — compaction into
:class:`~repro.formats.tiled.TiledTWMatrix`, width-grouped batching, stream
assignment — a *per-model* cost, while every request only pays the batched
GEMMs.  :class:`TWModelServer` operationalises that split:

- **Format & plan caches** keyed by
  ``(weight fingerprint, pattern, granularity, dtype)`` and
  ``(format key, batching, streams, device)``: the first request compacts
  and plans, every later request replays the cached
  :class:`~repro.runtime.scheduler.ExecutionPlan` — amortising construction
  across millions of calls (cache-hit counters make this observable).
  :meth:`TWModelServer.preload` lets a compiled model
  (:class:`repro.api.CompiledTWModel`) seed these caches so serving starts
  warm.
- **Micro-batching**: concurrent requests' activations stack into one
  matrix, so each layer runs *one* batched GEMM for the whole wave instead
  of one per request (``submit`` + ``flush``; ``serve`` is the
  single-request convenience).
- **Multi-device placement** (ROADMAP PR 2 open item): a
  :class:`~repro.runtime.placement.Placement` spreads work over several
  :class:`~repro.gpu.device.DeviceSpec`\\ s — ``replicated`` round-robins
  waves across full-model replicas, ``layer_sharded`` splits the layer
  stack so each wave flows shard to shard.  The plan cache is already
  device-keyed, so sharding composes with it rather than replacing it.
- **Stats**: per-request latency, per-flush batch sizes, rows/s and
  requests/s throughput, per-device busy time/GEMM counts, and
  stream-imbalance diagnostics from the plans.

Execution order inside a layer follows the cached plan's stream issue
order, so what the cost model prices (plan → batch → stream) is exactly
what executes.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import InitVar, dataclass, field

import numpy as np

from repro.formats.tiled import TiledTWMatrix
from repro.gpu.device import DeviceSpec, V100
from repro.kernels.masked import tw_gemm
from repro.runtime.placement import Placement
from repro.runtime.scheduler import ExecutionPlan, build_execution_plan

__all__ = [
    "ServerConfig",
    "ServedRequest",
    "ServerStats",
    "TWModelServer",
    "weight_fingerprint",
]


def _hash_array(h, tag: bytes, arr: np.ndarray) -> None:
    """Feed one array into ``h`` with an unambiguous header.

    The header carries a tag, the logical shape, the dtype and the
    contiguous strides, each length-delimited — so arrays of different
    shapes (a matrix vs its transpose, two masks vs one twice as long)
    can never produce the same byte stream even when their raw bytes
    coincide.  ``ascontiguousarray`` first normalises the memory order,
    making the fingerprint a function of the *logical* array: an F-order
    view and its C-order copy hash identically.
    """
    arr = np.ascontiguousarray(arr)
    header = repr((arr.shape, arr.dtype.str, arr.strides, "C")).encode()
    h.update(b"%s:%d:" % (tag, len(header)))
    h.update(header)
    h.update(b"%d:" % arr.nbytes)
    h.update(arr.tobytes())


def weight_fingerprint(
    dense: np.ndarray,
    col_keep: np.ndarray,
    row_masks: list[np.ndarray],
) -> str:
    """Content hash of a layer's weights + pruning masks (cache identity).

    Computed once at registration; two models sharing weights and masks
    share format-cache entries regardless of object identity.  Every array
    is hashed with a shape/dtype/strides header and a length delimiter, so
    a matrix and its transpose (same bytes, different shape) or two short
    row masks and one long one (same concatenated bytes) get distinct
    fingerprints.
    """
    h = hashlib.sha1()
    _hash_array(h, b"dense", np.asarray(dense))
    _hash_array(h, b"col_keep", np.ascontiguousarray(col_keep, dtype=bool))
    h.update(b"masks:%d:" % len(row_masks))
    for mask in row_masks:
        _hash_array(h, b"row_mask", np.ascontiguousarray(mask, dtype=bool))
    return h.hexdigest()


@dataclass(frozen=True)
class ServerConfig:
    """Engine configuration for one server instance.

    Every field is part of a cache key: changing the granularity, payload
    dtype, batching/stream switches or device re-plans on first use.

    Attributes
    ----------
    granularity:
        TW tile width the server compacts at.
    batching, streams:
        Plan switches (paper Fig. 7 steps 3–4).
    dtype:
        Payload/activation dtype for serving.
    max_wave_rows:
        Row cap per micro-batch wave; larger queues split into successive
        waves (requests never split across waves).  The PR 2 name
        ``max_batch_rows`` is still accepted as a constructor alias and
        readable as an attribute.
    queue_timeout_s:
        Per-request latency budget; requests whose observed latency
        (queueing + execution) exceeds it are counted in
        ``stats.deadline_misses``.  ``0`` disables the accounting.
    device:
        The single-device anchor (ignored when ``placement`` is given).
    placement:
        Multi-device policy; ``None`` means single-device on ``device``.
    """

    granularity: int = 128
    batching: bool = True
    streams: bool = True
    dtype: str = "float64"
    max_wave_rows: int = 8192
    queue_timeout_s: float = 0.0
    device: DeviceSpec = V100
    placement: Placement | None = None
    #: deprecated constructor alias for :attr:`max_wave_rows` (PR 2 name)
    max_batch_rows: InitVar[int | None] = None

    def __post_init__(self, max_batch_rows: int | None) -> None:
        if max_batch_rows is not None:
            if self.max_wave_rows != _DEFAULT_WAVE_ROWS and (
                self.max_wave_rows != max_batch_rows
            ):
                raise ValueError(
                    "pass max_wave_rows or its alias max_batch_rows, not "
                    f"conflicting values ({self.max_wave_rows} vs {max_batch_rows})"
                )
            object.__setattr__(self, "max_wave_rows", max_batch_rows)
        if not isinstance(self.granularity, int) or self.granularity <= 0:
            raise ValueError(f"granularity must be a positive int, got {self.granularity!r}")
        if not isinstance(self.max_wave_rows, int) or self.max_wave_rows <= 0:
            raise ValueError(
                f"max_wave_rows must be a positive int, got {self.max_wave_rows!r}"
            )
        if not np.isfinite(self.queue_timeout_s) or self.queue_timeout_s < 0:
            raise ValueError(
                f"queue_timeout_s must be finite and non-negative, got {self.queue_timeout_s!r}"
            )
        np.dtype(self.dtype)  # raises on unknown dtype names
        if self.placement is not None and not isinstance(self.placement, Placement):
            raise TypeError(
                f"placement must be a Placement or None, got {type(self.placement).__name__}"
            )

    def resolved_placement(self) -> Placement:
        """The effective placement (``device`` wrapped as ``single``)."""
        return self.placement or Placement("single", (self.device,))


_DEFAULT_WAVE_ROWS = 8192

# readable alias (the InitVar above only covers the constructor; the
# dataclass-generated __init__ captured its defaults at decoration, so
# replacing the class attribute with a property afterwards is safe)
ServerConfig.max_batch_rows = property(
    lambda self: self.max_wave_rows,
    doc="Backward-compatible read alias of max_wave_rows.",
)


@dataclass
class ServedRequest:
    """One completed request: its output plus observed latency."""

    request_id: int
    output: np.ndarray
    rows: int
    latency_s: float
    batch_id: int


#: per-request latencies retained for percentile-style inspection; older
#: entries age out so a long-lived server's stats stay O(1) memory
LATENCY_WINDOW = 4096


@dataclass
class ServerStats:
    """Running counters; throughput is derived from GEMM busy time
    (format compaction and plan building are excluded — they are the
    amortised cold path the hit counters track)."""

    requests: int = 0
    rows: int = 0
    batches: int = 0
    gemms: int = 0
    format_hits: int = 0
    format_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    busy_s: float = 0.0
    latency_total_s: float = 0.0
    deadline_misses: int = 0
    latencies_s: deque[float] = field(default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    #: GEMM busy seconds attributed to each placement slot (``name#index``;
    #: two replicas of the same device model are distinct slots)
    device_busy_s: dict[str, float] = field(default_factory=dict)
    #: GEMM launches attributed to each placement slot (``name#index``)
    device_gemms: dict[str, int] = field(default_factory=dict)

    def rows_per_s(self) -> float:
        """Activation rows served per second of GEMM busy time."""
        return self.rows / self.busy_s if self.busy_s > 0 else 0.0

    def requests_per_s(self) -> float:
        """Requests completed per second of GEMM busy time."""
        return self.requests / self.busy_s if self.busy_s > 0 else 0.0

    def mean_latency_s(self) -> float:
        """Mean per-request latency (queueing + execution) over all requests."""
        return self.latency_total_s / self.requests if self.requests else 0.0

    def critical_path_s(self) -> float:
        """Busiest single device's GEMM time — the sharded makespan bound.

        With perfect overlap across shards/replicas, wall time approaches
        this instead of :attr:`busy_s` (the sum over devices); the ratio
        ``busy_s / critical_path_s`` is the placement's parallel headroom.
        """
        return max(self.device_busy_s.values(), default=0.0)


@dataclass(frozen=True)
class _Layer:
    """One registered weight layer (dense + masks + cache identity)."""

    dense: np.ndarray
    col_keep: np.ndarray
    row_masks: tuple[np.ndarray, ...]
    fingerprint: str


class TWModelServer:
    """Serve a stack of TW-pruned GEMM layers with cached plans.

    Layers are registered as ``(dense weight, col_keep, row_masks)`` — the
    pruner's outputs — and compacted lazily on first use.  A request's
    activations flow through every layer in order (``K`` of layer ``l+1``
    must equal ``N`` of layer ``l``); pruned output columns are exact
    zeros, so chaining is closed under TW execution.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.placement = self.config.resolved_placement()
        self.stats = ServerStats()
        self._layers: list[_Layer] = []
        self._formats: dict[tuple, TiledTWMatrix] = {}
        self._plans: dict[tuple, ExecutionPlan] = {}
        self._pending: deque[tuple[int, np.ndarray, float]] = deque()
        self._next_id = 0
        self._batch_id = 0

    # ------------------------------------------------------------------ #
    # model registration
    # ------------------------------------------------------------------ #
    def add_layer(
        self,
        dense: np.ndarray,
        col_keep: np.ndarray,
        row_masks: list[np.ndarray],
    ) -> str:
        """Register one pruned GEMM layer; returns its weight fingerprint."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("layer weight must be 2-D")
        if self._layers and self._layers[-1].dense.shape[1] != dense.shape[0]:
            raise ValueError(
                f"layer K={dense.shape[0]} does not chain onto previous "
                f"layer N={self._layers[-1].dense.shape[1]}"
            )
        fp = weight_fingerprint(dense, col_keep, row_masks)
        self._layers.append(
            _Layer(dense, np.asarray(col_keep, dtype=bool),
                   tuple(np.asarray(m, dtype=bool) for m in row_masks), fp)
        )
        return fp

    @property
    def n_layers(self) -> int:
        """Registered layers."""
        return len(self._layers)

    def shard_layout(self) -> list[str]:
        """Device slot (``name#index``) owning each layer under the placement."""
        return self.placement.shard_labels(self.n_layers)

    def warm(self) -> None:
        """Prebuild every layer's format and plans (optional cold-start hide)."""
        plan_devices = self.placement.plan_devices(self.n_layers)
        for layer, devices in zip(self._layers, plan_devices):
            tw = self._format_for(layer)
            for device in devices:
                self._plan_for(layer, tw, device)

    def preload(
        self,
        index: int,
        tw: TiledTWMatrix,
        plans: dict[DeviceSpec, ExecutionPlan] | None = None,
    ) -> bool:
        """Seed the caches for layer ``index`` with prebuilt artifacts.

        Called by :meth:`repro.api.CompiledTWModel.serve` so compilation
        work is reused instead of redone.  The format is only adopted when
        it matches this server's config (granularity and payload dtype);
        plans only when the server runs the full plan pipeline
        (``batching`` and ``streams`` on, as the compiler builds them).
        Returns whether the format was adopted.
        """
        layer = self._layers[index]
        if tw.granularity != self.config.granularity or tw.dtype != np.dtype(self.config.dtype):
            return False
        if tw.shape != layer.dense.shape:
            return False
        self._formats.setdefault(self._format_key(layer), tw)
        if plans and self.config.batching and self.config.streams:
            for device, plan in plans.items():
                self._plans.setdefault(self._plan_key(layer, device), plan)
        return True

    # ------------------------------------------------------------------ #
    # caches
    # ------------------------------------------------------------------ #
    def _format_key(self, layer: _Layer) -> tuple:
        return (layer.fingerprint, "tw", self.config.granularity, self.config.dtype)

    def _format_for(self, layer: _Layer) -> TiledTWMatrix:
        key = self._format_key(layer)
        hit = self._formats.get(key)
        if hit is not None:
            self.stats.format_hits += 1
            return hit
        self.stats.format_misses += 1
        tw = TiledTWMatrix.from_masks(
            layer.dense,
            self.config.granularity,
            layer.col_keep,
            list(layer.row_masks),
            dtype=np.dtype(self.config.dtype),
        )
        self._formats[key] = tw
        return tw

    def _plan_key(self, layer: _Layer, device: DeviceSpec) -> tuple:
        return (
            self._format_key(layer),
            self.config.batching,
            self.config.streams,
            device,
        )

    def _plan_for(
        self, layer: _Layer, tw: TiledTWMatrix, device: DeviceSpec | None = None
    ) -> ExecutionPlan:
        device = device if device is not None else self.placement.primary
        key = self._plan_key(layer, device)
        hit = self._plans.get(key)
        if hit is not None:
            self.stats.plan_hits += 1
            return hit
        self.stats.plan_misses += 1
        plan = build_execution_plan(
            tw,
            device,
            batching=self.config.batching,
            streams=self.config.streams,
        )
        self._plans[key] = plan
        return plan

    def stream_imbalance(self) -> list[float]:
        """Per-cached-plan stream imbalance diagnostics (max/mean work)."""
        return [p.assignment.imbalance() for p in self._plans.values()]

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def submit(self, x: np.ndarray) -> int:
        """Queue one request's activations (``rows × K``); returns its id."""
        x = np.atleast_2d(np.asarray(x))
        if self._layers and x.shape[1] != self._layers[0].dense.shape[0]:
            raise ValueError(
                f"request K={x.shape[1]} != model K={self._layers[0].dense.shape[0]}"
            )
        rid = self._next_id
        self._next_id += 1
        self._pending.append((rid, x, time.perf_counter()))
        return rid

    def flush(self) -> list[ServedRequest]:
        """Run every queued request as micro-batched GEMMs (one per layer).

        Waves larger than ``max_wave_rows`` split into successive
        micro-batches; requests never split across waves.  Under a
        ``replicated`` placement successive waves round-robin across the
        device replicas; under ``layer_sharded`` every wave flows shard to
        shard, each layer executing with its own device's cached plan.
        """
        served: list[ServedRequest] = []
        while self._pending:
            wave: list[tuple[int, np.ndarray, float]] = []
            rows = 0
            while self._pending:
                r = self._pending[0][1].shape[0]
                if wave and rows + r > self.config.max_wave_rows:
                    break
                wave.append(self._pending.popleft())
                rows += r
            served.extend(self._run_batch(wave))
        return served

    def serve(self, x: np.ndarray) -> ServedRequest:
        """Submit one request and flush immediately."""
        self.submit(x)
        return self.flush()[-1]

    def _wave_devices(self, wave_index: int) -> list[int]:
        """Placement device slot executing each layer for the given wave."""
        n = self.n_layers
        if self.placement.kind == "replicated":
            return [self.placement.replica_for_wave(wave_index)] * n
        return self.placement.layer_shards(n)

    def _run_batch(self, wave: list[tuple[int, np.ndarray, float]]) -> list[ServedRequest]:
        dtype = np.dtype(self.config.dtype)
        batch = np.concatenate([x for _, x, _ in wave], axis=0)
        slots = self._wave_devices(self._batch_id)
        labels = self.placement.device_labels()
        # resolve caches first: busy_s times GEMM execution only, so the
        # cold construction path never inflates throughput numbers
        resolved = []
        for layer, slot in zip(self._layers, slots):
            tw = self._format_for(layer)
            plan = self._plan_for(layer, tw, self.placement.devices[slot])
            resolved.append((tw, plan, labels[slot]))
        a = batch.astype(dtype, copy=False)
        t0 = time.perf_counter()
        t_prev = t0
        for tw, plan, label in resolved:
            a = tw_gemm(a, tw, plan=plan)
            t_now = time.perf_counter()
            self.stats.gemms += 1
            self.stats.device_gemms[label] = self.stats.device_gemms.get(label, 0) + 1
            self.stats.device_busy_s[label] = (
                self.stats.device_busy_s.get(label, 0.0) + (t_now - t_prev)
            )
            t_prev = t_now
        done = time.perf_counter()
        self.stats.busy_s += done - t0
        self.stats.batches += 1
        self._batch_id += 1
        out: list[ServedRequest] = []
        offset = 0
        for rid, x, t_submit in wave:
            r = x.shape[0]
            latency = done - t_submit
            self.stats.requests += 1
            self.stats.rows += r
            self.stats.latency_total_s += latency
            self.stats.latencies_s.append(latency)
            if self.config.queue_timeout_s and latency > self.config.queue_timeout_s:
                self.stats.deadline_misses += 1
            out.append(
                ServedRequest(
                    request_id=rid,
                    output=a[offset : offset + r],
                    rows=r,
                    latency_s=latency,
                    batch_id=self._batch_id - 1,
                )
            )
            offset += r
        return out
