"""Cross-tile batching plans (paper Fig. 7 step 3).

Equal-width TW tiles batch into one kernel; this module builds the explicit
plan (which tiles go to which kernel, padded depth, launch savings) that
:mod:`repro.runtime.scheduler` assigns to streams, the engine prices, *and*
the functional executor (:func:`repro.kernels.masked.tw_gemm`) runs.  There
is exactly one plan representation — a list of :class:`BatchGroup` — shared
by the cost model and the executor, so what gets priced is what executes
(plan → batch → stream → execute).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.tiled import TiledTWMatrix
from repro.gpu.tw_kernel import TWShapeStats

__all__ = ["BatchGroup", "batching_plan"]


@dataclass(frozen=True)
class BatchGroup:
    """One batched kernel: tiles sharing a width.

    Attributes
    ----------
    width:
        Common tile width ``N_i``.
    tile_ids:
        Indices into the layer's tile list.
    max_depth:
        Deepest ``K_i`` in the group — the batched kernel's main-loop bound
        (shallower tiles predicate off the tail, so the batch's wall time
        follows the deepest member).
    """

    width: int
    tile_ids: tuple[int, ...]
    max_depth: int

    @property
    def n_tiles(self) -> int:
        """Tiles in this batch."""
        return len(self.tile_ids)

    def padded_work(self) -> int:
        """Multiply-adds if every member ran at ``max_depth`` (the padding
        overhead batching trades for fewer launches)."""
        return self.max_depth * self.width * self.n_tiles


def batching_plan(
    shape: TWShapeStats | TiledTWMatrix, enabled: bool = True
) -> list[BatchGroup]:
    """Group a layer's tiles into batched kernels.

    Accepts either the cost model's :class:`TWShapeStats` geometry or a
    compacted :class:`~repro.formats.tiled.TiledTWMatrix` directly (the
    executor's view) — ``tile_ids`` index the same tile list either way.
    With batching disabled every tile is its own group (one kernel per
    tile — the "Normal GEMM" row of Fig. 7 step 3).
    """
    if isinstance(shape, TiledTWMatrix):
        shape = TWShapeStats.from_matrix(shape)
    if not enabled:
        return [
            BatchGroup(width=nt, tile_ids=(i,), max_depth=kt)
            for i, (kt, nt) in enumerate(shape.tiles)
        ]
    groups: dict[int, list[int]] = shape.width_groups()
    plan = []
    for width, ids in sorted(groups.items(), reverse=True):
        max_depth = max((shape.tiles[i][0] for i in ids), default=0)
        plan.append(BatchGroup(width=width, tile_ids=tuple(ids), max_depth=max_depth))
    return plan
