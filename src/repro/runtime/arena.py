"""Shared-memory weight arenas for the ``process`` executor (ISSUE 7).

The process executor's whole premise is that a wave descriptor crossing
the pickle boundary stays *small*: request rows, layer ids, slot tags,
plans.  The heavy operands — a layer's compacted
:class:`~repro.formats.tiled.TiledTWMatrix` payloads **and** the
execution plan's width-group batched operands (the ``K × Σ width``
zero-padded weight stacks :func:`repro.kernels.masked._group_operand`
assembles) — are placed once, at server cache-fill time, into a
:class:`multiprocessing.shared_memory.SharedMemory` segment.  Worker
processes then *map* the segment and reconstruct the matrix as zero-copy
read-only NumPy views; the per-wave message only carries an
:class:`ArenaRef` (segment name + slot table), a few hundred bytes.

Lifecycle contract
------------------
- Arenas are **fingerprint-keyed**: :func:`place` is idempotent per key
  and refcounted, so two servers (or two layers sharing weights) sharing
  a format-cache key share one segment.
- The owning process (the server) is the only one that ever *unlinks*.
  :func:`release` drops a reference and unlinks at zero;
  ``TWModelServer.close()`` releases every arena it placed.  Unlinking
  while workers still map the segment is safe on POSIX — their mappings
  survive until they detach — so a crashed or straggling worker can never
  resurrect a segment, and a worker attaching *after* the unlink fails
  cleanly (its wave fails, the server's retry path rebuilds the arena).
- A module-level ``atexit`` hook unlinks anything still owned, so even an
  un-``close()``-d server cannot leak ``/dev/shm`` segments past
  interpreter exit.  :func:`leaked_segments` scans ``/dev/shm`` for the
  ``repro-arena`` prefix so tests can assert cleanliness directly.

Worker side
-----------
:func:`attach` maps a segment (cached per segment name, so a persistent
worker pays the map once per arena, not per wave) and rebuilds the
:class:`TiledTWMatrix` from views.  Crucially it also pre-seeds the
matrix's ``_group_operands`` memo with shm-backed views, so the worker's
:func:`~repro.kernels.masked.tw_gemm` never *assembles* operands — the
zero-copy stacks are the same bytes the parent computed, which is half of
the bit-identity argument (the other half: BLAS GEMM reduction order does
not depend on which process calls it).
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.formats.tiled import TiledTWMatrix, TWTile

__all__ = [
    "ArenaRef",
    "ArraySlot",
    "SEGMENT_PREFIX",
    "place",
    "release",
    "release_all",
    "attach",
    "detach_all",
    "owned_segments",
    "leaked_segments",
]

#: every arena segment name starts with this, so tests (and operators
#: staring at /dev/shm) can attribute segments to this runtime
SEGMENT_PREFIX = "repro-arena"

_ALIGN = 64  # byte alignment of every slot (safe for any numpy dtype)


@dataclass(frozen=True)
class ArraySlot:
    """One array inside a segment: ``(byte offset, shape, dtype name)``."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class TileSlots:
    """Slot table for one :class:`TWTile` (cols / mask_k / data)."""

    cols: ArraySlot
    mask: ArraySlot
    data: ArraySlot


@dataclass(frozen=True)
class OperandSlots:
    """Slot table for one width-group batched operand.

    ``tile_ids`` is the group's memo key; ``stack`` is the ``K × Σ width``
    zero-padded weight stack, ``cols`` the concatenated output columns.
    """

    tile_ids: tuple[int, ...]
    stack: ArraySlot
    cols: ArraySlot


@dataclass(frozen=True)
class ArenaRef:
    """Picklable handle to a placed arena — all a worker needs to attach.

    A few hundred bytes of plain data: the segment name plus the slot
    table describing where each tile array and group operand lives.
    ``null_groups`` lists group keys whose operand is empty (all member
    tiles fully pruned) so workers seed the memo with ``None`` instead of
    re-deriving it.
    """

    name: str
    shape: tuple[int, int]
    granularity: int
    tiles: tuple[TileSlots, ...]
    operands: tuple[OperandSlots, ...]
    null_groups: tuple[tuple[int, ...], ...]
    nbytes: int
    #: per-tile dequantisation scales (plain floats — a few bytes per tile,
    #: so they ride the picklable ref rather than earning shm slots).
    #: Empty on refs placed before quantisation support; attach() treats
    #: that as the neutral scale 1.0 for every tile.
    scales: tuple[float, ...] = ()


class _Owned:
    """Owner-side bookkeeping: the live mapping, its ref, its refcount."""

    def __init__(self, shm: shared_memory.SharedMemory, ref: ArenaRef) -> None:
        self.shm = shm
        self.ref = ref
        self.refcount = 1


_lock = threading.Lock()
_owned: dict[object, _Owned] = {}  # cache key -> owned arena
_counter = 0
# worker-side attachments: segment name -> (mapping, reconstructed matrix)
_attached: dict[str, tuple[shared_memory.SharedMemory, TiledTWMatrix]] = {}


def _next_name() -> str:
    global _counter
    with _lock:
        _counter += 1
        return f"{SEGMENT_PREFIX}-{os.getpid()}-{_counter}"


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _group_keys(plans) -> list[tuple[int, ...]]:
    """Unique group keys across plans, in first-seen order.

    ``batching_plan`` is a pure function of the weight, so every device's
    plan for one layer yields the *same* groups — placing the first
    plan's operands covers all of them.
    """
    seen: list[tuple[int, ...]] = []
    for plan in plans or ():
        groups = plan.groups if hasattr(plan, "groups") else plan
        for group in groups:
            key = tuple(group.tile_ids)
            if key not in seen:
                seen.append(key)
    return seen


def place(key: object, tw: TiledTWMatrix, plans=()) -> ArenaRef:
    """Place (or re-reference) one layer's TW format + operands in shm.

    Idempotent per ``key`` (the server's format-cache key): a repeat call
    bumps the refcount and returns the existing :class:`ArenaRef`.  The
    group operands are computed through
    :func:`~repro.kernels.masked._group_operand` — which also memoises
    them on ``tw`` for the parent's own (inline-oracle) use — then copied
    into the segment.
    """
    with _lock:
        hit = _owned.get(key)
        if hit is not None:
            hit.refcount += 1
            return hit.ref
    from repro.kernels.masked import _group_operand

    # gather every array the segment will hold, in layout order
    arrays: list[np.ndarray] = []
    for t in tw.tiles:
        arrays.extend((
            np.ascontiguousarray(t.col_indices, dtype=np.int64),
            np.ascontiguousarray(t.mask_k, dtype=bool),
            np.ascontiguousarray(t.data),
        ))
    op_entries: list[tuple[tuple[int, ...], np.ndarray, np.ndarray]] = []
    null_groups: list[tuple[int, ...]] = []
    for gkey in _group_keys(plans):
        operand = _group_operand(tw, gkey)
        if operand is None:
            null_groups.append(gkey)
            continue
        stack, cols = operand
        op_entries.append((gkey, np.ascontiguousarray(stack),
                           np.ascontiguousarray(cols, dtype=np.int64)))
        arrays.extend(op_entries[-1][1:])

    offsets: list[int] = []
    cursor = 0
    for arr in arrays:
        cursor = _align(cursor)
        offsets.append(cursor)
        cursor += arr.nbytes
    nbytes = max(cursor, 1)  # SharedMemory rejects size 0

    shm = shared_memory.SharedMemory(create=True, size=nbytes, name=_next_name())
    slot_iter = iter(zip(arrays, offsets))

    def write(arr: np.ndarray, offset: int) -> ArraySlot:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset)
        view[...] = arr
        return ArraySlot(offset=offset, shape=arr.shape, dtype=arr.dtype.str)

    tile_slots = tuple(
        TileSlots(*(write(*next(slot_iter)) for _ in range(3)))
        for _ in tw.tiles
    )
    operand_slots = tuple(
        OperandSlots(
            tile_ids=gkey,
            stack=write(*next(slot_iter)),
            cols=write(*next(slot_iter)),
        )
        for gkey, _stack, _cols in op_entries
    )
    ref = ArenaRef(
        name=shm.name,
        shape=tuple(tw.shape),
        granularity=tw.granularity,
        tiles=tile_slots,
        operands=operand_slots,
        null_groups=tuple(null_groups),
        nbytes=nbytes,
        scales=tuple(float(t.scale) for t in tw.tiles),
    )
    with _lock:
        racer = _owned.get(key)
        if racer is not None:  # lost a race: keep theirs, drop ours
            racer.refcount += 1
            shm.close()
            shm.unlink()
            return racer.ref
        _owned[key] = _Owned(shm, ref)
    return ref


def release(key: object) -> bool:
    """Drop one reference; unlink the segment when the count hits zero.

    Returns whether the segment was actually unlinked.  Unlinking is safe
    while workers still map it (their views stay valid until they detach);
    a *new* attach after this point fails, which is the desired behaviour
    for a closed server.
    """
    with _lock:
        owned = _owned.get(key)
        if owned is None:
            return False
        owned.refcount -= 1
        if owned.refcount > 0:
            return False
        del _owned[key]
    owned.shm.close()
    try:
        owned.shm.unlink()
    except FileNotFoundError:  # already gone (e.g. atexit raced a close)
        pass
    return True


def release_all() -> int:
    """Unlink every owned segment (crash-safety sweep); returns the count."""
    with _lock:
        doomed = list(_owned.values())
        _owned.clear()
    for owned in doomed:
        owned.shm.close()
        try:
            owned.shm.unlink()
        except FileNotFoundError:
            pass
    return len(doomed)


def owned_segments() -> list[str]:
    """Names of segments this process currently owns (tests/diagnostics)."""
    with _lock:
        return sorted(o.shm.name for o in _owned.values())


def leaked_segments() -> list[str]:
    """``/dev/shm`` entries carrying our prefix (any owner, this host).

    The ground truth for the no-leak contract: after every server in a
    test closes, this must not list their segments.  Returns ``[]`` on
    hosts without a ``/dev/shm`` filesystem.
    """
    try:
        return sorted(
            n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)
        )
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []


def _view(buf, slot: ArraySlot, *, writeable: bool = False) -> np.ndarray:
    arr = np.ndarray(slot.shape, dtype=np.dtype(slot.dtype), buffer=buf,
                     offset=slot.offset)
    if not writeable:
        arr.setflags(write=False)
    return arr


def attach(ref: ArenaRef) -> TiledTWMatrix:
    """Map an arena and rebuild its :class:`TiledTWMatrix` (zero-copy).

    Cached per segment name: a persistent worker maps each arena once and
    replays it for every later wave.  The rebuilt matrix's
    ``_group_operands`` memo is pre-seeded with shm-backed views, so
    ``tw_gemm`` on it never assembles an operand.  Raises
    ``FileNotFoundError`` if the owner already unlinked the segment (a
    closed server) — the wave fails and the caller's retry path rebuilds.
    """
    hit = _attached.get(ref.name)
    if hit is not None:
        return hit[1]
    # The attach side must not be tracked by resource_tracker: spawn
    # workers share the parent's tracker process, so a worker-side
    # register is a no-op (the owner already registered the name) but a
    # worker-side *unregister* would strip the owner's entry and make the
    # owner's eventual unlink warn.  Python 3.13 grew
    # ``SharedMemory(track=False)``; on older versions suppress the
    # register call for the duration of the constructor instead.
    try:
        shm = shared_memory.SharedMemory(name=ref.name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        registered = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None
        try:
            shm = shared_memory.SharedMemory(name=ref.name)
        finally:
            resource_tracker.register = registered
    tiles = tuple(
        TWTile(
            col_indices=_view(shm.buf, ts.cols),
            mask_k=_view(shm.buf, ts.mask),
            data=_view(shm.buf, ts.data),
            scale=float(ref.scales[i]) if i < len(ref.scales) else 1.0,
        )
        for i, ts in enumerate(ref.tiles)
    )
    tw = TiledTWMatrix(shape=tuple(ref.shape), granularity=ref.granularity,
                       tiles=tiles)
    memo: dict[tuple[int, ...], object] = {}
    for op in ref.operands:
        memo[tuple(op.tile_ids)] = (
            _view(shm.buf, op.stack), _view(shm.buf, op.cols),
        )
    for gkey in ref.null_groups:
        memo[tuple(gkey)] = None
    object.__setattr__(tw, "_group_operands", memo)
    _attached[ref.name] = (shm, tw)
    return tw


def detach_all() -> None:
    """Drop every cached attachment (worker shutdown).

    Views into the mappings are dropped with the matrices; the mappings
    themselves close once no view references remain (a still-referenced
    buffer just defers the close to interpreter exit — never an error).
    """
    for shm, _tw in list(_attached.values()):
        try:
            shm.close()
        except BufferError:
            pass  # a live view pins the mapping; the OS reclaims it at exit
    _attached.clear()


@atexit.register
def _cleanup_at_exit() -> None:
    # the owner's last line of defence: no /dev/shm segment outlives the
    # process that placed it, close()d or not
    release_all()
