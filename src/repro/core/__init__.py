"""Core tile-wise sparsity algorithms — the paper's contribution.

Public surface:

- :mod:`repro.core.importance` — element importance scores (magnitude and the
  first-order Taylor score of Eq. 1–3) and their aggregation to pruning units.
- :mod:`repro.core.tiling` — GEMM tile configuration shared by the pruner and
  the GPU cost model.
- :mod:`repro.core.schedule` — gradual sparsity schedules for multi-stage
  pruning.
- :mod:`repro.core.tile_sparsity` — one global TW pruning step (column
  pruning, tile reorganisation, row pruning).
- :mod:`repro.core.apriori` — Algorithm 2, the EW-informed apriori tuning.
- :mod:`repro.core.pruner` — Algorithm 1, the multi-stage TW pruning driver.
- :mod:`repro.core.tew` — the hybrid tile-element-wise (TEW) overlay.
- :mod:`repro.core.masks` — mask algebra shared across patterns.
"""

from repro.core.importance import (
    IMPORTANCE,
    ImportanceConfig,
    available_importance,
    column_unit_scores,
    exact_loss_delta,
    magnitude_score,
    normalize_scores,
    resolve_importance,
    row_unit_scores,
    taylor_score,
)
from repro.core.tiling import TileConfig
from repro.core.schedule import (
    SCHEDULES,
    GradualSchedule,
    available_schedules,
    resolve_schedule,
)
from repro.core.masks import (
    mask_sparsity,
    topk_keep_mask,
    validate_tw_mask,
)
from repro.core.tile_sparsity import TWPruneConfig, split_stage_sparsity, tw_prune_step
from repro.core.apriori import AprioriConfig, apriori_adjust, unit_ew_sparsity
from repro.core.pruner import (
    ArrayModel,
    PrunableModel,
    PruningResult,
    TWPruner,
    stage_scores,
)
from repro.core.tew import TEWConfig, TEWSolution, tew_overlay

__all__ = [
    "IMPORTANCE",
    "ImportanceConfig",
    "available_importance",
    "column_unit_scores",
    "exact_loss_delta",
    "magnitude_score",
    "normalize_scores",
    "resolve_importance",
    "row_unit_scores",
    "taylor_score",
    "TileConfig",
    "SCHEDULES",
    "GradualSchedule",
    "available_schedules",
    "resolve_schedule",
    "mask_sparsity",
    "topk_keep_mask",
    "validate_tw_mask",
    "TWPruneConfig",
    "split_stage_sparsity",
    "tw_prune_step",
    "AprioriConfig",
    "apriori_adjust",
    "unit_ew_sparsity",
    "ArrayModel",
    "PrunableModel",
    "PruningResult",
    "TWPruner",
    "stage_scores",
    "TEWConfig",
    "TEWSolution",
    "tew_overlay",
]
