"""Hybrid tile-element-wise (TEW) pattern — TW plus a small EW overlay.

Paper §IV-A "Pattern Overlay": to reach an overall sparsity of α with an EW
fraction δ, first prune to α+δ with pure TW, then *restore* the δ fraction of
elements (of the whole model) with the highest importance scores among those
TW pruned.  The restored elements are stored per tile in CSC format and
executed on CUDA cores, exploiting linearity:

    A · B_TEW = A · B_TW  +  A · B_residual.

TEW buys back most of TW's accuracy gap to EW with a tiny δ (Fig. 10a shows
δ=5% matching EW), at the price of a sparse CUDA-core kernel per layer —
worthwhile on devices without tensor cores (Fig. 10b).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.formats.csc import CSCMatrix

__all__ = ["TEWConfig", "TEWSolution", "tew_overlay"]


@dataclass(frozen=True)
class TEWConfig:
    """TEW overlay strength.

    Attributes
    ----------
    delta:
        Fraction of *all* model elements restored as EW (the paper sweeps
        δ ∈ {1%, 2.5%, 5%, 10%, 15%}).
    """

    delta: float = 0.05

    def __post_init__(self) -> None:
        if not (0.0 <= self.delta < 1.0):
            raise ValueError(f"delta must be in [0, 1), got {self.delta}")


@dataclass
class TEWSolution:
    """Per-layer decomposition of a TEW-pruned model.

    Attributes
    ----------
    tw_masks:
        The pure-TW keep masks (one per layer).
    ew_masks:
        Restored-element masks, disjoint from the TW masks.
    masks:
        Element-wise union ``tw | ew`` — the effective keep masks.
    residuals:
        The restored values of each layer in CSC format (the execution
        payload for the CUDA-core pass).
    """

    tw_masks: list[np.ndarray]
    ew_masks: list[np.ndarray]
    masks: list[np.ndarray]
    residuals: list[CSCMatrix]

    @property
    def overall_sparsity(self) -> float:
        """Sparsity of the combined pattern."""
        total = sum(m.size for m in self.masks)
        kept = sum(int(np.count_nonzero(m)) for m in self.masks)
        return 1.0 - kept / total if total else 0.0

    @property
    def ew_fraction(self) -> float:
        """Fraction of all elements carried by the EW residual (achieved δ)."""
        total = sum(m.size for m in self.masks)
        restored = sum(int(np.count_nonzero(m)) for m in self.ew_masks)
        return restored / total if total else 0.0


def tew_overlay(
    weights: Sequence[np.ndarray],
    scores: Sequence[np.ndarray],
    tw_masks: Sequence[np.ndarray],
    config: TEWConfig,
) -> TEWSolution:
    """Overlay an EW restore pass on TW-pruned layers (global ranking).

    Parameters
    ----------
    weights:
        Dense weight matrices (original values; restored elements take their
        values from here).
    scores:
        Element importance matrices used to choose what to restore.
    tw_masks:
        Keep masks produced by the TW pruner at sparsity ``α + δ``.
    config:
        Overlay strength δ.

    Returns
    -------
    TEWSolution whose overall sparsity is ``α`` (i.e. the TW sparsity minus
    the δ restored fraction, up to rounding).
    """
    if not (len(weights) == len(scores) == len(tw_masks)):
        raise ValueError("weights, scores and tw_masks must have equal lengths")
    ws = [np.asarray(w, dtype=np.float64) for w in weights]
    sc = [np.asarray(s, dtype=np.float64) for s in scores]
    tm = [np.asarray(m, dtype=bool) for m in tw_masks]
    for i, (w, s, m) in enumerate(zip(ws, sc, tm)):
        if not (w.shape == s.shape == m.shape):
            raise ValueError(f"layer {i}: shapes disagree {w.shape}/{s.shape}/{m.shape}")

    total = sum(w.size for w in ws)
    n_restore = int(round(config.delta * total))

    # candidates = TW-pruned elements, globally ranked by score
    cand_scores: list[np.ndarray] = []
    cand_layer: list[np.ndarray] = []
    cand_flat: list[np.ndarray] = []
    for li, (s, m) in enumerate(zip(sc, tm)):
        pruned_flat = np.flatnonzero(~m.ravel())
        cand_scores.append(s.ravel()[pruned_flat])
        cand_layer.append(np.full(pruned_flat.size, li, dtype=np.int64))
        cand_flat.append(pruned_flat)
    ew_masks = [np.zeros(m.shape, dtype=bool) for m in tm]
    if n_restore > 0 and cand_scores:
        all_scores = np.concatenate(cand_scores)
        all_layers = np.concatenate(cand_layer)
        all_flat = np.concatenate(cand_flat)
        n_restore = min(n_restore, all_scores.size)
        top = np.argpartition(-all_scores, n_restore - 1)[:n_restore] if n_restore else []
        for idx in np.asarray(top):
            ew_masks[all_layers[idx]].ravel()[all_flat[idx]] = True

    masks = [t | e for t, e in zip(tm, ew_masks)]
    residuals = [
        CSCMatrix.from_dense(np.where(e, w, 0.0)) for w, e in zip(ws, ew_masks)
    ]
    return TEWSolution(tw_masks=tm, ew_masks=ew_masks, masks=masks, residuals=residuals)
