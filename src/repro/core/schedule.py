"""Gradual sparsity schedules for multi-stage pruning.

Algorithm 1 wraps each prune step in a *stage*: increase the sparsity target
a little (``GraduallyIncrease``), prune to it, fine-tune, repeat until the
final target ``S`` is reached.  Multi-stage pruning recovers accuracy far
better than one-shot pruning (paper §V, citing Han et al.).

Three increase laws are provided:

- ``linear``  — equal increments per stage;
- ``cubic``   — the Zhu & Gupta (2017) law ``s_t = S·(1 − (1 − t/T)³)``,
  front-loading pruning while the model is most plastic;
- ``geometric`` — each stage prunes a fixed fraction of the *remaining*
  weights; absolute increments shrink stage over stage, so it front-loads
  more than linear but less than cubic.

Schedules resolve through :data:`SCHEDULES` (the same
:class:`~repro.registry.Registry` class as patterns, engines,
placements and executors), so ``repro.tune(..., schedule="gradual")`` and
the CLI accept string names and a new schedule is a ``register(...)`` call,
not a new code path:

- ``gradual`` (alias ``gradually_increase``) — :class:`GradualSchedule`
  with its full ``n_stages``/``law``/``start`` surface;
- ``oneshot`` (alias ``one_shot``) — a single stage straight at the target
  (the ablation baseline the paper compares multi-stage pruning against).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.registry import Registry

__all__ = [
    "GradualSchedule",
    "SCHEDULES",
    "resolve_schedule",
    "available_schedules",
]


@dataclass(frozen=True)
class GradualSchedule:
    """Stage-by-stage sparsity targets ending exactly at ``target``.

    Attributes
    ----------
    target:
        Final overall sparsity ``S`` in ``[0, 1)``... strictly ``< 1`` because
        fully-pruned models are degenerate (a 100%-sparse network computes
        nothing).
    n_stages:
        Number of prune+fine-tune stages (``T``); must be ≥ 1.
    law:
        ``"linear"``, ``"cubic"`` or ``"geometric"``.
    start:
        Sparsity the model already has when the schedule begins (``s0``);
        stages interpolate from ``start`` to ``target``.  Must satisfy
        ``0 ≤ start ≤ target``.  The degenerate ``start == target`` case is
        well-defined: one stage that (re-)prunes at ``target`` — useful for
        resuming a finished schedule or re-applying masks after weight
        updates — rather than an empty schedule that would skip pruning
        entirely.
    """

    target: float
    n_stages: int = 4
    law: str = "cubic"
    start: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.target < 1.0):
            raise ValueError(f"target sparsity must be in [0, 1), got {self.target}")
        if not (0.0 <= self.start < 1.0):
            raise ValueError(f"start sparsity must be in [0, 1), got {self.start}")
        if self.start > self.target:
            raise ValueError(
                f"start sparsity {self.start} exceeds target {self.target}: "
                "gradual schedules only increase sparsity (densifying a "
                "pruned model back up is not a schedule stage)"
            )
        if self.n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {self.n_stages}")
        if self.law not in ("linear", "cubic", "geometric"):
            raise ValueError(f"unknown schedule law {self.law!r}")

    def stages(self) -> list[float]:
        """Return the per-stage sparsity targets, strictly increasing to ``S``.

        Stages that would repeat a previous target (possible with
        ``target == start``, e.g. ``target=0``) are collapsed, so every
        returned value demands new pruning work; the degenerate all-equal
        case collapses to the single stage ``[target]``.
        """
        t = np.arange(1, self.n_stages + 1) / self.n_stages
        span = self.target - self.start
        if self.law == "linear":
            s = self.start + span * t
        elif self.law == "cubic":
            s = self.start + span * (1.0 - (1.0 - t) ** 3)
        else:  # geometric: keep fraction decays exponentially to 1 - target
            keep_start = 1.0 - self.start
            keep_final = 1.0 - self.target
            s = 1.0 - keep_start * (keep_final / keep_start) ** t
            # geometric cannot hit target exactly for t<1 by construction,
            # but the last stage must land on it precisely:
            s[-1] = self.target
        out: list[float] = []
        for v in s:
            v = float(min(v, self.target))
            if not out or v > out[-1] + 1e-12:
                out.append(v)
        if not out:
            out = [self.target]
        out[-1] = self.target
        return out


def _oneshot(
    target: float,
    n_stages: int | None = None,
    law: str | None = None,
    start: float = 0.0,
) -> GradualSchedule:
    """One stage straight at the target; conflicting knobs are errors.

    ``n_stages``/``law`` requests are rejected rather than silently
    swallowed — the same no-silent-drop contract ``tune(train=...)``
    applies to fine-tuning budgets.
    """
    if n_stages not in (None, 1) or law is not None:
        raise ValueError(
            "the oneshot schedule is single-stage by definition — drop "
            "n_stages=/law= or use schedule='gradual'"
        )
    return GradualSchedule(target=target, n_stages=1, start=start)


#: name → schedule factory; ``repro.tune`` and the CLI resolve here
SCHEDULES = Registry("schedule")
SCHEDULES.register(
    "gradual",
    GradualSchedule,
    aliases=("gradually_increase",),
)
SCHEDULES.register("oneshot", _oneshot, aliases=("one_shot",))


def resolve_schedule(
    spec: "GradualSchedule | str | None",
    *,
    target: float,
    **kwargs,
) -> GradualSchedule:
    """A :class:`GradualSchedule` from a registry name, instance, or ``None``.

    ``None`` means the default ``gradual`` entry.  Extra ``kwargs``
    (``n_stages``, ``law``, ``start``) are forwarded to the factory with
    ``None`` values dropped, so callers can thread optional CLI flags
    straight through.  An instance passes through untouched (its own
    ``target`` wins over the ``target`` argument).
    """
    if isinstance(spec, GradualSchedule):
        return spec
    if spec is None:
        spec = "gradual"
    if not isinstance(spec, str):
        raise TypeError(
            f"schedule must be a GradualSchedule, a registry name or None, "
            f"got {type(spec).__name__}"
        )
    kwargs = {k: v for k, v in kwargs.items() if v is not None}
    return SCHEDULES.create(spec, target=target, **kwargs)


def available_schedules() -> list[str]:
    """Canonical schedule names."""
    return SCHEDULES.names()
