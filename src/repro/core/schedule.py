"""Gradual sparsity schedules for multi-stage pruning.

Algorithm 1 wraps each prune step in a *stage*: increase the sparsity target
a little (``GraduallyIncrease``), prune to it, fine-tune, repeat until the
final target ``S`` is reached.  Multi-stage pruning recovers accuracy far
better than one-shot pruning (paper §V, citing Han et al.).

Three increase laws are provided:

- ``linear``  — equal increments per stage;
- ``cubic``   — the Zhu & Gupta (2017) law ``s_t = S·(1 − (1 − t/T)³)``,
  front-loading pruning while the model is most plastic;
- ``geometric`` — each stage prunes a fixed fraction of the *remaining*
  weights; absolute increments shrink stage over stage, so it front-loads
  more than linear but less than cubic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GradualSchedule"]


@dataclass(frozen=True)
class GradualSchedule:
    """Stage-by-stage sparsity targets ending exactly at ``target``.

    Attributes
    ----------
    target:
        Final overall sparsity ``S`` in ``[0, 1)``... strictly ``< 1`` because
        fully-pruned models are degenerate (a 100%-sparse network computes
        nothing).
    n_stages:
        Number of prune+fine-tune stages (``T``); must be ≥ 1.
    law:
        ``"linear"``, ``"cubic"`` or ``"geometric"``.
    """

    target: float
    n_stages: int = 4
    law: str = "cubic"

    def __post_init__(self) -> None:
        if not (0.0 <= self.target < 1.0):
            raise ValueError(f"target sparsity must be in [0, 1), got {self.target}")
        if self.n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {self.n_stages}")
        if self.law not in ("linear", "cubic", "geometric"):
            raise ValueError(f"unknown schedule law {self.law!r}")

    def stages(self) -> list[float]:
        """Return the per-stage sparsity targets, strictly increasing to ``S``.

        Stages that would repeat a previous target (possible with ``target=0``)
        are collapsed, so every returned value demands new pruning work.
        """
        t = np.arange(1, self.n_stages + 1) / self.n_stages
        if self.law == "linear":
            s = self.target * t
        elif self.law == "cubic":
            s = self.target * (1.0 - (1.0 - t) ** 3)
        else:  # geometric: keep fraction decays exponentially to 1 - target
            keep_final = 1.0 - self.target
            s = 1.0 - keep_final**t
            # geometric cannot hit target exactly for t<1 by construction,
            # but the last stage must land on it precisely:
            s[-1] = self.target
        out: list[float] = []
        for v in s:
            v = float(min(v, self.target))
            if not out or v > out[-1] + 1e-12:
                out.append(v)
        if not out:
            out = [self.target]
        out[-1] = self.target
        return out
