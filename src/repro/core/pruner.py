"""Algorithm 1 — the multi-stage tile-wise pruning driver.

The driver repeatedly (a) recomputes importance scores on the live model,
(b) runs one global TW step (:func:`repro.core.tile_sparsity.tw_prune_step`)
at the stage's sparsity target, (c) applies the resulting masks, and
(d) fine-tunes to recover accuracy, until the final target ``S`` is reached.
Optionally, an EW reference pruned at ``S`` supplies the apriori prior of
Algorithm 2 for every stage's column pruning.

The driver is decoupled from any specific model framework through the small
:class:`PrunableModel` protocol; :class:`ArrayModel` adapts raw NumPy arrays
(no fine-tuning) and :class:`repro.nn.trainer.TrainedModelAdapter` adapts
real trained networks.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.apriori import AprioriConfig, apriori_adjust, unit_ew_sparsity
from repro.core.importance import (
    ImportanceConfig,
    column_unit_scores,
    normalize_scores,
    score_matrix,
)
from repro.core.masks import global_topk_keep_masks, overall_sparsity
from repro.core.schedule import GradualSchedule
from repro.core.tile_sparsity import TWPruneConfig, TWStepResult, tw_prune_step

__all__ = [
    "PrunableModel",
    "ArrayModel",
    "StageRecord",
    "PruningResult",
    "TWPruner",
    "stage_scores",
]


def stage_scores(
    model: "PrunableModel", config: ImportanceConfig
) -> list[np.ndarray]:
    """Importance scores for the model's *current* weights.

    Recomputed at the start of every stage (Alg. 1 line 3).  Requesting
    Taylor scores from a model without gradients degrades to magnitude
    rather than failing — magnitude needs no gradients, and raw weight
    stacks (:class:`ArrayModel` without gradient proxies) are a supported
    source.  Shared by :class:`TWPruner` and the baseline-pattern stage
    loop in :func:`repro.api.tune`.
    """
    weights = model.weight_matrices()
    grads = model.gradient_matrices()
    if config.method == "taylor" and grads is None:
        config = ImportanceConfig(
            method="magnitude",
            reduction=config.reduction,
            normalize=config.normalize,
        )
    return [
        score_matrix(w, grads[i] if grads else None, config)
        for i, w in enumerate(weights)
    ]


@runtime_checkable
class PrunableModel(Protocol):
    """What the pruner needs from a model."""

    def weight_matrices(self) -> list[np.ndarray]:
        """Current dense weight matrices of the prunable layers."""
        ...

    def gradient_matrices(self) -> list[np.ndarray] | None:
        """Loss gradients w.r.t. each weight matrix (for Taylor scores), or
        ``None`` when unavailable (forces magnitude scoring)."""
        ...

    def apply_masks(self, masks: list[np.ndarray]) -> None:
        """Zero pruned weights and keep them zero through later training."""
        ...

    def fine_tune(self) -> None:
        """Recover accuracy after a pruning stage (may be a no-op)."""
        ...


class ArrayModel:
    """Adapter exposing raw arrays as a :class:`PrunableModel`.

    Useful for pruning standalone matrices (kernels, benchmarks) and for
    testing the driver without a training loop.  Optional static gradient
    proxies enable Taylor scoring.

    Raw arrays carry no loss function, optimizer or data, so
    :meth:`fine_tune` is a **documented no-op** (see
    :attr:`supports_fine_tuning`): the multi-stage driver degenerates to
    iterated re-scoring + pruning of the frozen values.  Anything that
    needs real per-stage recovery — ``repro.tune(..., train=...)``
    included — must wrap actual training state in
    :class:`repro.nn.trainer.TrainedModelAdapter` instead; ``tune`` rejects
    a ``train=`` override on this adapter with an explicit error rather
    than silently skipping the fine-tuning epochs.
    """

    #: raw arrays cannot fine-tune; repro.tune() checks this before
    #: accepting a train= override so the epochs are never silently dropped
    supports_fine_tuning = False

    def __init__(
        self,
        weights: list[np.ndarray],
        gradients: list[np.ndarray] | None = None,
    ) -> None:
        self._weights = [np.array(w, dtype=np.float64) for w in weights]
        if gradients is not None and len(gradients) != len(weights):
            raise ValueError("gradients must match weights in count")
        self._gradients = (
            [np.array(g, dtype=np.float64) for g in gradients] if gradients else None
        )
        self.masks: list[np.ndarray] = [np.ones(w.shape, dtype=bool) for w in self._weights]

    def weight_matrices(self) -> list[np.ndarray]:
        return self._weights

    def gradient_matrices(self) -> list[np.ndarray] | None:
        return self._gradients

    def apply_masks(self, masks: list[np.ndarray]) -> None:
        if len(masks) != len(self._weights):
            raise ValueError("mask count mismatch")
        for w, m in zip(self._weights, masks):
            if m.shape != w.shape:
                raise ValueError(f"mask shape {m.shape} != weight shape {w.shape}")
            w *= m
        self.masks = [np.asarray(m, dtype=bool).copy() for m in masks]

    def fine_tune(self) -> None:
        """No-op by design: raw arrays have nothing to train (class docs)."""
        return None


@dataclass
class StageRecord:
    """Bookkeeping for one prune+fine-tune stage."""

    target_sparsity: float
    achieved_sparsity: float
    per_matrix_sparsity: list[float]


@dataclass
class PruningResult:
    """Final output of the multi-stage driver."""

    masks: list[np.ndarray]
    step: TWStepResult
    history: list[StageRecord] = field(default_factory=list)

    @property
    def achieved_sparsity(self) -> float:
        """Overall sparsity of the final masks."""
        return overall_sparsity(self.masks)


class TWPruner:
    """Multi-stage global tile-wise pruner (paper Algorithm 1).

    Parameters
    ----------
    config:
        TW step hyper-parameters (granularity ``G``, column/row split, …).
    schedule:
        Stage-by-stage sparsity targets (``GraduallyIncrease``).
    importance:
        Scoring configuration; defaults to the paper's first-order Taylor
        method with sum pooling.
    apriori:
        If given, an EW reference at the final target is computed once from
        the initial scores and injected into every stage's column pruning
        (Algorithm 2).
    """

    def __init__(
        self,
        config: TWPruneConfig,
        schedule: GradualSchedule,
        importance: ImportanceConfig | None = None,
        apriori: AprioriConfig | None = None,
    ) -> None:
        self.config = config
        self.schedule = schedule
        self.importance = importance or ImportanceConfig()
        self.apriori = apriori

    # ------------------------------------------------------------------ #
    def _scores(self, model: PrunableModel) -> list[np.ndarray]:
        return stage_scores(model, self.importance)

    def _ew_reference(self, model: PrunableModel) -> list[np.ndarray]:
        """EW keep-masks at the final target — Algorithm 2's prior."""
        scores = self._scores(model)
        return global_topk_keep_masks(scores, self.schedule.target)

    def prune_stages(
        self, model: PrunableModel
    ) -> Iterator[tuple[float, TWStepResult]]:
        """Run Algorithm 1 stage by stage, yielding after each stage.

        Each yielded ``(stage_target, step)`` pair reflects a stage whose
        masks have already been applied and fine-tuned, so callers can
        interleave their own per-stage work — metric evaluation, trajectory
        logging (:func:`repro.api.tune` does both) — without re-wiring the
        loop.  :meth:`prune` is this generator driven to completion.
        """
        if not isinstance(model, PrunableModel):
            raise TypeError("model does not satisfy the PrunableModel protocol")
        ew_sparsity_per_layer: list[np.ndarray] | None = None
        if self.apriori is not None:
            ew_masks = self._ew_reference(model)
            ew_sparsity_per_layer = [unit_ew_sparsity(m) for m in ew_masks]

        for stage_target in self.schedule.stages():
            scores = self._scores(model)
            adjust = None
            if ew_sparsity_per_layer is not None:
                adjust = []
                for s, ew_sp in zip(scores, ew_sparsity_per_layer):
                    cs = column_unit_scores(
                        normalize_scores(s, self.config.normalize), self.config.reduction
                    )
                    adjust.append(apriori_adjust(cs, ew_sp, self.apriori))
            step = tw_prune_step(scores, stage_target, self.config, column_score_adjust=adjust)
            model.apply_masks(step.masks)
            model.fine_tune()
            yield stage_target, step

    def prune(self, model: PrunableModel) -> PruningResult:
        """Run the full multi-stage pruning loop on ``model``."""
        history: list[StageRecord] = []
        step: TWStepResult | None = None
        for stage_target, step in self.prune_stages(model):
            history.append(
                StageRecord(
                    target_sparsity=stage_target,
                    achieved_sparsity=step.achieved_sparsity,
                    per_matrix_sparsity=step.per_matrix_sparsity(),
                )
            )
        assert step is not None, "schedule produced no stages"
        return PruningResult(masks=step.masks, step=step, history=history)
