"""One global tile-wise pruning step (the body of Algorithm 1's stage loop).

Given per-layer element importance scores and a stage sparsity target, this
module performs the paper's two-phase pruning:

1. **Column pruning** (Alg. 1 lines 4–12): every ``K×1`` column of every
   weight matrix is a pruning unit.  Units are scored by collective
   importance, optionally re-prioritised by apriori tuning (Alg. 2), ranked
   *globally across all layers*, and the lowest-scored are pruned.
2. **Tile reorganisation + row pruning** (lines 13–20): surviving columns are
   regrouped into tiles of ``G`` (paper §IV-A "Pruning Order"), and every
   ``1×G`` tile row becomes a pruning unit, again ranked globally.

The stage sparsity ``s`` is split between the two phases so that the kept
fractions multiply out: ``(1-s_col)·(1-s_row) = 1-s``.  The paper leaves the
split implicit; we expose it as ``col_row_split`` (0 = rows only, 1 = columns
only, 0.5 = symmetric default) and treat it as a documented design choice
(see DESIGN.md §6 and the ablation benchmark).

Global ranking is what lets TW adapt to the uneven cross-layer sparsity
distribution (paper Fig. 5) that vector-wise pruning cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.core.importance import (
    column_unit_scores,
    normalize_scores,
    row_unit_scores,
)
from repro.core.masks import tw_mask_from_tiles
from repro.formats.tiled import TiledTWMatrix

__all__ = ["TWPruneConfig", "TWStepResult", "split_stage_sparsity", "tw_prune_step"]


@dataclass(frozen=True)
class TWPruneConfig:
    """Hyper-parameters of the TW pruning step.

    Attributes
    ----------
    granularity:
        Tile width ``G`` — the paper's central accuracy/latency knob
        (Fig. 9; G=128 is the recommended setting).
    col_row_split:
        Fraction of the stage's log-survival assigned to column pruning;
        ``(1-s_col) = (1-s)^split``.  0.5 splits symmetrically.
    reorganize:
        Regroup surviving columns into ``G``-wide tiles before row pruning
        (paper default).  ``False`` keeps original panel boundaries
        (ablation).
    reduction:
        Unit score pooling: ``"sum"`` (paper's collective importance),
        ``"mean"``, or ``"l2"``.
    normalize:
        Cross-layer score normalisation (see ImportanceConfig).
    min_keep_cols:
        Never prune a matrix below this many surviving columns.
    min_keep_rows:
        Never prune a tile below this many surviving rows.
    budget:
        ``"elements"`` — greedy element-weighted selection that lands on the
        target overall sparsity (default); ``"units"`` — percentile-of-units
        semantics exactly as written in Alg. 1.
    """

    granularity: int = 128
    col_row_split: float = 0.5
    reorganize: bool = True
    reduction: str = "sum"
    normalize: str = "none"
    min_keep_cols: int = 1
    min_keep_rows: int = 1
    budget: str = "elements"

    def __post_init__(self) -> None:
        if self.granularity <= 0:
            raise ValueError(f"granularity must be positive, got {self.granularity}")
        if not (0.0 <= self.col_row_split <= 1.0):
            raise ValueError(f"col_row_split must be in [0, 1], got {self.col_row_split}")
        if self.min_keep_cols < 0 or self.min_keep_rows < 0:
            raise ValueError("minimum keep counts must be non-negative")
        if self.budget not in ("elements", "units"):
            raise ValueError(f"unknown budget mode {self.budget!r}")


@dataclass
class TWStepResult:
    """Output of one TW pruning step over a list of weight matrices."""

    col_keeps: list[np.ndarray] = field(default_factory=list)
    column_groups: list[list[np.ndarray]] = field(default_factory=list)
    row_masks: list[list[np.ndarray]] = field(default_factory=list)
    masks: list[np.ndarray] = field(default_factory=list)
    achieved_sparsity: float = 0.0

    def per_matrix_sparsity(self) -> list[float]:
        """Sparsity of each matrix — the uneven distribution of Fig. 5."""
        return [1.0 - float(m.mean()) for m in self.masks]


def split_stage_sparsity(stage_sparsity: float, col_row_split: float) -> tuple[float, float]:
    """Split an overall sparsity target between column and row pruning.

    Returns ``(s_col, s_row)`` with ``(1-s_col)·(1-s_row) = 1-stage_sparsity``.
    """
    if not (0.0 <= stage_sparsity < 1.0):
        raise ValueError(f"stage sparsity must be in [0, 1), got {stage_sparsity}")
    keep = 1.0 - stage_sparsity
    col_keep = keep**col_row_split
    row_keep = keep / col_keep if col_keep > 0 else 0.0
    return 1.0 - col_keep, 1.0 - row_keep


def _global_select(
    scores: np.ndarray,
    weights: np.ndarray,
    keep_frac: float,
    forced: np.ndarray,
    budget: str,
) -> np.ndarray:
    """Select which units survive, globally across all layers.

    Parameters
    ----------
    scores:
        Unit importance scores (higher = more important), any shape-(n,) mix
        of layers.
    weights:
        Element count of each unit (for ``budget="elements"``).
    keep_frac:
        Target fraction to keep (of elements or of units per ``budget``).
    forced:
        Units that must survive regardless of score (per-layer minimums).
    budget:
        ``"elements"`` or ``"units"``.

    Returns a boolean keep array.  Greedy element-weighted selection keeps
    the highest-scored units until the element budget is met; forced units
    are charged against the budget first.
    """
    n = scores.shape[0]
    keep = forced.copy()
    if n == 0:
        return keep
    order = np.lexsort((np.arange(n), -scores))  # score desc, index asc for ties
    if budget == "units":
        target_units = int(round(keep_frac * n))
        remaining = target_units - int(forced.sum())
        for idx in order:
            if remaining <= 0:
                break
            if not keep[idx]:
                keep[idx] = True
                remaining -= 1
        return keep
    target_elems = keep_frac * float(weights.sum())
    used = float(weights[forced].sum())
    for idx in order:
        if used >= target_elems:
            break
        if not keep[idx]:
            keep[idx] = True
            used += float(weights[idx])
    return keep


def tw_prune_step(
    score_matrices: Sequence[np.ndarray],
    stage_sparsity: float,
    config: TWPruneConfig,
    *,
    column_score_adjust: Sequence[np.ndarray] | None = None,
) -> TWStepResult:
    """Run one global TW pruning step (Alg. 1 lines 4–20).

    Parameters
    ----------
    score_matrices:
        One element-importance matrix per prunable layer (``K_l × N_l``).
        Already-pruned elements should carry zero score (which they do
        naturally: masked weights are zero, so both magnitude and Taylor
        scores vanish) — this yields stage-to-stage monotonicity.
    stage_sparsity:
        Overall sparsity target for this stage.
    config:
        See :class:`TWPruneConfig`.
    column_score_adjust:
        Optional apriori-tuned replacement column scores per layer (from
        :func:`repro.core.apriori.apriori_adjust`); same shapes as the
        layers' column counts.

    Returns
    -------
    TWStepResult with per-layer column keeps, reorganised tile groups, row
    masks, full element masks, and the achieved overall sparsity.
    """
    mats = [np.asarray(s, dtype=np.float64) for s in score_matrices]
    for i, m in enumerate(mats):
        if m.ndim != 2:
            raise ValueError(f"score matrix {i} must be 2-D, got ndim={m.ndim}")
    s_col, s_row = split_stage_sparsity(stage_sparsity, config.col_row_split)

    # ---------------- phase 1: global column pruning ---------------- #
    col_scores: list[np.ndarray] = []
    for i, m in enumerate(mats):
        cs = column_unit_scores(normalize_scores(m, config.normalize), config.reduction)
        if column_score_adjust is not None:
            adj = np.asarray(column_score_adjust[i], dtype=np.float64)
            if adj.shape != cs.shape:
                raise ValueError(
                    f"layer {i}: adjusted column scores shape {adj.shape} != {cs.shape}"
                )
            cs = adj
        col_scores.append(cs)

    all_scores = np.concatenate(col_scores) if col_scores else np.zeros(0)
    col_elems = np.concatenate(
        [np.full(m.shape[1], m.shape[0], dtype=np.float64) for m in mats]
    ) if mats else np.zeros(0)
    forced = np.zeros(all_scores.shape[0], dtype=bool)
    offset = 0
    for i, cs in enumerate(col_scores):
        n_force = min(config.min_keep_cols, cs.shape[0])
        if n_force > 0:
            top = np.argsort(-cs, kind="stable")[:n_force]
            forced[offset + top] = True
        offset += cs.shape[0]
    col_keep_flat = _global_select(all_scores, col_elems, 1.0 - s_col, forced, config.budget)

    col_keeps: list[np.ndarray] = []
    offset = 0
    for m in mats:
        col_keeps.append(col_keep_flat[offset : offset + m.shape[1]])
        offset += m.shape[1]

    # ------- phase 2: reorganise + global tile-row pruning ---------- #
    groups_per_layer: list[list[np.ndarray]] = [
        TiledTWMatrix.column_groups(ck, config.granularity, reorganize=config.reorganize)
        for ck in col_keeps
    ]
    unit_scores: list[float] = []
    unit_widths: list[float] = []
    unit_layer: list[int] = []
    unit_tile: list[int] = []
    unit_row: list[int] = []
    forced_flags: list[bool] = []
    for li, (m, groups) in enumerate(zip(mats, groups_per_layer)):
        norm = normalize_scores(m, config.normalize)
        per_tile = row_unit_scores(norm, groups, config.reduction)
        for ti, (cols, rs) in enumerate(zip(groups, per_tile)):
            n_force = min(config.min_keep_rows, rs.shape[0])
            protected = set(np.argsort(-rs, kind="stable")[:n_force].tolist())
            for r in range(rs.shape[0]):
                unit_scores.append(float(rs[r]))
                unit_widths.append(float(cols.size))
                unit_layer.append(li)
                unit_tile.append(ti)
                unit_row.append(r)
                forced_flags.append(r in protected)

    unit_scores_arr = np.array(unit_scores, dtype=np.float64)
    unit_widths_arr = np.array(unit_widths, dtype=np.float64)
    forced_arr = np.array(forced_flags, dtype=bool)
    row_keep_flat = _global_select(
        unit_scores_arr, unit_widths_arr, 1.0 - s_row, forced_arr, config.budget
    )

    row_masks: list[list[np.ndarray]] = [
        [np.zeros(m.shape[0], dtype=bool) for _ in groups]
        for m, groups in zip(mats, groups_per_layer)
    ]
    for u in range(row_keep_flat.shape[0]):
        if row_keep_flat[u]:
            row_masks[unit_layer[u]][unit_tile[u]][unit_row[u]] = True

    masks = [
        tw_mask_from_tiles(m.shape, groups, rms)
        for m, groups, rms in zip(mats, groups_per_layer, row_masks)
    ]
    total = sum(m.size for m in mats)
    kept = sum(int(np.count_nonzero(mk)) for mk in masks)
    achieved = 1.0 - kept / total if total else 0.0
    return TWStepResult(
        col_keeps=col_keeps,
        column_groups=groups_per_layer,
        row_masks=row_masks,
        masks=masks,
        achieved_sparsity=achieved,
    )
