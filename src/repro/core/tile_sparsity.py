"""One global tile-wise pruning step (the body of Algorithm 1's stage loop).

Given per-layer element importance scores and a stage sparsity target, this
module performs the paper's two-phase pruning:

1. **Column pruning** (Alg. 1 lines 4–12): every ``K×1`` column of every
   weight matrix is a pruning unit.  Units are scored by collective
   importance, optionally re-prioritised by apriori tuning (Alg. 2), ranked
   *globally across all layers*, and the lowest-scored are pruned.
2. **Tile reorganisation + row pruning** (lines 13–20): surviving columns are
   regrouped into tiles of ``G`` (paper §IV-A "Pruning Order"), and every
   ``1×G`` tile row becomes a pruning unit, again ranked globally.

The stage sparsity ``s`` is split between the two phases so that the kept
fractions multiply out: ``(1-s_col)·(1-s_row) = 1-s``.  The paper leaves the
split implicit; we expose it as ``col_row_split`` (0 = rows only, 1 = columns
only, 0.5 = symmetric default) and treat it as a documented design choice
(see DESIGN.md §6 and the ablation benchmark).

Global ranking is what lets TW adapt to the uneven cross-layer sparsity
distribution (paper Fig. 5) that vector-wise pruning cannot express.

Vectorisation contract
----------------------
:func:`tw_prune_step` is the vectorised production path: selection runs as a
sort + ``np.cumsum`` threshold, phase-2 unit assembly is built per layer with
``np.repeat``/``np.concatenate``, and unit scores are computed with BLAS
segment sums.  :func:`tw_prune_step_reference` keeps the original per-unit
Python greedy loops verbatim as the correctness oracle.  The two produce
bit-identical results whenever unit scores are exactly representable (e.g.
integer-valued score matrices, or any data whose per-unit sums round
identically under re-association) — summation *order* inside a unit may
differ between the two paths, so adversarially constructed scores that
straddle a rounding boundary can in principle select differently; importance
scores are non-negative, which keeps that re-association error at a few ulp.
``tests/test_vectorized_paths.py`` pins the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.core.importance import (
    column_unit_scores,
    normalize_scores,
    row_unit_scores,
    row_unit_scores_matrix,
)
from repro.core.masks import _tw_mask_from_tiles_loop, tw_mask_from_tile_matrix
from repro.formats.tiled import TiledTWMatrix

__all__ = [
    "TWPruneConfig",
    "TWStepResult",
    "split_stage_sparsity",
    "tw_prune_step",
    "tw_prune_step_reference",
]


@dataclass(frozen=True)
class TWPruneConfig:
    """Hyper-parameters of the TW pruning step.

    Attributes
    ----------
    granularity:
        Tile width ``G`` — the paper's central accuracy/latency knob
        (Fig. 9; G=128 is the recommended setting).
    col_row_split:
        Fraction of the stage's log-survival assigned to column pruning;
        ``(1-s_col) = (1-s)^split``.  0.5 splits symmetrically.
    reorganize:
        Regroup surviving columns into ``G``-wide tiles before row pruning
        (paper default).  ``False`` keeps original panel boundaries
        (ablation).
    reduction:
        Unit score pooling: ``"sum"`` (paper's collective importance),
        ``"mean"``, or ``"l2"``.
    normalize:
        Cross-layer score normalisation (see ImportanceConfig).
    min_keep_cols:
        Never prune a matrix below this many surviving columns.
    min_keep_rows:
        Never prune a tile below this many surviving rows.
    budget:
        ``"elements"`` — greedy element-weighted selection that lands on the
        target overall sparsity (default); ``"units"`` — percentile-of-units
        semantics exactly as written in Alg. 1.
    """

    granularity: int = 128
    col_row_split: float = 0.5
    reorganize: bool = True
    reduction: str = "sum"
    normalize: str = "none"
    min_keep_cols: int = 1
    min_keep_rows: int = 1
    budget: str = "elements"

    def __post_init__(self) -> None:
        if self.granularity <= 0:
            raise ValueError(f"granularity must be positive, got {self.granularity}")
        if not (0.0 <= self.col_row_split <= 1.0):
            raise ValueError(f"col_row_split must be in [0, 1], got {self.col_row_split}")
        if self.min_keep_cols < 0 or self.min_keep_rows < 0:
            raise ValueError("minimum keep counts must be non-negative")
        if self.budget not in ("elements", "units"):
            raise ValueError(f"unknown budget mode {self.budget!r}")


@dataclass
class TWStepResult:
    """Output of one TW pruning step over a list of weight matrices."""

    col_keeps: list[np.ndarray] = field(default_factory=list)
    column_groups: list[list[np.ndarray]] = field(default_factory=list)
    row_masks: list[list[np.ndarray]] = field(default_factory=list)
    masks: list[np.ndarray] = field(default_factory=list)
    achieved_sparsity: float = 0.0

    def per_matrix_sparsity(self) -> list[float]:
        """Sparsity of each matrix — the uneven distribution of Fig. 5."""
        return [1.0 - float(m.mean()) for m in self.masks]


def split_stage_sparsity(stage_sparsity: float, col_row_split: float) -> tuple[float, float]:
    """Split an overall sparsity target between column and row pruning.

    Returns ``(s_col, s_row)`` with ``(1-s_col)·(1-s_row) = 1-stage_sparsity``.
    """
    if not (0.0 <= stage_sparsity < 1.0):
        raise ValueError(f"stage sparsity must be in [0, 1), got {stage_sparsity}")
    keep = 1.0 - stage_sparsity
    col_keep = keep**col_row_split
    row_keep = keep / col_keep if col_keep > 0 else 0.0
    return 1.0 - col_keep, 1.0 - row_keep


# --------------------------------------------------------------------- #
# global unit selection
# --------------------------------------------------------------------- #
def _stable_desc_order(scores: np.ndarray) -> np.ndarray:
    """Indices ordering ``scores`` descending, ties broken by index ascending.

    Equivalent to ``np.lexsort((np.arange(n), -scores))`` but ~5× faster on
    tie-free data: an unstable quicksort is attempted first and the stable
    mergesort only runs when the sorted keys actually contain a tie (or a
    NaN, whose ordering quicksort does not pin down).
    """
    neg = -scores
    order = np.argsort(neg)
    s = neg[order]
    if s.size > 1 and (np.any(s[1:] == s[:-1]) or np.isnan(s[-1])):
        return np.argsort(neg, kind="stable")
    return order


def _threshold_score(
    c: np.ndarray, w: np.ndarray, budget_rem: float
) -> tuple[float, float]:
    """Find the boundary score of the greedy element-weighted selection.

    Returns ``(v_star, w_above)`` where ``v_star`` is the score of the unit
    at which the greedy walk crosses ``budget_rem`` and ``w_above`` is the
    total weight of units scoring strictly above it.  Quickselect-style:
    each round partitions the active candidates around a pivot and discards
    the side that provably does not contain the boundary, so the expected
    cost is O(n) — no full sort of the unit scores is ever taken.
    """
    base = 0.0
    total = float(w.sum())
    rounds = 0
    while True:
        if c.size == 1:
            return float(c[0]), base
        rounds += 1
        if rounds <= 6 and total > 0:
            # proportional pivot: weights are near-uniform tile widths, so
            # the boundary sits near the (rem/total)-quantile of the active
            # set — this usually lands within a whisker and the active set
            # collapses in two rounds
            k = min(c.size - 1, max(0, int(c.size * (budget_rem - base) / total)))
        else:
            k = c.size // 2  # median pivot guarantees geometric shrink
        pivot = np.partition(c, c.size - 1 - k)[c.size - 1 - k]
        gt = c > pivot
        w_gt = float(w[gt].sum())
        if base + w_gt >= budget_rem:
            c, w = c[gt], w[gt]
            total = w_gt
            continue
        eq_w = float(w[c == pivot].sum())
        if base + w_gt + eq_w >= budget_rem:
            return float(pivot), base + w_gt
        lt = c < pivot
        base += w_gt + eq_w
        c, w = c[lt], w[lt]
        total = float(w.sum())


def _global_select_sorted(
    scores: np.ndarray,
    weights: np.ndarray,
    keep_frac: float,
    forced: np.ndarray,
    budget: str,
) -> np.ndarray:
    """Sort-based vectorised selection (fallback for NaN / negative weights).

    Mirrors the reference greedy walk via a stable descending order plus a
    sequential ``np.cumsum`` over candidate weights.
    """
    n = scores.shape[0]
    keep = forced.copy()
    order = _stable_desc_order(scores)
    cand = order[~forced[order]]  # non-forced units, best first
    if budget == "units":
        target_units = int(round(keep_frac * n))
        remaining = target_units - int(forced.sum())
        if remaining > 0:
            keep[cand[:remaining]] = True
        return keep
    target_elems = keep_frac * float(weights.sum())
    used0 = float(weights[forced].sum())
    # used-before-candidate-j, accumulated in the exact order the scalar
    # loop adds them (np.cumsum is a sequential accumulation)
    acc = np.cumsum(np.concatenate(([used0], np.asarray(weights[cand], dtype=np.float64))))
    below = acc[:-1] < target_elems
    # the scalar loop stops at the first unit at/over budget, permanently
    selected = np.logical_and.accumulate(below) if below.size else below
    keep[cand[selected]] = True
    return keep


def _global_select_reference(
    scores: np.ndarray,
    weights: np.ndarray,
    keep_frac: float,
    forced: np.ndarray,
    budget: str,
) -> np.ndarray:
    """Scalar greedy selection — the oracle the vectorised path must match.

    This is the original per-unit Python loop, kept verbatim so the
    vectorised :func:`_global_select` has a reference to be tested against
    (see the vectorisation contract in the module docstring).
    """
    n = scores.shape[0]
    keep = forced.copy()
    if n == 0:
        return keep
    order = np.lexsort((np.arange(n), -scores))  # score desc, index asc for ties
    if budget == "units":
        target_units = int(round(keep_frac * n))
        remaining = target_units - int(forced.sum())
        for idx in order:
            if remaining <= 0:
                break
            if not keep[idx]:
                keep[idx] = True
                remaining -= 1
        return keep
    target_elems = keep_frac * float(weights.sum())
    used = float(weights[forced].sum())
    for idx in order:
        if used >= target_elems:
            break
        if not keep[idx]:
            keep[idx] = True
            used += float(weights[idx])
    return keep


def _global_select(
    scores: np.ndarray,
    weights: np.ndarray,
    keep_frac: float,
    forced: np.ndarray,
    budget: str,
) -> np.ndarray:
    """Select which units survive, globally across all layers.

    Parameters
    ----------
    scores:
        Unit importance scores (higher = more important), any shape-(n,) mix
        of layers.
    weights:
        Element count of each unit (for ``budget="elements"``).
    keep_frac:
        Target fraction to keep (of elements or of units per ``budget``).
    forced:
        Units that must survive regardless of score (per-layer minimums).
    budget:
        ``"elements"`` or ``"units"``.

    Returns a boolean keep array, bit-identical to
    :func:`_global_select_reference` on the same inputs whenever the weight
    partial sums are exactly representable (unit weights are integer element
    counts in every caller, so they are).  The greedy walk is replaced by an
    O(n) quickselect threshold search: only units *at* the boundary score
    are walked in index order; everything above it is kept wholesale.  NaN
    scores or negative weights fall back to the sort-based path.
    """
    n = scores.shape[0]
    keep = forced.copy()
    if n == 0:
        return keep
    cand_mask = ~forced
    n_cand = int(cand_mask.sum())
    if n_cand == 0:
        return keep
    c = scores[cand_mask]
    if np.isnan(c).any() or (budget == "elements" and np.any(weights < 0)):
        return _global_select_sorted(scores, weights, keep_frac, forced, budget)
    if budget == "units":
        target_units = int(round(keep_frac * n))
        remaining = target_units - int(forced.sum())
        if remaining <= 0:
            return keep
        if remaining >= n_cand:
            keep[cand_mask] = True
            return keep
        # score of the remaining-th best candidate; ties split by index
        v = np.partition(c, n_cand - remaining)[n_cand - remaining]
        above = cand_mask & (scores > v)
        n_above = int(above.sum())
        keep[above] = True
        tie_idx = np.flatnonzero(cand_mask & (scores == v))[: remaining - n_above]
        keep[tie_idx] = True
        return keep
    target_elems = keep_frac * float(weights.sum())
    used0 = float(weights[forced].sum())
    if used0 >= target_elems:
        return keep
    w = np.asarray(weights[cand_mask], dtype=np.float64)
    total_cand = float(w.sum())
    if used0 + total_cand < target_elems:
        keep[cand_mask] = True
        return keep
    v, w_above = _threshold_score(c, w, target_elems - used0)
    above = cand_mask & (scores > v)
    keep[above] = True
    # walk the boundary-score ties in index order, exactly like the scalar
    # greedy loop does once the budget nears exhaustion
    tie_idx = np.flatnonzero(cand_mask & (scores == v))
    acc = np.cumsum(
        np.concatenate(([used0 + w_above], np.asarray(weights[tie_idx], dtype=np.float64)))
    )
    below = acc[:-1] < target_elems
    selected = np.logical_and.accumulate(below) if below.size else below
    keep[tie_idx[selected]] = True
    return keep


# --------------------------------------------------------------------- #
# fast unit scoring (phase 1)
# --------------------------------------------------------------------- #
def _fast_column_scores(m: np.ndarray, config: TWPruneConfig) -> np.ndarray:
    """Column unit scores via one BLAS ``dgemv`` where the reduction allows.

    ``ones @ m`` computes every column sum in a single memory sweep; the
    ``l2`` reduction needs squared elements and falls back to the generic
    path.  Equals :func:`column_unit_scores` exactly whenever the column
    sums are exactly representable (see module docstring).
    """
    norm = normalize_scores(m, config.normalize)
    if config.reduction == "sum":
        return np.ones(norm.shape[0], dtype=np.float64) @ norm
    if config.reduction == "mean":
        return (np.ones(norm.shape[0], dtype=np.float64) @ norm) / norm.shape[0]
    return column_unit_scores(norm, config.reduction)


def _forced_top_units(scores_2d: np.ndarray, n_force: int) -> np.ndarray:
    """Boolean (rows, units) mask protecting each row's ``n_force`` best units.

    Matches ``np.argsort(-row, kind="stable")[:n_force]`` per row: highest
    score first, ties broken by the lowest index.
    """
    rows, n = scores_2d.shape
    out = np.zeros((rows, n), dtype=bool)
    n_force = min(n_force, n)
    if n_force <= 0 or n == 0:
        return out
    if n_force == 1 and not np.isnan(scores_2d).any():
        # first occurrence of the max == stable argsort top-1 (argmax would
        # propagate a NaN as the max, where the stable sort puts NaN last)
        np.put_along_axis(out, np.argmax(scores_2d, axis=1)[:, None], True, axis=1)
        return out
    top = np.argsort(-scores_2d, axis=1, kind="stable")[:, :n_force]
    np.put_along_axis(out, top, True, axis=1)
    return out


# --------------------------------------------------------------------- #
# the pruning step
# --------------------------------------------------------------------- #
def tw_prune_step(
    score_matrices: Sequence[np.ndarray],
    stage_sparsity: float,
    config: TWPruneConfig,
    *,
    column_score_adjust: Sequence[np.ndarray] | None = None,
) -> TWStepResult:
    """Run one global TW pruning step (Alg. 1 lines 4–20), vectorised.

    Parameters
    ----------
    score_matrices:
        One element-importance matrix per prunable layer (``K_l × N_l``).
        Already-pruned elements should carry zero score (which they do
        naturally: masked weights are zero, so both magnitude and Taylor
        scores vanish) — this yields stage-to-stage monotonicity.
    stage_sparsity:
        Overall sparsity target for this stage.
    config:
        See :class:`TWPruneConfig`.
    column_score_adjust:
        Optional apriori-tuned replacement column scores per layer (from
        :func:`repro.core.apriori.apriori_adjust`); same shapes as the
        layers' column counts.

    Returns
    -------
    TWStepResult with per-layer column keeps, reorganised tile groups, row
    masks, full element masks, and the achieved overall sparsity.  The
    element masks may be transposed views (Fortran-ordered); their values
    are identical to :func:`tw_prune_step_reference`.
    """
    mats = [np.asarray(s, dtype=np.float64) for s in score_matrices]
    for i, m in enumerate(mats):
        if m.ndim != 2:
            raise ValueError(f"score matrix {i} must be 2-D, got ndim={m.ndim}")
    s_col, s_row = split_stage_sparsity(stage_sparsity, config.col_row_split)

    # ---------------- phase 1: global column pruning ---------------- #
    col_scores: list[np.ndarray] = []
    for i, m in enumerate(mats):
        cs = _fast_column_scores(m, config)
        if column_score_adjust is not None:
            adj = np.asarray(column_score_adjust[i], dtype=np.float64)
            if adj.shape != cs.shape:
                raise ValueError(
                    f"layer {i}: adjusted column scores shape {adj.shape} != {cs.shape}"
                )
            cs = adj
        col_scores.append(cs)

    all_scores = np.concatenate(col_scores) if col_scores else np.zeros(0)
    col_elems = np.concatenate(
        [np.full(m.shape[1], m.shape[0], dtype=np.float64) for m in mats]
    ) if mats else np.zeros(0)
    forced = np.concatenate(
        [
            _forced_top_units(cs[None, :], config.min_keep_cols)[0]
            for cs in col_scores
        ]
    ) if col_scores else np.zeros(0, dtype=bool)
    col_keep_flat = _global_select(all_scores, col_elems, 1.0 - s_col, forced, config.budget)

    col_keeps: list[np.ndarray] = []
    offset = 0
    for m in mats:
        col_keeps.append(col_keep_flat[offset : offset + m.shape[1]])
        offset += m.shape[1]

    # ------- phase 2: reorganise + global tile-row pruning ---------- #
    groups_per_layer: list[list[np.ndarray]] = [
        TiledTWMatrix.column_groups(ck, config.granularity, reorganize=config.reorganize)
        for ck in col_keeps
    ]
    # Per layer: unit (t, r) maps to flat slot t*K + r, so scores, widths
    # and forced flags assemble with reshape/np.repeat instead of per-unit
    # list appends, and the keep vector scatters back with one reshape.
    score_chunks: list[np.ndarray] = []
    width_chunks: list[np.ndarray] = []
    forced_chunks: list[np.ndarray] = []
    tile_widths_per_layer: list[np.ndarray] = []
    for m, groups in zip(mats, groups_per_layer):
        widths = np.array([g.size for g in groups], dtype=np.int64)
        tile_widths_per_layer.append(widths)
        if not groups:
            continue
        per_tile = row_unit_scores_matrix(
            m, groups, config.reduction, normalize=config.normalize,
            assume_sorted=True,
        )  # (T, K)
        score_chunks.append(per_tile.reshape(-1))
        width_chunks.append(np.repeat(widths.astype(np.float64), m.shape[0]))
        forced_chunks.append(
            _forced_top_units(per_tile, config.min_keep_rows).reshape(-1)
        )

    unit_scores_arr = (
        np.concatenate(score_chunks) if score_chunks else np.zeros(0)
    )
    unit_widths_arr = (
        np.concatenate(width_chunks) if width_chunks else np.zeros(0)
    )
    forced_arr = (
        np.concatenate(forced_chunks) if forced_chunks else np.zeros(0, dtype=bool)
    )
    row_keep_flat = _global_select(
        unit_scores_arr, unit_widths_arr, 1.0 - s_row, forced_arr, config.budget
    )

    row_masks: list[list[np.ndarray]] = []
    masks: list[np.ndarray] = []
    kept_elements = 0
    offset = 0
    for m, groups, widths in zip(mats, groups_per_layer, tile_widths_per_layer):
        k = m.shape[0]
        n_tiles = len(groups)
        keep_mat = row_keep_flat[offset : offset + n_tiles * k].reshape(n_tiles, k)
        offset += n_tiles * k
        row_masks.append([np.ascontiguousarray(keep_mat[t]) for t in range(n_tiles)])
        if n_tiles:
            # tiles own disjoint columns by construction, so the trusted
            # one-shot column write is safe
            owned = np.concatenate(groups)
            tile_of_col = np.repeat(np.arange(n_tiles, dtype=np.int64), widths)
            masks.append(
                tw_mask_from_tile_matrix(m.shape, owned, tile_of_col, keep_mat)
            )
            kept_elements += int(np.dot(keep_mat.sum(axis=1), widths))
        else:
            masks.append(np.zeros(m.shape, dtype=bool))

    total = sum(m.size for m in mats)
    achieved = 1.0 - kept_elements / total if total else 0.0
    return TWStepResult(
        col_keeps=col_keeps,
        column_groups=groups_per_layer,
        row_masks=row_masks,
        masks=masks,
        achieved_sparsity=achieved,
    )


def tw_prune_step_reference(
    score_matrices: Sequence[np.ndarray],
    stage_sparsity: float,
    config: TWPruneConfig,
    *,
    column_score_adjust: Sequence[np.ndarray] | None = None,
) -> TWStepResult:
    """Scalar-loop TW pruning step — the oracle for :func:`tw_prune_step`.

    This is the original seed implementation, kept verbatim (per-unit greedy
    loops, per-row list appends, per-unit scatter-back) so the vectorised
    path has a fixed reference for equivalence tests and before/after
    benchmarking (``benchmarks/bench_hotpaths.py``).  Do not optimise it.
    """
    mats = [np.asarray(s, dtype=np.float64) for s in score_matrices]
    for i, m in enumerate(mats):
        if m.ndim != 2:
            raise ValueError(f"score matrix {i} must be 2-D, got ndim={m.ndim}")
    s_col, s_row = split_stage_sparsity(stage_sparsity, config.col_row_split)

    # ---------------- phase 1: global column pruning ---------------- #
    col_scores: list[np.ndarray] = []
    for i, m in enumerate(mats):
        cs = column_unit_scores(normalize_scores(m, config.normalize), config.reduction)
        if column_score_adjust is not None:
            adj = np.asarray(column_score_adjust[i], dtype=np.float64)
            if adj.shape != cs.shape:
                raise ValueError(
                    f"layer {i}: adjusted column scores shape {adj.shape} != {cs.shape}"
                )
            cs = adj
        col_scores.append(cs)

    all_scores = np.concatenate(col_scores) if col_scores else np.zeros(0)
    col_elems = np.concatenate(
        [np.full(m.shape[1], m.shape[0], dtype=np.float64) for m in mats]
    ) if mats else np.zeros(0)
    forced = np.zeros(all_scores.shape[0], dtype=bool)
    offset = 0
    for i, cs in enumerate(col_scores):
        n_force = min(config.min_keep_cols, cs.shape[0])
        if n_force > 0:
            top = np.argsort(-cs, kind="stable")[:n_force]
            forced[offset + top] = True
        offset += cs.shape[0]
    col_keep_flat = _global_select_reference(
        all_scores, col_elems, 1.0 - s_col, forced, config.budget
    )

    col_keeps: list[np.ndarray] = []
    offset = 0
    for m in mats:
        col_keeps.append(col_keep_flat[offset : offset + m.shape[1]])
        offset += m.shape[1]

    # ------- phase 2: reorganise + global tile-row pruning ---------- #
    groups_per_layer: list[list[np.ndarray]] = [
        TiledTWMatrix.column_groups(ck, config.granularity, reorganize=config.reorganize)
        for ck in col_keeps
    ]
    unit_scores: list[float] = []
    unit_widths: list[float] = []
    unit_layer: list[int] = []
    unit_tile: list[int] = []
    unit_row: list[int] = []
    forced_flags: list[bool] = []
    for li, (m, groups) in enumerate(zip(mats, groups_per_layer)):
        norm = normalize_scores(m, config.normalize)
        per_tile = row_unit_scores(norm, groups, config.reduction)
        for ti, (cols, rs) in enumerate(zip(groups, per_tile)):
            n_force = min(config.min_keep_rows, rs.shape[0])
            protected = set(np.argsort(-rs, kind="stable")[:n_force].tolist())
            for r in range(rs.shape[0]):
                unit_scores.append(float(rs[r]))
                unit_widths.append(float(cols.size))
                unit_layer.append(li)
                unit_tile.append(ti)
                unit_row.append(r)
                forced_flags.append(r in protected)

    unit_scores_arr = np.array(unit_scores, dtype=np.float64)
    unit_widths_arr = np.array(unit_widths, dtype=np.float64)
    forced_arr = np.array(forced_flags, dtype=bool)
    row_keep_flat = _global_select_reference(
        unit_scores_arr, unit_widths_arr, 1.0 - s_row, forced_arr, config.budget
    )

    row_masks: list[list[np.ndarray]] = [
        [np.zeros(m.shape[0], dtype=bool) for _ in groups]
        for m, groups in zip(mats, groups_per_layer)
    ]
    for u in range(row_keep_flat.shape[0]):
        if row_keep_flat[u]:
            row_masks[unit_layer[u]][unit_tile[u]][unit_row[u]] = True

    masks = [
        _tw_mask_from_tiles_loop(m.shape, groups, rms)
        for m, groups, rms in zip(mats, groups_per_layer, row_masks)
    ]
    total = sum(m.size for m in mats)
    kept = sum(int(np.count_nonzero(mk)) for mk in masks)
    achieved = 1.0 - kept / total if total else 0.0
    return TWStepResult(
        col_keeps=col_keeps,
        column_groups=groups_per_layer,
        row_masks=row_masks,
        masks=masks,
        achieved_sparsity=achieved,
    )
