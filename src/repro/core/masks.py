"""Mask algebra shared across sparsity patterns.

A *keep-mask* is a boolean array the same shape as a weight matrix: True
where the weight survives, False where it is pruned.  All patterns in this
library (EW / VW / BW / TW / TEW) reduce to keep-masks, which makes sparsity
accounting and pattern comparison uniform.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "mask_sparsity",
    "overall_sparsity",
    "topk_keep_mask",
    "global_topk_keep_masks",
    "validate_tw_mask",
    "tw_mask_from_tiles",
    "tw_mask_from_tile_matrix",
]


def mask_sparsity(mask: np.ndarray) -> float:
    """Fraction of elements pruned (False) in one mask."""
    mask = np.asarray(mask, dtype=bool)
    return 1.0 - float(mask.mean()) if mask.size else 0.0


def overall_sparsity(masks: Sequence[np.ndarray]) -> float:
    """Element-weighted sparsity across several masks (the paper's global S)."""
    total = sum(int(np.asarray(m).size) for m in masks)
    if total == 0:
        return 0.0
    pruned = sum(int(np.asarray(m).size - np.count_nonzero(m)) for m in masks)
    return pruned / total


def topk_keep_mask(scores: np.ndarray, sparsity: float) -> np.ndarray:
    """Keep the top ``(1 − sparsity)`` fraction of entries by score.

    Ties at the threshold are broken by flat index so the kept count is
    exact: ``round((1 − sparsity) · size)``.  This is the element-wise (EW)
    pruning rule and also the restore rule of the TEW overlay.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if not (0.0 <= sparsity <= 1.0):
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    n_keep = int(round((1.0 - sparsity) * scores.size))
    mask = np.zeros(scores.shape, dtype=bool)
    if n_keep > 0:
        flat = scores.ravel()
        # argpartition gives the n_keep largest in O(n)
        keep_idx = np.argpartition(flat, scores.size - n_keep)[scores.size - n_keep :]
        mask.ravel()[keep_idx] = True
    return mask


def global_topk_keep_masks(
    scores: Sequence[np.ndarray], sparsity: float
) -> list[np.ndarray]:
    """Element-wise pruning with a single *global* ranking across layers.

    All score matrices are pooled; exactly the top ``(1 − sparsity)``
    fraction of elements (model-wide) survive.  This is the paper's EW
    baseline with global weight pruning (§V), and the source of the uneven
    per-layer sparsity in Fig. 5.
    """
    if not (0.0 <= sparsity <= 1.0):
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    mats = [np.asarray(s, dtype=np.float64) for s in scores]
    total = sum(m.size for m in mats)
    if total == 0:
        return [np.zeros(m.shape, dtype=bool) for m in mats]
    n_keep = int(round((1.0 - sparsity) * total))
    flat = np.concatenate([m.ravel() for m in mats])
    keep_flat = np.zeros(total, dtype=bool)
    if n_keep > 0:
        keep_idx = np.argpartition(flat, total - n_keep)[total - n_keep :]
        keep_flat[keep_idx] = True
    out = []
    offset = 0
    for m in mats:
        out.append(keep_flat[offset : offset + m.size].reshape(m.shape))
        offset += m.size
    return out


def _tw_mask_from_tiles_loop(
    shape: tuple[int, int],
    column_groups: Sequence[np.ndarray],
    row_masks: Sequence[np.ndarray],
) -> np.ndarray:
    """Per-tile scatter reference for :func:`tw_mask_from_tiles`.

    Kept as the oracle for the vectorised fast path, and used directly when
    tiles share columns (the fast path's one-shot column write would let a
    later tile overwrite an earlier tile's rows instead of unioning them).
    """
    out = np.zeros(shape, dtype=bool)
    for cols, mk in zip(column_groups, row_masks):
        mk = np.asarray(mk, dtype=bool)
        if np.asarray(cols).size:
            out[np.ix_(np.flatnonzero(mk), np.asarray(cols))] = True
    return out


def tw_mask_from_tiles(
    shape: tuple[int, int],
    column_groups: Sequence[np.ndarray],
    row_masks: Sequence[np.ndarray],
) -> np.ndarray:
    """Build the full element keep-mask implied by TW tile structure.

    Element ``(k, n)`` is kept iff column ``n`` belongs to some tile ``t``
    and ``row_masks[t][k]`` is True.

    Vectorised: every owned column is written in one fancy assignment into a
    column-major scratch (contiguous row writes), so no per-tile Python
    scatter runs.  The result may be a transposed (Fortran-ordered) view;
    values are identical to the per-tile reference scatter.
    """
    if len(column_groups) != len(row_masks):
        raise ValueError(
            f"{len(column_groups)} column groups but {len(row_masks)} row masks"
        )
    k, n = shape
    masks = []
    for mk in row_masks:
        mk = np.asarray(mk, dtype=bool)
        if mk.shape != (k,):
            raise ValueError(f"row mask length {mk.shape[0]} != K={k}")
        masks.append(mk)
    groups = [np.asarray(cols) for cols in column_groups]
    if not groups or not any(g.size for g in groups):
        return np.zeros(shape, dtype=bool)
    all_cols = np.concatenate([g for g in groups if g.size])
    if np.unique(all_cols).size != all_cols.size:
        return _tw_mask_from_tiles_loop(shape, column_groups, row_masks)
    tile_of_col = np.repeat(
        np.array([t for t, g in enumerate(groups) if g.size], dtype=np.int64),
        np.array([g.size for g in groups if g.size], dtype=np.int64),
    )
    stacked = np.stack(masks) if masks else np.zeros((0, k), dtype=bool)
    return tw_mask_from_tile_matrix(shape, all_cols, tile_of_col, stacked)


def tw_mask_from_tile_matrix(
    shape: tuple[int, int],
    owned_cols: np.ndarray,
    tile_of_col: np.ndarray,
    keep_matrix: np.ndarray,
) -> np.ndarray:
    """Keep-mask from pre-flattened tile structure (no per-tile validation).

    ``owned_cols[i]`` is a column owned by tile ``tile_of_col[i]`` (each
    column at most once); ``keep_matrix`` is the ``(n_tiles, K)`` boolean row
    keeps.  This is the allocation-free core of :func:`tw_mask_from_tiles`
    for callers that already hold the flattened structure (the vectorised
    pruning step).  Returns a transposed (Fortran-ordered) view.
    """
    k, n = shape
    out_t = np.zeros((n, k), dtype=bool)
    if owned_cols.size:
        out_t[owned_cols] = keep_matrix[tile_of_col]
    return out_t.T


def validate_tw_mask(
    mask: np.ndarray,
    granularity: int,
    *,
    reorganize: bool = True,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Check that an element mask has tile-wise structure; return its factors.

    A mask is TW-shaped iff there exists a column keep-vector and per-tile
    row keep-vectors that reproduce it, with tiles formed by grouping the
    surviving columns ``granularity`` at a time (``reorganize=True``, paper
    default) or by original panel boundaries (``reorganize=False``).

    Returns ``(col_keep, row_masks)`` on success; raises ``ValueError`` if
    the mask cannot be factored.
    """
    from repro.formats.tiled import TiledTWMatrix  # local import to avoid cycle

    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"expected 2-D mask, got ndim={mask.ndim}")
    col_keep = mask.any(axis=0)
    groups = TiledTWMatrix.column_groups(col_keep, granularity, reorganize=reorganize)
    row_masks = []
    for t, cols in enumerate(groups):
        panel = mask[:, cols]
        mk = panel.any(axis=1)
        if not np.array_equal(panel, np.broadcast_to(mk[:, None], panel.shape)):
            raise ValueError(
                f"tile {t}: mask is not tile-wise — rows are not uniform "
                "across the tile's surviving columns"
            )
        row_masks.append(mk)
    rebuilt = tw_mask_from_tiles(mask.shape, groups, row_masks)
    if not np.array_equal(rebuilt, mask):
        raise ValueError("mask does not factor into TW structure")
    return col_keep, row_masks
