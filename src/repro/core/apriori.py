"""Apriori tuning (Algorithm 2) — EW-informed column-score priors.

The paper observes strong *locality* in element-wise pruning results: at a
75% target, more than 10% of columns end up completely pruned by EW.  Since
EW is the accuracy-optimal pattern, its per-column sparsity is a cheap,
high-quality prior for which columns TW should remove.  Algorithm 2 turns
that prior into score overrides:

- the ``top_n`` columns with the *highest* EW sparsity get score **0**
  → pruned with highest priority;
- the ``last_n`` columns with the *lowest* EW sparsity get score **+inf**
  → never pruned.

Everything in between keeps its collective importance score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AprioriConfig", "unit_ew_sparsity", "apriori_adjust"]


@dataclass(frozen=True)
class AprioriConfig:
    """Apriori-tuning strengths.

    ``top_n`` / ``last_n`` may be given as fractions of the unit count
    (floats in ``[0, 1]``) or absolute counts (ints).  The paper motivates
    ``top_n ≈ 10%`` from the fraction of columns EW prunes completely.
    """

    top_n: float | int = 0.10
    last_n: float | int = 0.10

    def __post_init__(self) -> None:
        for name in ("top_n", "last_n"):
            v = getattr(self, name)
            if isinstance(v, float) and not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} fraction must be in [0, 1], got {v}")
            if isinstance(v, int) and v < 0:
                raise ValueError(f"{name} count must be non-negative, got {v}")

    def resolve(self, n_units: int) -> tuple[int, int]:
        """Convert fractional strengths to unit counts for ``n_units`` units."""
        def to_count(v: float | int) -> int:
            if isinstance(v, float):
                return int(round(v * n_units))
            return min(v, n_units)

        top = to_count(self.top_n)
        last = to_count(self.last_n)
        if top + last > n_units:  # never let the two sets overlap
            last = n_units - top
        return top, last


def unit_ew_sparsity(ew_mask: np.ndarray) -> np.ndarray:
    """Per-column sparsity of an EW keep-mask (``float64[N]``).

    This is Algorithm 2's ``tileSparsity = EW[S]`` — the tile-level sparsity
    distribution extracted from the EW reference pruned at the target
    sparsity.
    """
    ew_mask = np.asarray(ew_mask, dtype=bool)
    if ew_mask.ndim != 2:
        raise ValueError(f"expected 2-D mask, got ndim={ew_mask.ndim}")
    if ew_mask.shape[0] == 0:
        return np.zeros(ew_mask.shape[1], dtype=np.float64)
    return 1.0 - ew_mask.mean(axis=0)


def apriori_adjust(
    column_scores: np.ndarray,
    ew_sparsity: np.ndarray,
    config: AprioriConfig,
) -> np.ndarray:
    """Apply Algorithm 2 to one layer's column scores.

    Parameters
    ----------
    column_scores:
        Collective importance score per column (``float64[N]``).
    ew_sparsity:
        Per-column EW sparsity from :func:`unit_ew_sparsity`.
    config:
        Tuning strengths.

    Returns a new score array; the input is not modified.
    """
    column_scores = np.asarray(column_scores, dtype=np.float64)
    ew_sparsity = np.asarray(ew_sparsity, dtype=np.float64)
    if column_scores.shape != ew_sparsity.shape:
        raise ValueError(
            f"scores shape {column_scores.shape} != ew sparsity shape {ew_sparsity.shape}"
        )
    n = column_scores.shape[0]
    top, last = config.resolve(n)
    out = column_scores.copy()
    # ties broken by index for determinism (stable sort)
    by_sparsity_desc = np.argsort(-ew_sparsity, kind="stable")
    if top > 0:
        out[by_sparsity_desc[:top]] = 0.0  # prune with highest priority
    if last > 0:
        out[by_sparsity_desc[n - last :]] = np.inf  # protected
    return out
