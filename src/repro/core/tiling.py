"""GEMM tile configuration shared by the pruner and the GPU cost model.

The paper's key insight is that dense GEMM is *already tiled*: the output
matrix ``C (M×N)`` is broken into ``Ty×G`` tiles, each computed by one
streaming multiprocessor (SM) from ``Ty`` rows of ``A`` and ``G`` columns of
``B`` (Fig. 4 step 1).  The TW pattern aligns its pruning units with that
decomposition, so tile geometry is the shared vocabulary between the pruning
algorithm (:mod:`repro.core.tile_sparsity`) and the execution cost model
(:mod:`repro.gpu`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TileConfig"]


@dataclass(frozen=True)
class TileConfig:
    """Three-level GEMM tiling geometry (CUTLASS-style, paper Fig. 8).

    Attributes
    ----------
    ty:
        Thread-block tile height (rows of ``C`` per tile); paper uses 32–128.
    g:
        Thread-block tile width = the TW granularity ``G``.
    tz:
        Reduction (K-dimension) step per main-loop iteration; must be a
        multiple of the tensor-core MMA depth (16) in the paper's kernel.
    warp_m, warp_n:
        Warp tile within the thread block (Fig. 8 shows 32×32 warps).
    mma:
        The fixed tensor-core fragment, ``16×16×16`` on Volta (WMMA API).
    """

    ty: int = 128
    g: int = 128
    tz: int = 32
    warp_m: int = 32
    warp_n: int = 32
    mma: tuple[int, int, int] = (16, 16, 16)

    def __post_init__(self) -> None:
        for name in ("ty", "g", "tz", "warp_m", "warp_n"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.warp_m > self.ty or self.warp_n > self.g:
            raise ValueError("warp tile cannot exceed thread-block tile")

    @property
    def warps_per_block(self) -> int:
        """Warps needed to cover one thread-block tile."""
        return -(-self.ty // self.warp_m) * -(-self.g // self.warp_n)

    def grid(self, m: int, n: int) -> tuple[int, int]:
        """Thread-block grid covering an ``M×N`` output (``ceil`` division)."""
        if m < 0 or n < 0:
            raise ValueError(f"negative GEMM extent ({m}, {n})")
        return (-(-m // self.ty), -(-n // self.g))

    def n_blocks(self, m: int, n: int) -> int:
        """Total thread blocks for an ``M×N`` output."""
        gm, gn = self.grid(m, n)
        return gm * gn

    def mma_steps(self, k: int) -> int:
        """Main-loop iterations over the reduction dimension."""
        if k < 0:
            raise ValueError(f"negative reduction extent {k}")
        return -(-k // self.tz)
