"""Element importance scores and their aggregation to pruning units.

The paper (§V, Eq. 1–3) scores a weight ``w`` by the loss increase incurred
when it is removed:

.. math::

    \\Delta L(w) = \\sqrt{(L(w{=}w_i) - L(w{=}0))^2}
    \\approx \\sqrt{\\left(\\frac{\\partial L(w_i)}{\\partial w} \\, w_i\\right)^2}
    = \\left|\\frac{\\partial L}{\\partial w} \\, w_i\\right|

(first-order Taylor expansion around the trained value, following
Molchanov et al.).  Both the weight and its gradient already exist during
training, so the score is free to compute.  The simpler magnitude score
``|w|`` (Han et al.) is provided as a baseline.

Unit aggregation: TW prunes *columns* (``K×1`` units) and *tile rows*
(``1×G`` units, paper Alg. 1 lines 4/13), scored by the collective importance
of their member elements.

Importance metrics resolve through :data:`IMPORTANCE` (the same
:class:`~repro.registry.Registry` class as patterns, engines,
placements, executors and schedules): ``taylor`` (the paper default) and
``magnitude`` (alias ``mag``) are the seed entries, each a factory for an
:class:`ImportanceConfig` that also accepts the ``reduction``/``normalize``
knobs.  ``repro.tune(..., importance="taylor")`` and the CLI resolve names
here, so a new metric is a ``register(...)`` call, not a new code path.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.registry import Registry

__all__ = [
    "ImportanceConfig",
    "IMPORTANCE",
    "resolve_importance",
    "available_importance",
    "magnitude_score",
    "taylor_score",
    "exact_loss_delta",
    "normalize_scores",
    "column_unit_scores",
    "row_unit_scores",
    "row_unit_scores_matrix",
    "score_matrix",
]


@dataclass(frozen=True)
class ImportanceConfig:
    """How element scores are computed and pooled into units.

    Attributes
    ----------
    method:
        ``"taylor"`` (paper default, needs gradients) or ``"magnitude"``.
    reduction:
        How a unit pools its member element scores: ``"sum"`` (paper's
        "collective importance"), ``"mean"``, or ``"l2"``.
    normalize:
        Cross-layer normalisation before global ranking: ``"none"`` (paper
        default — Taylor scores are loss deltas and already commensurable),
        ``"mean"`` (divide by per-matrix mean; recommended for magnitude
        scores), or ``"l2"``.
    """

    method: str = "taylor"
    reduction: str = "sum"
    normalize: str = "none"

    def __post_init__(self) -> None:
        if self.method not in ("taylor", "magnitude"):
            raise ValueError(f"unknown importance method {self.method!r}")
        if self.reduction not in ("sum", "mean", "l2"):
            raise ValueError(f"unknown reduction {self.reduction!r}")
        if self.normalize not in ("none", "mean", "l2"):
            raise ValueError(f"unknown normalization {self.normalize!r}")


#: name → ImportanceConfig factory; ``repro.tune`` and the CLI resolve here
IMPORTANCE = Registry("importance")
IMPORTANCE.register(
    "taylor",
    lambda reduction="sum", normalize="none": ImportanceConfig(
        method="taylor", reduction=reduction, normalize=normalize
    ),
)
IMPORTANCE.register(
    "magnitude",
    lambda reduction="sum", normalize="none": ImportanceConfig(
        method="magnitude", reduction=reduction, normalize=normalize
    ),
    aliases=("mag",),
)


def resolve_importance(
    spec: "ImportanceConfig | str | None", **kwargs
) -> ImportanceConfig:
    """An :class:`ImportanceConfig` from a registry name, instance, or ``None``.

    ``None`` means the default ``taylor`` entry.  Extra ``kwargs``
    (``reduction``, ``normalize``) are forwarded to the factory with
    ``None`` values dropped; an instance passes through untouched.
    """
    if isinstance(spec, ImportanceConfig):
        return spec
    if spec is None:
        spec = "taylor"
    if not isinstance(spec, str):
        raise TypeError(
            f"importance must be an ImportanceConfig, a registry name or "
            f"None, got {type(spec).__name__}"
        )
    kwargs = {k: v for k, v in kwargs.items() if v is not None}
    return IMPORTANCE.create(spec, **kwargs)


def available_importance() -> list[str]:
    """Canonical importance-metric names."""
    return IMPORTANCE.names()


def magnitude_score(weights: np.ndarray) -> np.ndarray:
    """Per-element magnitude importance ``|w|`` (Han et al. 2015)."""
    return np.abs(np.asarray(weights, dtype=np.float64))


def taylor_score(weights: np.ndarray, gradients: np.ndarray) -> np.ndarray:
    """Per-element first-order Taylor importance ``|w · ∂L/∂w|`` (Eq. 3)."""
    weights = np.asarray(weights, dtype=np.float64)
    gradients = np.asarray(gradients, dtype=np.float64)
    if weights.shape != gradients.shape:
        raise ValueError(
            f"weights shape {weights.shape} != gradients shape {gradients.shape}"
        )
    return np.abs(weights * gradients)


def exact_loss_delta(
    loss_fn: Callable[[np.ndarray], float], weights: np.ndarray
) -> np.ndarray:
    """Exact importance of Eq. 1: ``|L(w=w_i) − L(w=0)|`` per element.

    Evaluates the loss once per parameter, so it is only tractable for tiny
    matrices; used in tests to verify that :func:`taylor_score` is a faithful
    first-order approximation (paper §V "the exact computation is expensive
    because M parameters require evaluating M versions of the network").
    """
    weights = np.asarray(weights, dtype=np.float64)
    base = float(loss_fn(weights))
    out = np.empty(weights.shape, dtype=np.float64)
    it = np.nditer(weights, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        saved = weights[idx]
        weights[idx] = 0.0
        out[idx] = abs(float(loss_fn(weights)) - base)
        weights[idx] = saved
    return out


def score_matrix(
    weights: np.ndarray,
    gradients: np.ndarray | None,
    config: ImportanceConfig,
) -> np.ndarray:
    """Element score matrix for one layer under ``config``."""
    if config.method == "taylor":
        if gradients is None:
            raise ValueError("taylor importance requires gradients")
        return taylor_score(weights, gradients)
    return magnitude_score(weights)


def normalize_scores(scores: np.ndarray, mode: str) -> np.ndarray:
    """Normalise a score matrix for cross-layer comparability."""
    if mode == "none":
        return scores
    if mode == "mean":
        denom = scores.mean()
    elif mode == "l2":
        denom = np.sqrt(np.mean(scores**2))
    else:
        raise ValueError(f"unknown normalization {mode!r}")
    return scores / denom if denom > 0 else scores


def _reduce(values: np.ndarray, axis: int, reduction: str) -> np.ndarray:
    if reduction == "sum":
        return values.sum(axis=axis)
    if reduction == "mean":
        return values.mean(axis=axis)
    if reduction == "l2":
        return np.sqrt((values**2).sum(axis=axis))
    raise ValueError(f"unknown reduction {reduction!r}")


def column_unit_scores(scores: np.ndarray, reduction: str = "sum") -> np.ndarray:
    """Score each ``K×1`` column unit of one matrix (Alg. 1 line 4–5).

    Returns ``float64[N]``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"expected 2-D score matrix, got ndim={scores.ndim}")
    return _reduce(scores, axis=0, reduction=reduction)


def row_unit_scores(
    scores: np.ndarray,
    column_groups: Sequence[np.ndarray],
    reduction: str = "sum",
) -> list[np.ndarray]:
    """Score each ``1×G`` row unit of each reorganised tile (Alg. 1 line 13–14).

    ``column_groups[t]`` holds the (surviving) column indices of tile ``t``;
    the row unit ``(t, r)`` pools ``scores[r, column_groups[t]]``.  Returns
    one ``float64[K]`` array per tile.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"expected 2-D score matrix, got ndim={scores.ndim}")
    out = []
    for cols in column_groups:
        if cols.size == 0:
            out.append(np.zeros(scores.shape[0], dtype=np.float64))
        else:
            out.append(_reduce(scores[:, cols], axis=1, reduction=reduction))
    return out


def row_unit_scores_matrix(
    scores: np.ndarray,
    column_groups: Sequence[np.ndarray],
    reduction: str = "sum",
    normalize: str = "none",
    *,
    assume_sorted: bool = False,
) -> np.ndarray:
    """Vectorised :func:`row_unit_scores`, returned as one ``(T, K)`` array.

    Each tile's member columns are sorted, so they live inside a contiguous
    span ``[cols[0], cols[-1]+1)`` of the original matrix; the tile's row
    sums are then one BLAS ``dgemv`` of that span against a 0/1 selection
    vector — no per-tile column gather.  This is the hot path of the global
    TW pruning step at model scale (the gather is ~3× slower at BERT-base).

    Equals ``np.stack(row_unit_scores(...))`` exactly whenever the per-tile
    sums are exactly representable (e.g. integer-valued scores); otherwise
    the two may differ by re-association rounding of a few ulp.  Groups with
    unsorted or duplicate columns fall back to the reference gather;
    ``assume_sorted`` skips that per-group check for callers that guarantee
    it (the pruning step's reorganised tiles are always sorted).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"expected 2-D score matrix, got ndim={scores.ndim}")
    scores = normalize_scores(scores, normalize)
    k = scores.shape[0]
    if assume_sorted and len(column_groups) > 192 and reduction in ("sum", "mean"):
        # hundreds of narrow tiles: one bulk column gather beats thousands
        # of tiny per-span dgemv calls
        gathered = _gathered_tile_scores(scores, column_groups, reduction)
        if gathered is not None:
            return gathered
    out = np.zeros((len(column_groups), k), dtype=np.float64)
    for t, cols in enumerate(column_groups):
        cols = np.asarray(cols)
        if cols.size == 0:
            continue
        if not assume_sorted and cols.size > 1 and np.any(np.diff(cols) <= 0):
            out[t] = _reduce(scores[:, cols], axis=1, reduction=reduction)
            continue
        lo, hi = int(cols[0]), int(cols[-1]) + 1
        select = np.zeros(hi - lo, dtype=np.float64)
        select[cols - lo] = 1.0
        with np.errstate(invalid="ignore"):  # 0·inf NaNs are repaired below
            if reduction == "sum":
                out[t] = scores[:, lo:hi] @ select
            elif reduction == "mean":
                out[t] = (scores[:, lo:hi] @ select) / cols.size
            elif reduction == "l2":
                span = scores[:, lo:hi]
                out[t] = np.sqrt((span * span) @ select)
            else:
                raise ValueError(f"unknown reduction {reduction!r}")
    if np.isnan(out).any():
        # a non-member column inside a span holding ±inf contaminates the
        # dgemv with 0·inf = NaN; the reference gather never touches
        # non-members, so recompute the NaN rows its way (a NaN that the
        # gather reproduces was a genuine member NaN and stays)
        for t, cols in enumerate(column_groups):
            cols = np.asarray(cols)
            if cols.size and np.isnan(out[t]).any():
                out[t] = _reduce(scores[:, cols], axis=1, reduction=reduction)
    return out


def _gathered_tile_scores(
    scores: np.ndarray, column_groups: Sequence[np.ndarray], reduction: str
) -> np.ndarray | None:
    """Tile row sums via one flat gather + reshape (narrow-tile fast path).

    Requires every tile but the last to share one width (the reorganised
    layout); returns ``None`` when widths are ragged so the caller can use
    the per-span path.  The reshape reduces each tile's columns with the
    same pairwise summation the reference applies to its gathered slice.
    """
    k, n = scores.shape
    widths = np.array([np.asarray(g).size for g in column_groups], dtype=np.int64)
    if widths.size == 0 or np.any(widths == 0) or np.any(widths[:-1] != widths[0]):
        # ragged or empty groups: let the per-group path handle them (an
        # empty group must score 0, not 0/0)
        return None
    g = int(widths[0])
    all_cols = np.concatenate([np.asarray(c) for c in column_groups])
    flat = (np.arange(k)[:, None] * n + all_cols[None, :]).ravel()
    gathered = scores.ravel()[flat].reshape(k, all_cols.size)
    n_full = widths.size - 1 if widths[-1] != g else widths.size
    out = np.empty((widths.size, k), dtype=np.float64)
    if n_full:
        out[:n_full] = (
            gathered[:, : n_full * g].reshape(k, n_full, g).sum(axis=2).T
        )
    if n_full != widths.size:
        out[-1] = gathered[:, n_full * g :].sum(axis=1)
    if reduction == "mean":
        out /= widths[:, None]
    return out
