"""Serialization of sparse formats (npz round trips).

A pruned model is the artefact a deployment consumes; these helpers
persist every format in this library to a single ``.npz`` file and restore
it losslessly, so pruning (offline, expensive) and execution (repeated)
can be separated — mirroring the paper's offline weight pre-processing
("which can be done offline before the model inference starts", §VI).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.formats.bsr import BSRMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.tiled import TiledTWMatrix, TWTile

__all__ = [
    "save_csr",
    "load_csr",
    "save_csc",
    "load_csc",
    "save_bsr",
    "load_bsr",
    "save_tiled",
    "load_tiled",
]


def save_csr(matrix: CSRMatrix, path: str | Path) -> Path:
    """Write a CSR matrix to ``path`` (npz)."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind="csr",
        shape=np.array(matrix.shape, dtype=np.int64),
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_csr(path: str | Path) -> CSRMatrix:
    """Read a CSR matrix written by :func:`save_csr`."""
    with np.load(path) as f:
        _expect_kind(f, "csr")
        return CSRMatrix(
            shape=tuple(int(v) for v in f["shape"]),
            indptr=f["indptr"],
            indices=f["indices"],
            data=f["data"],
        )


def save_csc(matrix: CSCMatrix, path: str | Path) -> Path:
    """Write a CSC matrix to ``path`` (npz)."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind="csc",
        shape=np.array(matrix.shape, dtype=np.int64),
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_csc(path: str | Path) -> CSCMatrix:
    """Read a CSC matrix written by :func:`save_csc`."""
    with np.load(path) as f:
        _expect_kind(f, "csc")
        return CSCMatrix(
            shape=tuple(int(v) for v in f["shape"]),
            indptr=f["indptr"],
            indices=f["indices"],
            data=f["data"],
        )


def save_bsr(matrix: BSRMatrix, path: str | Path) -> Path:
    """Write a BSR matrix to ``path`` (npz)."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind="bsr",
        shape=np.array(matrix.shape, dtype=np.int64),
        block_shape=np.array(matrix.block_shape, dtype=np.int64),
        indptr=matrix.indptr,
        indices=matrix.indices,
        blocks=matrix.blocks,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_bsr(path: str | Path) -> BSRMatrix:
    """Read a BSR matrix written by :func:`save_bsr`."""
    with np.load(path) as f:
        _expect_kind(f, "bsr")
        return BSRMatrix(
            shape=tuple(int(v) for v in f["shape"]),
            block_shape=tuple(int(v) for v in f["block_shape"]),
            indptr=f["indptr"],
            indices=f["indices"],
            blocks=f["blocks"],
        )


def save_tiled(matrix: TiledTWMatrix, path: str | Path) -> Path:
    """Write a TW matrix to ``path`` (npz), one entry group per tile."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "shape": np.array(matrix.shape, dtype=np.int64),
        "granularity": np.array([matrix.granularity], dtype=np.int64),
        "n_tiles": np.array([matrix.n_tiles], dtype=np.int64),
    }
    for i, t in enumerate(matrix.tiles):
        payload[f"tile{i}_cols"] = t.col_indices
        payload[f"tile{i}_mask_k"] = t.mask_k
        payload[f"tile{i}_data"] = t.data
    np.savez_compressed(path, kind="tiled", **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_tiled(path: str | Path) -> TiledTWMatrix:
    """Read a TW matrix written by :func:`save_tiled`."""
    with np.load(path) as f:
        _expect_kind(f, "tiled")
        n_tiles = int(f["n_tiles"][0])
        tiles = tuple(
            TWTile(
                col_indices=f[f"tile{i}_cols"],
                mask_k=f[f"tile{i}_mask_k"],
                data=f[f"tile{i}_data"],
            )
            for i in range(n_tiles)
        )
        return TiledTWMatrix(
            shape=tuple(int(v) for v in f["shape"]),
            granularity=int(f["granularity"][0]),
            tiles=tiles,
        )


def _expect_kind(f, kind: str) -> None:
    stored = str(f["kind"])
    if stored != kind:
        raise ValueError(f"file holds a {stored!r} matrix, expected {kind!r}")
