"""Serialization of sparse formats (npz round trips).

A pruned model is the artefact a deployment consumes; these helpers
persist every format in this library to a single ``.npz`` file and restore
it losslessly, so pruning (offline, expensive) and execution (repeated)
can be separated — mirroring the paper's offline weight pre-processing
("which can be done offline before the model inference starts", §VI).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.formats.bsr import BSRMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.tiled import TiledTWMatrix, TWTile

__all__ = [
    "save_csr",
    "load_csr",
    "save_csc",
    "load_csc",
    "save_bsr",
    "load_bsr",
    "save_tiled",
    "load_tiled",
    "save_compiled_arrays",
    "load_compiled_arrays",
]


def save_csr(matrix: CSRMatrix, path: str | Path) -> Path:
    """Write a CSR matrix to ``path`` (npz)."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind="csr",
        shape=np.array(matrix.shape, dtype=np.int64),
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_csr(path: str | Path) -> CSRMatrix:
    """Read a CSR matrix written by :func:`save_csr`."""
    with np.load(path) as f:
        _expect_kind(f, "csr")
        return CSRMatrix(
            shape=tuple(int(v) for v in f["shape"]),
            indptr=f["indptr"],
            indices=f["indices"],
            data=f["data"],
        )


def save_csc(matrix: CSCMatrix, path: str | Path) -> Path:
    """Write a CSC matrix to ``path`` (npz)."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind="csc",
        shape=np.array(matrix.shape, dtype=np.int64),
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_csc(path: str | Path) -> CSCMatrix:
    """Read a CSC matrix written by :func:`save_csc`."""
    with np.load(path) as f:
        _expect_kind(f, "csc")
        return CSCMatrix(
            shape=tuple(int(v) for v in f["shape"]),
            indptr=f["indptr"],
            indices=f["indices"],
            data=f["data"],
        )


def save_bsr(matrix: BSRMatrix, path: str | Path) -> Path:
    """Write a BSR matrix to ``path`` (npz)."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind="bsr",
        shape=np.array(matrix.shape, dtype=np.int64),
        block_shape=np.array(matrix.block_shape, dtype=np.int64),
        indptr=matrix.indptr,
        indices=matrix.indices,
        blocks=matrix.blocks,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_bsr(path: str | Path) -> BSRMatrix:
    """Read a BSR matrix written by :func:`save_bsr`."""
    with np.load(path) as f:
        _expect_kind(f, "bsr")
        return BSRMatrix(
            shape=tuple(int(v) for v in f["shape"]),
            block_shape=tuple(int(v) for v in f["block_shape"]),
            indptr=f["indptr"],
            indices=f["indices"],
            blocks=f["blocks"],
        )


def save_tiled(matrix: TiledTWMatrix, path: str | Path) -> Path:
    """Write a TW matrix to ``path`` (npz), one entry group per tile."""
    path = Path(path)
    np.savez_compressed(path, kind="tiled", **_tiled_payload(matrix))
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_tiled(path: str | Path) -> TiledTWMatrix:
    """Read a TW matrix written by :func:`save_tiled`."""
    with np.load(path) as f:
        _expect_kind(f, "tiled")
        return _tiled_from_payload(f)


def _tiled_payload(matrix: TiledTWMatrix, prefix: str = "") -> dict[str, np.ndarray]:
    """The npz entry set of one TW matrix, keys prefixed by ``prefix``."""
    payload: dict[str, np.ndarray] = {
        f"{prefix}shape": np.array(matrix.shape, dtype=np.int64),
        f"{prefix}granularity": np.array([matrix.granularity], dtype=np.int64),
        f"{prefix}n_tiles": np.array([matrix.n_tiles], dtype=np.int64),
        f"{prefix}scales": np.array(
            [t.scale for t in matrix.tiles], dtype=np.float64
        ),
    }
    for i, t in enumerate(matrix.tiles):
        payload[f"{prefix}tile{i}_cols"] = t.col_indices
        payload[f"{prefix}tile{i}_mask_k"] = t.mask_k
        payload[f"{prefix}tile{i}_data"] = t.data
    return payload


def _tiled_from_payload(f, prefix: str = "") -> TiledTWMatrix:
    """Inverse of :func:`_tiled_payload` over an open npz file.

    ``scales`` is absent from pre-quantization artifacts; they dequantise
    trivially (every tile at the neutral scale 1.0).
    """
    n_tiles = int(f[f"{prefix}n_tiles"][0])
    scales_key = f"{prefix}scales"
    scales = (
        np.asarray(f[scales_key], dtype=np.float64)
        if scales_key in getattr(f, "files", f)
        else np.ones(n_tiles)
    )
    tiles = tuple(
        TWTile(
            col_indices=f[f"{prefix}tile{i}_cols"],
            mask_k=f[f"{prefix}tile{i}_mask_k"],
            data=f[f"{prefix}tile{i}_data"],
            scale=float(scales[i]) if i < len(scales) else 1.0,
        )
        for i in range(n_tiles)
    )
    return TiledTWMatrix(
        shape=tuple(int(v) for v in f[f"{prefix}shape"]),
        granularity=int(f[f"{prefix}granularity"][0]),
        tiles=tiles,
    )


def save_compiled_arrays(
    path: str | Path, meta: dict, layers: list[dict]
) -> Path:
    """Write a compiled multi-layer TW model to one ``.npz``.

    ``meta`` is any JSON-serialisable compilation metadata; each layer dict
    holds ``tw`` (:class:`TiledTWMatrix`), ``col_keep`` (``bool[N]``) and
    ``row_masks`` (list of ``bool[K]``), plus an optional ``epilogue``
    dict (scalars under ``name``/``p``/``seed``/``eps``, parameter vectors
    under ``bias``/``gamma``/``beta``).  This is the array-level half of
    :meth:`repro.api.CompiledTWModel.save` — kept here so serialization
    stays a formats concern and the facade stays import-light.
    """
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "meta_json": np.array(json.dumps(meta)),
        "n_layers": np.array([len(layers)], dtype=np.int64),
    }
    for i, layer in enumerate(layers):
        prefix = f"l{i}_"
        payload.update(_tiled_payload(layer["tw"], prefix))
        payload[f"{prefix}col_keep"] = np.asarray(layer["col_keep"], dtype=bool)
        masks = layer["row_masks"]
        payload[f"{prefix}n_row_masks"] = np.array([len(masks)], dtype=np.int64)
        for j, mask in enumerate(masks):
            payload[f"{prefix}row_mask{j}"] = np.asarray(mask, dtype=bool)
        epi = layer.get("epilogue")
        if epi is not None:
            scalars = {k: epi[k] for k in ("name", "p", "seed", "eps")}
            payload[f"{prefix}epilogue_json"] = np.array(json.dumps(scalars))
            for k in ("bias", "gamma", "beta"):
                if epi.get(k) is not None:
                    payload[f"{prefix}epilogue_{k}"] = np.asarray(epi[k])
    np.savez_compressed(path, kind="compiled-tw", **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_compiled_arrays(path: str | Path) -> tuple[dict, list[dict]]:
    """Read a compiled model written by :func:`save_compiled_arrays`.

    Returns ``(meta, layers)`` with each layer's ``tw`` / ``col_keep`` /
    ``row_masks`` restored bit-exactly.
    """
    with np.load(path) as f:
        _expect_kind(f, "compiled-tw")
        meta = json.loads(str(f["meta_json"]))
        layers = []
        for i in range(int(f["n_layers"][0])):
            prefix = f"l{i}_"
            epilogue = None
            if f"{prefix}epilogue_json" in f.files:
                epilogue = json.loads(str(f[f"{prefix}epilogue_json"]))
                for k in ("bias", "gamma", "beta"):
                    key = f"{prefix}epilogue_{k}"
                    epilogue[k] = f[key] if key in f.files else None
            layers.append(
                {
                    "tw": _tiled_from_payload(f, prefix),
                    "col_keep": f[f"{prefix}col_keep"],
                    "row_masks": [
                        f[f"{prefix}row_mask{j}"]
                        for j in range(int(f[f"{prefix}n_row_masks"][0]))
                    ],
                    "epilogue": epilogue,
                }
            )
        return meta, layers


def _expect_kind(f, kind: str) -> None:
    stored = str(f["kind"])
    if stored != kind:
        raise ValueError(f"file holds a {stored!r} matrix, expected {kind!r}")
