"""Compressed Sparse Column (CSC) matrix.

The paper stores the element-wise residual of the hybrid TEW pattern in CSC
(Fig. 4 step 3): "each tile stores the EW pattern with the compressed sparse
column (CSC) format".  CSC mirrors CSR with the roles of rows and columns
swapped, which matches the column-panel ("B-tile") access order of the TW
GEMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats._validate import first_unsorted_segment

__all__ = ["CSCMatrix"]


@dataclass(frozen=True)
class CSCMatrix:
    """An immutable CSC matrix (column-major compressed storage).

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)`` of the logical dense matrix.
    indptr:
        ``int64[n_cols + 1]``; column ``j`` owns non-zeros
        ``indices[indptr[j]:indptr[j+1]]``.
    indices:
        ``int64[nnz]`` row index of each stored value, sorted within a column.
    data:
        ``float64[nnz]`` stored values.
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.validate()

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        """Compress a 2-D dense array, dropping exact zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError(f"CSC requires a 2-D array, got ndim={dense.ndim}")
        rows, cols = np.nonzero(dense)
        order = np.lexsort((rows, cols))
        rows, cols = rows[order], cols[order]
        indptr = np.zeros(dense.shape[1] + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=dense.shape[1]), out=indptr[1:])
        return cls(
            shape=dense.shape,
            indptr=indptr,
            indices=rows.astype(np.int64),
            data=dense[rows, cols].astype(np.float64),
        )

    def validate(self) -> None:
        """Raise ``ValueError`` on any structural inconsistency."""
        n_rows, n_cols = self.shape
        if self.indptr.shape != (n_cols + 1,):
            raise ValueError(f"indptr length {self.indptr.shape[0]} != n_cols+1={n_cols + 1}")
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise ValueError("indices/data length must equal indptr[-1]")
        if nnz and (self.indices.min() < 0 or self.indices.max() >= n_rows):
            raise ValueError("row index out of range")
        c = first_unsorted_segment(self.indices, self.indptr)
        if c is not None:
            raise ValueError(f"column {c} has unsorted or duplicate row indices")

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def density(self) -> float:
        """Fraction of entries stored."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of entries not stored."""
        return 1.0 - self.density

    def col_nnz(self) -> np.ndarray:
        """Per-column non-zero counts (length ``n_cols``)."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        """Expand back to a dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=np.float64)
        cols = np.repeat(np.arange(self.shape[1]), self.col_nnz())
        out[self.indices, cols] = self.data
        return out

    def left_matmul_dense(self, dense_lhs: np.ndarray) -> np.ndarray:
        """Compute ``dense_lhs @ self`` column-wise (functional reference).

        This is the access pattern of the TEW residual: the activation matrix
        ``A`` multiplies the sparse EW remainder stored per column panel.
        """
        dense_lhs = np.asarray(dense_lhs)
        if dense_lhs.ndim != 2 or dense_lhs.shape[1] != self.shape[0]:
            raise ValueError(
                f"lhs shape {dense_lhs.shape} incompatible with {self.shape}"
            )
        out_dtype = np.result_type(self.data, dense_lhs)
        if self.nnz == 0:
            return np.zeros((dense_lhs.shape[0], self.shape[1]), dtype=out_dtype)
        # the CSC arrays of S, read as CSR, describe Sᵀ; the shared dispatch
        # then computes (Sᵀ @ lhsᵀ)ᵀ, accumulating each column's products in
        # row order exactly like the scalar column-wise reference
        from repro.formats.csr import csr_structured_matmul

        out_t = csr_structured_matmul(
            self.indptr, self.indices, self.data,
            (self.shape[1], self.shape[0]),
            np.ascontiguousarray(np.asarray(dense_lhs).T),
            out_dtype,
        )
        return out_t.T

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSCMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )
