"""Shared structural checks for the compressed sparse formats."""

from __future__ import annotations

import numpy as np

__all__ = ["first_unsorted_segment"]


def first_unsorted_segment(indices: np.ndarray, indptr: np.ndarray) -> int | None:
    """Index of the first segment whose indices are not strictly increasing.

    ``indptr`` partitions ``indices`` into segments (CSR rows, CSC columns,
    BSR block rows).  One vectorised adjacent-pair sweep checks every
    segment at once: a non-increasing pair is a violation unless it
    straddles a segment boundary.  Returns the offending segment's index,
    or ``None`` when all segments are sorted.
    """
    nnz = int(indptr[-1])
    if nnz <= 1:
        return None
    non_increasing = np.diff(indices) <= 0
    boundaries = indptr[1:-1]
    boundaries = boundaries[(boundaries > 0) & (boundaries < nnz)]
    non_increasing[boundaries - 1] = False
    if not np.any(non_increasing):
        return None
    bad = int(np.flatnonzero(non_increasing)[0])
    return int(np.searchsorted(indptr, bad, side="right")) - 1
