"""Tile-wise (TW) compact matrix layout.

This is the paper's own execution format (Fig. 4 step 4, Fig. 7): the weight
matrix ``B (K×N)`` is split into column tiles ("B-tiles").  Column pruning
removes whole columns; the surviving columns are then *re-organised* into
tiles of ``G`` surviving columns each (paper §IV-A "Pruning Order"), and row
pruning assigns every tile its own row mask ``mask_k``.

Each :class:`TWTile` therefore stores

- ``col_indices`` — the original column indices this tile owns (all of them
  survivors of column pruning; a column appearing in no tile was pruned),
- ``mask_k``      — ``bool[K]``, True for rows kept by this tile's row pruning,
- ``data``        — the compact dense ``kept_k × kept_n`` payload,
- ``scale``       — the symmetric quantisation scale (int8 payloads store
  ``round(w / scale)``; float payloads keep the neutral ``1.0``).

Because every tile is dense after compaction, the sparse product collapses to
a set of *smaller dense GEMMs*, which is the property that lets TW run on
unmodified tensor cores.  Tiles with equal widths can be batched into a
single kernel (Fig. 7 step 3) — :meth:`TiledTWMatrix.width_groups` exposes
the batching key.

Both tiling disciplines in the paper are representable:

- *reorganised* tiling (the paper's default): tiles own ``G`` consecutive
  survivors, so all but the last tile have equal width;
- *fixed-boundary* tiling (Fig. 4 step 2's pruning view, kept as an
  ablation): tiles own the survivors of each original ``G``-wide panel, so
  widths vary per tile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TWTile", "TiledTWMatrix"]


@dataclass(frozen=True)
class TWTile:
    """One compacted column tile of a TW matrix.

    Attributes
    ----------
    col_indices:
        ``int64[kept_n]`` strictly increasing original column indices.
    mask_k:
        ``bool[K]`` — True for rows kept by row pruning in this tile.
    data:
        ``float[kept_k, kept_n]`` compact dense payload,
        ``data[a, b] = B[rows_kept[a], col_indices[b]]`` — ``float64`` by
        default, ``float32``/``float16`` when the serving path compacts at
        reduced precision, ``int8`` when quantised (see ``scale``).
    scale:
        Symmetric per-tile quantisation scale: logical values are
        ``data * scale``.  ``1.0`` (neutral) for float payloads; for int8
        payloads ``scale = max|w| / 127`` over the tile's kept elements.
    """

    col_indices: np.ndarray
    mask_k: np.ndarray
    data: np.ndarray
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.col_indices.ndim != 1:
            raise ValueError("col_indices must be 1-D")
        if self.col_indices.size > 1 and np.any(np.diff(self.col_indices) <= 0):
            raise ValueError("col_indices must be strictly increasing")
        expect = (int(self.mask_k.sum()), int(self.col_indices.size))
        if self.data.shape != expect:
            raise ValueError(f"tile data shape {self.data.shape} != masks imply {expect}")
        if not (self.scale > 0.0 and np.isfinite(self.scale)):
            raise ValueError(f"tile scale must be positive and finite, got {self.scale}")

    @property
    def kept_k(self) -> int:
        """Rows surviving row pruning — the tile's effective reduction depth."""
        return int(self.mask_k.sum())

    @property
    def kept_n(self) -> int:
        """Columns owned by the tile — its effective width."""
        return int(self.col_indices.size)

    @property
    def work(self) -> int:
        """Multiply-add count contributed per output row (``kept_k · kept_n``)."""
        return self.kept_k * self.kept_n

    def row_indices(self) -> np.ndarray:
        """Original row indices kept by this tile (``int64[kept_k]``)."""
        return np.flatnonzero(self.mask_k)


@dataclass(frozen=True)
class TiledTWMatrix:
    """A ``K×N`` matrix stored as TW column tiles.

    Attributes
    ----------
    shape:
        Logical dense shape ``(K, N)``.
    granularity:
        Tile width ``G`` (the paper's tunable hyper-parameter).
    tiles:
        Column tiles; together they own every *surviving* column exactly once.
    """

    shape: tuple[int, int]
    granularity: int
    tiles: tuple[TWTile, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_masks(
        cls,
        dense: np.ndarray,
        granularity: int,
        col_keep: np.ndarray,
        row_masks: list[np.ndarray],
        *,
        reorganize: bool = True,
        dtype: np.dtype | type | None = np.float64,
    ) -> "TiledTWMatrix":
        """Compact ``dense`` under a column keep-mask and per-tile row masks.

        Parameters
        ----------
        dense:
            The ``K×N`` weight matrix (values in pruned positions ignored).
        granularity:
            Tile width ``G``.
        col_keep:
            ``bool[N]`` — columns surviving column pruning.
        row_masks:
            One ``bool[K]`` per tile, in tile order.  The number of tiles is
            ``ceil(n_surviving / G)`` when ``reorganize`` else ``ceil(N / G)``.
        reorganize:
            If True (paper default), group *surviving* columns ``G`` at a
            time; otherwise keep the original fixed panel boundaries.
        dtype:
            Payload dtype of the compact tiles (``float64`` default, the
            historical behaviour).  ``None`` keeps ``dense``'s own dtype so
            float32 weights compact — and later serve — without promotion.
            ``int8`` quantises each tile symmetrically against its own
            ``max|w| / 127`` scale (per-tile scales, fp32 dequantisation at
            execution time — the mixed-precision serving path).
        """
        quantize = dtype is not None and np.dtype(dtype).kind in "iu"
        if quantize and np.dtype(dtype) != np.dtype(np.int8):
            raise ValueError(
                f"only int8 quantisation is supported, got {np.dtype(dtype)}"
            )
        # quantisation must see the float values — casting first would
        # truncate them to integers before the scale is even computed
        dense = np.asarray(dense) if quantize else np.asarray(dense, dtype=dtype)
        if dense.ndim != 2:
            raise ValueError(f"expected 2-D array, got ndim={dense.ndim}")
        k, n = dense.shape
        col_keep = np.asarray(col_keep, dtype=bool)
        if col_keep.shape != (n,):
            raise ValueError(f"col_keep length {col_keep.shape[0]} != N={n}")
        groups = cls.column_groups(col_keep, granularity, reorganize=reorganize)
        if len(row_masks) != len(groups):
            raise ValueError(f"expected {len(groups)} row masks, got {len(row_masks)}")
        tiles = []
        for cols, mk in zip(groups, row_masks):
            mk = np.asarray(mk, dtype=bool)
            if mk.shape != (k,):
                raise ValueError(f"row mask length {mk.shape[0]} != K={k}")
            rows = np.flatnonzero(mk)
            if rows.size and cols.size:
                # two-step gather: the row gather copies contiguous rows,
                # leaving only a small per-row column gather (much faster
                # than one np.ix_ fancy index at model scale)
                data = dense[rows][:, cols]
            else:
                data = np.zeros((rows.size, cols.size), dtype=dense.dtype)
            scale = 1.0
            if quantize:
                amax = float(np.max(np.abs(data))) if data.size else 0.0
                scale = amax / 127.0 if amax > 0.0 else 1.0
                data = np.clip(np.rint(data / scale), -127, 127).astype(np.int8)
            tiles.append(
                TWTile(
                    cols.astype(np.int64), mk, np.ascontiguousarray(data), scale
                )
            )
        return cls(shape=(k, n), granularity=granularity, tiles=tuple(tiles))

    @staticmethod
    def column_groups(
        col_keep: np.ndarray, granularity: int, *, reorganize: bool = True
    ) -> list[np.ndarray]:
        """Group surviving column indices into tiles.

        With ``reorganize`` (paper §IV-A), consecutive survivors are grouped
        ``G`` at a time so all tiles but possibly the last have equal width —
        the precondition for batched execution.  Without it, the original
        ``G``-wide panel boundaries are kept and tiles have ragged widths.
        Empty groups (fully-pruned panels) are dropped.
        """
        if granularity <= 0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        col_keep = np.asarray(col_keep, dtype=bool)
        survivors = np.flatnonzero(col_keep)
        if survivors.size == 0:
            return []
        if reorganize:
            cuts = np.arange(granularity, survivors.size, granularity)
        else:
            # one binary search per panel boundary instead of a boolean
            # scan of all survivors per panel
            n = col_keep.shape[0]
            cuts = np.searchsorted(survivors, np.arange(granularity, n, granularity))
        groups = np.split(survivors, cuts)
        return [g for g in groups if g.size]

    # ------------------------------------------------------------------ #
    # validation & properties
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` on overlapping tiles or bad indices."""
        k, n = self.shape
        if self.granularity <= 0:
            raise ValueError(f"granularity must be positive, got {self.granularity}")
        seen = np.zeros(n, dtype=bool)
        for i, t in enumerate(self.tiles):
            if t.mask_k.shape != (k,):
                raise ValueError(f"tile {i}: mask_k length != K={k}")
            if t.kept_n > self.granularity:
                raise ValueError(
                    f"tile {i}: width {t.kept_n} exceeds granularity {self.granularity}"
                )
            if t.col_indices.size and (
                t.col_indices.min() < 0 or t.col_indices.max() >= n
            ):
                raise ValueError(f"tile {i}: column index out of range")
            if np.any(seen[t.col_indices]):
                raise ValueError(f"tile {i}: column owned by more than one tile")
            seen[t.col_indices] = True

    @property
    def n_tiles(self) -> int:
        """Number of column tiles."""
        return len(self.tiles)

    @property
    def dtype(self) -> np.dtype:
        """Payload dtype of the compact tiles (``float64`` when empty)."""
        return self.tiles[0].data.dtype if self.tiles else np.dtype(np.float64)

    @property
    def quantized(self) -> bool:
        """True when the payloads are integer-quantised (int8 + scales)."""
        return self.dtype.kind in "iu"

    @property
    def kept_columns(self) -> int:
        """Total surviving columns across tiles."""
        return sum(t.kept_n for t in self.tiles)

    @property
    def sparsity(self) -> float:
        """Element-level sparsity implied by the tile masks."""
        total = self.shape[0] * self.shape[1]
        kept = sum(t.work for t in self.tiles)
        return 1.0 - kept / total if total else 0.0

    @property
    def flops_fraction(self) -> float:
        """Fraction of the dense GEMM's multiply-adds still required."""
        return 1.0 - self.sparsity

    def kept_widths(self) -> np.ndarray:
        """Per-tile widths ``N_i`` — the batching key (Fig. 4 step 4)."""
        return np.array([t.kept_n for t in self.tiles], dtype=np.int64)

    def kept_depths(self) -> np.ndarray:
        """Per-tile reduction depths ``K_i``."""
        return np.array([t.kept_k for t in self.tiles], dtype=np.int64)

    def width_groups(self) -> dict[int, list[int]]:
        """Tile indices grouped by width — each group batches into one kernel."""
        groups: dict[int, list[int]] = {}
        for i, t in enumerate(self.tiles):
            groups.setdefault(t.kept_n, []).append(i)
        return groups

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-tile multiply-add counts (1.0 = balanced)."""
        work = np.array([t.work for t in self.tiles], dtype=np.float64)
        if work.size == 0:
            return 1.0
        mean = work.mean()
        return float(work.max() / mean) if mean > 0 else 1.0

    def to_dense(self) -> np.ndarray:
        """Expand back to the logical dense ``K×N`` array (zeros where pruned).

        Quantised payloads dequantise through their per-tile scales, so the
        result always holds *logical* float values (fp32 for int8 storage).
        """
        out_dtype = np.dtype(np.float32) if self.quantized else self.dtype
        out = np.zeros(self.shape, dtype=out_dtype)
        for t in self.tiles:
            rows = t.row_indices()
            if rows.size and t.col_indices.size:
                payload = t.data
                if self.quantized:
                    payload = payload.astype(np.float32) * np.float32(t.scale)
                out[np.ix_(rows, t.col_indices)] = payload
        return out

    def element_mask(self) -> np.ndarray:
        """Full ``bool[K, N]`` keep-mask implied by the tile masks."""
        out = np.zeros(self.shape, dtype=bool)
        for t in self.tiles:
            out[np.ix_(np.flatnonzero(t.mask_k), t.col_indices)] = True
        return out

    def memory_bytes(self, dtype_bytes: int = 2, mask_bytes: int = 4) -> int:
        """Storage footprint: compact payloads + int32 masks (paper Fig. 11).

        The paper stores masks in int32 (one word per row/column flag), which
        is the source of the 2× load-transaction overhead at zero sparsity.
        """
        payload = sum(t.data.size for t in self.tiles) * dtype_bytes
        masks = sum(t.mask_k.size + t.kept_n for t in self.tiles) * mask_bytes
        return payload + masks
