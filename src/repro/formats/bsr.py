"""Block Sparse Row (BSR) matrix.

BSR stores a matrix as a sparse grid of fixed-size dense blocks.  It is the
storage format behind the paper's block-wise (BW) baseline: the BlockSparse
library [Narang+ 2017, Tillet 2020] keeps only the surviving ``B×B`` blocks
and multiplies them on tensor cores.  The block-size constraint is exactly
why BW loses accuracy (paper Fig. 6/9a) while remaining hardware-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats._validate import first_unsorted_segment

__all__ = ["BSRMatrix"]


@dataclass(frozen=True)
class BSRMatrix:
    """An immutable BSR matrix of uniform ``block_shape`` dense blocks.

    Attributes
    ----------
    shape:
        Logical dense shape ``(n_rows, n_cols)``; each dimension must be an
        exact multiple of the corresponding block dimension.
    block_shape:
        ``(br, bc)`` size of every stored block.
    indptr:
        ``int64[n_block_rows + 1]``; block-row ``i`` owns blocks
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``int64[n_blocks]`` block-column index of each stored block, sorted
        within a block row.
    blocks:
        ``float64[n_blocks, br, bc]`` stored dense blocks.
    """

    shape: tuple[int, int]
    block_shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    blocks: np.ndarray

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(
        cls, dense: np.ndarray, block_shape: tuple[int, int]
    ) -> "BSRMatrix":
        """Compress a dense array, keeping blocks with any non-zero entry."""
        dense = np.asarray(dense, dtype=np.float64)
        br, bc = block_shape
        if dense.ndim != 2:
            raise ValueError(f"BSR requires a 2-D array, got ndim={dense.ndim}")
        if br <= 0 or bc <= 0:
            raise ValueError(f"block_shape must be positive, got {block_shape}")
        n_rows, n_cols = dense.shape
        if n_rows % br or n_cols % bc:
            raise ValueError(
                f"shape {dense.shape} not divisible by block_shape {block_shape}"
            )
        nbr, nbc = n_rows // br, n_cols // bc
        # (nbr, nbc, br, bc) view of the matrix as a grid of blocks
        grid = dense.reshape(nbr, br, nbc, bc).transpose(0, 2, 1, 3)
        keep = np.any(grid != 0.0, axis=(2, 3))
        rows, cols = np.nonzero(keep)
        indptr = np.zeros(nbr + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=nbr), out=indptr[1:])
        return cls(
            shape=dense.shape,
            block_shape=(br, bc),
            indptr=indptr,
            indices=cols.astype(np.int64),
            blocks=grid[rows, cols].copy(),
        )

    # ------------------------------------------------------------------ #
    # validation & properties
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` on any structural inconsistency."""
        n_rows, n_cols = self.shape
        br, bc = self.block_shape
        if br <= 0 or bc <= 0:
            raise ValueError(f"block_shape must be positive, got {self.block_shape}")
        if n_rows % br or n_cols % bc:
            raise ValueError(
                f"shape {self.shape} not divisible by block_shape {self.block_shape}"
            )
        nbr, nbc = n_rows // br, n_cols // bc
        if self.indptr.shape != (nbr + 1,):
            raise ValueError("indptr length must equal n_block_rows + 1")
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        nb = int(self.indptr[-1])
        if self.indices.shape != (nb,):
            raise ValueError("indices length must equal indptr[-1]")
        if self.blocks.shape != (nb, br, bc):
            raise ValueError(
                f"blocks shape {self.blocks.shape} != ({nb}, {br}, {bc})"
            )
        if nb and (self.indices.min() < 0 or self.indices.max() >= nbc):
            raise ValueError("block-column index out of range")
        r = first_unsorted_segment(self.indices, self.indptr)
        if r is not None:
            raise ValueError(f"block row {r} has unsorted or duplicate indices")

    @property
    def n_blocks(self) -> int:
        """Number of stored dense blocks."""
        return int(self.indptr[-1])

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Shape of the block grid ``(n_block_rows, n_block_cols)``."""
        return (self.shape[0] // self.block_shape[0], self.shape[1] // self.block_shape[1])

    @property
    def block_density(self) -> float:
        """Fraction of blocks stored; drives the BlockSparse cost model."""
        total = self.grid_shape[0] * self.grid_shape[1]
        return self.n_blocks / total if total else 0.0

    @property
    def block_sparsity(self) -> float:
        """Fraction of blocks pruned."""
        return 1.0 - self.block_density

    @property
    def nnz(self) -> int:
        """Number of non-zero scalar entries inside stored blocks."""
        return int(np.count_nonzero(self.blocks))

    @property
    def sparsity(self) -> float:
        """Element-level sparsity (zeros inside stored blocks count as zero)."""
        total = self.shape[0] * self.shape[1]
        return 1.0 - self.nnz / total if total else 0.0

    def block_row_counts(self) -> np.ndarray:
        """Per-block-row stored-block counts (load-balance statistic)."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------------ #
    # conversion & compute
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Expand back to a dense ``float64`` array."""
        br, bc = self.block_shape
        nbr, nbc = self.grid_shape
        grid = np.zeros((nbr, nbc, br, bc), dtype=np.float64)
        rows = np.repeat(np.arange(nbr), self.block_row_counts())
        grid[rows, self.indices] = self.blocks
        return grid.transpose(0, 2, 1, 3).reshape(self.shape)

    def left_matmul_dense(self, dense_lhs: np.ndarray) -> np.ndarray:
        """Compute ``dense_lhs @ self`` block by block (functional reference).

        Mirrors the BlockSparse execution order: every stored block ``(I, J)``
        contributes ``lhs[:, I·br:(I+1)·br] @ block`` to output panel ``J``.
        """
        dense_lhs = np.asarray(dense_lhs)
        if dense_lhs.ndim != 2 or dense_lhs.shape[1] != self.shape[0]:
            raise ValueError(
                f"lhs shape {dense_lhs.shape} incompatible with {self.shape}"
            )
        br, bc = self.block_shape
        out = np.zeros((dense_lhs.shape[0], self.shape[1]), dtype=np.float64)
        nbr = self.grid_shape[0]
        for block_row in range(nbr):
            lhs_panel = dense_lhs[:, block_row * br : (block_row + 1) * br]
            for k in range(self.indptr[block_row], self.indptr[block_row + 1]):
                j = self.indices[k]
                out[:, j * bc : (j + 1) * bc] += lhs_panel @ self.blocks[k]
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.block_shape == other.block_shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.blocks, other.blocks)
        )
