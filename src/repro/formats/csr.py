"""Compressed Sparse Row (CSR) matrix.

CSR is the canonical GPU sparse format: three arrays (``indptr``, ``indices``,
``data``) storing the non-zeros row by row.  The paper executes element-wise
(EW) and vector-wise (VW) pruned models through cuSparse, which consumes CSR;
our functional SpMM kernel (:mod:`repro.kernels.spmm`) and the cuSparse cost
model (:mod:`repro.gpu.cusparse`) both consume this class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats._validate import first_unsorted_segment

__all__ = ["CSRMatrix"]

#: bound on the materialised (entries × rhs-width) product intermediate of
#: the pure-NumPy segment-reduction SpMM fallback, in scalar elements
_SEGMENT_CHUNK_ELEMENTS = 2_000_000


def csr_structured_matmul(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    shape: tuple[int, int],
    rhs: np.ndarray,
    out_dtype,
) -> np.ndarray:
    """``S @ rhs`` for any CSR-structured triple (shared CSR/CSC dispatch).

    Uses SciPy's compiled kernel when available for float64 results — it
    accumulates each segment's products sequentially in index order,
    bit-identically to the scalar references — and falls back to the
    chunked :func:`_segment_spmm` segment reduction otherwise.
    """
    try:
        import scipy.sparse as _sp
    except ImportError:
        _sp = None
    if _sp is not None and out_dtype == np.float64:
        mat = _sp.csr_matrix((data, indices, indptr), shape=shape)
        return np.asarray(mat @ np.asarray(rhs, dtype=np.float64))
    return _segment_spmm(indptr, indices, data, rhs, shape[0], out_dtype)


def _segment_spmm(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    dense_rhs: np.ndarray,
    n_out: int,
    out_dtype,
) -> np.ndarray:
    """Per-segment SpMM: gather, multiply, ``np.add.reduceat`` per row chunk.

    Chunk boundaries align to segment starts (``searchsorted`` on
    ``indptr``), so no partial segment ever crosses a chunk and the per-row
    sums need no cross-chunk accumulation.
    """
    width = dense_rhs.shape[1]
    out = np.zeros((n_out, width), dtype=out_dtype)
    chunk_nnz = max(1, _SEGMENT_CHUNK_ELEMENTS // max(width, 1))
    row = 0
    while row < n_out:
        # furthest row whose cumulative entry count stays within the chunk
        row_end = int(
            np.searchsorted(indptr, int(indptr[row]) + chunk_nnz, side="left")
        ) - 1
        row_end = min(max(row_end, row + 1), n_out)
        lo, hi = int(indptr[row]), int(indptr[row_end])
        if hi > lo:
            products = data[lo:hi, None] * dense_rhs[indices[lo:hi]]
            seg = indptr[row : row_end + 1] - lo
            non_empty = seg[1:] > seg[:-1]
            out[row:row_end][non_empty] = np.add.reduceat(
                products, seg[:-1][non_empty], axis=0
            )
        row = row_end
    return out


@dataclass(frozen=True)
class CSRMatrix:
    """An immutable CSR matrix.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)`` of the logical dense matrix.
    indptr:
        ``int64[n_rows + 1]``; row ``i`` owns non-zeros
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``int64[nnz]`` column index of each stored value, sorted within a row.
    data:
        ``float64[nnz]`` stored values (explicit zeros are allowed but
        :meth:`from_dense` never produces them).
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Compress a 2-D dense array, dropping exact zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError(f"CSR requires a 2-D array, got ndim={dense.ndim}")
        rows, cols = np.nonzero(dense)
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=dense.shape[0]), out=indptr[1:])
        return cls(
            shape=dense.shape,
            indptr=indptr,
            indices=cols.astype(np.int64),
            data=dense[rows, cols].astype(np.float64),
        )

    @classmethod
    def from_mask(cls, dense: np.ndarray, mask: np.ndarray) -> "CSRMatrix":
        """Compress ``dense * mask`` without materialising the product."""
        dense = np.asarray(dense)
        mask = np.asarray(mask, dtype=bool)
        if dense.shape != mask.shape:
            raise ValueError(f"mask shape {mask.shape} != dense shape {dense.shape}")
        return cls.from_dense(np.where(mask, dense, 0.0))

    # ------------------------------------------------------------------ #
    # validation & properties
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` on any structural inconsistency."""
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"negative shape {self.shape}")
        if self.indptr.shape != (n_rows + 1,):
            raise ValueError(f"indptr length {self.indptr.shape[0]} != n_rows+1={n_rows + 1}")
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise ValueError("indices/data length must equal indptr[-1]")
        if nnz and (self.indices.min() < 0 or self.indices.max() >= n_cols):
            raise ValueError("column index out of range")
        r = first_unsorted_segment(self.indices, self.indptr)
        if r is not None:
            raise ValueError(f"row {r} has unsorted or duplicate column indices")

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def density(self) -> float:
        """Fraction of entries stored (``nnz / (rows*cols)``)."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of entries *not* stored; the paper's ``S``."""
        return 1.0 - self.density

    def row_nnz(self) -> np.ndarray:
        """Per-row non-zero counts (length ``n_rows``)."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------------ #
    # conversion & compute
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Expand back to a dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        out[rows, self.indices] = self.data
        return out

    def matmul_dense(self, dense_rhs: np.ndarray) -> np.ndarray:
        """Compute ``self @ dense_rhs`` without a per-row Python loop.

        Dispatches to SciPy's compiled CSR kernel when available — it
        accumulates each row's products sequentially in index order, i.e.
        bit-identically to ``spmm_rowwise_reference``.  Without SciPy, a
        row-chunked ``np.add.reduceat`` segment reduction runs instead
        (chunking bounds the materialised ``products`` intermediate); the
        same products are added per row, but reduceat may associate sums
        pairwise where the scalar loop is sequential, so that path is
        bit-exact on exactly-representable data and agrees to float
        rounding otherwise.
        """
        dense_rhs = np.asarray(dense_rhs)
        if dense_rhs.ndim != 2 or dense_rhs.shape[0] != self.shape[1]:
            raise ValueError(
                f"rhs shape {dense_rhs.shape} incompatible with {self.shape}"
            )
        out_dtype = np.result_type(self.data, dense_rhs)
        if self.nnz == 0:
            return np.zeros((self.shape[0], dense_rhs.shape[1]), dtype=out_dtype)
        return csr_structured_matmul(
            self.indptr, self.indices, self.data, self.shape, dense_rhs, out_dtype
        )

    def transpose(self) -> "CSRMatrix":
        """Return the transpose, still in CSR (i.e. CSC of the original).

        Index-level re-sort: no dense round-trip.  Explicit zeros are
        dropped, matching the historical ``from_dense(to_dense().T)``
        behaviour.
        """
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        nz = self.data != 0.0
        rows, cols, data = rows[nz], self.indices[nz], self.data[nz]
        order = np.lexsort((rows, cols))
        indptr = np.zeros(self.shape[1] + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=self.shape[1]), out=indptr[1:])
        return CSRMatrix(
            shape=(self.shape[1], self.shape[0]),
            indptr=indptr,
            indices=rows[order].astype(np.int64),
            data=data[order].astype(np.float64),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )
