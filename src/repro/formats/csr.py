"""Compressed Sparse Row (CSR) matrix.

CSR is the canonical GPU sparse format: three arrays (``indptr``, ``indices``,
``data``) storing the non-zeros row by row.  The paper executes element-wise
(EW) and vector-wise (VW) pruned models through cuSparse, which consumes CSR;
our functional SpMM kernel (:mod:`repro.kernels.spmm`) and the cuSparse cost
model (:mod:`repro.gpu.cusparse`) both consume this class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CSRMatrix"]


@dataclass(frozen=True)
class CSRMatrix:
    """An immutable CSR matrix.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)`` of the logical dense matrix.
    indptr:
        ``int64[n_rows + 1]``; row ``i`` owns non-zeros
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``int64[nnz]`` column index of each stored value, sorted within a row.
    data:
        ``float64[nnz]`` stored values (explicit zeros are allowed but
        :meth:`from_dense` never produces them).
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Compress a 2-D dense array, dropping exact zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError(f"CSR requires a 2-D array, got ndim={dense.ndim}")
        rows, cols = np.nonzero(dense)
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(
            shape=dense.shape,
            indptr=indptr,
            indices=cols.astype(np.int64),
            data=dense[rows, cols].astype(np.float64),
        )

    @classmethod
    def from_mask(cls, dense: np.ndarray, mask: np.ndarray) -> "CSRMatrix":
        """Compress ``dense * mask`` without materialising the product."""
        dense = np.asarray(dense)
        mask = np.asarray(mask, dtype=bool)
        if dense.shape != mask.shape:
            raise ValueError(f"mask shape {mask.shape} != dense shape {dense.shape}")
        return cls.from_dense(np.where(mask, dense, 0.0))

    # ------------------------------------------------------------------ #
    # validation & properties
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` on any structural inconsistency."""
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"negative shape {self.shape}")
        if self.indptr.shape != (n_rows + 1,):
            raise ValueError(f"indptr length {self.indptr.shape[0]} != n_rows+1={n_rows + 1}")
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise ValueError("indices/data length must equal indptr[-1]")
        if nnz and (self.indices.min() < 0 or self.indices.max() >= n_cols):
            raise ValueError("column index out of range")
        # columns sorted within each row
        for r in range(n_rows):
            seg = self.indices[self.indptr[r] : self.indptr[r + 1]]
            if seg.size > 1 and np.any(np.diff(seg) <= 0):
                raise ValueError(f"row {r} has unsorted or duplicate column indices")

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def density(self) -> float:
        """Fraction of entries stored (``nnz / (rows*cols)``)."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of entries *not* stored; the paper's ``S``."""
        return 1.0 - self.density

    def row_nnz(self) -> np.ndarray:
        """Per-row non-zero counts (length ``n_rows``)."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------------ #
    # conversion & compute
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Expand back to a dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        out[rows, self.indices] = self.data
        return out

    def matmul_dense(self, dense_rhs: np.ndarray) -> np.ndarray:
        """Compute ``self @ dense_rhs`` row-wise (functional reference).

        A vectorised gather-scatter implementation: for each stored entry
        ``(r, c, v)`` accumulate ``v * rhs[c, :]`` into row ``r``.
        """
        dense_rhs = np.asarray(dense_rhs)
        if dense_rhs.ndim != 2 or dense_rhs.shape[0] != self.shape[1]:
            raise ValueError(
                f"rhs shape {dense_rhs.shape} incompatible with {self.shape}"
            )
        out = np.zeros((self.shape[0], dense_rhs.shape[1]), dtype=np.result_type(self.data, dense_rhs))
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        np.add.at(out, rows, self.data[:, None] * dense_rhs[self.indices])
        return out

    def transpose(self) -> "CSRMatrix":
        """Return the transpose, still in CSR (i.e. CSC of the original)."""
        return CSRMatrix.from_dense(self.to_dense().T)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )
