"""Sparse matrix storage formats.

This subpackage implements, from scratch on NumPy, the storage formats the
paper's execution paths rely on:

- :class:`~repro.formats.csr.CSRMatrix` — compressed sparse row, the format
  consumed by the cuSparse-like SpMM path (element-wise / vector-wise models).
- :class:`~repro.formats.csc.CSCMatrix` — compressed sparse column, used for
  the element-wise residual of the hybrid TEW pattern (paper Fig. 4 step 3).
- :class:`~repro.formats.bsr.BSRMatrix` — block-sparse row, the format
  consumed by the BlockSparse-like path (block-wise models).
- :class:`~repro.formats.tiled.TiledTWMatrix` — the paper's tile-wise compact
  layout: per-tile dense panels with ``mask_k`` / ``mask_n`` vectors
  (paper Fig. 4 step 4 and Fig. 7).

All formats support lossless round-trips to dense and carry exact sparsity
accounting so pattern comparisons are apples-to-apples.
"""

from repro.formats.csr import CSRMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.bsr import BSRMatrix
from repro.formats.tiled import TiledTWMatrix, TWTile

__all__ = ["CSRMatrix", "CSCMatrix", "BSRMatrix", "TiledTWMatrix", "TWTile"]
