"""Experiment pipelines shared by the benchmark harnesses and examples.

- :mod:`repro.experiments.accuracy` — train a task once, snapshot it, then
  prune-and-fine-tune with any pattern at any sparsity (the engine behind
  Figs. 9a, 10a, 12, 13 and the accuracy side of Fig. 14);
- :mod:`repro.experiments.latency` — price any (model, pattern, sparsity,
  engine) combination on the simulator (Figs. 3, 9b, 10b, 11, 15 and the
  latency side of Fig. 14);
- :mod:`repro.experiments.matched` — accuracy-matched sparsity selection
  (the paper's "<1-3 % drop" regime behind the 1.95×/2.86× headline).
"""

from repro.experiments.accuracy import TaskBundle, prepare_task, prune_and_evaluate
from repro.experiments.latency import (
    MODEL_SHAPES,
    gemm_speedup,
    model_plans,
    sparsity_sweep,
)
from repro.experiments.matched import accuracy_matched_sparsity

__all__ = [
    "TaskBundle",
    "prepare_task",
    "prune_and_evaluate",
    "MODEL_SHAPES",
    "model_plans",
    "gemm_speedup",
    "sparsity_sweep",
    "accuracy_matched_sparsity",
]
