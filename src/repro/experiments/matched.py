"""Accuracy-matched sparsity selection (the paper's headline regime).

§VII-C compares patterns "with the same level of accuracy drop (BERT with
< 3 % drop, VGG with < 1 % drop and NMT with < 1 BLEU drop)" — each pattern
runs at the *highest sparsity it can afford* within the drop budget, and
speedups are compared there.  Less expressive patterns afford less
sparsity, which is how BW ends up at 0.41× while TW reaches 1.95×.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["accuracy_matched_sparsity", "DROP_BUDGETS"]

#: The paper's per-model accuracy-drop budgets (§VII-C).
DROP_BUDGETS: dict[str, float] = {
    "mnli": 0.03,   # BERT < 3 % accuracy drop
    "squad": 0.03,
    "vgg": 0.01,    # VGG < 1 % drop
    "nmt": 1.0,     # NMT < 1 BLEU drop (absolute)
}


def accuracy_matched_sparsity(
    sparsities: Sequence[float],
    metrics: Sequence[float],
    baseline: float,
    budget: float,
) -> float | None:
    """Highest sparsity whose metric stays within ``budget`` of baseline.

    ``metrics[i]`` is the post-pruning metric at ``sparsities[i]``.  Returns
    ``None`` if no measured sparsity fits the budget (the pattern cannot
    match accuracy at any useful sparsity — the Fig. 14 "dominated" case).
    """
    if len(sparsities) != len(metrics):
        raise ValueError("sparsities and metrics must have equal lengths")
    best: float | None = None
    for s, m in zip(sparsities, metrics):
        if baseline - m <= budget + 1e-9 and (best is None or s > best):
            best = s
    return best
