"""Latency experiment pipeline on the simulator.

Prices any (model, pattern, sparsity, engine) combination against its dense
baseline using the paper's *full-size* GEMM shapes — BERT-base, VGG-16 and
the attention NMT — so latency numbers are not limited by the miniaturised
accuracy models.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.models.registry import (
    GemmShape,
    bert_base_gemm_shapes,
    nmt_gemm_shapes,
    vgg16_gemm_shapes,
)
from repro.patterns.registry import resolve_engine
from repro.runtime.engine import EndToEndReport, EngineConfig, InferenceEngine, LayerPlan

__all__ = [
    "MODEL_SHAPES",
    "model_plans",
    "baseline_engine_config",
    "gemm_speedup",
    "sparsity_sweep",
    "end_to_end_report",
]

#: Full-size GEMM shape factories per paper workload.
MODEL_SHAPES: dict[str, Callable[[], list[GemmShape]]] = {
    "bert": lambda: bert_base_gemm_shapes(batch=64, seq=128),
    "vgg": lambda: vgg16_gemm_shapes(batch=8),
    "nmt": lambda: nmt_gemm_shapes(batch=64, seq=32),
}

# A sweep prices hundreds of sparse configs against the *same* dense
# baselines, so both the engine (with its per-shape memos) and the summed
# per-model dense totals are shared module-wide.  The totals memo only
# applies to the shared default engine — a caller-supplied engine may carry
# a different device/calibration.
_SHARED_ENGINE: InferenceEngine | None = None
_DENSE_BASELINE_US: dict[tuple[str, str], float] = {}


def _default_engine() -> InferenceEngine:
    global _SHARED_ENGINE
    if _SHARED_ENGINE is None:
        _SHARED_ENGINE = InferenceEngine()
    return _SHARED_ENGINE


def _dense_baseline_us(
    model: str,
    plans: list[LayerPlan],
    baseline_cfg: EngineConfig,
    infer: InferenceEngine,
    memoizable: bool,
) -> float:
    key = (model, baseline_cfg.engine)
    if memoizable:
        hit = _DENSE_BASELINE_US.get(key)
        if hit is not None:
            return hit
    dense_us = sum(
        infer.gemm_cost(LayerPlan(p.shape), baseline_cfg).total_us * p.shape.count
        for p in plans
    )
    if memoizable:
        _DENSE_BASELINE_US[key] = dense_us
    return dense_us


def baseline_engine_config(pattern: str, config: EngineConfig) -> EngineConfig:
    """The dense baseline's engine for a pattern (the paper's pairing).

    EW/VW run through cuSparse on CUDA cores, so their dense baseline is
    the CUDA-core GEMM; every other pattern compares against the requested
    engine.  Single source of this rule — the facade's pricing
    (:meth:`repro.api.CompiledTWModel.price`) and :func:`gemm_speedup`
    both resolve through it.
    """
    return EngineConfig(engine="cuda_core") if pattern in ("ew", "vw") else config


def model_plans(
    model: str,
    pattern: str,
    sparsity: float,
    *,
    granularity: int = 128,
    block_size: int = 32,
    tew_delta: float = 0.0,
) -> list[LayerPlan]:
    """Layer plans applying one pattern uniformly across a model's GEMMs."""
    if model not in MODEL_SHAPES:
        raise KeyError(f"unknown model {model!r}; expected one of {sorted(MODEL_SHAPES)}")
    return [
        LayerPlan(
            shape,
            pattern=pattern,
            sparsity=sparsity,
            granularity=granularity,
            block_size=block_size,
            tew_delta=tew_delta,
        )
        for shape in MODEL_SHAPES[model]()
    ]


def gemm_speedup(
    model: str,
    pattern: str,
    sparsity: float,
    *,
    engine: str = "tensor_core",
    granularity: int = 128,
    block_size: int = 32,
    tew_delta: float = 0.0,
    infer: InferenceEngine | None = None,
    config: EngineConfig | None = None,
) -> float:
    """GEMM-only speedup of a sparse configuration over its dense baseline.

    This is the paper's main reported quantity ("we focus on the GEMM
    execution time unless explicitly mentioned", §VII-A).  The baseline
    engine follows the paper's pairing: EW/VW compare against dense CUDA
    cores, BW/TW/TEW against the requested engine.
    """
    shared = infer is None
    infer = infer or _default_engine()
    config = config or EngineConfig(engine=resolve_engine(engine))
    baseline_cfg = baseline_engine_config(pattern, config)
    plans = model_plans(
        model, pattern, sparsity,
        granularity=granularity, block_size=block_size, tew_delta=tew_delta,
    )
    sparse_us = sum(
        infer.gemm_cost(p, config).total_us * p.shape.count for p in plans
    )
    dense_us = _dense_baseline_us(model, plans, baseline_cfg, infer, shared)
    if sparse_us <= 0:
        raise ValueError("sparse configuration has zero latency")
    return dense_us / sparse_us


def sparsity_sweep(
    model: str,
    pattern: str,
    sparsities: Sequence[float],
    **kwargs,
) -> list[float]:
    """Speedups across a sparsity grid (one figure series)."""
    return [gemm_speedup(model, pattern, s, **kwargs) for s in sparsities]


def end_to_end_report(
    model: str,
    pattern: str,
    sparsity: float,
    config: EngineConfig | None = None,
    *,
    granularity: int = 128,
    infer: InferenceEngine | None = None,
) -> EndToEndReport:
    """Full forward-pass breakdown (the Fig. 15 bars)."""
    infer = infer or _default_engine()
    config = config or EngineConfig()
    plans = model_plans(model, pattern, sparsity, granularity=granularity)
    return infer.end_to_end(model, plans, config)
