"""Accuracy experiment pipeline: train once, prune many ways.

The paper's accuracy methodology (§VII-A): start from a trained dense
model, prune with each sparsity pattern using the *same* multi-stage
algorithm (gradual targets + per-stage fine-tuning), and report downstream
accuracy.  This module reproduces that flow on the Mini* models:

1. :func:`prepare_task` trains a dense model on the task's synthetic
   dataset and snapshots its weights;
2. :func:`prune_and_evaluate` restores the snapshot and hands the
   multi-stage loop to :func:`repro.tune` — TW through Algorithm 1, TEW as
   the composable overlay option, baselines through the shared stage loop
   with their own mask rules — then returns test accuracy.

There is no hand-wired ``TWPruner``/``GradualSchedule`` construction here:
the experiment is a thin task-preparation layer over the training-time
front door (ROADMAP "one front door" contract).  Everything is
deterministic given the seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import ImportanceConfig, TWPruneConfig
from repro.nn.datasets import (
    ClassificationSplit,
    ImagePatternDataset,
    SentencePairDataset,
    Seq2SeqDataset,
    SpanQADataset,
)
from repro.nn.layers import Module
from repro.nn.optimizer import Adam
from repro.nn.trainer import TrainConfig, TrainedModelAdapter, Trainer
from repro.models import (
    BertConfig,
    MiniBERTClassifier,
    MiniBERTSpan,
    MiniNMT,
    MiniVGG,
    NMTConfig,
    VGGConfig,
)
from repro.patterns.registry import PATTERNS

__all__ = ["TaskBundle", "prepare_task", "prune_and_evaluate", "TASKS"]

TASKS = ("mnli", "squad", "vgg", "nmt")


@dataclass
class TaskBundle:
    """A trained dense model plus everything pruning runs need."""

    name: str
    model: Module
    train_split: ClassificationSplit
    test_split: ClassificationSplit
    baseline_metric: float
    snapshot: list[np.ndarray] = field(default_factory=list)
    finetune: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=1))
    metric_name: str = "accuracy"

    def restore(self) -> None:
        """Reset the model to its trained dense state."""
        self.model.load_state_arrays(self.snapshot)

    def evaluate(self) -> float:
        """Test metric of the model's current weights."""
        return self.model.evaluate(self.test_split)

    def adapter(self) -> TrainedModelAdapter:
        """A fresh pruning adapter over the model's prunable GEMMs."""
        return TrainedModelAdapter(
            self.model.prunable_weights(),
            self.model.loss,
            self.train_split,
            self.finetune,
        )


def _train(model: Module, split: ClassificationSplit, cfg: TrainConfig) -> None:
    opt = Adam(list(model.parameters()), lr=cfg.lr)
    Trainer(model.loss, opt).train(split, cfg)


def prepare_task(task: str, seed: int = 0, train_samples: int = 768) -> TaskBundle:
    """Train a dense Mini* model for one of the paper's four tasks.

    Tasks: ``mnli`` (sentence-pair classification), ``squad`` (span F1),
    ``vgg`` (image classification), ``nmt`` (BLEU).  Training budgets are
    sized so the dense baselines have clear headroom above chance.
    """
    if task == "mnli":
        ds = SentencePairDataset(vocab_size=128, seq_len=16, seed=seed)
        train, test = ds.sample(train_samples, seed + 1), ds.sample(256, seed + 2)
        model = MiniBERTClassifier(
            BertConfig(vocab_size=128, dim=48, n_layers=2, n_heads=4, max_len=32, seed=seed),
            n_classes=3,
        )
        _train(model, train, TrainConfig(epochs=8, batch_size=64, lr=2e-3, seed=seed))
        finetune = TrainConfig(epochs=1, batch_size=64, lr=1e-3, seed=seed)
        metric = "accuracy"
    elif task == "squad":
        ds = SpanQADataset(vocab_size=128, seq_len=24, n_marker_kinds=3, seed=seed)
        train, test = ds.sample(max(train_samples, 1024), seed + 1), ds.sample(128, seed + 2)
        model = MiniBERTSpan(
            BertConfig(vocab_size=128, dim=48, n_layers=2, n_heads=4, max_len=32, seed=seed)
        )
        _train(model, train, TrainConfig(epochs=10, batch_size=64, lr=2e-3, seed=seed))
        finetune = TrainConfig(epochs=1, batch_size=64, lr=1e-3, seed=seed)
        metric = "span F1"
    elif task == "vgg":
        ds = ImagePatternDataset(n_classes=4, seed=seed)
        train, test = ds.sample(train_samples, seed + 1), ds.sample(128, seed + 2)
        model = MiniVGG(VGGConfig(n_classes=4, seed=seed))
        _train(model, train, TrainConfig(epochs=5, batch_size=64, lr=2e-3, seed=seed))
        finetune = TrainConfig(epochs=1, batch_size=64, lr=1e-3, seed=seed)
        metric = "accuracy"
    elif task == "nmt":
        ds = Seq2SeqDataset(vocab_size=32, max_len=8, seed=seed)
        train, test = ds.sample(train_samples, seed + 1), ds.sample(64, seed + 2)
        model = MiniNMT(NMTConfig(vocab_size=32, dim=48, seed=seed))
        _train(model, train, TrainConfig(epochs=14, batch_size=64, lr=5e-3, seed=seed))
        finetune = TrainConfig(epochs=2, batch_size=64, lr=2e-3, seed=seed)
        metric = "BLEU"
    else:
        raise KeyError(f"unknown task {task!r}; expected one of {TASKS}")
    bundle = TaskBundle(
        name=task,
        model=model,
        train_split=train,
        test_split=test,
        baseline_metric=model.evaluate(test),
        snapshot=model.state_arrays(),
        finetune=finetune,
        metric_name=metric,
    )
    return bundle


def prune_and_evaluate(
    bundle: TaskBundle,
    pattern: str,
    sparsity: float,
    *,
    granularity: int = 64,
    vector_size: int = 16,
    block_shape: tuple[int, int] = (32, 32),
    tew_delta: float = 0.05,
    n_stages: int = 2,
    apriori: bool = True,
    importance: ImportanceConfig | None = None,
    prune_config: TWPruneConfig | None = None,
) -> float:
    """Restore the dense snapshot, prune with ``pattern``, return the metric.

    ``pattern`` ∈ {``dense``, ``ew``, ``vw``, ``bw``, ``tw``, ``tew``}.
    The multi-stage loop itself runs inside :func:`repro.tune`; this
    wrapper only prepares the task state and reads the metric back.
    """
    bundle.restore()
    if pattern == "dense" or sparsity == 0.0:
        return bundle.evaluate()
    if pattern not in ("tw", "tew") and pattern not in PATTERNS:
        raise KeyError(f"unknown pattern {pattern!r}")
    from repro.api import tune

    tune(
        bundle.adapter(),
        pattern=pattern,
        sparsity=sparsity,
        granularity=granularity,
        schedule="gradual",
        n_stages=n_stages,
        importance=importance or ImportanceConfig(method="taylor"),
        tew=tew_delta if pattern == "tew" else None,
        apriori=apriori,
        prune_config=prune_config,
        pattern_kwargs={"vector_size": vector_size, "block_shape": block_shape},
    )
    return bundle.evaluate()
