"""Accuracy experiment pipeline: train once, prune many ways.

The paper's accuracy methodology (§VII-A): start from a trained dense
model, prune with each sparsity pattern using the *same* multi-stage
algorithm (gradual targets + per-stage fine-tuning), and report downstream
accuracy.  This module reproduces that flow on the Mini* models:

1. :func:`prepare_task` trains a dense model on the task's synthetic
   dataset and snapshots its weights;
2. :func:`prune_and_evaluate` restores the snapshot, runs multi-stage
   pruning with the requested pattern (TW through Algorithm 1, baselines
   through the shared stage loop with their own mask rules), fine-tuning
   after each stage with masks enforced, and returns test accuracy.

Everything is deterministic given the seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.core import (
    AprioriConfig,
    GradualSchedule,
    ImportanceConfig,
    TEWConfig,
    TWPruneConfig,
    TWPruner,
    tew_overlay,
)
from repro.core.importance import score_matrix
from repro.nn.datasets import (
    ClassificationSplit,
    ImagePatternDataset,
    SentencePairDataset,
    Seq2SeqDataset,
    SpanQADataset,
)
from repro.nn.layers import Module
from repro.nn.optimizer import Adam
from repro.nn.trainer import TrainConfig, TrainedModelAdapter, Trainer
from repro.models import (
    BertConfig,
    MiniBERTClassifier,
    MiniBERTSpan,
    MiniNMT,
    MiniVGG,
    NMTConfig,
    VGGConfig,
)
from repro.patterns import Pattern
from repro.patterns.registry import PATTERNS, make_pattern

__all__ = ["TaskBundle", "prepare_task", "prune_and_evaluate", "TASKS"]

TASKS = ("mnli", "squad", "vgg", "nmt")


@dataclass
class TaskBundle:
    """A trained dense model plus everything pruning runs need."""

    name: str
    model: Module
    train_split: ClassificationSplit
    test_split: ClassificationSplit
    baseline_metric: float
    snapshot: list[np.ndarray] = field(default_factory=list)
    finetune: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=1))
    metric_name: str = "accuracy"

    def restore(self) -> None:
        """Reset the model to its trained dense state."""
        self.model.load_state_arrays(self.snapshot)

    def evaluate(self) -> float:
        """Test metric of the model's current weights."""
        return self.model.evaluate(self.test_split)

    def adapter(self) -> TrainedModelAdapter:
        """A fresh pruning adapter over the model's prunable GEMMs."""
        return TrainedModelAdapter(
            self.model.prunable_weights(),
            self.model.loss,
            self.train_split,
            self.finetune,
        )


def _train(model: Module, split: ClassificationSplit, cfg: TrainConfig) -> None:
    opt = Adam(list(model.parameters()), lr=cfg.lr)
    Trainer(model.loss, opt).train(split, cfg)


def prepare_task(task: str, seed: int = 0, train_samples: int = 768) -> TaskBundle:
    """Train a dense Mini* model for one of the paper's four tasks.

    Tasks: ``mnli`` (sentence-pair classification), ``squad`` (span F1),
    ``vgg`` (image classification), ``nmt`` (BLEU).  Training budgets are
    sized so the dense baselines have clear headroom above chance.
    """
    if task == "mnli":
        ds = SentencePairDataset(vocab_size=128, seq_len=16, seed=seed)
        train, test = ds.sample(train_samples, seed + 1), ds.sample(256, seed + 2)
        model = MiniBERTClassifier(
            BertConfig(vocab_size=128, dim=48, n_layers=2, n_heads=4, max_len=32, seed=seed),
            n_classes=3,
        )
        _train(model, train, TrainConfig(epochs=8, batch_size=64, lr=2e-3, seed=seed))
        finetune = TrainConfig(epochs=1, batch_size=64, lr=1e-3, seed=seed)
        metric = "accuracy"
    elif task == "squad":
        ds = SpanQADataset(vocab_size=128, seq_len=24, n_marker_kinds=3, seed=seed)
        train, test = ds.sample(max(train_samples, 1024), seed + 1), ds.sample(128, seed + 2)
        model = MiniBERTSpan(
            BertConfig(vocab_size=128, dim=48, n_layers=2, n_heads=4, max_len=32, seed=seed)
        )
        _train(model, train, TrainConfig(epochs=10, batch_size=64, lr=2e-3, seed=seed))
        finetune = TrainConfig(epochs=1, batch_size=64, lr=1e-3, seed=seed)
        metric = "span F1"
    elif task == "vgg":
        ds = ImagePatternDataset(n_classes=4, seed=seed)
        train, test = ds.sample(train_samples, seed + 1), ds.sample(128, seed + 2)
        model = MiniVGG(VGGConfig(n_classes=4, seed=seed))
        _train(model, train, TrainConfig(epochs=5, batch_size=64, lr=2e-3, seed=seed))
        finetune = TrainConfig(epochs=1, batch_size=64, lr=1e-3, seed=seed)
        metric = "accuracy"
    elif task == "nmt":
        ds = Seq2SeqDataset(vocab_size=32, max_len=8, seed=seed)
        train, test = ds.sample(train_samples, seed + 1), ds.sample(64, seed + 2)
        model = MiniNMT(NMTConfig(vocab_size=32, dim=48, seed=seed))
        _train(model, train, TrainConfig(epochs=14, batch_size=64, lr=5e-3, seed=seed))
        finetune = TrainConfig(epochs=2, batch_size=64, lr=2e-3, seed=seed)
        metric = "BLEU"
    else:
        raise KeyError(f"unknown task {task!r}; expected one of {TASKS}")
    bundle = TaskBundle(
        name=task,
        model=model,
        train_split=train,
        test_split=test,
        baseline_metric=model.evaluate(test),
        snapshot=model.state_arrays(),
        finetune=finetune,
        metric_name=metric,
    )
    return bundle


def _baseline_pattern(name: str, **kw) -> Pattern:
    """Resolve a baseline pattern through the string registry."""
    if name not in PATTERNS:
        raise KeyError(f"unknown baseline pattern {name!r}")
    return make_pattern(name, **kw)


def _multi_stage_baseline(
    adapter: TrainedModelAdapter,
    pattern: Pattern,
    schedule: GradualSchedule,
    importance: ImportanceConfig,
) -> None:
    """The paper's stage loop applied to a baseline pattern's mask rule."""
    for target in schedule.stages():
        weights = adapter.weight_matrices()
        grads = adapter.gradient_matrices()
        scores = [
            score_matrix(w, grads[i] if grads else None, importance)
            for i, w in enumerate(weights)
        ]
        result = pattern.prune(scores, target)
        adapter.apply_masks(result.masks)
        adapter.fine_tune()


def prune_and_evaluate(
    bundle: TaskBundle,
    pattern: str,
    sparsity: float,
    *,
    granularity: int = 64,
    vector_size: int = 16,
    block_shape: tuple[int, int] = (32, 32),
    tew_delta: float = 0.05,
    n_stages: int = 2,
    apriori: bool = True,
    importance: ImportanceConfig | None = None,
    prune_config: TWPruneConfig | None = None,
) -> float:
    """Restore the dense snapshot, prune with ``pattern``, return the metric.

    ``pattern`` ∈ {``dense``, ``ew``, ``vw``, ``bw``, ``tw``, ``tew``}.
    """
    bundle.restore()
    if pattern == "dense" or sparsity == 0.0:
        return bundle.evaluate()
    importance = importance or ImportanceConfig(method="taylor")
    schedule = GradualSchedule(target=sparsity, n_stages=n_stages)
    adapter = bundle.adapter()

    if pattern == "tw":
        cfg = prune_config or TWPruneConfig(granularity=granularity)
        pruner = TWPruner(
            cfg, schedule, importance, AprioriConfig() if apriori else None
        )
        pruner.prune(adapter)
    elif pattern == "tew":
        # TW to sparsity + delta, then restore the best delta fraction (§IV-A).
        # Restore candidates are ranked by the *dense* model's importance
        # scores, captured before pruning — after pruning, pruned weights are
        # zero and would score zero, making the selection meaningless.
        snapshot_weights = [
            bundle.snapshot[i] for i in _prunable_snapshot_indices(bundle)
        ]
        dense_grads = adapter.gradient_matrices()
        dense_scores = [
            score_matrix(w, dense_grads[i] if dense_grads else None, importance)
            for i, w in enumerate(snapshot_weights)
        ]
        overshoot = min(sparsity + tew_delta, 0.99)
        cfg = prune_config or TWPruneConfig(granularity=granularity)
        pruner = TWPruner(
            cfg,
            GradualSchedule(target=overshoot, n_stages=n_stages),
            importance,
            AprioriConfig() if apriori else None,
        )
        result = pruner.prune(adapter)
        sol = tew_overlay(
            snapshot_weights, dense_scores, result.masks, TEWConfig(delta=tew_delta)
        )
        # write the restored elements' trained values back before masking —
        # the overlay *revives* weights, it does not merely unmask zeros
        for tensor, saved, ew_mask in zip(
            adapter.prunable, snapshot_weights, sol.ew_masks
        ):
            tensor.data[ew_mask] = saved[ew_mask]
        adapter.apply_masks(sol.masks)
        adapter.fine_tune()
    elif pattern in ("ew", "vw", "bw"):
        p = _baseline_pattern(
            pattern, vector_size=vector_size, block_shape=block_shape
        )
        _multi_stage_baseline(adapter, p, schedule, importance)
    else:
        raise KeyError(f"unknown pattern {pattern!r}")
    return bundle.evaluate()


def _prunable_snapshot_indices(bundle: TaskBundle) -> list[int]:
    """Indices of the prunable tensors within ``parameters()`` order."""
    params = list(bundle.model.parameters())
    prunable = bundle.model.prunable_weights()
    index_of = {id(p): i for i, p in enumerate(params)}
    return [index_of[id(w)] for w in prunable]
