"""Dense GEMM: reference and explicitly-tiled implementations.

``gemm`` is the numerical reference (BLAS via NumPy).  ``tiled_gemm``
reproduces the paper's Fig. 4 step 1 execution structure — the output matrix
is computed tile by tile (``Ty × G`` output tiles, ``Tz``-deep reduction
steps) exactly as a CUTLASS thread-block would — and is tested equal to the
reference.  The tiled loop is the structural template the TW kernel modifies
(skipping pruned rows/columns), so having it explicit makes the TW kernel's
provenance auditable.
"""

from __future__ import annotations

import numpy as np

from repro.core.tiling import TileConfig

__all__ = ["gemm", "tiled_gemm"]


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    alpha: float = 1.0,
    beta: float = 0.0,
    c: np.ndarray | None = None,
) -> np.ndarray:
    """Reference GEMM: ``alpha · A@B + beta · C``."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("gemm requires 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dims disagree: {a.shape} @ {b.shape}")
    out = alpha * (a @ b)
    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires c")
        if c.shape != out.shape:
            raise ValueError(f"c shape {c.shape} != output shape {out.shape}")
        out += beta * c
    return out


def tiled_gemm(a: np.ndarray, b: np.ndarray, config: TileConfig | None = None) -> np.ndarray:
    """GEMM computed with explicit three-level tiling (Fig. 4 step 1, Fig. 8).

    Loops over ``Ty×G`` output tiles; each tile accumulates over ``Tz``-deep
    reduction slabs, mirroring one CUTLASS thread block's main loop.  Edge
    tiles are handled by clamping (the hardware predicates them off).
    """
    config = config or TileConfig()
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"bad operand shapes {a.shape} @ {b.shape}")
    m, k = a.shape
    _, n = b.shape
    out = np.zeros((m, n), dtype=np.float64)
    for r0 in range(0, m, config.ty):          # thread-block rows
        r1 = min(r0 + config.ty, m)
        for c0 in range(0, n, config.g):       # thread-block columns
            c1 = min(c0 + config.g, n)
            acc = np.zeros((r1 - r0, c1 - c0), dtype=np.float64)
            for z0 in range(0, k, config.tz):  # main loop over K
                z1 = min(z0 + config.tz, k)
                acc += a[r0:r1, z0:z1] @ b[z0:z1, c0:c1]
            out[r0:r1, c0:c1] = acc
    return out
