"""TW masked GEMM — the functional analogue of the paper's Listing 1.

The paper's ``StreamMaskedGEMM`` kernel computes one output tile per thread
block, loading only the rows of ``A`` that survive the tile's ``mask_k``
(``Load_A_Tile_with_Mask``) and scattering results through ``mask_n``
(``Store_C_Tile_with_Mask``).  The functional equivalents here:

- :func:`masked_gemm` — one tile: dense ``A`` panel × compact ``B`` panel
  under explicit ``mask_k`` / column-index vectors;
- :func:`tw_gemm` — the whole product ``A @ W`` for a
  :class:`~repro.formats.tiled.TiledTWMatrix`, executed as *width-grouped
  batched* GEMMs following the paper's pipeline
  (plan → batch → stream → execute, Fig. 7 steps 3–4);
- :func:`tw_gemm_reference` — the one-kernel-per-tile loop (the "Normal
  GEMM" row of Fig. 7), kept verbatim as the scalar oracle under the
  vectorisation contract.

All are tested equivalent to dense GEMM against the mask-expanded weights,
which is the core correctness claim of the TW execution scheme: *pruned
rows/columns contribute exactly zero, so skipping them changes nothing*.

Execution pipeline
------------------
``tw_gemm`` consumes the same :class:`~repro.runtime.batching.BatchGroup`
plan the cost model prices: every group assembles its member tiles' compact
payloads into one zero-padded batch (the paper's predicated tail).  Because
every batch item multiplies the *same* activation matrix, the depth is
padded to the shared ``K`` bound and the ``nb × K × width`` batch collapses
into a single ``K × (nb·width)`` operand — one GEMM per group, no per-tile
``A`` gather at all (the NumPy analogue of ``Load_A_Tile_with_Mask``:
masked-off rows are predicated to zero instead of skipped).  All of the
group's output columns then scatter in one vectorised store.

The assembled group operands are memoised on the weight (keyed by the
group's ``tile_ids`` — weights are frozen, so payloads never change under
a live memo), which is what lets a serving loop replay a cached
:class:`~repro.runtime.scheduler.ExecutionPlan` and pay only the GEMMs.
Pass ``plan=StreamAssignment.execution_order()`` (or an ``ExecutionPlan``)
to execute groups in the scheduler's per-stream issue order.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.formats.tiled import TiledTWMatrix

__all__ = ["masked_gemm", "tw_gemm", "tw_gemm_reference"]


def masked_gemm(
    a: np.ndarray,
    b_compact: np.ndarray,
    mask_k: np.ndarray,
    col_indices: np.ndarray,
    out: np.ndarray,
) -> None:
    """Accumulate one TW tile's contribution into ``out`` (Listing 1 body).

    Parameters
    ----------
    a:
        Dense activations ``M×K`` (kept in dense layout; pruned rows are
        *skipped*, not removed — paper §VI "Tiling").
    b_compact:
        The tile's compact payload ``kept_k × kept_n``.
    mask_k:
        ``bool[K]`` row survival mask (the kernel's ``mask_k``).
    col_indices:
        Original output columns of the tile (the kernel's ``mask_n``,
        resolved to indices).
    out:
        Dense output ``M×N`` accumulated in place.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("a must be 2-D")
    mask_k = np.asarray(mask_k, dtype=bool)
    if mask_k.shape != (a.shape[1],):
        raise ValueError(f"mask_k length {mask_k.shape[0]} != K={a.shape[1]}")
    rows = np.flatnonzero(mask_k)
    if b_compact.shape != (rows.size, np.asarray(col_indices).size):
        raise ValueError(
            f"compact tile shape {b_compact.shape} != "
            f"({rows.size}, {np.asarray(col_indices).size})"
        )
    if rows.size == 0 or np.asarray(col_indices).size == 0:
        return
    # Load_A_Tile_with_Mask: gather the surviving rows of A's K dimension
    a_panel = a[:, rows]
    # WMMA main loop: one dense (M × kept_k) @ (kept_k × kept_n) product
    contrib = a_panel @ b_compact
    # Store_C_Tile_with_Mask: scatter into the tile's output columns
    out[:, np.asarray(col_indices)] += contrib


def tw_gemm_reference(a: np.ndarray, weight: TiledTWMatrix) -> np.ndarray:
    """One :func:`masked_gemm` per tile — the scalar oracle for ``tw_gemm``.

    This is the seed implementation kept verbatim (vectorisation contract):
    it must never be optimised.  Note it promotes the output to ``float64``
    regardless of the operand dtypes; the batched path respects them.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("a must be 2-D")
    k, n = weight.shape
    if a.shape[1] != k:
        raise ValueError(f"A columns {a.shape[1]} != weight K {k}")
    out = np.zeros((a.shape[0], n), dtype=np.result_type(a, np.float64))
    for tile in weight.tiles:
        masked_gemm(a, tile.data, tile.mask_k, tile.col_indices, out)
    return out


def tw_gemm(a: np.ndarray, weight: TiledTWMatrix, plan=None) -> np.ndarray:
    """Compute ``A @ W`` for a TW-compacted weight matrix, batched per width.

    Columns of the output that belong to no tile (pruned columns) are exact
    zeros, matching dense GEMM against the mask-expanded weights.

    Parameters
    ----------
    a:
        Dense activations ``M×K``.
    weight:
        The TW-compacted weight.
    plan:
        Batch groups to execute, in order — a sequence of
        :class:`~repro.runtime.batching.BatchGroup` or an
        :class:`~repro.runtime.scheduler.ExecutionPlan` (executed in its
        stream issue order).  Defaults to
        :func:`~repro.runtime.batching.batching_plan` over ``weight``.
        ``tile_ids`` index into ``weight.tiles``.

    Notes
    -----
    Matches :func:`tw_gemm_reference` bit-identically on exactly-
    representable data; on continuous data the zero-padded batched
    reduction only differs by summation-order rounding.  The output dtype
    follows ``np.result_type(a, weight payload)`` instead of the
    reference's unconditional ``float64`` promotion, so float32 serving
    does not double its memory traffic.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("a must be 2-D")
    k, n = weight.shape
    if a.shape[1] != k:
        raise ValueError(f"A columns {a.shape[1]} != weight K {k}")
    tiles = weight.tiles
    w_dtype = tiles[0].data.dtype if tiles else np.float64
    dtype = np.result_type(a.dtype, w_dtype)
    m = a.shape[0]
    out = np.zeros((m, n), dtype=dtype)
    if not tiles:
        return out
    if plan is None:
        plan = weight.__dict__.get("_default_plan")
        if plan is None:
            # deferred import: repro.runtime imports this module for the server
            from repro.runtime.batching import batching_plan

            plan = batching_plan(weight)
            object.__setattr__(weight, "_default_plan", plan)
    elif hasattr(plan, "execution_order"):
        plan = plan.execution_order()
    if a.dtype != dtype:
        a = a.astype(dtype)
    for group in plan:
        operand = _group_operand(weight, group.tile_ids)
        if operand is None:
            continue
        b_padded, cols = operand
        # Fig. 7 step 3: one GEMM per width group, one vectorised store —
        # every output column belongs to exactly one tile
        out[:, cols] = a @ b_padded
    return out


def _group_operand(
    weight: TiledTWMatrix, tile_ids: Sequence[int]
) -> tuple[np.ndarray, np.ndarray] | None:
    """Assemble (and memoise) one group's depth-padded batched operand.

    The member tiles' compact payloads scatter into a shared
    ``K × Σ kept_n`` block — each tile's slab zero-padded over its masked
    rows (the predicated tail), so the whole group multiplies the one
    activation panel.  Memoised on the weight instance keyed by
    ``tile_ids``; the frozen dataclass carries the memo via its instance
    ``__dict__``.
    """
    cache = weight.__dict__.get("_group_operands")
    if cache is None:
        cache = {}
        object.__setattr__(weight, "_group_operands", cache)
    key = tuple(tile_ids)
    hit = cache.get(key)
    if hit is not None or key in cache:
        return hit
    members = [weight.tiles[i] for i in key]
    members = [t for t in members if t.kept_k and t.kept_n]
    if not members:
        cache[key] = None
        return None
    k = weight.shape[0]
    total_width = sum(t.kept_n for t in members)
    b_padded = np.zeros((k, total_width), dtype=members[0].data.dtype)
    offset = 0
    for t in members:
        b_padded[t.row_indices(), offset : offset + t.kept_n] = t.data
        offset += t.kept_n
    cols = np.concatenate([t.col_indices for t in members])
    cache[key] = (b_padded, cols)
    return cache[key]
