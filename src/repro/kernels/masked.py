"""TW masked GEMM — the functional analogue of the paper's Listing 1.

The paper's ``StreamMaskedGEMM`` kernel computes one output tile per thread
block, loading only the rows of ``A`` that survive the tile's ``mask_k``
(``Load_A_Tile_with_Mask``) and scattering results through ``mask_n``
(``Store_C_Tile_with_Mask``).  The functional equivalents here:

- :func:`masked_gemm` — one tile: dense ``A`` panel × compact ``B`` panel
  under explicit ``mask_k`` / column-index vectors;
- :func:`tw_gemm` — the whole product ``A @ W`` for a
  :class:`~repro.formats.tiled.TiledTWMatrix`, executed as *width-grouped
  batched* GEMMs following the paper's pipeline
  (plan → batch → stream → execute, Fig. 7 steps 3–4);
- :func:`tw_gemm_reference` — the one-kernel-per-tile loop (the "Normal
  GEMM" row of Fig. 7), kept verbatim as the scalar oracle under the
  vectorisation contract.

All are tested equivalent to dense GEMM against the mask-expanded weights,
which is the core correctness claim of the TW execution scheme: *pruned
rows/columns contribute exactly zero, so skipping them changes nothing*.

Execution pipeline
------------------
``tw_gemm`` consumes the same :class:`~repro.runtime.batching.BatchGroup`
plan the cost model prices: every group assembles its member tiles' compact
payloads into one zero-padded batch (the paper's predicated tail).  Because
every batch item multiplies the *same* activation matrix, the depth is
padded to the shared ``K`` bound and the ``nb × K × width`` batch collapses
into a single ``K × (nb·width)`` operand — one GEMM per group, no per-tile
``A`` gather at all (the NumPy analogue of ``Load_A_Tile_with_Mask``:
masked-off rows are predicated to zero instead of skipped).  All of the
group's output columns then scatter in one vectorised store.

The assembled group operands are memoised on the weight (keyed by the
group's ``tile_ids`` — weights are frozen, so payloads never change under
a live memo), which is what lets a serving loop replay a cached
:class:`~repro.runtime.scheduler.ExecutionPlan` and pay only the GEMMs.
Pass ``plan=StreamAssignment.execution_order()`` (or an ``ExecutionPlan``)
to execute groups in the scheduler's per-stream issue order.

Mixed precision
---------------
``tw_gemm`` follows the storage dtype of the compacted weight:

- **float64 / float32** — operands multiply in their own dtype (the
  historical behaviour; float32 runs BLAS sgemm directly).
- **float16** — storage (checkpoint, shared-memory arena, pickle) stays
  half precision; the GEMM *accumulates in float32* via an explicit
  upcast-per-group (host BLAS has no half kernels) and the output rounds
  back to float16 once.  The fp32 compute operand is memoised next to the
  fp16 storage operand, so a serving loop upcasts each group exactly once.
- **int8** — tile payloads are symmetric per-tile quantised
  (``q = round(w / scale)``, ``scale`` on each :class:`TWTile`); the GEMM
  dequantises each group into a memoised fp32 operand and accumulates in
  float32.  Activations stay floating point throughout.

Oracle-comparison policy (vectorisation contract): ``tw_gemm_reference``
is the float-payload oracle and hardcodes a ``float64`` output promotion;
comparisons run in the *batched path's* dtype against the reference output
cast to that dtype, with the per-dtype tolerances in
:data:`DTYPE_TOLERANCES` — exact (``atol = rtol = 0``) for float64 on
dyadic data, documented rounding bounds for float32/float16.  The int8
path has no scalar oracle: it is compared against the float64 ``tw_gemm``
on the dequantised weights (``TiledTWMatrix.to_dense()``) within the
quantisation-error bound implied by the tile scales.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.formats.tiled import TiledTWMatrix

__all__ = ["masked_gemm", "tw_gemm", "tw_gemm_reference", "DTYPE_TOLERANCES"]

#: per-dtype tolerance table for batched-vs-oracle comparisons (the
#: explicit oracle policy): compare in the batched path's dtype, reference
#: output cast to it.  float64 on dyadic data is exact; float64 on
#: continuous data differs only by summation-order rounding; float32 /
#: float16 bounds follow ``K_max · eps`` for BERT-scale reductions
#: (K ≤ 4096: 4096 · 1.2e-7 ≈ 5e-4 relative for fp32, and half-precision
#: storage rounding ~ 1e-3 relative dominates for fp16).
DTYPE_TOLERANCES: dict[str, dict[str, float]] = {
    "float64": {"rtol": 0.0, "atol": 1e-12},
    "float32": {"rtol": 5e-4, "atol": 1e-5},
    "float16": {"rtol": 1e-2, "atol": 1e-3},
}


def masked_gemm(
    a: np.ndarray,
    b_compact: np.ndarray,
    mask_k: np.ndarray,
    col_indices: np.ndarray,
    out: np.ndarray,
) -> None:
    """Accumulate one TW tile's contribution into ``out`` (Listing 1 body).

    Parameters
    ----------
    a:
        Dense activations ``M×K`` (kept in dense layout; pruned rows are
        *skipped*, not removed — paper §VI "Tiling").
    b_compact:
        The tile's compact payload ``kept_k × kept_n``.
    mask_k:
        ``bool[K]`` row survival mask (the kernel's ``mask_k``).
    col_indices:
        Original output columns of the tile (the kernel's ``mask_n``,
        resolved to indices).
    out:
        Dense output ``M×N`` accumulated in place.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("a must be 2-D")
    mask_k = np.asarray(mask_k, dtype=bool)
    if mask_k.shape != (a.shape[1],):
        raise ValueError(f"mask_k length {mask_k.shape[0]} != K={a.shape[1]}")
    rows = np.flatnonzero(mask_k)
    if b_compact.shape != (rows.size, np.asarray(col_indices).size):
        raise ValueError(
            f"compact tile shape {b_compact.shape} != "
            f"({rows.size}, {np.asarray(col_indices).size})"
        )
    if rows.size == 0 or np.asarray(col_indices).size == 0:
        return
    # Load_A_Tile_with_Mask: gather the surviving rows of A's K dimension
    a_panel = a[:, rows]
    # WMMA main loop: one dense (M × kept_k) @ (kept_k × kept_n) product
    contrib = a_panel @ b_compact
    # Store_C_Tile_with_Mask: scatter into the tile's output columns
    out[:, np.asarray(col_indices)] += contrib


def tw_gemm_reference(a: np.ndarray, weight: TiledTWMatrix) -> np.ndarray:
    """One :func:`masked_gemm` per tile — the scalar oracle for ``tw_gemm``.

    This is the seed implementation kept verbatim (vectorisation contract):
    it must never be optimised.  Note it promotes the output to ``float64``
    regardless of the operand dtypes; the batched path respects them (see
    ``DTYPE_TOLERANCES`` for the comparison policy).  Defined for *float*
    payloads only — quantised int8 weights have no scalar oracle and are
    checked against the float64 path on the dequantised weights instead.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("a must be 2-D")
    k, n = weight.shape
    if a.shape[1] != k:
        raise ValueError(f"A columns {a.shape[1]} != weight K {k}")
    out = np.zeros((a.shape[0], n), dtype=np.result_type(a, np.float64))
    for tile in weight.tiles:
        masked_gemm(a, tile.data, tile.mask_k, tile.col_indices, out)
    return out


def tw_gemm(a: np.ndarray, weight: TiledTWMatrix, plan=None) -> np.ndarray:
    """Compute ``A @ W`` for a TW-compacted weight matrix, batched per width.

    Columns of the output that belong to no tile (pruned columns) are exact
    zeros, matching dense GEMM against the mask-expanded weights.

    Parameters
    ----------
    a:
        Dense activations ``M×K``.
    weight:
        The TW-compacted weight.
    plan:
        Batch groups to execute, in order — a sequence of
        :class:`~repro.runtime.batching.BatchGroup` or an
        :class:`~repro.runtime.scheduler.ExecutionPlan` (executed in its
        stream issue order).  Defaults to
        :func:`~repro.runtime.batching.batching_plan` over ``weight``.
        ``tile_ids`` index into ``weight.tiles``.

    Notes
    -----
    Matches :func:`tw_gemm_reference` bit-identically on exactly-
    representable data; on continuous data the zero-padded batched
    reduction only differs by summation-order rounding.  The output dtype
    follows ``np.result_type(a, weight payload)`` instead of the
    reference's unconditional ``float64`` promotion, so float32 serving
    does not double its memory traffic.  float16 weights accumulate in
    float32 (upcast-per-group) and round the output back to float16; int8
    weights dequantise per tile scale into float32 and return the float
    result-type of the activations (never int).
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("a must be 2-D")
    k, n = weight.shape
    if a.shape[1] != k:
        raise ValueError(f"A columns {a.shape[1]} != weight K {k}")
    tiles = weight.tiles
    w_dtype = tiles[0].data.dtype if tiles else np.dtype(np.float64)
    if w_dtype.kind in "iu":
        # quantised storage: fp32 accumulation, activations stay float
        out_dtype = np.result_type(a.dtype, np.float32)
    else:
        out_dtype = np.result_type(a.dtype, w_dtype)
    # host BLAS has no half kernels: fp16 GEMMs accumulate in fp32 via an
    # explicit upcast-per-group and round the output once at the end
    compute_dtype = np.dtype(np.float32) if out_dtype == np.float16 else np.dtype(out_dtype)
    m = a.shape[0]
    if not tiles:
        return np.zeros((m, n), dtype=out_dtype)
    if plan is None:
        plan = weight.__dict__.get("_default_plan")
        if plan is None:
            # deferred import: repro.runtime imports this module for the server
            from repro.runtime.batching import batching_plan

            plan = batching_plan(weight)
            object.__setattr__(weight, "_default_plan", plan)
    elif hasattr(plan, "execution_order"):
        plan = plan.execution_order()
    if a.dtype != compute_dtype:
        a = a.astype(compute_dtype)
    out = np.zeros((m, n), dtype=compute_dtype)
    for group in plan:
        operand = _group_operand(weight, group.tile_ids, compute_dtype)
        if operand is None:
            continue
        b_padded, cols = operand
        # Fig. 7 step 3: one GEMM per width group, one vectorised store —
        # every output column belongs to exactly one tile
        out[:, cols] = a @ b_padded
    return out if compute_dtype == out_dtype else out.astype(out_dtype)


def _group_operand(
    weight: TiledTWMatrix,
    tile_ids: Sequence[int],
    compute_dtype: np.dtype | None = None,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Assemble (and memoise) one group's depth-padded batched operand.

    The member tiles' compact payloads scatter into a shared
    ``K × Σ kept_n`` block — each tile's slab zero-padded over its masked
    rows (the predicated tail), so the whole group multiplies the one
    activation panel.  Memoised on the weight instance keyed by
    ``tile_ids``; the frozen dataclass carries the memo via its instance
    ``__dict__``.

    The base memo holds the *storage-dtype* operand (what checkpoints,
    pickles and shared-memory arenas carry).  When ``compute_dtype``
    differs — fp16 storage accumulating in fp32, or int8 storage
    dequantising through its per-tile scales — a second per-process memo
    (``_compute_operands``) holds the compute-ready operand, built exactly
    once per (group, dtype) so steady-state serving replays pure GEMMs.
    """
    cache = weight.__dict__.get("_group_operands")
    if cache is None:
        cache = {}
        object.__setattr__(weight, "_group_operands", cache)
    key = tuple(tile_ids)
    if key not in cache:
        members = [weight.tiles[i] for i in key]
        members = [t for t in members if t.kept_k and t.kept_n]
        if not members:
            cache[key] = None
        else:
            k = weight.shape[0]
            total_width = sum(t.kept_n for t in members)
            b_padded = np.zeros((k, total_width), dtype=members[0].data.dtype)
            offset = 0
            for t in members:
                b_padded[t.row_indices(), offset : offset + t.kept_n] = t.data
                offset += t.kept_n
            cols = np.concatenate([t.col_indices for t in members])
            cache[key] = (b_padded, cols)
    base = cache[key]
    if base is None:
        return None
    storage_dtype = base[0].dtype
    if compute_dtype is None or np.dtype(compute_dtype) == storage_dtype:
        return base
    ccache = weight.__dict__.get("_compute_operands")
    if ccache is None:
        ccache = {}
        object.__setattr__(weight, "_compute_operands", ccache)
    ckey = (key, np.dtype(compute_dtype).str)
    hit = ccache.get(ckey)
    if hit is not None:
        return hit
    quantized = storage_dtype.kind in "iu"
    if not quantized:
        b_compute = base[0].astype(compute_dtype)
    else:
        # rebuild per-slab so each tile's payload dequantises by its own
        # scale (the concatenated base block has no slab boundaries)
        members = [weight.tiles[i] for i in key]
        members = [t for t in members if t.kept_k and t.kept_n]
        k = weight.shape[0]
        total_width = sum(t.kept_n for t in members)
        b_compute = np.zeros((k, total_width), dtype=compute_dtype)
        offset = 0
        for t in members:
            slab = t.data.astype(compute_dtype)
            slab *= np.asarray(t.scale, dtype=compute_dtype)
            b_compute[t.row_indices(), offset : offset + t.kept_n] = slab
            offset += t.kept_n
    ccache[ckey] = (b_compute, base[1])
    return ccache[ckey]
