"""TW masked GEMM — the functional analogue of the paper's Listing 1.

The paper's ``StreamMaskedGEMM`` kernel computes one output tile per thread
block, loading only the rows of ``A`` that survive the tile's ``mask_k``
(``Load_A_Tile_with_Mask``) and scattering results through ``mask_n``
(``Store_C_Tile_with_Mask``).  The functional equivalents here:

- :func:`masked_gemm` — one tile: dense ``A`` panel × compact ``B`` panel
  under explicit ``mask_k`` / column-index vectors;
- :func:`tw_gemm` — the whole product ``A @ W`` for a
  :class:`~repro.formats.tiled.TiledTWMatrix`, looping its tiles.

Both are tested equivalent to dense GEMM against the mask-expanded weights,
which is the core correctness claim of the TW execution scheme: *pruned
rows/columns contribute exactly zero, so skipping them changes nothing*.
"""

from __future__ import annotations

import numpy as np

from repro.formats.tiled import TiledTWMatrix

__all__ = ["masked_gemm", "tw_gemm"]


def masked_gemm(
    a: np.ndarray,
    b_compact: np.ndarray,
    mask_k: np.ndarray,
    col_indices: np.ndarray,
    out: np.ndarray,
) -> None:
    """Accumulate one TW tile's contribution into ``out`` (Listing 1 body).

    Parameters
    ----------
    a:
        Dense activations ``M×K`` (kept in dense layout; pruned rows are
        *skipped*, not removed — paper §VI "Tiling").
    b_compact:
        The tile's compact payload ``kept_k × kept_n``.
    mask_k:
        ``bool[K]`` row survival mask (the kernel's ``mask_k``).
    col_indices:
        Original output columns of the tile (the kernel's ``mask_n``,
        resolved to indices).
    out:
        Dense output ``M×N`` accumulated in place.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("a must be 2-D")
    mask_k = np.asarray(mask_k, dtype=bool)
    if mask_k.shape != (a.shape[1],):
        raise ValueError(f"mask_k length {mask_k.shape[0]} != K={a.shape[1]}")
    rows = np.flatnonzero(mask_k)
    if b_compact.shape != (rows.size, np.asarray(col_indices).size):
        raise ValueError(
            f"compact tile shape {b_compact.shape} != "
            f"({rows.size}, {np.asarray(col_indices).size})"
        )
    if rows.size == 0 or np.asarray(col_indices).size == 0:
        return
    # Load_A_Tile_with_Mask: gather the surviving rows of A's K dimension
    a_panel = a[:, rows]
    # WMMA main loop: one dense (M × kept_k) @ (kept_k × kept_n) product
    contrib = a_panel @ b_compact
    # Store_C_Tile_with_Mask: scatter into the tile's output columns
    out[:, np.asarray(col_indices)] += contrib


def tw_gemm(a: np.ndarray, weight: TiledTWMatrix) -> np.ndarray:
    """Compute ``A @ W`` for a TW-compacted weight matrix.

    Columns of the output that belong to no tile (pruned columns) are exact
    zeros, matching dense GEMM against the mask-expanded weights.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("a must be 2-D")
    k, n = weight.shape
    if a.shape[1] != k:
        raise ValueError(f"A columns {a.shape[1]} != weight K {k}")
    out = np.zeros((a.shape[0], n), dtype=np.result_type(a, np.float64))
    for tile in weight.tiles:
        masked_gemm(a, tile.data, tile.mask_k, tile.col_indices, out)
    return out
