"""Blocked layout transforms — the memory-coalescing optimisation substrate.

The paper stores matrix tiles *transposed* so that row skipping (cheap,
coalesced) replaces column skipping (uncoalesced; §VI "Memory Accesses
Coalesce", Fig. 7 step 2).  The transpose itself is a kernel with real cost
(~10% of end-to-end latency when unfused, Fig. 15), so the runtime models it
explicitly; this module provides the functional op.

``blocked_transpose`` walks the matrix in cache-sized square blocks — the
standard technique for avoiding the pathological strided access of a naive
transpose.  Measured on this repo's benchmark (4096×3072, single core), the
2-D blocked loop beats every NumPy "vectorised" alternative — a one-shot
``np.ascontiguousarray(a.T)``, column-panel copies, and a 4-D
reshape/transpose copy all run ~2.5× slower because their inner copy walks
a full row or column stride per element — so the block loop *is* the fast
path and is kept deliberately (see ``benchmarks/bench_hotpaths.py``).  The
production entry point only adds a small-matrix shortcut: when the whole
matrix fits comfortably in cache, blocking cannot help and the single
strided copy avoids the Python loop entirely.
``blocked_transpose_reference`` pins the original unconditional loop as the
oracle.
"""

from __future__ import annotations

import numpy as np

__all__ = ["blocked_transpose", "blocked_transpose_reference"]

#: below this many bytes the matrix sits in L2 anyway; a single strided
#: copy beats the blocked loop's interpreter overhead
_SMALL_BYTES = 256 * 1024


def blocked_transpose(a: np.ndarray, block: int = 64) -> np.ndarray:
    """Contiguous transpose computed block by block.

    Equivalent to ``np.ascontiguousarray(a.T)``; the blocked loop bounds the
    working set to ``2·block²`` elements per step so both the read and the
    write streams stay cache-resident.  Small matrices skip the loop.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected 2-D array, got ndim={a.ndim}")
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    if a.nbytes <= _SMALL_BYTES:
        return np.ascontiguousarray(a.T)
    return blocked_transpose_reference(a, block)


def blocked_transpose_reference(a: np.ndarray, block: int = 64) -> np.ndarray:
    """Square-block transpose loop — the oracle for :func:`blocked_transpose`.

    Kept verbatim (and used by the fast path for large matrices, where it is
    also the fastest known implementation on this box).
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected 2-D array, got ndim={a.ndim}")
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    m, n = a.shape
    out = np.empty((n, m), dtype=a.dtype)
    for r0 in range(0, m, block):
        r1 = min(r0 + block, m)
        for c0 in range(0, n, block):
            c1 = min(c0 + block, n)
            out[c0:c1, r0:r1] = a[r0:r1, c0:c1].T
    return out
