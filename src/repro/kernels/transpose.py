"""Blocked layout transforms — the memory-coalescing optimisation substrate.

The paper stores matrix tiles *transposed* so that row skipping (cheap,
coalesced) replaces column skipping (uncoalesced; §VI "Memory Accesses
Coalesce", Fig. 7 step 2).  The transpose itself is a kernel with real cost
(~10% of end-to-end latency when unfused, Fig. 15), so the runtime models it
explicitly; this module provides the functional op.

``blocked_transpose`` walks the matrix in cache-sized square blocks — the
standard technique for avoiding the pathological strided access of a naive
transpose (see the cache-effects discussion in the scientific-Python
optimisation guide).
"""

from __future__ import annotations

import numpy as np

__all__ = ["blocked_transpose"]


def blocked_transpose(a: np.ndarray, block: int = 64) -> np.ndarray:
    """Contiguous transpose computed block by block.

    Equivalent to ``np.ascontiguousarray(a.T)``; the blocked loop bounds the
    working set to ``2·block²`` elements per step so both the read and the
    write streams stay cache-resident.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected 2-D array, got ndim={a.ndim}")
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    m, n = a.shape
    out = np.empty((n, m), dtype=a.dtype)
    for r0 in range(0, m, block):
        r1 = min(r0 + block, m)
        for c0 in range(0, n, block):
            c1 = min(c0 + block, n)
            out[c0:c1, r0:r1] = a[r0:r1, c0:c1].T
    return out
