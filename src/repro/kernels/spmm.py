"""Sparse × dense products — the cuSparse execution path.

The paper runs EW- and VW-pruned models through cuSparse on CUDA cores
(§III-B, §VII-A).  cuSparse's SpMM consumes CSR; the TEW residual pass
consumes CSC.  These functional kernels provide the exact values those
library calls would produce; :mod:`repro.gpu.cusparse` prices them.

For a weight-sparse DNN layer ``Y = X · W`` with sparse ``W``, cuSparse
computes the transposed product ``Yᵀ = Wᵀ · Xᵀ`` with ``Wᵀ`` in CSR —
:func:`csr_spmm` covers that orientation; :func:`csc_left_spmm` computes
``X · W`` directly from a CSC weight.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix

__all__ = [
    "csr_spmm",
    "csc_left_spmm",
    "spmm_rowwise_reference",
    "spmm_colwise_reference",
]


def csr_spmm(sparse: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """``sparse @ dense`` with a CSR left operand (cuSparse ``csrmm``).

    Vectorised as a per-row segment reduction (``np.add.reduceat`` over the
    row boundaries); :func:`spmm_rowwise_reference` stays as the scalar
    oracle — outputs are bit-identical on exactly-representable data and
    agree to summation-order rounding otherwise.
    """
    return sparse.matmul_dense(dense)


def csc_left_spmm(dense: np.ndarray, sparse: CSCMatrix) -> np.ndarray:
    """``dense @ sparse`` with a CSC right operand (the TEW residual pass).

    Vectorised as a per-column segment reduction against
    :func:`spmm_colwise_reference`, the scalar oracle (same exactness
    contract as :func:`csr_spmm`).
    """
    return sparse.left_matmul_dense(dense)


def spmm_rowwise_reference(sparse: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """Scalar row-wise SpMM used to cross-check the vectorised kernels.

    Mirrors the one-thread-per-row GPU schedule: each output row gathers
    ``dense[col, :]`` for its non-zeros — the irregular gather that makes
    unstructured sparsity slow on real hardware.
    """
    dense = np.asarray(dense)
    if dense.ndim != 2 or dense.shape[0] != sparse.shape[1]:
        raise ValueError(f"rhs shape {dense.shape} incompatible with {sparse.shape}")
    out = np.zeros((sparse.shape[0], dense.shape[1]), dtype=np.float64)
    for r in range(sparse.shape[0]):
        lo, hi = sparse.indptr[r], sparse.indptr[r + 1]
        for p in range(lo, hi):
            out[r] += sparse.data[p] * dense[sparse.indices[p]]
    return out


def spmm_colwise_reference(dense: np.ndarray, sparse: CSCMatrix) -> np.ndarray:
    """Scalar column-wise ``dense @ sparse`` used to cross-check CSC SpMM.

    Mirrors the one-thread-per-column schedule of the TEW residual pass:
    each output column gathers ``dense[:, row]`` for its non-zeros.
    """
    dense = np.asarray(dense)
    if dense.ndim != 2 or dense.shape[1] != sparse.shape[0]:
        raise ValueError(f"lhs shape {dense.shape} incompatible with {sparse.shape}")
    out = np.zeros((dense.shape[0], sparse.shape[1]), dtype=np.float64)
    for c in range(sparse.shape[1]):
        lo, hi = sparse.indptr[c], sparse.indptr[c + 1]
        for p in range(lo, hi):
            out[:, c] += sparse.data[p] * dense[:, sparse.indices[p]]
    return out
