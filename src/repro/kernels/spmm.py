"""Sparse × dense products — the cuSparse execution path.

The paper runs EW- and VW-pruned models through cuSparse on CUDA cores
(§III-B, §VII-A).  cuSparse's SpMM consumes CSR; the TEW residual pass
consumes CSC.  These functional kernels provide the exact values those
library calls would produce; :mod:`repro.gpu.cusparse` prices them.

For a weight-sparse DNN layer ``Y = X · W`` with sparse ``W``, cuSparse
computes the transposed product ``Yᵀ = Wᵀ · Xᵀ`` with ``Wᵀ`` in CSR —
:func:`csr_spmm` covers that orientation; :func:`csc_left_spmm` computes
``X · W`` directly from a CSC weight.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix

__all__ = ["csr_spmm", "csc_left_spmm", "spmm_rowwise_reference"]


def csr_spmm(sparse: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """``sparse @ dense`` with a CSR left operand (cuSparse ``csrmm``)."""
    return sparse.matmul_dense(dense)


def csc_left_spmm(dense: np.ndarray, sparse: CSCMatrix) -> np.ndarray:
    """``dense @ sparse`` with a CSC right operand (the TEW residual pass)."""
    return sparse.left_matmul_dense(dense)


def spmm_rowwise_reference(sparse: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """Scalar row-wise SpMM used to cross-check the vectorised kernels.

    Mirrors the one-thread-per-row GPU schedule: each output row gathers
    ``dense[col, :]`` for its non-zeros — the irregular gather that makes
    unstructured sparsity slow on real hardware.
    """
    dense = np.asarray(dense)
    if dense.ndim != 2 or dense.shape[0] != sparse.shape[1]:
        raise ValueError(f"rhs shape {dense.shape} incompatible with {sparse.shape}")
    out = np.zeros((sparse.shape[0], dense.shape[1]), dtype=np.float64)
    for r in range(sparse.shape[0]):
        lo, hi = sparse.indptr[r], sparse.indptr[r + 1]
        for p in range(lo, hi):
            out[r] += sparse.data[p] * dense[sparse.indices[p]]
    return out
