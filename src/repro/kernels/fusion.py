"""Non-GEMM epilogues and their fused forms (paper §VI "Kernel Fusion").

BERT spends ~39% of its time in non-GEMM kernels (Add-bias, LayerNorm, …);
fusing consecutive epilogues removes kernel launches and global-memory round
trips, cutting that to ~29% (the paper applies the same fusion to the dense
baseline for fairness).  Functionally a fused kernel computes exactly what
the composition computes — these implementations exist so the runtime can
count kernels/bytes for fused vs. unfused schedules while tests pin the
numerical equivalence ``bias_layernorm(x,b) == layernorm(add_bias(x,b))``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "add_bias",
    "relu",
    "gelu",
    "layernorm",
    "bias_relu",
    "bias_gelu",
    "bias_layernorm",
]

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)


def add_bias(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Row-broadcast bias add (cuBLAS epilogue / separate Add-bias kernel)."""
    x = np.asarray(x)
    bias = np.asarray(bias)
    if bias.shape != (x.shape[-1],):
        raise ValueError(f"bias shape {bias.shape} != ({x.shape[-1]},)")
    return x + bias


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as in BERT)."""
    x = np.asarray(x)
    return 0.5 * x * (1.0 + np.tanh(_SQRT_2_OVER_PI * (x + 0.044715 * x**3)))


def layernorm(
    x: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Layer normalisation over the last axis."""
    x = np.asarray(x, dtype=np.float64)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    out = (x - mean) / np.sqrt(var + eps)
    if gamma is not None:
        out = out * np.asarray(gamma)
    if beta is not None:
        out = out + np.asarray(beta)
    return out


def bias_relu(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Fused Add-bias + ReLU (one kernel, one global-memory round trip)."""
    return relu(add_bias(x, bias))


def bias_gelu(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Fused Add-bias + GeLU."""
    return gelu(add_bias(x, bias))


def bias_layernorm(
    x: np.ndarray,
    bias: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Fused Add-bias + LayerNorm — the paper's flagship fusion example
    ("the previous Add-bias operation can execute with LayerNormalization
    when the data is loaded into the register file")."""
    return layernorm(add_bias(x, bias), gamma, beta, eps)
