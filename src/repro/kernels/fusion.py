"""Non-GEMM epilogues and their fused forms (paper §VI "Kernel Fusion").

BERT spends ~39% of its time in non-GEMM kernels (Add-bias, LayerNorm, …);
fusing consecutive epilogues removes kernel launches and global-memory round
trips, cutting that to ~29% (the paper applies the same fusion to the dense
baseline for fairness).  This module holds both halves of that claim:

- the unfused primitives (:func:`add_bias`, :func:`gelu`, :func:`layernorm`,
  :func:`dropout`) and their plain compositions, kept verbatim as the
  ``*_reference`` oracles under the vectorisation contract — one full pass
  over the activations per primitive, exactly what an unfused schedule pays;
- the :data:`EPILOGUES` registry of *fused* consumers (``bias_gelu``,
  ``bias_layernorm``, ``dropout_residual_layernorm``) that the serving
  runtime applies right after each layer's TW GEMM: one read of the GEMM
  output, in-place arithmetic on at most two scratch buffers, one write.

Dtype contract (mixed-precision pipeline): a fused epilogue *preserves the
activation storage dtype* — float16 in, float16 out — while accumulating in
float32 (float64 stays float64), mirroring a fused CUDA kernel that keeps
the running mean/variance in registers at full precision.  In float64 the
fused forms are bit-identical to their unfused reference compositions
(same operation order; in-place ufuncs round exactly like their
out-of-place forms).  In float16/float32 they can only agree with the
round-trip-per-primitive references to within storage-rounding — the fused
path rounds once at the end, the reference rounds after every pass.

:class:`EpilogueSpec` is the serializable per-layer attachment
(`CompiledLayer.epilogue`, ``WaveStep.epilogue``): the epilogue name plus
its parameter vectors.  :func:`apply_epilogue` is the single entry point
the executor and ``CompiledTWModel.run()`` both call.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.registry import Registry

__all__ = [
    "add_bias",
    "relu",
    "gelu",
    "dropout",
    "layernorm",
    "bias_relu",
    "bias_gelu",
    "bias_layernorm",
    "bias_gelu_reference",
    "bias_layernorm_reference",
    "dropout_residual_layernorm",
    "dropout_residual_layernorm_reference",
    "EPILOGUES",
    "Epilogue",
    "EpilogueSpec",
    "apply_epilogue",
    "resolve_epilogue_spec",
]

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)


def _acc_dtype(dtype: np.dtype) -> np.dtype:
    """Accumulation dtype: float64 stays float64, everything else fp32."""
    return np.dtype(np.float64) if dtype == np.float64 else np.dtype(np.float32)


# --------------------------------------------------------------------- #
# unfused primitives (one pass over the activations each)
# --------------------------------------------------------------------- #
def add_bias(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Row-broadcast bias add (cuBLAS epilogue / separate Add-bias kernel)."""
    x = np.asarray(x)
    bias = np.asarray(bias)
    if bias.shape != (x.shape[-1],):
        raise ValueError(f"bias shape {bias.shape} != ({x.shape[-1]},)")
    return x + bias


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as in BERT)."""
    x = np.asarray(x)
    return 0.5 * x * (1.0 + np.tanh(_SQRT_2_OVER_PI * (x + 0.044715 * x**3)))


def dropout(x: np.ndarray, p: float = 0.0, seed: int = 0) -> np.ndarray:
    """Inverted dropout with a deterministic seeded mask.

    The mask is a pure function of ``(seed, x.shape)`` so the fused and
    unfused paths draw identical masks.  ``p == 0`` is the inference-time
    identity and returns ``x`` unchanged.  Note the shape dependence: with
    ``p > 0`` the output of a served wave depends on how requests were
    batched together, so serving keeps ``p = 0`` unless explicitly asked.
    """
    x = np.asarray(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {p}")
    if p == 0.0:
        return x
    keep = np.random.default_rng(seed).random(x.shape) >= p
    scale = np.asarray(1.0 / (1.0 - p), dtype=x.dtype)
    return x * (keep.astype(x.dtype) * scale)


def layernorm(
    x: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Layer normalisation over the last axis.

    Preserves the input storage dtype (float16 in → float16 out) while
    accumulating the mean/variance in float32 (float64 inputs accumulate in
    float64) — the mixed-precision dtype contract.  Integer inputs promote
    to float64, the historical behaviour.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(np.float64)
    acc = _acc_dtype(x.dtype)
    xa = x.astype(acc, copy=False)
    mean = xa.mean(axis=-1, keepdims=True)
    var = xa.var(axis=-1, keepdims=True)
    out = (xa - mean) / np.sqrt(var + eps)
    if gamma is not None:
        out = out * np.asarray(gamma, dtype=acc)
    if beta is not None:
        out = out + np.asarray(beta, dtype=acc)
    return out.astype(x.dtype, copy=False)


# --------------------------------------------------------------------- #
# reference compositions — the unfused oracles (vectorisation contract:
# kept verbatim, never optimised; each primitive is one activation pass)
# --------------------------------------------------------------------- #
def bias_relu(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Add-bias + ReLU as the plain two-pass composition."""
    return relu(add_bias(x, bias))


def bias_gelu_reference(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Unfused Add-bias → GeLU oracle (two passes, fresh temporaries)."""
    return gelu(add_bias(x, bias))


def bias_layernorm_reference(
    x: np.ndarray,
    bias: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Unfused Add-bias → LayerNorm oracle."""
    return layernorm(add_bias(x, bias), gamma, beta, eps)


def dropout_residual_layernorm_reference(
    x: np.ndarray,
    residual: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    p: float = 0.0,
    seed: int = 0,
    eps: float = 1e-5,
) -> np.ndarray:
    """Unfused Dropout → residual-add → LayerNorm oracle (three passes)."""
    return layernorm(dropout(x, p, seed) + np.asarray(residual), gamma, beta, eps)


# --------------------------------------------------------------------- #
# fused consumers — one read of the GEMM output, in-place arithmetic
# --------------------------------------------------------------------- #
def bias_gelu(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Fused Add-bias + GeLU.

    Bit-identical to :func:`bias_gelu_reference` in float64 (identical
    operation order; only temporaries differ); float16/float32 inputs
    accumulate in fp32 and round once at the end.
    """
    x = np.asarray(x)
    acc = _acc_dtype(x.dtype)
    h = x.astype(acc, copy=False) + np.asarray(bias, dtype=acc)
    t = h**3
    t *= 0.044715
    t += h
    t *= _SQRT_2_OVER_PI
    np.tanh(t, out=t)
    t += 1.0
    h *= 0.5
    t *= h
    return t.astype(x.dtype, copy=False)


def bias_layernorm(
    x: np.ndarray,
    bias: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Fused Add-bias + LayerNorm — the paper's flagship fusion example
    ("the previous Add-bias operation can execute with LayerNormalization
    when the data is loaded into the register file")."""
    x = np.asarray(x)
    acc = _acc_dtype(x.dtype)
    h = x.astype(acc, copy=False) + np.asarray(bias, dtype=acc)
    mean = h.mean(axis=-1, keepdims=True)
    var = h.var(axis=-1, keepdims=True)
    h -= mean
    h /= np.sqrt(var + eps)
    if gamma is not None:
        h *= np.asarray(gamma, dtype=acc)
    if beta is not None:
        h += np.asarray(beta, dtype=acc)
    return h.astype(x.dtype, copy=False)


def dropout_residual_layernorm(
    x: np.ndarray,
    residual: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    p: float = 0.0,
    seed: int = 0,
    eps: float = 1e-5,
) -> np.ndarray:
    """Fused Dropout + residual-add + LayerNorm (transformer block tail)."""
    x = np.asarray(x)
    acc = _acc_dtype(x.dtype)
    if p:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {p}")
        keep = np.random.default_rng(seed).random(x.shape) >= p
        scale = np.asarray(1.0 / (1.0 - p), dtype=x.dtype)
        h = x * (keep.astype(x.dtype) * scale)
        h = h.astype(acc, copy=False) + np.asarray(residual, dtype=acc)
    else:
        h = x.astype(acc, copy=False) + np.asarray(residual, dtype=acc)
    mean = h.mean(axis=-1, keepdims=True)
    var = h.var(axis=-1, keepdims=True)
    h -= mean
    h /= np.sqrt(var + eps)
    if gamma is not None:
        h *= np.asarray(gamma, dtype=acc)
    if beta is not None:
        h += np.asarray(beta, dtype=acc)
    return h.astype(x.dtype, copy=False)


# --------------------------------------------------------------------- #
# registry + per-layer attachment
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class EpilogueSpec:
    """A serializable per-layer epilogue attachment.

    ``name`` resolves through :data:`EPILOGUES`; the parameter vectors are
    sized to the layer's output width ``N``.  Unused parameters stay
    ``None`` (e.g. ``bias_gelu`` ignores ``gamma``/``beta``).
    """

    name: str
    bias: np.ndarray | None = None
    gamma: np.ndarray | None = None
    beta: np.ndarray | None = None
    p: float = 0.0
    seed: int = 0
    eps: float = 1e-5

    def fingerprint(self) -> str:
        """Content hash — distinct specs must never share cache identity."""
        h = hashlib.sha1()
        h.update(f"{self.name}|{self.p}|{self.seed}|{self.eps}".encode())
        for arr in (self.bias, self.gamma, self.beta):
            if arr is None:
                h.update(b"|none")
            else:
                a = np.ascontiguousarray(arr)
                h.update(f"|{a.dtype.str}{a.shape}".encode())
                h.update(a.tobytes())
        return h.hexdigest()


@dataclass(frozen=True)
class Epilogue:
    """A registry entry: the fused consumer and its unfused oracle."""

    name: str
    fused: Callable[..., np.ndarray]
    reference: Callable[..., np.ndarray]
    uses_residual: bool = False


EPILOGUES = Registry("epilogue")


def _fused_bias_gelu(y, spec, residual):
    return bias_gelu(y, spec.bias)


def _reference_bias_gelu(y, spec, residual):
    return bias_gelu_reference(y, spec.bias)


def _fused_bias_layernorm(y, spec, residual):
    return bias_layernorm(y, spec.bias, spec.gamma, spec.beta, spec.eps)


def _reference_bias_layernorm(y, spec, residual):
    return bias_layernorm_reference(y, spec.bias, spec.gamma, spec.beta, spec.eps)


def _fused_dropout_residual_layernorm(y, spec, residual):
    return dropout_residual_layernorm(
        y, residual, spec.gamma, spec.beta, spec.p, spec.seed, spec.eps
    )


def _reference_dropout_residual_layernorm(y, spec, residual):
    return dropout_residual_layernorm_reference(
        y, residual, spec.gamma, spec.beta, spec.p, spec.seed, spec.eps
    )


_BIAS_GELU = Epilogue("bias_gelu", _fused_bias_gelu, _reference_bias_gelu)
_BIAS_LAYERNORM = Epilogue(
    "bias_layernorm", _fused_bias_layernorm, _reference_bias_layernorm
)
_DROPOUT_RESIDUAL_LAYERNORM = Epilogue(
    "dropout_residual_layernorm",
    _fused_dropout_residual_layernorm,
    _reference_dropout_residual_layernorm,
    uses_residual=True,
)

EPILOGUES.register("bias_gelu", lambda: _BIAS_GELU)
EPILOGUES.register("bias_layernorm", lambda: _BIAS_LAYERNORM, aliases=("bias_ln",))
EPILOGUES.register(
    "dropout_residual_layernorm",
    lambda: _DROPOUT_RESIDUAL_LAYERNORM,
    aliases=("dropout_add_ln",),
)


def resolve_epilogue_spec(
    epilogue: "EpilogueSpec | str | None",
    n: int,
    dtype: np.dtype | type = np.float64,
) -> EpilogueSpec | None:
    """Normalise an epilogue argument into a fully-parameterised spec.

    A bare name gets neutral parameters in the layer's parameter dtype
    (zero bias, unit gamma, zero beta — float32 for sub-fp32 storage, so
    an int8/float16 model still accumulates its epilogue in fp32).
    Vectors on an explicit spec are validated against the layer width.
    """
    if epilogue is None:
        return None
    param_dtype = _acc_dtype(np.dtype(dtype) if dtype is not None else np.float64)
    if isinstance(epilogue, str):
        name = EPILOGUES.canonical(epilogue)
        ep = EPILOGUES.create(name)
        spec = EpilogueSpec(
            name=name,
            bias=np.zeros(n, dtype=param_dtype),
            gamma=np.ones(n, dtype=param_dtype),
            beta=np.zeros(n, dtype=param_dtype),
        )
        return spec if not ep.uses_residual else EpilogueSpec(
            name=name,
            gamma=np.ones(n, dtype=param_dtype),
            beta=np.zeros(n, dtype=param_dtype),
        )
    name = EPILOGUES.canonical(epilogue.name)
    for label, arr in (("bias", epilogue.bias), ("gamma", epilogue.gamma),
                       ("beta", epilogue.beta)):
        if arr is not None and np.asarray(arr).shape != (n,):
            raise ValueError(
                f"epilogue {name!r} {label} shape {np.asarray(arr).shape} != ({n},)"
            )
    if name == epilogue.name:
        return epilogue
    return EpilogueSpec(
        name=name, bias=epilogue.bias, gamma=epilogue.gamma, beta=epilogue.beta,
        p=epilogue.p, seed=epilogue.seed, eps=epilogue.eps,
    )


def apply_epilogue(
    y: np.ndarray,
    spec: EpilogueSpec,
    residual: np.ndarray | None = None,
    *,
    reference: bool = False,
) -> np.ndarray:
    """Apply a layer's epilogue to its GEMM output ``y``.

    ``residual`` is the layer *input* (the skip connection) and is required
    by residual-consuming epilogues.  ``reference=True`` routes through the
    unfused oracle composition instead of the fused consumer.
    """
    ep = EPILOGUES.create(spec.name)
    if ep.uses_residual and residual is None:
        raise ValueError(f"epilogue {spec.name!r} needs the layer input as residual")
    fn = ep.reference if reference else ep.fused
    return fn(y, spec, residual)
