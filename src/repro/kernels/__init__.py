"""Functional (NumPy) kernels — correctness ground truth for every path.

These kernels compute the *values* each execution path produces; latency
comes from the matching cost models in :mod:`repro.gpu`.  Keeping function
and cost separate lets tests pin numerical equivalence (e.g. TW masked GEMM
≡ dense GEMM on the masked weights) independently of performance modelling.

- :mod:`repro.kernels.dense` — reference and explicitly-tiled dense GEMM.
- :mod:`repro.kernels.masked` — the paper's TW masked GEMM (Listing 1),
  executed batched per width group.
- :mod:`repro.kernels.batched` — batched GEMM over equal-width tile groups.
- :mod:`repro.kernels.spmm` — CSR/CSC sparse×dense products (cuSparse path).
- :mod:`repro.kernels.block_sparse` — BSR GEMM (BlockSparse path).
- :mod:`repro.kernels.im2col` — convolution→GEMM lowering.
- :mod:`repro.kernels.transpose` — blocked layout transforms.
- :mod:`repro.kernels.fusion` — fused non-GEMM epilogues.

Execution pipeline (paper Fig. 7)
---------------------------------
The TW hot path follows **plan → batch → stream → execute**: a
:func:`repro.runtime.batching.batching_plan` width-groups the tiles, a
:class:`repro.runtime.scheduler.StreamAssignment` orders the groups across
streams, and :func:`repro.kernels.masked.tw_gemm` executes each group as
one zero-padded batched ``matmul`` (depth padded to the group's
``max_depth``).  The cost model in :mod:`repro.gpu.tw_kernel` prices the
*same* plan the executor runs.

Vectorisation contract
----------------------
Every hot-path kernel runs as batched array operations (segment reductions,
panel copies, BLAS sweeps); the scalar loop implementations are *kept* as
named ``*_reference`` oracles (``spmm_rowwise_reference``,
``spmm_colwise_reference``, ``blocked_transpose_reference``,
``tw_gemm_reference``, ``col2im_reference``, and
``tw_prune_step_reference`` in :mod:`repro.core.tile_sparsity`).  Fast paths
must match their oracle **exactly** — bit-identical outputs, not approximate
— because they add the same products in the same order (segment reductions,
``col2im``'s kernel-offset-major scatter) or on exactly-representable inputs
(selection thresholds over integer unit weights, zero-padded batched
reductions).  ``tests/test_vectorized_paths.py`` enforces the contract, and
``benchmarks/bench_hotpaths.py`` tracks the speedups in
``BENCH_hotpaths.json``; run it after touching any of these paths.
"""

from repro.kernels.dense import gemm, tiled_gemm
from repro.kernels.masked import masked_gemm, tw_gemm, tw_gemm_reference
from repro.kernels.batched import batched_gemm, tw_batched_gemm
from repro.kernels.spmm import csr_spmm, csc_left_spmm
from repro.kernels.block_sparse import bsr_left_gemm
from repro.kernels.im2col import (
    col2im,
    col2im_reference,
    conv2d_gemm,
    conv_output_shape,
    im2col,
)
from repro.kernels.transpose import blocked_transpose
from repro.kernels.fusion import (
    EPILOGUES,
    EpilogueSpec,
    add_bias,
    apply_epilogue,
    bias_gelu,
    bias_gelu_reference,
    bias_layernorm,
    bias_layernorm_reference,
    bias_relu,
    dropout,
    dropout_residual_layernorm,
    dropout_residual_layernorm_reference,
    gelu,
    layernorm,
    resolve_epilogue_spec,
)

__all__ = [
    "gemm",
    "tiled_gemm",
    "masked_gemm",
    "tw_gemm",
    "tw_gemm_reference",
    "batched_gemm",
    "tw_batched_gemm",
    "csr_spmm",
    "csc_left_spmm",
    "bsr_left_gemm",
    "im2col",
    "col2im",
    "col2im_reference",
    "conv2d_gemm",
    "conv_output_shape",
    "blocked_transpose",
    "add_bias",
    "bias_relu",
    "bias_gelu",
    "bias_gelu_reference",
    "bias_layernorm",
    "bias_layernorm_reference",
    "dropout",
    "dropout_residual_layernorm",
    "dropout_residual_layernorm_reference",
    "gelu",
    "layernorm",
    "EPILOGUES",
    "EpilogueSpec",
    "apply_epilogue",
    "resolve_epilogue_spec",
]
