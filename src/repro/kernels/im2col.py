"""im2col convolution lowering (paper §II-B, §VII-A).

Convolutions dominate CNNs; GEMM accelerators run them by flattening every
receptive field into a matrix row (``im2col``) so the convolution becomes
``patches @ flattened_filters``.  The paper prunes VGG's weights *after*
this lowering ("we prune its weight matrix after applying the im2col
method"), so the CNN path of this library needs the lowering both for
functional conv layers (:mod:`repro.nn.layers`) and for extracting VGG's
GEMM shapes for the latency experiments.

Layout conventions: activations ``NCHW``, filters ``OIHW``; the lowered
weight matrix is ``(C·KH·KW) × O`` so it right-multiplies the patch matrix,
matching Fig. 4's ``A × B`` orientation with the weight as ``B``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_shape",
    "im2col",
    "col2im",
    "col2im_reference",
    "conv2d_gemm",
    "lower_filters",
]


def conv_output_shape(
    h: int, w: int, kh: int, kw: int, stride: int = 1, padding: int = 0
) -> tuple[int, int]:
    """Output spatial extent of a convolution."""
    if kh <= 0 or kw <= 0 or stride <= 0 or padding < 0:
        raise ValueError("kernel/stride must be positive, padding non-negative")
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel {kh}x{kw} with stride {stride}, padding {padding} "
            f"does not fit input {h}x{w}"
        )
    return oh, ow


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Flatten receptive fields: ``NCHW → (N·OH·OW) × (C·KH·KW)``.

    Vectorised with stride tricks — no Python loop over output positions.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected NCHW input, got ndim={x.ndim}")
    n, c, h, w = x.shape
    oh, ow = conv_output_shape(h, w, kh, kw, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    sN, sC, sH, sW = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sN, sC, sH * stride, sW * stride, sH, sW),
        writeable=False,
    )
    # (N, OH, OW, C, KH, KW) → rows are output positions, cols are C·KH·KW
    patches = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(patches)


def col2im_reference(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Scalar oracle for :func:`col2im`: the ``kh × kw`` Python double loop.

    Kept verbatim under the vectorisation contract — never optimise it.
    Each output cell accumulates its overlapping patch contributions in
    ``(i, j)`` kernel-offset order, which the fast path reproduces exactly.
    """
    n, c, h, w = x_shape
    oh, ow = conv_output_shape(h, w, kh, kw, stride, padding)
    cols = np.asarray(cols)
    if cols.shape != (n * oh * ow, c * kh * kw):
        raise ValueError(
            f"cols shape {cols.shape} != ({n * oh * ow}, {c * kh * kw})"
        )
    hp, wp = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    patches = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += (
                patches[:, :, :, :, i, j]
            )
    if padding:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patch rows back to ``NCHW``.

    Needed for convolution backward (gradient w.r.t. the input).

    Vectorised as one ``np.add.at`` scatter over precomputed flat indices —
    no Python loop over kernel offsets.  Elements are ordered kernel-offset-
    major, so every output cell accumulates its contributions in the same
    ``(i, j)`` order as :func:`col2im_reference`, making the two paths
    bit-identical (same dtype, same per-cell addition sequence).
    """
    n, c, h, w = x_shape
    oh, ow = conv_output_shape(h, w, kh, kw, stride, padding)
    cols = np.asarray(cols)
    if cols.shape != (n * oh * ow, c * kh * kw):
        raise ValueError(
            f"cols shape {cols.shape} != ({n * oh * ow}, {c * kh * kw})"
        )
    hp, wp = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    # values ordered (kh, kw, n, c, oh, ow) — kernel-offset-major, matching
    # the reference loop's per-cell accumulation order
    vals = cols.reshape(n, oh, ow, c, kh, kw).transpose(4, 5, 0, 3, 1, 2)
    h_idx = np.arange(kh)[:, None] + stride * np.arange(oh)  # (kh, oh)
    w_idx = np.arange(kw)[:, None] + stride * np.arange(ow)  # (kw, ow)
    base = (np.arange(n)[:, None] * c + np.arange(c)) * (hp * wp)  # (n, c)
    flat = (
        base[None, None, :, :, None, None]
        + (h_idx * wp)[:, None, None, None, :, None]
        + w_idx[None, :, None, None, None, :]
    )
    flat = np.broadcast_to(flat, vals.shape)
    np.add.at(out.reshape(-1), flat.reshape(-1), vals.reshape(-1))
    if padding:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


def lower_filters(weight: np.ndarray) -> np.ndarray:
    """Flatten ``OIHW`` filters into the ``(C·KH·KW) × O`` GEMM weight.

    This is the matrix the paper's VGG experiments prune — each column is
    one filter, each row one input-patch coordinate.
    """
    weight = np.asarray(weight)
    if weight.ndim != 4:
        raise ValueError(f"expected OIHW filters, got ndim={weight.ndim}")
    o = weight.shape[0]
    return weight.reshape(o, -1).T.copy()


def conv2d_gemm(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Convolution via im2col + GEMM: ``NCHW, OIHW → NOHW``."""
    x = np.asarray(x)
    weight = np.asarray(weight)
    n, c, h, w = x.shape
    o, ci, kh, kw = weight.shape
    if ci != c:
        raise ValueError(f"filter in-channels {ci} != input channels {c}")
    oh, ow = conv_output_shape(h, w, kh, kw, stride, padding)
    cols = im2col(x, kh, kw, stride, padding)
    out = cols @ lower_filters(weight)  # (N·OH·OW) × O
    if bias is not None:
        if np.asarray(bias).shape != (o,):
            raise ValueError(f"bias shape {np.asarray(bias).shape} != ({o},)")
        out = out + bias
    return out.reshape(n, oh, ow, o).transpose(0, 3, 1, 2)
