"""Batched GEMM over equal-width tile groups (paper Fig. 7 step 3).

TW tiles have unequal work (different ``K_i``/``N_i``), which under-utilises
a GPU if every tile launches its own kernel.  The paper batches tiles of
equal width into one kernel so they share the activation matrix ``A`` and
fill the machine.  Functionally a batch is just the sum of its members'
contributions; the value of this module is (a) an executable demonstration
of the padding trade-off batching implies, and (b) the grouping logic the
cost model prices.

``tw_batched_gemm`` pads each group's tiles to the group's maximum ``K_i``
with zero rows (padding contributes nothing — the ``einsum`` over the padded
batch is exact) and runs one batched contraction per width group, exactly
mirroring how the real implementation re-uses one tensor-core kernel per
group instead of specialising per tile size.
"""

from __future__ import annotations

import numpy as np

from repro.formats.tiled import TiledTWMatrix

__all__ = ["batched_gemm", "tw_batched_gemm"]


def batched_gemm(a_batch: np.ndarray, b_batch: np.ndarray) -> np.ndarray:
    """Plain batched GEMM: ``out[i] = a_batch[i] @ b_batch[i]``."""
    a_batch = np.asarray(a_batch)
    b_batch = np.asarray(b_batch)
    if a_batch.ndim != 3 or b_batch.ndim != 3:
        raise ValueError("batched operands must be 3-D (batch, rows, cols)")
    if a_batch.shape[0] != b_batch.shape[0]:
        raise ValueError("batch sizes disagree")
    if a_batch.shape[2] != b_batch.shape[1]:
        raise ValueError(
            f"inner dims disagree: {a_batch.shape} @ {b_batch.shape}"
        )
    return np.einsum("bmk,bkn->bmn", a_batch, b_batch)


def tw_batched_gemm(a: np.ndarray, weight: TiledTWMatrix) -> np.ndarray:
    """Compute ``A @ W`` with one batched GEMM per equal-width tile group.

    Numerically identical to :func:`repro.kernels.masked.tw_gemm`; the
    difference is execution structure: ``len(width_groups)`` kernel
    launches instead of ``n_tiles``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("a must be 2-D")
    k, n = weight.shape
    if a.shape[1] != k:
        raise ValueError(f"A columns {a.shape[1]} != weight K {k}")
    m = a.shape[0]
    out = np.zeros((m, n), dtype=np.float64)
    groups = weight.width_groups()
    for width, tile_ids in groups.items():
        if width == 0:
            continue
        members = [weight.tiles[i] for i in tile_ids]
        k_max = max(t.kept_k for t in members)
        if k_max == 0:
            continue
        # build padded batches: A gathered per tile's kept rows, B zero-padded
        a_batch = np.zeros((len(members), m, k_max), dtype=np.float64)
        b_batch = np.zeros((len(members), k_max, width), dtype=np.float64)
        for bi, t in enumerate(members):
            rows = t.row_indices()
            a_batch[bi, :, : rows.size] = a[:, rows]
            b_batch[bi, : rows.size, :] = t.data
        c_batch = batched_gemm(a_batch, b_batch)
        for bi, t in enumerate(members):
            out[:, t.col_indices] += c_batch[bi]
    return out
