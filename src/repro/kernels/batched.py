"""Batched GEMM over equal-width tile groups (paper Fig. 7 step 3).

TW tiles have unequal work (different ``K_i``/``N_i``), which under-utilises
a GPU if every tile launches its own kernel.  The paper batches tiles of
equal width into one kernel so they share the activation matrix ``A`` and
fill the machine.

The grouping logic lives in :func:`repro.runtime.batching.batching_plan` —
the *same* plan the cost model prices — and the padded batched execution in
:func:`repro.kernels.masked.tw_gemm`; :func:`tw_batched_gemm` is the
explicit entry point that makes the plan it runs visible to the caller.
``batched_gemm`` remains the plain 3-D contraction primitive each group
reduces to (one tensor-core kernel per width group in the real
implementation).
"""

from __future__ import annotations

import numpy as np

from repro.formats.tiled import TiledTWMatrix
from repro.kernels.masked import tw_gemm

__all__ = ["batched_gemm", "tw_batched_gemm"]


def batched_gemm(a_batch: np.ndarray, b_batch: np.ndarray) -> np.ndarray:
    """Plain batched GEMM: ``out[i] = a_batch[i] @ b_batch[i]``."""
    a_batch = np.asarray(a_batch)
    b_batch = np.asarray(b_batch)
    if a_batch.ndim != 3 or b_batch.ndim != 3:
        raise ValueError("batched operands must be 3-D (batch, rows, cols)")
    if a_batch.shape[0] != b_batch.shape[0]:
        raise ValueError("batch sizes disagree")
    if a_batch.shape[2] != b_batch.shape[1]:
        raise ValueError(
            f"inner dims disagree: {a_batch.shape} @ {b_batch.shape}"
        )
    return np.matmul(a_batch, b_batch)


def tw_batched_gemm(a: np.ndarray, weight: TiledTWMatrix, plan=None) -> np.ndarray:
    """Compute ``A @ W`` with one batched GEMM per equal-width tile group.

    Numerically identical to :func:`repro.kernels.masked.tw_gemm_reference`
    (bit-identical on exactly-representable data); the difference is
    execution structure: ``len(plan)`` kernel launches instead of
    ``n_tiles``.  ``plan`` defaults to
    :func:`repro.runtime.batching.batching_plan` over ``weight`` — pass an
    explicit plan (or :class:`~repro.runtime.scheduler.ExecutionPlan`) to
    pin the kernel issue order.
    """
    return tw_gemm(a, weight, plan=plan)
