"""Block-sparse GEMM — the BlockSparse-library execution path.

The paper runs BW-pruned models through Tillet's torch-blocksparse on tensor
cores (§VII-A).  The library multiplies only the surviving dense blocks;
:func:`bsr_left_gemm` reproduces those values block by block and
:mod:`repro.gpu.blocksparse` prices the execution.
"""

from __future__ import annotations

import numpy as np

from repro.formats.bsr import BSRMatrix

__all__ = ["bsr_left_gemm"]


def bsr_left_gemm(a: np.ndarray, weight: BSRMatrix) -> np.ndarray:
    """Compute ``A @ W`` for a BSR weight, visiting only stored blocks."""
    return weight.left_matmul_dense(a)
