"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = ["cross_entropy", "sequence_cross_entropy"]


def cross_entropy(
    logits: Tensor, labels: np.ndarray, label_smoothing: float = 0.0
) -> Tensor:
    """Mean cross-entropy of ``(batch, classes)`` logits vs integer labels."""
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"expected 2-D logits, got shape {logits.shape}")
    b, c = logits.shape
    if labels.shape != (b,):
        raise ValueError(f"labels shape {labels.shape} != ({b},)")
    if labels.size and (labels.min() < 0 or labels.max() >= c):
        raise ValueError("label out of range")
    if not (0.0 <= label_smoothing < 1.0):
        raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
    logp = F.log_softmax(logits, axis=-1)
    onehot = np.zeros((b, c))
    onehot[np.arange(b), labels] = 1.0
    if label_smoothing > 0.0:
        onehot = onehot * (1.0 - label_smoothing) + label_smoothing / c
    nll = -(logp * Tensor(onehot)).sum(axis=-1)
    return nll.mean()


def sequence_cross_entropy(
    logits: Tensor, labels: np.ndarray, pad_id: int | None = None
) -> Tensor:
    """Token-level cross-entropy for ``(batch, seq, vocab)`` logits.

    Positions equal to ``pad_id`` are excluded from the average (the NMT
    decoder's padded targets).
    """
    labels = np.asarray(labels)
    if logits.ndim != 3:
        raise ValueError(f"expected 3-D logits, got shape {logits.shape}")
    b, s, v = logits.shape
    if labels.shape != (b, s):
        raise ValueError(f"labels shape {labels.shape} != ({b}, {s})")
    logp = F.log_softmax(logits, axis=-1)
    mask = np.ones((b, s)) if pad_id is None else (labels != pad_id).astype(float)
    safe_labels = np.where(mask > 0, labels, 0)
    onehot = np.zeros((b, s, v))
    onehot[np.arange(b)[:, None], np.arange(s)[None, :], safe_labels] = 1.0
    nll = -(logp * Tensor(onehot)).sum(axis=-1) * Tensor(mask)
    denom = max(mask.sum(), 1.0)
    return nll.sum() * (1.0 / denom)
