"""Training loops and the pruning-driver adapter.

:class:`Trainer` runs generic mini-batch training over any model that
exposes ``loss(batch) -> Tensor``.  :class:`TrainedModelAdapter` bridges a
trained model to :class:`repro.core.pruner.TWPruner`'s ``PrunableModel``
protocol: it extracts the prunable GEMM matrices, computes fresh Taylor
gradients from a calibration batch, enforces masks through the optimizer
(pruned weights stay exactly zero during fine-tuning, Alg. 1 line 21), and
runs the per-stage fine-tuning epochs.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.nn.datasets import ClassificationSplit, batches
from repro.nn.optimizer import Adam, Optimizer
from repro.nn.tensor import Tensor

__all__ = ["TrainConfig", "Trainer", "TrainedModelAdapter"]

# a model, for training purposes: loss(split, indices) -> scalar Tensor
LossFn = Callable[[ClassificationSplit, np.ndarray], Tensor]


@dataclass
class TrainConfig:
    """Mini-batch training hyper-parameters."""

    epochs: int = 3
    batch_size: int = 32
    lr: float = 1e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 0 or self.batch_size <= 0 or self.lr <= 0:
            raise ValueError(f"invalid train config {self}")


class Trainer:
    """Generic mini-batch trainer.

    Parameters
    ----------
    loss_fn:
        ``loss_fn(split, idx)`` returns the scalar loss of the batch
        ``split.x[idx] / split.y[idx]``.  Keeping the batch assembly inside
        the model-specific closure lets one trainer serve classification,
        span and seq2seq tasks.
    optimizer:
        Any :class:`~repro.nn.optimizer.Optimizer`; masks registered on it
        survive across epochs, so fine-tuning a pruned model just works.
    """

    def __init__(self, loss_fn: LossFn, optimizer: Optimizer) -> None:
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.history: list[float] = []

    def train(self, split: ClassificationSplit, config: TrainConfig) -> list[float]:
        """Run ``config.epochs`` epochs; returns per-epoch mean losses."""
        rng = np.random.default_rng(config.seed)
        epoch_losses = []
        for _ in range(config.epochs):
            losses = []
            for idx in batches(len(split), config.batch_size, rng):
                self.optimizer.zero_grad()
                loss = self.loss_fn(split, idx)
                loss.backward()
                self.optimizer.step()
                losses.append(loss.item())
            epoch_losses.append(float(np.mean(losses)))
        self.history.extend(epoch_losses)
        return epoch_losses


class TrainedModelAdapter:
    """Adapt a trained model to the pruner's ``PrunableModel`` protocol.

    Parameters
    ----------
    prunable:
        The GEMM-view weight tensors to prune, in a stable order (the same
        order masks come back in).
    loss_fn:
        Batch-loss closure (same signature as :class:`Trainer`).
    train_split:
        Data for fine-tuning and gradient calibration.
    finetune_config:
        Per-stage fine-tuning budget (Alg. 1 runs this after every stage).
    calibration_batches:
        How many batches to average Taylor gradients over.
    """

    #: real training state is attached; repro.tune() may override the
    #: per-stage budget through set_finetune_config()
    supports_fine_tuning = True

    def __init__(
        self,
        prunable: list[Tensor],
        loss_fn: LossFn,
        train_split: ClassificationSplit,
        finetune_config: TrainConfig | None = None,
        calibration_batches: int = 4,
        lr: float | None = None,
    ) -> None:
        if not prunable:
            raise ValueError("no prunable tensors given")
        self.prunable = prunable
        self.loss_fn = loss_fn
        self.train_split = train_split
        self.finetune_config = finetune_config or TrainConfig(epochs=1)
        self.calibration_batches = calibration_batches
        self.masks: list[np.ndarray] = [
            np.ones(p.shape, dtype=bool) for p in prunable
        ]
        self._optimizer = Adam(
            list(self._all_params()), lr=lr or self.finetune_config.lr
        )

    def set_finetune_config(self, config: TrainConfig) -> None:
        """Replace the per-stage fine-tuning budget (``tune(train=...)``).

        The optimizer's learning rate follows the new config; its masks and
        moment state survive, so overriding mid-session is safe.  A
        ``TrainConfig(epochs=0)`` budget is well-defined: every stage
        prunes and re-scores but skips recovery entirely (the one-shot
        ablation at each stage).
        """
        self.finetune_config = config
        self._optimizer.lr = config.lr

    def _all_params(self):
        seen = set()
        for p in self.prunable:
            if id(p) not in seen:
                seen.add(id(p))
                yield p

    # ---------------- PrunableModel protocol ---------------- #
    def weight_matrices(self) -> list[np.ndarray]:
        """Current dense weights of the prunable layers."""
        return [p.data for p in self.prunable]

    def gradient_matrices(self) -> list[np.ndarray]:
        """Fresh loss gradients averaged over calibration batches.

        These feed Eq. 3's Taylor scores; weights and their gradients
        "already exist in the training stage" per the paper — here we
        recompute them on demand from held-in data.
        """
        rng = np.random.default_rng(self.finetune_config.seed + 17)
        grads = [np.zeros(p.shape) for p in self.prunable]
        n = 0
        for idx in batches(
            len(self.train_split), self.finetune_config.batch_size, rng
        ):
            for p in self.prunable:
                p.zero_grad()
            loss = self.loss_fn(self.train_split, idx)
            loss.backward()
            for g, p in zip(grads, self.prunable):
                if p.grad is not None:
                    g += p.grad
            n += 1
            if n >= self.calibration_batches:
                break
        return [g / max(n, 1) for g in grads]

    def apply_masks(self, masks: list[np.ndarray]) -> None:
        """Zero pruned weights and freeze them via the optimizer."""
        if len(masks) != len(self.prunable):
            raise ValueError(
                f"expected {len(self.prunable)} masks, got {len(masks)}"
            )
        self.masks = [np.asarray(m, dtype=bool).copy() for m in masks]
        for p, m in zip(self.prunable, self.masks):
            self._optimizer.set_mask(p, m)

    def fine_tune(self) -> None:
        """One stage of mask-constrained fine-tuning."""
        trainer = Trainer(self.loss_fn, self._optimizer)
        trainer.train(self.train_split, self.finetune_config)

    # ---------------- bookkeeping ---------------- #
    @property
    def overall_sparsity(self) -> float:
        """Sparsity implied by the current masks."""
        total = sum(m.size for m in self.masks)
        kept = sum(int(m.sum()) for m in self.masks)
        return 1.0 - kept / total if total else 0.0
