"""Neural-network modules on the autodiff substrate.

A :class:`Module` owns named parameters and submodules, PyTorch-style but
minimal.  Prunable modules (``Linear``, ``Conv2d``, ``LSTMCell``) expose
their GEMM-view weight through ``gemm_weight()`` so the pruning driver and
the latency engines see the exact matrices the paper prunes (Conv2d reports
its im2col-lowered ``(C·KH·KW) × O`` matrix, per §VII-A).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.kernels.im2col import col2im, conv_output_shape, im2col
from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = [
    "Module",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Conv2d",
    "MaxPool2d",
    "Dropout",
    "LSTMCell",
]


class Module:
    """Base class: parameter registry, train/eval mode, recursion."""

    def __init__(self) -> None:
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[Tensor]:
        """All trainable tensors, depth first, deduplicated."""
        seen: set[int] = set()
        for p in self._parameters.values():
            if id(p) not in seen:
                seen.add(id(p))
                yield p
        for m in self._modules.values():
            for p in m.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    yield p

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """(name, module) pairs, depth first, including self."""
        yield prefix or type(self).__name__, self
        for name, m in self._modules.items():
            sub = f"{prefix}.{name}" if prefix else name
            yield from m.named_modules(sub)

    def zero_grad(self) -> None:
        """Clear every parameter gradient."""
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        """Enable training mode recursively."""
        self.training = True
        for m in self._modules.values():
            m.train()
        return self

    def eval(self) -> "Module":
        """Enable eval mode recursively."""
        self.training = False
        for m in self._modules.values():
            m.eval()
        return self

    def n_parameters(self) -> int:
        """Total trainable scalars."""
        return sum(p.size for p in self.parameters())

    def state_arrays(self) -> list[np.ndarray]:
        """Copies of all parameter payloads, in ``parameters()`` order.

        Together with :meth:`load_state_arrays` this gives cheap
        checkpoint/restore — the benchmark harness snapshots a trained
        model once and restores it before every pruning run.
        """
        return [p.data.copy() for p in self.parameters()]

    def load_state_arrays(self, arrays: list[np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_arrays`."""
        params = list(self.parameters())
        if len(arrays) != len(params):
            raise ValueError(
                f"expected {len(params)} arrays, got {len(arrays)}"
            )
        for p, a in zip(params, arrays):
            if p.data.shape != a.shape:
                raise ValueError(
                    f"shape mismatch: parameter {p.data.shape} vs saved {a.shape}"
                )
            p.data[...] = a

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps = list(modules)
        for i, m in enumerate(modules):
            setattr(self, f"step{i}", m)

    def forward(self, x: Tensor) -> Tensor:
        for m in self.steps:
            x = m(x)
        return x


def _kaiming(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    return rng.standard_normal(shape) * np.sqrt(2.0 / max(fan_in, 1))


class Linear(Module):
    """Affine layer with the GEMM-orientation weight ``(in, out)``.

    This is the paper's prunable unit: the forward is exactly
    ``A(M×K) @ B(K×N)`` with ``B = self.weight``.
    """

    def __init__(
        self, in_features: int, out_features: int, bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            _kaiming(rng, in_features, (in_features, out_features)), requires_grad=True
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def gemm_weight(self) -> Tensor:
        """The ``K×N`` matrix the pruner operates on."""
        return self.weight


class Embedding(Module):
    """Token-id lookup table."""

    def __init__(
        self, num_embeddings: int, dim: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Tensor(rng.standard_normal((num_embeddings, dim)) * 0.02,
                             requires_grad=True)

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise ValueError("embedding id out of range")
        return Tensor.embedding(self.weight, ids)


class LayerNorm(Module):
    """Layer normalisation with learned affine."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, self.eps)


class Dropout(Module):
    """Inverted dropout (identity at eval time)."""

    def __init__(self, p: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        if not (0.0 <= p < 1.0):
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)


class Conv2d(Module):
    """Convolution executed as im2col + GEMM (paper §II-B, §VII-A).

    The weight is *stored in the lowered layout* ``(C·KH·KW) × O`` — the
    matrix the paper prunes — and reshaped only for shape bookkeeping.
    im2col/col2im are registered as a primitive pair on the tape.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            _kaiming(rng, fan_in, (fan_in, out_channels)), requires_grad=True
        )
        self.bias = (
            Tensor(np.zeros(out_channels), requires_grad=True) if bias else None
        )

    def _im2col_tensor(self, x: Tensor) -> Tensor:
        kh = kw = self.kernel_size
        stride, padding = self.stride, self.padding
        x_shape = x.shape
        cols_data = im2col(x.data, kh, kw, stride, padding)

        def backward(g: np.ndarray) -> None:
            if x.requires_grad:
                x._accumulate(col2im(g, x_shape, kh, kw, stride, padding))

        return Tensor._make(cols_data, (x,), backward)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected NCHW input with C={self.in_channels}, got {x.shape}"
            )
        n, _, h, w = x.shape
        oh, ow = conv_output_shape(h, w, self.kernel_size, self.kernel_size,
                                   self.stride, self.padding)
        cols = self._im2col_tensor(x)          # (N·OH·OW, C·KH·KW)
        out = F.linear(cols, self.weight, self.bias)  # (N·OH·OW, O)
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def gemm_weight(self) -> Tensor:
        """The im2col-lowered ``(C·KH·KW) × O`` matrix the pruner sees."""
        return self.weight


class MaxPool2d(Module):
    """Max pooling with a window == stride (non-overlapping)."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"input {h}x{w} not divisible by pool {k}")
        oh, ow = h // k, w // k
        view = x.data.reshape(n, c, oh, k, ow, k)
        flat = view.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, oh, ow, k * k)
        arg = flat.argmax(axis=-1)
        out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

        def backward(g: np.ndarray) -> None:
            if not x.requires_grad:
                return
            gflat = np.zeros_like(flat)
            np.put_along_axis(gflat, arg[..., None], g[..., None], axis=-1)
            gx = (
                gflat.reshape(n, c, oh, ow, k, k)
                .transpose(0, 1, 2, 4, 3, 5)
                .reshape(n, c, h, w)
            )
            x._accumulate(gx)

        return Tensor._make(out_data, (x,), backward)


class LSTMCell(Module):
    """A fused-gate LSTM cell (paper Fig. 1's LSTM layer).

    The four gates are computed with two GEMMs against fused weight
    matrices ``w_ih (input, 4·hidden)`` and ``w_hh (hidden, 4·hidden)`` —
    the "native GEMM operations" of the LSTM layer that the NMT experiments
    prune.  Gate order: input, forget, cell(g), output.
    """

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("sizes must be positive")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Tensor(
            _kaiming(rng, input_size, (input_size, 4 * hidden_size)), requires_grad=True
        )
        self.w_hh = Tensor(
            _kaiming(rng, hidden_size, (hidden_size, 4 * hidden_size)),
            requires_grad=True,
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Tensor(bias, requires_grad=True)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor]
    ) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.w_ih + h_prev @ self.w_hh + self.bias
        hs = self.hidden_size
        i = gates[:, :hs].sigmoid()
        f = gates[:, hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs :].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def init_state(self, batch: int) -> tuple[Tensor, Tensor]:
        """Zero hidden/cell state for a batch."""
        z = np.zeros((batch, self.hidden_size))
        return Tensor(z.copy()), Tensor(z.copy())

    def gemm_weights(self) -> list[Tensor]:
        """The two prunable GEMM matrices."""
        return [self.w_ih, self.w_hh]
