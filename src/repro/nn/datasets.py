"""Synthetic datasets standing in for the paper's benchmarks.

The paper evaluates on MNLI/GLUE (sentence-pair classification), SQuAD
(span extraction), ImageNet (image classification) and IWSLT En-Vi
(translation).  None are redistributable here, so each task is replaced by
a synthetic generator that preserves what the pruning experiments need: a
*learnable* task whose accuracy degrades smoothly as model capacity is
pruned away, so pattern-vs-accuracy orderings are measurable.  DESIGN.md §2
documents the substitution argument.

All generators are deterministic given a seed and return plain NumPy
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ClassificationSplit",
    "SentencePairDataset",
    "SpanQADataset",
    "ImagePatternDataset",
    "Seq2SeqDataset",
    "batches",
]


@dataclass
class ClassificationSplit:
    """A (inputs, labels) pair with optional auxiliary arrays."""

    x: np.ndarray
    y: np.ndarray
    extra: dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return self.x.shape[0]


def batches(n: int, batch_size: int, rng: np.random.Generator | None = None):
    """Yield index arrays covering ``range(n)``, shuffled when ``rng`` given."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    for lo in range(0, n, batch_size):
        yield order[lo : lo + batch_size]


class SentencePairDataset:
    """MNLI-like sentence-pair entailment.

    Class semantics mirror NLI:

    - 0 "entailment"    — both segments share a topic;
    - 1 "contradiction" — same topic, but the second segment carries a
      negation marker token;
    - 2 "neutral"       — unrelated topics.

    The model must both compare the two segments' topics (0/1 vs 2) and
    spot the negation token (0 vs 1) — two distinct skills, so accuracy
    degrades gracefully as capacity is pruned away rather than collapsing.
    Topic unigrams are block-structured (each topic strongly favours its
    own vocabulary slice).
    """

    n_classes = 3

    def __init__(
        self,
        vocab_size: int = 128,
        seq_len: int = 24,
        n_topics: int = 8,
        seed: int = 0,
    ) -> None:
        if vocab_size < 16 or seq_len < 4 or n_topics < 4:
            raise ValueError("dataset too small to be learnable")
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        self.n_topics = n_topics
        # reserved ids at the top of the vocabulary
        self.sep_id = vocab_size - 1
        self.cls_id = vocab_size - 2
        self.neg_id = vocab_size - 3
        content = vocab_size - 3
        weights = np.ones((n_topics, content))
        block = max(content // n_topics, 1)
        for t in range(n_topics):
            lo = (t * block) % content
            weights[t, lo : lo + block] = 12.0
        self._topic_probs = weights / weights.sum(axis=1, keepdims=True)

    def sample(self, n: int, seed: int) -> ClassificationSplit:
        """Generate ``n`` labelled pairs; tokens shape ``(n, 2 + 2·half)``."""
        rng = np.random.default_rng(seed)
        half = self.seq_len // 2
        content = self.vocab_size - 3
        y = rng.integers(0, self.n_classes, size=n)
        x = np.empty((n, 2 + 2 * half), dtype=np.int64)
        for i in range(n):
            t1 = int(rng.integers(0, self.n_topics))
            if y[i] == 2:
                others = [t for t in range(self.n_topics) if t != t1]
                t2 = int(rng.choice(others))
            else:
                t2 = t1
            s1 = rng.choice(content, size=half, p=self._topic_probs[t1])
            s2 = rng.choice(content, size=half, p=self._topic_probs[t2])
            if y[i] == 1:  # contradiction: negation marker somewhere in s2
                s2[rng.integers(0, half)] = self.neg_id
            x[i] = np.concatenate(([self.cls_id], s1, [self.sep_id], s2))
        return ClassificationSplit(x=x, y=y)


class SpanQADataset:
    """SQuAD-like span extraction.

    A "question" token announces which marker pair to find; the "context"
    contains several marker pairs and the model must output the start/end
    positions of the announced one.  Labels are ``(start, end)`` indices.
    """

    def __init__(
        self, vocab_size: int = 128, seq_len: int = 32, n_marker_kinds: int = 4,
        span_len: int = 3, seed: int = 0,
    ) -> None:
        if seq_len < (span_len + 2) * n_marker_kinds + 2:
            raise ValueError("sequence too short for the requested markers")
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        self.n_marker_kinds = n_marker_kinds
        self.span_len = span_len
        # reserved ids: markers at the top of the vocabulary
        self.marker_ids = np.arange(vocab_size - n_marker_kinds, vocab_size)
        self.question_base = vocab_size - 2 * n_marker_kinds

    def sample(self, n: int, seed: int) -> ClassificationSplit:
        """Generate ``n`` examples; extra['start'] / extra['end'] labels."""
        rng = np.random.default_rng(seed)
        x = rng.integers(0, self.question_base, size=(n, self.seq_len))
        start = np.zeros(n, dtype=np.int64)
        end = np.zeros(n, dtype=np.int64)
        slot = self.span_len + 1
        for i in range(n):
            kind = int(rng.integers(0, self.n_marker_kinds))
            x[i, 0] = self.question_base + kind  # the "question"
            # place each marker kind at a random non-overlapping slot
            positions = 1 + rng.permutation(
                (self.seq_len - 1) // slot
            )[: self.n_marker_kinds] * slot
            for k, pos in enumerate(positions):
                x[i, pos] = self.marker_ids[k]
                if k == kind:
                    start[i] = pos
                    end[i] = pos + self.span_len - 1
        return ClassificationSplit(x=x, y=start, extra={"start": start, "end": end})


class ImagePatternDataset:
    """ImageNet-like multi-class images: class templates + jitter + noise.

    Templates are *smooth* (low-frequency: a coarse random grid upsampled
    4×), so the ±2-pixel translation jitter preserves class identity — the
    shift-tolerance pressure that makes convolution the right inductive
    bias, as in real image classification.
    """

    def __init__(
        self, n_classes: int = 10, channels: int = 3, size: int = 16, seed: int = 0
    ) -> None:
        if n_classes < 2 or size < 8 or size % 4:
            raise ValueError("dataset too small (or size not a multiple of 4)")
        self.n_classes = n_classes
        self.channels = channels
        self.size = size
        rng = np.random.default_rng(seed)
        coarse = rng.standard_normal((n_classes, channels, size // 4, size // 4))
        self._templates = np.kron(coarse, np.ones((1, 1, 4, 4)))

    def sample(self, n: int, seed: int) -> ClassificationSplit:
        """Generate ``n`` images ``(n, C, H, W)`` with integer labels."""
        rng = np.random.default_rng(seed)
        y = rng.integers(0, self.n_classes, size=n)
        x = self._templates[y].copy()
        # random circular shifts (translation invariance pressure)
        for i in range(n):
            sh, sw = rng.integers(-2, 3, size=2)
            x[i] = np.roll(np.roll(x[i], sh, axis=1), sw, axis=2)
        x += rng.standard_normal(x.shape) * 0.7
        return ClassificationSplit(x=x, y=y)


class Seq2SeqDataset:
    """IWSLT-like toy translation: reverse the source and map its tokens.

    Target = token-mapped, reversed source — long-range reordering plus a
    learned lexical mapping, the two ingredients attention-based NMT needs.
    Sequences have variable length with padding; BLEU is the metric.
    """

    pad_id = 0
    bos_id = 1
    eos_id = 2

    def __init__(self, vocab_size: int = 64, max_len: int = 12, seed: int = 0) -> None:
        if vocab_size < 8 or max_len < 4:
            raise ValueError("dataset too small to be learnable")
        self.vocab_size = vocab_size
        self.max_len = max_len
        rng = np.random.default_rng(seed)
        content = np.arange(3, vocab_size)
        self._mapping = np.concatenate(([0, 1, 2], rng.permutation(content)))

    def sample(self, n: int, seed: int) -> ClassificationSplit:
        """Generate source/target pairs, padded to ``max_len + 2``.

        ``x`` is the source; ``y`` the target *including* BOS/EOS so
        teacher forcing uses ``y[:, :-1] → y[:, 1:]``.
        """
        rng = np.random.default_rng(seed)
        width = self.max_len + 2
        x = np.full((n, width), self.pad_id, dtype=np.int64)
        y = np.full((n, width), self.pad_id, dtype=np.int64)
        for i in range(n):
            length = int(rng.integers(self.max_len // 2, self.max_len + 1))
            src = rng.integers(3, self.vocab_size, size=length)
            tgt = self._mapping[src[::-1]]
            x[i, :length] = src
            y[i, 0] = self.bos_id
            y[i, 1 : 1 + length] = tgt
            y[i, 1 + length] = self.eos_id
        return ClassificationSplit(x=x, y=y)
