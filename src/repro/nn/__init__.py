"""From-scratch NumPy DNN substrate.

The paper fine-tunes pruned BERT / VGG / NMT models in TensorFlow; offline
reproduction needs a real training stack, so this subpackage implements one
from scratch on NumPy:

- :mod:`repro.nn.tensor` — tape-based reverse-mode autodiff;
- :mod:`repro.nn.functional` — composite ops (softmax, GeLU, layernorm, …);
- :mod:`repro.nn.layers` — Linear / Embedding / LayerNorm / Conv2d /
  MaxPool2d / LSTMCell modules;
- :mod:`repro.nn.attention` — multi-head self-attention;
- :mod:`repro.nn.loss` — cross-entropy (+ label smoothing);
- :mod:`repro.nn.optimizer` — SGD(momentum), Adam;
- :mod:`repro.nn.datasets` — synthetic stand-ins for MNLI / SQuAD /
  ImageNet / IWSLT (see DESIGN.md §2 for the substitution argument);
- :mod:`repro.nn.metrics` — accuracy, span-F1, BLEU;
- :mod:`repro.nn.trainer` — training loops and the
  :class:`~repro.nn.trainer.TrainedModelAdapter` bridging real models to
  the pruning driver (mask enforcement during fine-tuning included).

Importance scores use *real* gradients from this stack (the paper's
first-order Taylor criterion), and all accuracy numbers in the benchmarks
come from genuinely trained-and-pruned models.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn import functional
from repro.nn.layers import (
    Conv2d,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    LSTMCell,
    MaxPool2d,
    Module,
    Sequential,
)
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.loss import cross_entropy
from repro.nn.optimizer import SGD, Adam
from repro.nn.trainer import TrainedModelAdapter, Trainer

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Conv2d",
    "MaxPool2d",
    "Dropout",
    "LSTMCell",
    "MultiHeadSelfAttention",
    "cross_entropy",
    "SGD",
    "Adam",
    "Trainer",
    "TrainedModelAdapter",
]
