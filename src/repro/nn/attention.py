"""Multi-head self-attention (the MHA block of Fig. 1's Transformer layer).

Four prunable projection matrices per block — Wq, Wk, Wv, Wo — which, with
the two feed-forward matrices, give the "6 weight matrices per layer"
accounting behind Fig. 5's 72 matrices for 12-layer BERT.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``n_heads`` heads.

    Input/output: ``(batch, seq, dim)``.  An optional boolean padding mask
    ``(batch, seq)`` marks positions to ignore (True = masked out).
    """

    def __init__(
        self, dim: int, n_heads: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        if dim <= 0 or n_heads <= 0 or dim % n_heads:
            raise ValueError(f"dim {dim} must be a positive multiple of n_heads {n_heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.wq = Linear(dim, dim, rng=rng)
        self.wk = Linear(dim, dim, rng=rng)
        self.wv = Linear(dim, dim, rng=rng)
        self.wo = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, padding_mask: np.ndarray | None = None) -> Tensor:
        b, s, d = x.shape
        if d != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {d}")
        h, hd = self.n_heads, self.head_dim

        def split_heads(t: Tensor) -> Tensor:
            # (b, s, d) -> (b, h, s, hd)
            return t.reshape(b, s, h, hd).transpose(0, 2, 1, 3)

        q = split_heads(self.wq(x))
        k = split_heads(self.wk(x))
        v = split_heads(self.wv(x))

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(hd))
        if padding_mask is not None:
            padding_mask = np.asarray(padding_mask, dtype=bool)
            if padding_mask.shape != (b, s):
                raise ValueError(
                    f"padding mask shape {padding_mask.shape} != ({b}, {s})"
                )
            scores = scores.masked_fill(
                padding_mask[:, None, None, :], -1e9
            )
        attn = F.softmax(scores, axis=-1)
        ctx = attn @ v                                # (b, h, s, hd)
        merged = ctx.transpose(0, 2, 1, 3).reshape(b, s, d)
        return self.wo(merged)

    def projection_weights(self) -> list[Tensor]:
        """The four prunable matrices (paper's per-layer attention count)."""
        return [self.wq.weight, self.wk.weight, self.wv.weight, self.wo.weight]
