"""Composite differentiable ops built on the Tensor primitives.

Everything here is a composition of :class:`~repro.nn.tensor.Tensor` ops, so
gradients come for free from the tape; numerical-gradient tests cover each
function.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "relu",
    "tanh",
    "sigmoid",
    "layer_norm",
    "dropout",
    "linear",
]

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``.

    The max-shift is a constant (detached), which leaves gradients exact:
    softmax is shift-invariant.
    """
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    e = (x - shift).exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    z = x - shift
    return z - z.exp().sum(axis=axis, keepdims=True).log()


def gelu(x: Tensor) -> Tensor:
    """GeLU (tanh approximation) — BERT's feed-forward activation."""
    inner = (x + x * x * x * 0.044715) * _SQRT_2_OVER_PI
    return x * (inner.tanh() + 1.0) * 0.5


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def layer_norm(
    x: Tensor, gamma: Tensor | None = None, beta: Tensor | None = None,
    eps: float = 1e-5,
) -> Tensor:
    """Layer normalisation over the last axis with optional affine."""
    mu = x.mean(axis=-1, keepdims=True)
    centred = x - mu
    var = (centred * centred).mean(axis=-1, keepdims=True)
    out = centred / (var + eps).sqrt()
    if gamma is not None:
        out = out * gamma
    if beta is not None:
        out = out + beta
    return out


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: identity at eval time."""
    if not (0.0 <= p < 1.0):
        raise ValueError(f"dropout p must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(keep)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ W + b`` with ``W`` stored ``(in, out)``.

    The ``(in, out)`` layout matches the paper's GEMM orientation
    (activations ``A`` left-multiply the weight ``B``, Fig. 4), so the
    pruner's column pruning removes *output features* and row pruning
    removes *input features* per tile — exactly the semantics in §IV-A.
    """
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out
